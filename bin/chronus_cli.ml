(* The chronus command-line tool: schedule one update instance, inspect
   the algorithms' intermediate structures, or regenerate any table/figure
   of the paper's evaluation. *)

open Cmdliner
open Chronus_flow
open Chronus_core
module E = Chronus_experiments

let scale_arg =
  let doc = "Experiment scale preset: tiny, quick or paper." in
  Arg.(value & opt string "quick" & info [ "scale" ] ~docv:"PRESET" ~doc)

let metrics_arg =
  let doc =
    "After each figure, print the per-label observability table (counters, \
     gauges and span timers accumulated during the run — see \
     OBSERVABILITY.md for the label vocabulary)."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let jobs_arg =
  let doc =
    "Domains to fan experiment trials out over (default: $(b,CHRONUS_JOBS) \
     or the recommended domain count). Rows are identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let instance_of_generator ~gen ~n ~seed =
  let rng = Chronus_topo.Rng.make seed in
  let spec = Chronus_topo.Scenario.spec n in
  match gen with
  | "fig1" -> Chronus_topo.Scenario.fig1_example ()
  | "random-final" -> Chronus_topo.Scenario.random_final ~rng spec
  | "reversal" -> Chronus_topo.Scenario.segment_reversal ~rng spec
  | "shortcut" -> Chronus_topo.Scenario.shortcut ~rng spec
  | "random-pair" -> Chronus_topo.Scenario.random_pair ~rng spec
  | "mixed" -> Chronus_topo.Scenario.mixed ~rng spec
  | other ->
      invalid_arg
        (Printf.sprintf
           "unknown generator %S (fig1, random-final, reversal, shortcut, \
            random-pair, mixed)"
           other)

(* chronus schedule *)
let schedule_cmd =
  let gen =
    Arg.(
      value & opt string "fig1"
      & info [ "generator" ] ~docv:"GEN" ~doc:"Instance generator.")
  in
  let n =
    Arg.(
      value & opt int 10
      & info [ "switches" ] ~docv:"N" ~doc:"Number of switches.")
  in
  let run gen n seed =
    let inst = instance_of_generator ~gen ~n ~seed in
    Format.printf "%a@.@." Instance.pp inst;
    let drain = Drain.make inst in
    let dep =
      Dependency.at inst drain Schedule.empty
        ~remaining:(Instance.switches_to_update inst)
        ~time:0
    in
    Format.printf "dependency relations at t0: %a@.@." Dependency.pp dep;
    List.iter
      (fun c -> Format.printf "crossing: %a@." Tree.pp_crossing c)
      (Tree.crossings inst);
    (match Greedy.schedule ~mode:Greedy.Exact inst with
    | Greedy.Scheduled s ->
        Format.printf "@.schedule: %a@.update time |T| = %d steps@."
          Schedule.pp s (Schedule.makespan s);
        Format.printf "oracle: %a@." Oracle.pp_report (Oracle.evaluate inst s)
    | Greedy.Infeasible { remaining; _ } ->
        Format.printf
          "@.no congestion- and loop-free schedule exists (%d switches \
           unschedulable); best effort:@."
          (List.length remaining);
        let { Fallback.schedule; _ } = Fallback.schedule inst in
        Format.printf "schedule: %a@.oracle: %a@." Schedule.pp schedule
          Oracle.pp_report
          (Oracle.evaluate inst schedule));
    0
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Compute a Chronus timed update schedule.")
    Term.(const run $ gen $ n $ seed_arg)

(* chronus experiment *)
let experiment_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:"One of: table2, fig6, fig7, fig8, fig9, fig10, fig11, robust, scale, service, conns, ablation, all.")
  in
  let conns_arg =
    let doc =
      "Concurrent-session counts for the $(b,conns) experiment, e.g. \
       $(b,--conns 2000,10000). Default: the scale's session axis."
    in
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "conns" ] ~docv:"CONNS" ~doc)
  in
  let rates_arg =
    let doc =
      "Offered rates (requests per round) for the $(b,service) experiment, \
       e.g. $(b,--rates 1,16). Default: the scale's rate axis."
    in
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "rates" ] ~docv:"RATES" ~doc)
  in
  let topos_arg =
    let doc =
      "Topology cells for the $(b,scale) experiment, e.g. \
       $(b,--topos fat16,b4,wan32) ($(b,fatK) is a k-ary fat-tree, \
       $(b,wanN) an N-site WAN). Default: the scale's cell list."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "topos" ] ~docv:"TOPOS" ~doc)
  in
  let parse_topo s =
    let num prefix =
      let p = String.length prefix in
      if String.length s > p && String.sub s 0 p = prefix then
        int_of_string_opt (String.sub s p (String.length s - p))
      else None
    in
    match (s, num "fat", num "wan") with
    | "b4", _, _ -> E.Fig_scale.B4
    | _, Some k, _ -> E.Fig_scale.Fat_tree k
    | _, _, Some n -> E.Fig_scale.Wan n
    | _ ->
        invalid_arg
          (Printf.sprintf "unknown topology %S (expected fatK, b4 or wanN)" s)
  in
  let run which scale_name jobs metrics rates topos conns =
    let module Obs = Chronus_obs.Obs in
    let scale = E.Scale.parse scale_name in
    let kinds = Option.map (List.map parse_topo) topos in
    let jobs =
      match jobs with
      | Some j -> j
      | None -> Chronus_parallel.Pool.default_jobs ()
    in
    let plain = function
      | "table2" -> E.Table2.print (E.Table2.run ~jobs ())
      | "fig6" -> E.Fig6.print (E.Fig6.run ())
      | "fig7" -> E.Fig7.print (E.Fig7.run ~jobs ~scale ())
      | "fig8" -> E.Fig8.print (E.Fig8.run ~jobs ~scale ())
      | "fig9" -> E.Fig9.print (E.Fig9.run ~jobs ~scale ())
      | "fig10" -> E.Fig10.print (E.Fig10.run ~jobs ~scale ())
      | "fig11" -> E.Fig11.print (E.Fig11.run ~jobs ~scale ())
      | "robust" -> E.Fig_robust.print (E.Fig_robust.run ~jobs ~scale ())
      | "scale" -> E.Fig_scale.print (E.Fig_scale.run ~jobs ~scale ?kinds ())
      | "service" ->
          E.Fig_service.print (E.Fig_service.run ~jobs ~scale ?rates ())
      | "conns" -> E.Fig_conns.print (E.Fig_conns.run ~jobs ~scale ?conns ())
      | "ablation" -> E.Ablation.print (E.Ablation.run ~jobs ~scale ())
      | other ->
          invalid_arg (Printf.sprintf "unknown experiment %S" other)
    in
    let dispatch which =
      if not metrics then plain which
      else begin
        let before = Obs.snapshot () in
        plain which;
        match Obs.diff before (Obs.snapshot ()) with
        | [] -> ()
        | snap ->
            Printf.printf "\n-- metrics (%s) --\n" which;
            Obs.print_table snap
      end
    in
    (match which with
    | "all" ->
        List.iter
          (fun w ->
            dispatch w;
            print_newline ())
          [
            "table2"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
            "robust"; "scale"; "service"; "conns"; "ablation";
          ]
    | w -> dispatch w);
    0
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure of the paper's evaluation.")
    Term.(
      const run $ which $ scale_arg $ jobs_arg $ metrics_arg $ rates_arg
      $ topos_arg $ conns_arg)

(* chronus demo *)
let demo_cmd =
  let faults_arg =
    let doc =
      "Fault-injection preset applied to every executor: $(b,none), \
       $(b,drift) (clock error only), $(b,lossy) (control-channel faults) \
       or $(b,chaos) (everything, including switch failures)."
    in
    Arg.(value & opt string "none" & info [ "faults" ] ~docv:"PRESET" ~doc)
  in
  let clock_error_arg =
    let doc =
      "Override the per-switch clock offset and per-flip jitter bounds to \
       this many milliseconds (composes with $(b,--faults))."
    in
    Arg.(value & opt int 0 & info [ "clock-error" ] ~docv:"MS" ~doc)
  in
  let run seed faults_name clock_error_ms =
    let module Faults = Chronus_faults.Faults in
    let faults =
      let base = Faults.of_preset faults_name in
      if clock_error_ms > 0 then
        Faults.with_clock_error (Chronus_sim.Sim_time.msec clock_error_ms) base
      else base
    in
    let inst = Chronus_topo.Scenario.fig1_example () in
    Format.printf
      "Running the paper's worked example (Figs. 1-3) on the simulator@.";
    Format.printf "%a, clock error %d ms@.@." Faults.pp faults clock_error_ms;
    let c = Chronus_exec.Timed_exec.run ~seed ~faults inst in
    let o = Chronus_exec.Order_exec.run ~seed ~faults inst in
    let violations (r : Chronus_exec.Exec_env.result) =
      let v = r.Chronus_exec.Exec_env.violations in
      v.Chronus_sim.Monitor.transient_loops
      + v.Chronus_sim.Monitor.blackholes
      + v.Chronus_sim.Monitor.overload_samples
    in
    Format.printf
      "Chronus: schedule %a, peak %.2f Mbit/s, loss %d bytes@." Schedule.pp
      c.Chronus_exec.Timed_exec.schedule
      c.Chronus_exec.Timed_exec.result.Chronus_exec.Exec_env.peak_mbps
      c.Chronus_exec.Timed_exec.result.Chronus_exec.Exec_env.loss_bytes;
    Format.printf
      "         path %a, %d retries, %d unacked, %d violations@."
      Chronus_exec.Timed_exec.pp_path c.Chronus_exec.Timed_exec.path
      c.Chronus_exec.Timed_exec.retries c.Chronus_exec.Timed_exec.unacked
      (violations c.Chronus_exec.Timed_exec.result);
    Format.printf "OR:      %d rounds, peak %.2f Mbit/s, loss %d bytes@."
      (List.length o.Chronus_exec.Order_exec.rounds)
      o.Chronus_exec.Order_exec.result.Chronus_exec.Exec_env.peak_mbps
      o.Chronus_exec.Order_exec.result.Chronus_exec.Exec_env.loss_bytes;
    Format.printf "         %d violations@."
      (violations o.Chronus_exec.Order_exec.result);
    0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the worked example on the simulator.")
    Term.(const run $ seed_arg $ faults_arg $ clock_error_arg)

(* chronus render *)
let render_cmd =
  let gen =
    Arg.(
      value & opt string "fig1"
      & info [ "generator" ] ~docv:"GEN" ~doc:"Instance generator.")
  in
  let n =
    Arg.(
      value & opt int 10
      & info [ "switches" ] ~docv:"N" ~doc:"Number of switches.")
  in
  let out =
    Arg.(
      value & opt string "chronus"
      & info [ "out" ] ~docv:"PREFIX" ~doc:"Output file prefix.")
  in
  let run gen n seed out =
    let inst = instance_of_generator ~gen ~n ~seed in
    (* Fig. 1: the network with the solid initial and dashed final path. *)
    Chronus_graph.Dot.write_file ~name:"network"
      ~initial_path:inst.Instance.p_init ~final_path:inst.Instance.p_fin
      (out ^ "-network.dot") inst.Instance.graph;
    Printf.printf "wrote %s-network.dot\n" out;
    (* Fig. 2: the time-extended network with the flow of the computed
       schedule highlighted. *)
    let sched =
      match Greedy.schedule inst with
      | Greedy.Scheduled s -> s
      | Greedy.Infeasible _ -> (Fallback.schedule inst).Fallback.schedule
    in
    let te = Time_extended.of_instance inst sched in
    let highlight =
      List.map (fun (a, b, _) -> (a, b)) (Time_extended.flow_links te inst sched)
    in
    let oc = open_out (out ^ "-time-extended.dot") in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Time_extended.to_dot ~highlight te));
    Printf.printf "wrote %s-time-extended.dot (schedule %s)\n" out
      (Format.asprintf "%a" Schedule.pp sched);
    0
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:
         "Write Graphviz files: the network with both routes (Fig. 1) and \
          the time-extended network carrying the scheduled flow (Fig. 2).")
    Term.(const run $ gen $ n $ seed_arg $ out)

(* chronus ilp *)
let ilp_cmd =
  let run seed =
    let inst = instance_of_generator ~gen:"fig1" ~n:6 ~seed in
    print_string (Mutp.render_ilp inst);
    0
  in
  Cmd.v
    (Cmd.info "ilp"
       ~doc:"Print the MUTP integer program (3) for the worked example.")
    Term.(const run $ seed_arg)

let main =
  let doc = "Chronus: consistent data plane updates in timed SDNs" in
  Cmd.group
    (Cmd.info "chronus" ~version:"1.0.0" ~doc)
    [ schedule_cmd; experiment_cmd; render_cmd; demo_cmd; ilp_cmd ]

let () = exit (Cmd.eval' main)
