(* Differential suite: the calendar event queue against the seed binary
   heap. On any interleaving of pushes and pops — including adversarial
   time distributions: duplicates, dense clusters, year-wide gaps,
   pushes into the past — both queues must dispatch the same events at
   the same times in the same order (FIFO within a timestamp). *)

open Chronus_sim
module C = Event_queue.Calendar
module H = Event_queue.Heap
module Rng = Chronus_topo.Rng

(* Times drawn from a mix of regimes so the calendar exercises in-day
   scans, ring wraps, the min-jump over empty years, and resizes. *)
let gen_time rng used =
  match Rng.int rng 6 with
  | 0 -> Rng.int rng 50 (* dense cluster at the origin *)
  | 1 -> 1_000_000 + Rng.int rng 100 (* dense cluster far away *)
  | 2 -> Rng.int rng 1_000_000_000 (* year-wide spread *)
  | 3 -> Rng.int rng 10 * 1_000_000 (* exact bucket-width multiples *)
  | _ -> (
      (* duplicate of an already-used time: tie-break territory *)
      match !used with
      | [] -> Rng.int rng 1_000
      | l -> Rng.pick rng l)

let run_seq seed =
  let rng = Rng.derive seed [ 82 ] in
  let c = C.create () and h = H.create () in
  let fired_c = ref [] and fired_h = ref [] in
  let used = ref [] in
  let next_id = ref 0 in
  let push time =
    let id = !next_id in
    incr next_id;
    used := time :: !used;
    C.push c ~time (fun () -> fired_c := id :: !fired_c);
    H.push h ~time (fun () -> fired_h := id :: !fired_h)
  in
  let check_pop () =
    match (C.pop c, H.pop h) with
    | None, None -> ()
    | Some (tc, kc), Some (th, kh) ->
        if tc <> th then failwith (Printf.sprintf "pop time %d vs %d" tc th);
        kc ();
        kh ();
        if !fired_c <> !fired_h then failwith "pop order diverged"
    | _ -> failwith "pop emptiness diverged"
  in
  for _ = 1 to 200 do
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 -> push (gen_time rng used)
    | 5 | 6 -> check_pop ()
    | 7 ->
        let a = C.run_next c and b = H.run_next h in
        if a <> b then failwith "run_next emptiness diverged";
        if !fired_c <> !fired_h then failwith "run_next order diverged"
    | 8 ->
        if C.peek_time c <> H.peek_time h then failwith "peek_time diverged"
    | _ ->
        let a = try Some (C.next_time c) with Not_found -> None in
        let b = try Some (H.next_time h) with Not_found -> None in
        if a <> b then failwith "next_time diverged");
    if C.size c <> H.size h then failwith "size diverged";
    if C.is_empty c <> H.is_empty h then failwith "is_empty diverged"
  done;
  (* Drain completely: total order must match to the last event. *)
  while not (C.is_empty c) do
    check_pop ()
  done;
  if not (H.is_empty h) then failwith "heap still pending after drain";
  !fired_c = !fired_h

let differential =
  QCheck.Test.make ~count:80 ~name:"calendar queue = heap on random ops"
    QCheck.small_nat run_seq

(* FIFO within one timestamp, across enough events to split cells. *)
let test_same_time_fifo () =
  let q = C.create () in
  let fired = ref [] in
  for i = 0 to 199 do
    C.push q ~time:777 (fun () -> fired := i :: !fired)
  done;
  while C.run_next q do
    ()
  done;
  Alcotest.(check (list int)) "insertion order" (List.init 200 Fun.id)
    (List.rev !fired)

(* Enough distinct timestamps to force ring growth, then a full drain
   (which walks the shrink path); order must survive both rebuilds. *)
let test_resize_stress () =
  let q = C.create () in
  let rng = Rng.derive 4242 [ 83 ] in
  let times = List.init 3_000 (fun _ -> Rng.int rng 50_000_000) in
  let fired = ref [] in
  List.iter (fun t -> C.push q ~time:t (fun () -> fired := t :: !fired)) times;
  let popped = ref [] in
  let rec drain () =
    if not (C.is_empty q) then begin
      popped := C.next_time q :: !popped;
      ignore (C.run_next q);
      drain ()
    end
  in
  drain ();
  let sorted = List.sort compare times in
  Alcotest.(check (list int)) "drained in time order" sorted (List.rev !popped);
  Alcotest.(check (list int)) "thunks fired in the same order" sorted
    (List.rev !fired)

(* Events pushed earlier than everything already pending (the engine
   never does this, but the structure must not care). *)
let test_push_into_past () =
  let q = C.create () in
  let fired = ref [] in
  let push t = C.push q ~time:t (fun () -> fired := t :: !fired) in
  push 5_000_000;
  push 9;
  (match C.pop q with
  | Some (t, k) ->
      Alcotest.(check int) "earlier event wins" 9 t;
      k ()
  | None -> Alcotest.fail "queue empty");
  (* Force the scan forward to the far event's day, then rewind it. *)
  Alcotest.(check (option int)) "far event is head" (Some 5_000_000)
    (C.peek_time q);
  push 3;
  Alcotest.(check (option int)) "past push becomes the head" (Some 3)
    (C.peek_time q)

let test_empty_api () =
  let q = C.create () in
  Alcotest.(check bool) "is_empty" true (C.is_empty q);
  Alcotest.(check (option int)) "peek on empty" None (C.peek_time q);
  Alcotest.(check bool) "run_next on empty" false (C.run_next q);
  Alcotest.check_raises "next_time on empty" Not_found (fun () ->
      ignore (C.next_time q))

let suite =
  ( "event-queue",
    [
      QCheck_alcotest.to_alcotest ~long:false differential;
      Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
      Alcotest.test_case "resize stress keeps order" `Quick test_resize_stress;
      Alcotest.test_case "push into the past" `Quick test_push_into_past;
      Alcotest.test_case "empty-queue API" `Quick test_empty_api;
    ] )
