(* The transactional update service: rule-granular footprint conflict
   detection (same flow, shared rule slot, link overload), soundness of
   the per-link worst-case transient bounds against the oracle, joint
   safety of concurrently admitted batchmates, the commutativity of
   disjoint-footprint transactions (any submission order, any job count
   — same final routes), deterministic serialization of conflicting ones
   by request id, structured denials, the background-vs-residual oracle
   equivalence the service's solver rests on, a golden multi-flow replay
   through the timed executor, and jobs-parity of the service figure's
   deterministic columns. *)

open Chronus_graph
open Chronus_flow
open Chronus_topo
module Svc = Chronus_service.Service
module Footprint = Chronus_service.Footprint
module Obs = Chronus_obs.Obs
module E = Chronus_experiments

let dig v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* One diamond: base -> base+1 -> base+3 over the top, base -> base+2 ->
   base+3 underneath. The two-diamond graph gives two flows with
   provably disjoint footprints; a single shared diamond gives the
   canonical conflicting pair (same links, same destination). *)
let diamond ?(cap = 2) ?(rng : Rng.t option) g base =
  let e u v =
    let delay = match rng with None -> 1 | Some r -> Rng.in_range r 1 3 in
    Graph.add_edge ~capacity:cap ~delay g u v
  in
  e base (base + 1);
  e (base + 1) (base + 3);
  e base (base + 2);
  e (base + 2) (base + 3)

let via1 base = [ base; base + 1; base + 3 ]
let via2 base = [ base; base + 2; base + 3 ]

let steady fid path = { Instance.fid; f_demand = 1; f_init = path; f_fin = path }

let two_diamond_multi ?cap ?rng () =
  let g = Graph.create () in
  diamond ?cap ?rng g 0;
  diamond ?cap ?rng g 10;
  Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 (via1 10) ]

(* Two flows sharing one diamond in opposite arms; swapping them is the
   canonical conflicting request pair. *)
let shared_diamond_multi ?(cap = 2) ?rng () =
  let g = Graph.create () in
  diamond ~cap ?rng g 0;
  Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 (via2 0) ]

let committed o =
  match o.Svc.verdict with Svc.Committed _ -> true | Svc.Denied _ -> false

let submit_ok svc ~fid ~target =
  match Svc.submit svc ~fid ~target with
  | Ok rid -> rid
  | Error d -> Alcotest.failf "submit denied: %a" Svc.pp_denial d

(* ------------------------------------------------------------------ *)
(* Footprints: the rule-granular conflict relation. *)

let fail_conflict expected actual =
  Alcotest.failf "expected %s, got %s" expected
    (match actual with
    | None -> "no conflict"
    | Some c -> Format.asprintf "%a" Footprint.pp_conflict c)

let test_footprint_conflicts () =
  let g = Graph.create () in
  diamond g 0;
  diamond g 10;
  let fp fid current target =
    Footprint.of_flow ~graph:g ~fid ~demand:1 ~current ~target
  in
  let conflict ~flows a b =
    Footprint.conflict
      ~capacity:(Graph.capacity g)
      ~steady:(Instance.background (List.map (fun p -> (1, p)) flows))
      a b
  in
  let a = fp 0 (via1 0) (via2 0) in
  let b = fp 1 (via1 10) (via2 10) in
  Alcotest.(check bool) "disjoint diamonds commute" true
    (conflict ~flows:[ via1 0; via1 10 ] a b = None);
  (match conflict ~flows:[ via1 0 ] a a with
  | Some (Footprint.Same_flow 0) -> ()
  | other -> fail_conflict "same flow 0" other);
  (* Opposite arms of one diamond: both transactions rewrite the rule
     slot for destination v3 at the shared source switch. *)
  let b' = fp 1 (via2 0) (via1 0) in
  match conflict ~flows:[ via1 0; via2 0 ] a b' with
  | Some (Footprint.Shared_rule { switch = 0; dst = 3 }) -> ()
  | other -> fail_conflict "shared rule slot (v0, dst v3)" other

(* The detour lattice: two flows with distinct destinations (v0 -> v1
   and v2 -> v3 on direct links) whose min-hop detours meet only on the
   chord v8 -> v9. At chord capacity 1 the pair's combined worst case is
   2 and the budget names exactly that link; at capacity 2 the chord
   absorbs both worst cases and the pair — which every path-granular
   model would serialize — shares a batch. *)
let detour_lattice cap =
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:cap ~delay:1 g u v)
    [ (0, 1); (0, 8); (9, 1); (2, 3); (2, 8); (9, 3); (8, 9) ];
  g

let lattice_footprints g =
  ( Footprint.of_flow ~graph:g ~fid:0 ~demand:1 ~current:[ 0; 1 ]
      ~target:[ 0; 8; 9; 1 ],
    Footprint.of_flow ~graph:g ~fid:1 ~demand:1 ~current:[ 2; 3 ]
      ~target:[ 2; 8; 9; 3 ] )

let lattice_steady = Instance.background [ (1, [ 0; 1 ]); (1, [ 2; 3 ]) ]

let test_footprint_link_overload () =
  let g = detour_lattice 1 in
  let a, b = lattice_footprints g in
  (match
     Footprint.conflict ~capacity:(Graph.capacity g) ~steady:lattice_steady a b
   with
  | Some (Footprint.Link_overload { u = 8; v = 9; combined = 2; capacity = 1 })
    ->
      ()
  | other -> fail_conflict "overload of v8 -> v9 (worst-case 2 > cap 1)" other);
  let g2 = detour_lattice 2 in
  let a2, b2 = lattice_footprints g2 in
  Alcotest.(check bool) "a shared link with headroom no longer serializes" true
    (Footprint.conflict ~capacity:(Graph.capacity g2) ~steady:lattice_steady a2
       b2
    = None)

(* The same pair through the live service (the SERVICE.md worked
   example): both detours commit in the first batch with no
   serialization even though their targets share the chord. *)
let test_link_sharing_batchmates () =
  let g = detour_lattice 2 in
  let multi =
    Instance.create_multi ~graph:g [ steady 0 [ 0; 1 ]; steady 1 [ 2; 3 ] ]
  in
  let svc = Svc.create multi in
  ignore (submit_ok svc ~fid:0 ~target:[ 0; 8; 9; 1 ]);
  ignore (submit_ok svc ~fid:1 ~target:[ 2; 8; 9; 3 ]);
  let outcomes = Svc.process ~jobs:2 svc in
  List.iter
    (fun o ->
      Alcotest.(check bool) "committed" true (committed o);
      Alcotest.(check int) "first batch" 1 o.Svc.batch;
      Alcotest.(check (list int)) "no serialization" [] o.Svc.serialized_after)
    outcomes;
  Alcotest.(check (list (pair int (list int)))) "both rerouted"
    [ (0, [ 0; 8; 9; 1 ]); (1, [ 2; 8; 9; 3 ]) ]
    (Svc.routes svc)

(* Footprints are derived once at submit and reused by every admission
   pass that still sees the flow on the path the footprint was computed
   from: two passes over the conflicting pair plus the loser's second
   batch make three reuses (flow 1 itself never moved). *)
let test_footprint_reuse_counter () =
  let svc = Svc.create (shared_diamond_multi ()) in
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  ignore (submit_ok svc ~fid:1 ~target:(via1 0));
  let c = Obs.Counter.v "service.footprint_reuse" in
  let before = Obs.Counter.value c in
  ignore (Svc.process ~jobs:1 svc);
  Alcotest.(check int) "submit-time footprints reused" 3
    (Obs.Counter.value c - before)

(* ------------------------------------------------------------------ *)
(* Soundness of the admission model, in two QCheck halves.

   Half 1: the footprint's per-link worst-case number really bounds the
   transient load the flow can place there under ANY loop-free schedule
   — checked by re-running the schedule on a graph whose capacities ARE
   the bounds and asking the oracle for congestion.

   Half 2: pairs the service actually ran concurrently pass a joint
   full-capacity oracle gate — each member's committed schedule stays
   consistent with the other member charged at its worst-case bound on
   every link the budget accounted for both, and at its steady share
   elsewhere (where the solver's own gate already covered it). Together
   the halves say no admitted batch can congest a link, whatever the
   interleaving. *)

let fp_entry fp u v =
  List.find_opt
    (fun e -> e.Footprint.e_u = u && e.Footprint.e_v = v)
    fp.Footprint.links

let fp_worst fp u v =
  match fp_entry fp u v with Some e -> e.Footprint.e_worst | None -> 0

let fp_steady fp u v =
  match fp_entry fp u v with Some e -> e.Footprint.e_steady | None -> 0

let fp_margin fp u v = fp_worst fp u v - fp_steady fp u v

(* The instance's single flow on a graph whose union-link capacities are
   chosen by [cap_of] (delays preserved — cohort routing is untouched). *)
let recapacitated inst cap_of =
  let g = inst.Instance.graph in
  let union =
    List.sort_uniq compare
      (Path.edges inst.Instance.p_init @ Path.edges inst.Instance.p_fin)
  in
  let g' = Graph.create () in
  List.iter
    (fun (u, v) ->
      Graph.add_edge ~capacity:(cap_of u v) ~delay:(Graph.delay g u v) g' u v)
    union;
  Instance.create ~graph:g' ~demand:inst.Instance.demand
    ~p_init:inst.Instance.p_init ~p_fin:inst.Instance.p_fin

let prop_worst_bound_sound =
  QCheck.Test.make ~count:80
    ~name:"footprint worst case bounds any loop-free schedule's load"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 41 ] in
      let sched =
        Schedule.of_list
          (List.map
             (fun v -> (v, Rng.in_range rng 0 5))
             (Instance.switches_to_update inst))
      in
      let fp =
        Footprint.of_flow ~graph:inst.Instance.graph ~fid:0
          ~demand:inst.Instance.demand ~current:inst.Instance.p_init
          ~target:inst.Instance.p_fin
      in
      let roomy = recapacitated inst (fun _ _ -> 1_000_000) in
      if not (Oracle.evaluate roomy sched).Oracle.ok then
        (* the random schedule loops or blackholes: the bound only
           claims to cover consistent cohort behaviour *)
        true
      else
        let bounded = recapacitated inst (fp_worst fp) in
        (Oracle.evaluate bounded sched).Oracle.ok)

(* A small shared WAN carrying unit-demand flows on min-hop routes, and
   the same failed-link detour requests fig-service submits. *)
let wan_workload seed =
  let rng = Rng.derive seed [ 43 ] in
  let g =
    Topology.wan ~params:{ Topology.capacity = 2; delay = 1 } ~rng 10
  in
  let nodes = Array.of_list (Graph.nodes g) in
  let loads = Hashtbl.create 32 in
  let load u v = Option.value ~default:0 (Hashtbl.find_opt loads (u, v)) in
  let rec draw fid acc misses =
    if fid >= 5 || misses > 100 then List.rev acc
    else
      let src = nodes.(Rng.int rng (Array.length nodes)) in
      let dst = nodes.(Rng.int rng (Array.length nodes)) in
      match if src = dst then None else Shortest.hop_path g src dst with
      | Some p
        when List.for_all
               (fun (u, v) -> load u v + 1 <= Graph.capacity g u v)
               (Path.edges p) ->
          List.iter
            (fun (u, v) -> Hashtbl.replace loads (u, v) (load u v + 1))
            (Path.edges p);
          draw (fid + 1) (steady fid p :: acc) misses
      | Some _ | None -> draw fid acc (misses + 1)
  in
  (g, draw 0 [] 0)

let detour_request ~rng g current =
  match Path.edges current with
  | [] -> current
  | edges -> (
      let u, v = Rng.pick rng edges in
      let g' = Graph.copy g in
      Graph.remove_edge g' u v;
      match
        Shortest.hop_path g' (Path.source current) (Path.destination current)
      with
      | Some p -> p
      | None -> current)

(* The joint gate for batchmates A and B over the routes in force when
   their batch solved. *)
let joint_gate g ~routes a_fid a_target a_sched b_fid b_target =
  let current fid = List.assoc fid routes in
  let fp_of fid target =
    Footprint.of_flow ~graph:g ~fid ~demand:1 ~current:(current fid) ~target
  in
  let fpa = fp_of a_fid a_target and fpb = fp_of b_fid b_target in
  let bg_others =
    Instance.background
      (List.filter_map
         (fun (fid, p) ->
           if fid = a_fid || fid = b_fid then None else Some (1, p))
         routes)
  in
  let background u v =
    bg_others u v
    +
    if fp_margin fpa u v > 0 && fp_margin fpb u v > 0 then fp_worst fpb u v
    else fp_steady fpb u v
  in
  match
    Instance.create ~graph:g ~demand:1 ~p_init:(current a_fid) ~p_fin:a_target
  with
  | exception Instance.Ill_formed _ -> false
  | inst -> (Oracle.evaluate ~background inst a_sched).Oracle.ok

let prop_admitted_pairs_jointly_safe =
  QCheck.Test.make ~count:25
    ~name:"concurrently admitted pairs pass the joint oracle gate"
    QCheck.(make Gen.(0 -- 1_000))
    (fun seed ->
      let g, flows = wan_workload seed in
      if List.length flows < 2 then true
      else begin
        let multi = Instance.create_multi ~graph:g flows in
        let svc = Svc.create multi in
        let rng = Rng.derive seed [ 47 ] in
        let n = List.length flows in
        for _k = 1 to 8 do
          let fid = Rng.int rng n in
          let current = Option.get (Svc.current_path svc fid) in
          let target = detour_request ~rng g current in
          ignore (Svc.submit svc ~fid ~target)
        done;
        let outcomes = Svc.process ~jobs:2 svc in
        let commits =
          List.filter_map
            (fun o ->
              match o.Svc.verdict with
              | Svc.Committed { schedule; _ } ->
                  Some (o.Svc.batch, (o.Svc.fid, o.Svc.target, schedule))
              | Svc.Denied _ -> None)
            outcomes
        in
        let routes = Hashtbl.create 8 in
        List.iter
          (fun f -> Hashtbl.replace routes f.Instance.fid f.Instance.f_init)
          flows;
        let batches = List.sort_uniq Int.compare (List.map fst commits) in
        let pairs_ok =
          List.for_all
            (fun b ->
              let members =
                List.filter_map
                  (fun (b', m) -> if b' = b then Some m else None)
                  commits
              in
              let pre =
                Hashtbl.fold (fun fid p acc -> (fid, p) :: acc) routes []
              in
              let ok =
                List.for_all
                  (fun (afid, atgt, asched) ->
                    Schedule.is_empty asched
                    || List.for_all
                         (fun (bfid, btgt, _) ->
                           bfid = afid
                           || joint_gate g ~routes:pre afid atgt asched bfid
                                btgt)
                         members)
                  members
              in
              List.iter
                (fun (fid, target, _) -> Hashtbl.replace routes fid target)
                members;
              ok)
            batches
        in
        let final = Svc.routes svc in
        let bg_all =
          Instance.background (List.map (fun (_, p) -> (1, p)) final)
        in
        let final_ok =
          List.for_all
            (fun (_, p) ->
              List.for_all
                (fun (u, v) -> bg_all u v <= Graph.capacity g u v)
                (Path.edges p))
            final
        in
        pairs_ok && final_ok
      end)

(* Monotonicity against the old model: a pair the path-granular relation
   already ran concurrently (no shared directed link, distinct
   destinations, distinct flows) is always admitted by the rule-granular
   budget too. *)
let prop_path_disjoint_always_admitted =
  QCheck.Test.make ~count:40
    ~name:"rule-granular admission subsumes path-granular disjointness"
    QCheck.(make Gen.(0 -- 1_000))
    (fun seed ->
      let g, flows = wan_workload seed in
      match flows with
      | fa :: fb :: _ ->
          let rng = Rng.derive seed [ 53 ] in
          let pa = fa.Instance.f_init and pb = fb.Instance.f_init in
          let ta = detour_request ~rng g pa
          and tb = detour_request ~rng g pb in
          let la = Path.edges pa @ Path.edges ta
          and lb = Path.edges pb @ Path.edges tb in
          let disjoint =
            List.for_all (fun e -> not (List.mem e lb)) la
            && Path.destination pa <> Path.destination pb
          in
          if not disjoint then true
          else
            let fp f current target =
              Footprint.of_flow ~graph:g ~fid:f.Instance.fid ~demand:1
                ~current ~target
            in
            Footprint.conflict
              ~capacity:(Graph.capacity g)
              ~steady:
                (Instance.background
                   (List.map (fun f -> (1, f.Instance.f_init)) flows))
              (fp fa pa ta) (fp fb pb tb)
            = None
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Commutativity: disjoint-footprint transactions yield the same final
   routes under any submission order and any job count, and commit in
   the same (first) batch with no serialization. *)

let disjoint_run ~seed ~order ~jobs =
  let multi = two_diamond_multi ~rng:(Rng.derive seed [ 1 ]) () in
  let svc = Svc.create multi in
  List.iter
    (fun fid ->
      ignore (submit_ok svc ~fid ~target:(via2 (if fid = 0 then 0 else 10))))
    order;
  let outcomes = Svc.process ~jobs svc in
  List.iter
    (fun o ->
      Alcotest.(check bool) "committed" true (committed o);
      Alcotest.(check int) "first batch" 1 o.Svc.batch;
      Alcotest.(check (list int)) "no serialization" [] o.Svc.serialized_after)
    outcomes;
  Svc.routes svc

let prop_disjoint_commute =
  QCheck.Test.make ~count:40
    ~name:"disjoint footprints commute (any order, any jobs)"
    QCheck.(make Gen.(0 -- 1_000))
    (fun seed ->
      let reference = disjoint_run ~seed ~order:[ 0; 1 ] ~jobs:1 in
      List.for_all
        (fun (order, jobs) -> disjoint_run ~seed ~order ~jobs = reference)
        [ ([ 0; 1 ], 4); ([ 1; 0 ], 1); ([ 1; 0 ], 4) ])

(* Conflicting pair: whoever holds the smaller rid wins the batch; the
   other request is serialized exactly one batch behind it (Serialize
   policy) or denied naming the winner (Deny policy). *)
let prop_conflict_serializes =
  QCheck.Test.make ~count:40
    ~name:"conflicting pair serializes deterministically by rid"
    QCheck.(make Gen.(pair (0 -- 1_000) bool))
    (fun (seed, swap_order) ->
      let multi = shared_diamond_multi ~rng:(Rng.derive seed [ 2 ]) () in
      let svc = Svc.create multi in
      (* Swap the two flows' arms — maximally conflicting requests. *)
      let submit fid =
        submit_ok svc ~fid ~target:(if fid = 0 then via2 0 else via1 0)
      in
      let first = submit (if swap_order then 1 else 0) in
      let second = submit (if swap_order then 0 else 1) in
      let outcomes = Svc.process ~jobs:2 svc in
      List.for_all committed outcomes
      && List.for_all
           (fun o ->
             if o.Svc.rid = first then
               o.Svc.batch = 1 && o.Svc.serialized_after = []
             else
               o.Svc.rid = second && o.Svc.batch = 2
               && o.Svc.serialized_after = [ first ])
           outcomes
      && Svc.routes svc
         = [ (0, via2 0); (1, via1 0) ])

let test_conflict_deny_policy () =
  let svc =
    Svc.create ~conflict_policy:Svc.Deny (shared_diamond_multi ())
  in
  let r0 = submit_ok svc ~fid:0 ~target:(via2 0) in
  let r1 = submit_ok svc ~fid:1 ~target:(via1 0) in
  match Svc.process ~jobs:1 svc with
  | [ o0; o1 ] ->
      Alcotest.(check bool) "winner committed" true (committed o0);
      Alcotest.(check int) "winner rid" r0 o0.Svc.rid;
      (match o1.Svc.verdict with
      | Svc.Denied (Svc.Conflict { with_rid; _ }) ->
          Alcotest.(check int) "denial names the winner" r0 with_rid
      | v -> Alcotest.failf "expected conflict denial, got %a" Svc.pp_verdict v);
      Alcotest.(check int) "loser rid" r1 o1.Svc.rid;
      Alcotest.(check (list (pair int (list int)))) "loser's route unchanged"
        [ (0, via2 0); (1, via2 0) ]
        (Svc.routes svc)
  | os -> Alcotest.failf "expected two outcomes, got %d" (List.length os)

(* ------------------------------------------------------------------ *)
(* Structured denials *)

let test_door_denials () =
  let svc = Svc.create ~queue_limit:1 (two_diamond_multi ()) in
  (match Svc.submit svc ~fid:9 ~target:(via2 0) with
  | Error (Svc.Unknown_flow 9) -> ()
  | _ -> Alcotest.fail "expected Unknown_flow");
  (match Svc.submit svc ~fid:0 ~target:(via2 10) with
  | Error (Svc.Invalid_path _) -> ()
  | _ -> Alcotest.fail "expected Invalid_path (wrong endpoints)");
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  match Svc.submit svc ~fid:1 ~target:(via2 10) with
  | Error (Svc.Queue_full { limit = 1 }) -> ()
  | _ -> Alcotest.fail "expected Queue_full"

let test_capacity_denial () =
  (* A steady neighbour saturates the lower arm: flow 0's request for it
     must be denied with the exact link and residual. *)
  let g = Graph.create () in
  diamond ~cap:1 g 0;
  let multi =
    Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 [ 0; 2 ] ]
  in
  let svc = Svc.create multi in
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  match Svc.process ~jobs:1 svc with
  | [ { Svc.verdict = Svc.Denied (Svc.Capacity { u = 0; v = 2; need = 1; available = 0 }); _ } ]
    ->
      Alcotest.(check (list (pair int (list int)))) "route unchanged"
        [ (0, via1 0); (1, [ 0; 2 ]) ]
        (Svc.routes svc)
  | [ o ] -> Alcotest.failf "expected capacity denial, got %a" Svc.pp_outcome o
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

let test_unschedulable_denial () =
  (* Helpers.infeasible's topology: no consistent schedule moves the flow
     from [0;1;2;3] to [0;2;3], so the transaction aborts. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v, capacity, delay) -> Graph.add_edge ~capacity ~delay g u v)
    [ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 1, 3); (0, 2, 1, 1) ];
  let multi = Instance.create_multi ~graph:g [ steady 0 [ 0; 1; 2; 3 ] ] in
  let svc = Svc.create multi in
  ignore (submit_ok svc ~fid:0 ~target:[ 0; 2; 3 ]);
  match Svc.process ~jobs:1 svc with
  | [ { Svc.verdict = Svc.Denied (Svc.Unschedulable { remaining }); _ } ] ->
      Alcotest.(check bool) "names unplaced switches" true (remaining > 0)
  | [ o ] ->
      Alcotest.failf "expected unschedulable denial, got %a" Svc.pp_outcome o
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

(* ------------------------------------------------------------------ *)
(* The solver's foundation: validating one flow's schedule against the
   others' steady routes via [?background] on the full graph is the same
   judgement as validating on the residual-capacity graph. *)

let prop_background_residual_equivalence =
  QCheck.Test.make ~count:100
    ~name:"oracle ?background == residual-graph evaluation"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let rng = Rng.derive seed [ 3 ] in
      let spec =
        Chronus_topo.Scenario.spec ~capacity_choices:[ 2; 3 ] ~delay_lo:1
          ~delay_hi:3
          (Rng.in_range rng 4 8)
      in
      let inst = Chronus_topo.Scenario.mixed ~rng spec in
      (* A phantom steady flow on the final path: the heaviest plausible
         sharing pattern. *)
      let bg = Instance.background [ (1, inst.Instance.p_fin) ] in
      let residual = Instance.residual_graph inst.Instance.graph bg in
      match
        Instance.create ~graph:residual ~demand:inst.Instance.demand
          ~p_init:inst.Instance.p_init ~p_fin:inst.Instance.p_fin
      with
      | exception Instance.Ill_formed _ -> QCheck.assume_fail ()
      | rinst ->
          let sched =
            Schedule.of_list
              (List.map
                 (fun v -> (v, Rng.in_range rng 0 3))
                 (Instance.switches_to_update inst))
          in
          let full = Oracle.evaluate ~background:bg inst sched in
          let res = Oracle.evaluate rinst sched in
          full.Oracle.ok = res.Oracle.ok
          && full.Oracle.congested = res.Oracle.congested)

let prop_zero_background_identity =
  QCheck.Test.make ~count:100 ~name:"zero background is the identity"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let sched = Helpers.all_at_zero inst in
      Oracle.evaluate ~background:(fun _ _ -> 0) inst sched
      = Oracle.evaluate inst sched)

(* ------------------------------------------------------------------ *)
(* Golden multi-flow replay: two disjoint transactions and one
   serialized one, driven through the timed executor (Simulate mode).
   The digest pins every deterministic outcome field plus the final
   routes; wall_ns is projected away. Captured at jobs=1 and asserted
   at jobs=2 — the parity is the point. *)

let replay_config =
  {
    Chronus_exec.Exec_env.default with
    Chronus_exec.Exec_env.warmup = Chronus_sim.Sim_time.sec 1;
    drain = Chronus_sim.Sim_time.sec 2;
  }

let proj_outcome (o : Svc.outcome) =
  ( o.Svc.rid,
    o.Svc.fid,
    o.Svc.target,
    (match o.Svc.verdict with
    | Svc.Committed { schedule; makespan } ->
        Ok (Schedule.to_list schedule, makespan)
    | Svc.Denied d -> Error (Format.asprintf "%a" Svc.pp_denial d)),
    o.Svc.batch,
    o.Svc.serialized_after,
    o.Svc.execution )

let replay_run ~jobs =
  let g = Graph.create () in
  diamond g 0;
  diamond g 10;
  let multi =
    Instance.create_multi ~graph:g
      [ steady 0 (via1 0); steady 1 (via1 10); steady 2 (via2 0) ]
  in
  let svc =
    Svc.create ~exec:(Svc.Simulate { seed = 5; config = replay_config }) multi
  in
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  ignore (submit_ok svc ~fid:1 ~target:(via2 10));
  ignore (submit_ok svc ~fid:2 ~target:(via1 0));
  let outcomes = Svc.process ~jobs svc in
  (List.map proj_outcome outcomes, Svc.routes svc)

let test_golden_replay () =
  let outcomes, routes = replay_run ~jobs:2 in
  List.iter
    (fun (_, _, _, verdict, _, _, execution) ->
      (match execution with
      | Some e ->
          Alcotest.(check bool) "simulated run clean" true e.Svc.exec_clean
      | None -> Alcotest.fail "expected an execution summary");
      match verdict with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "expected commit, got %s" d)
    outcomes;
  Alcotest.(check string) "replay digest (seed-identical)"
    "5ba917a0b57b81e705eccdec905d0c2d"
    (dig (outcomes, routes));
  Alcotest.(check string) "jobs parity" (dig (replay_run ~jobs:1)) (dig (outcomes, routes))

(* ------------------------------------------------------------------ *)
(* The accept loop: [run_async] must be outcome-identical to the
   synchronous [submit]* + [process] sequence — same admission races,
   batching, serialization and denials — for a same-instant burst, at
   any job count. Random submission sequences over the shared diamond
   (conflicting pairs, repeats of the same flow, the occasional unknown
   fid bounced at the door). *)

let async_submissions seed =
  let rng = Rng.derive seed [ 77 ] in
  let n = Rng.in_range rng 1 8 in
  List.init n (fun _ ->
      let fid =
        if Rng.in_range rng 0 9 = 0 then 7 (* unknown: door denial *)
        else Rng.in_range rng 0 1
      in
      let target = if Rng.in_range rng 0 1 = 0 then via1 0 else via2 0 in
      (fid, target))

let proj_result = function
  | Error (d : Svc.denial) -> Error (Format.asprintf "%a" Svc.pp_denial d)
  | Ok o -> Ok (proj_outcome o)

let sync_burst ~jobs subs =
  let svc = Svc.create (shared_diamond_multi ()) in
  let door =
    List.map (fun (fid, target) -> Svc.submit svc ~fid ~target) subs
  in
  let outcomes = Svc.process ~jobs svc in
  ( List.map
      (function
        | Error d -> proj_result (Error d)
        | Ok rid ->
            proj_result (Ok (List.find (fun o -> o.Svc.rid = rid) outcomes)))
      door,
    Svc.routes svc )

let async_burst ~jobs subs =
  let svc = Svc.create (shared_diamond_multi ()) in
  let results =
    Svc.run_async ~jobs svc
      (List.map
         (fun (fid, target) -> { Svc.at = 0; a_fid = fid; a_target = target })
         subs)
  in
  ( List.map (fun (r : Svc.async_outcome) -> proj_result r.Svc.a_result) results,
    Svc.routes svc )

let prop_run_async_matches_process =
  QCheck.Test.make ~count:30
    ~name:"run_async verdicts match synchronous process (jobs 1 and 4)"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let subs = async_submissions seed in
      let reference = dig (sync_burst ~jobs:1 subs) in
      dig (async_burst ~jobs:1 subs) = reference
      && dig (async_burst ~jobs:4 subs) = reference)

(* Staggered arrivals: each instant forms its own admission round, so a
   pair that would collide in one burst sails through two batches with
   no serialization; verdicts land at the arrival instant. *)
let test_run_async_staggered () =
  let svc = Svc.create (shared_diamond_multi ()) in
  let t1 = Chronus_sim.Sim_time.msec 5 in
  let results =
    Svc.run_async ~jobs:1 svc
      [
        { Svc.at = 0; a_fid = 0; a_target = via2 0 };
        { Svc.at = t1; a_fid = 1; a_target = via1 0 };
      ]
  in
  match results with
  | [ a; b ] ->
      let outcome (r : Svc.async_outcome) =
        match r.Svc.a_result with
        | Ok o -> o
        | Error d -> Alcotest.failf "denied: %a" Svc.pp_denial d
      in
      Alcotest.(check int) "first verdict at its arrival instant" 0 a.Svc.decided_at;
      Alcotest.(check int) "second verdict at its arrival instant" t1
        b.Svc.decided_at;
      Alcotest.(check int) "first round is batch 1" 1 (outcome a).Svc.batch;
      Alcotest.(check int) "second round is batch 2" 2 (outcome b).Svc.batch;
      Alcotest.(check (list int)) "no serialization across rounds" []
        ((outcome b).Svc.serialized_after);
      Alcotest.(check (list (pair int (list int)))) "both rerouted"
        [ (0, via2 0); (1, via1 0) ]
        (Svc.routes svc)
  | _ -> Alcotest.fail "expected two results"

(* ------------------------------------------------------------------ *)
(* The service figure: deterministic columns independent of the job
   count, and the books balancing. *)

(* Everything except the wall-clock columns and [full_evals] (which
   counts checker-pool misses and so depends on pool timing). *)
let deterministic (r : E.Fig_service.row) =
  ( r.E.Fig_service.offered_per_round,
    r.E.Fig_service.rounds,
    r.E.Fig_service.flows,
    r.E.Fig_service.submitted,
    r.E.Fig_service.committed,
    r.E.Fig_service.serialized,
    r.E.Fig_service.serialized_rate,
    r.E.Fig_service.denied,
    r.E.Fig_service.batches,
    r.E.Fig_service.mean_makespan )

let test_fig_service_jobs_parity () =
  let run jobs = E.Fig_service.run ~jobs ~scale:E.Scale.tiny () in
  let rows = run 1 in
  List.iter
    (fun r ->
      Alcotest.(check int)
        "books balance: committed + denied = submitted"
        r.E.Fig_service.submitted
        (r.E.Fig_service.committed + r.E.Fig_service.denied))
    rows;
  Alcotest.(check string) "rows identical at jobs=1 and jobs=3"
    (dig (List.map deterministic rows))
    (dig (List.map deterministic (run 3)))

let suite =
  ( "service",
    [
      Alcotest.test_case "footprint conflict rules" `Quick
        test_footprint_conflicts;
      Alcotest.test_case "link overload is capacity-aware" `Quick
        test_footprint_link_overload;
      Alcotest.test_case "link-sharing pair shares a batch" `Quick
        test_link_sharing_batchmates;
      Alcotest.test_case "submit-time footprints are reused" `Quick
        test_footprint_reuse_counter;
      QCheck_alcotest.to_alcotest ~long:false prop_worst_bound_sound;
      QCheck_alcotest.to_alcotest ~long:false prop_admitted_pairs_jointly_safe;
      QCheck_alcotest.to_alcotest ~long:false
        prop_path_disjoint_always_admitted;
      QCheck_alcotest.to_alcotest ~long:false prop_disjoint_commute;
      QCheck_alcotest.to_alcotest ~long:false prop_conflict_serializes;
      Alcotest.test_case "deny policy names the winner" `Quick
        test_conflict_deny_policy;
      Alcotest.test_case "door denials are structured" `Quick test_door_denials;
      Alcotest.test_case "capacity denial names the link" `Quick
        test_capacity_denial;
      Alcotest.test_case "unschedulable transaction aborts" `Quick
        test_unschedulable_denial;
      QCheck_alcotest.to_alcotest ~long:false
        prop_background_residual_equivalence;
      QCheck_alcotest.to_alcotest ~long:false prop_zero_background_identity;
      Alcotest.test_case "golden multi-flow replay (seed-identical)" `Quick
        test_golden_replay;
      QCheck_alcotest.to_alcotest ~long:false prop_run_async_matches_process;
      Alcotest.test_case "run_async staggered arrivals round separately" `Quick
        test_run_async_staggered;
      Alcotest.test_case "fig-service rows independent of job count" `Slow
        test_fig_service_jobs_parity;
    ] )
