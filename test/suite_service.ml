(* The transactional update service: footprint conflict detection, the
   commutativity of disjoint-footprint transactions (any submission
   order, any job count — same final routes), deterministic
   serialization of conflicting ones by request id, structured denials,
   the background-vs-residual oracle equivalence the service's solver
   rests on, a golden multi-flow replay through the timed executor, and
   jobs-parity of the service figure's deterministic columns. *)

open Chronus_graph
open Chronus_flow
open Chronus_topo
module Svc = Chronus_service.Service
module Footprint = Chronus_service.Footprint
module E = Chronus_experiments

let dig v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* One diamond: base -> base+1 -> base+3 over the top, base -> base+2 ->
   base+3 underneath. The two-diamond graph gives two flows with
   provably disjoint footprints; a single shared diamond gives the
   canonical conflicting pair (same links, same destination). *)
let diamond ?(cap = 2) ?(rng : Rng.t option) g base =
  let e u v =
    let delay = match rng with None -> 1 | Some r -> Rng.in_range r 1 3 in
    Graph.add_edge ~capacity:cap ~delay g u v
  in
  e base (base + 1);
  e (base + 1) (base + 3);
  e base (base + 2);
  e (base + 2) (base + 3)

let via1 base = [ base; base + 1; base + 3 ]
let via2 base = [ base; base + 2; base + 3 ]

let steady fid path = { Instance.fid; f_demand = 1; f_init = path; f_fin = path }

let two_diamond_multi ?cap ?rng () =
  let g = Graph.create () in
  diamond ?cap ?rng g 0;
  diamond ?cap ?rng g 10;
  Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 (via1 10) ]

(* Two flows sharing one diamond in opposite arms; swapping them is the
   canonical conflicting request pair. *)
let shared_diamond_multi ?(cap = 2) ?rng () =
  let g = Graph.create () in
  diamond ~cap ?rng g 0;
  Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 (via2 0) ]

let committed o =
  match o.Svc.verdict with Svc.Committed _ -> true | Svc.Denied _ -> false

let submit_ok svc ~fid ~target =
  match Svc.submit svc ~fid ~target with
  | Ok rid -> rid
  | Error d -> Alcotest.failf "submit denied: %a" Svc.pp_denial d

(* ------------------------------------------------------------------ *)
(* Footprints *)

let test_footprint_conflicts () =
  let a = Footprint.of_paths [ via1 0; via2 0 ] in
  let b = Footprint.of_paths [ via1 10; via2 10 ] in
  Alcotest.(check bool) "disjoint diamonds commute" true
    (Footprint.conflict a b = None);
  (match Footprint.conflict a a with
  | Some (Footprint.Shared_link (0, 1)) -> ()
  | other ->
      Alcotest.failf "expected shared link v0 -> v1, got %s"
        (match other with
        | None -> "no conflict"
        | Some c -> Format.asprintf "%a" Footprint.pp_conflict c));
  (* Link-disjoint but same destination: rule space still collides. *)
  let g = Graph.create () in
  diamond g 0;
  Graph.add_edge ~capacity:2 ~delay:1 g 7 3;
  let c = Footprint.of_paths [ [ 7; 3 ] ] in
  match Footprint.conflict a c with
  | Some (Footprint.Shared_destination 3) -> ()
  | _ -> Alcotest.fail "expected shared destination v3"

(* ------------------------------------------------------------------ *)
(* Commutativity: disjoint-footprint transactions yield the same final
   routes under any submission order and any job count, and commit in
   the same (first) batch with no serialization. *)

let disjoint_run ~seed ~order ~jobs =
  let multi = two_diamond_multi ~rng:(Rng.derive seed [ 1 ]) () in
  let svc = Svc.create multi in
  List.iter
    (fun fid ->
      ignore (submit_ok svc ~fid ~target:(via2 (if fid = 0 then 0 else 10))))
    order;
  let outcomes = Svc.process ~jobs svc in
  List.iter
    (fun o ->
      Alcotest.(check bool) "committed" true (committed o);
      Alcotest.(check int) "first batch" 1 o.Svc.batch;
      Alcotest.(check (list int)) "no serialization" [] o.Svc.serialized_after)
    outcomes;
  Svc.routes svc

let prop_disjoint_commute =
  QCheck.Test.make ~count:40
    ~name:"disjoint footprints commute (any order, any jobs)"
    QCheck.(make Gen.(0 -- 1_000))
    (fun seed ->
      let reference = disjoint_run ~seed ~order:[ 0; 1 ] ~jobs:1 in
      List.for_all
        (fun (order, jobs) -> disjoint_run ~seed ~order ~jobs = reference)
        [ ([ 0; 1 ], 4); ([ 1; 0 ], 1); ([ 1; 0 ], 4) ])

(* Conflicting pair: whoever holds the smaller rid wins the batch; the
   other request is serialized exactly one batch behind it (Serialize
   policy) or denied naming the winner (Deny policy). *)
let prop_conflict_serializes =
  QCheck.Test.make ~count:40
    ~name:"conflicting pair serializes deterministically by rid"
    QCheck.(make Gen.(pair (0 -- 1_000) bool))
    (fun (seed, swap_order) ->
      let multi = shared_diamond_multi ~rng:(Rng.derive seed [ 2 ]) () in
      let svc = Svc.create multi in
      (* Swap the two flows' arms — maximally conflicting requests. *)
      let submit fid =
        submit_ok svc ~fid ~target:(if fid = 0 then via2 0 else via1 0)
      in
      let first = submit (if swap_order then 1 else 0) in
      let second = submit (if swap_order then 0 else 1) in
      let outcomes = Svc.process ~jobs:2 svc in
      List.for_all committed outcomes
      && List.for_all
           (fun o ->
             if o.Svc.rid = first then
               o.Svc.batch = 1 && o.Svc.serialized_after = []
             else
               o.Svc.rid = second && o.Svc.batch = 2
               && o.Svc.serialized_after = [ first ])
           outcomes
      && Svc.routes svc
         = [ (0, via2 0); (1, via1 0) ])

let test_conflict_deny_policy () =
  let svc =
    Svc.create ~conflict_policy:Svc.Deny (shared_diamond_multi ())
  in
  let r0 = submit_ok svc ~fid:0 ~target:(via2 0) in
  let r1 = submit_ok svc ~fid:1 ~target:(via1 0) in
  match Svc.process ~jobs:1 svc with
  | [ o0; o1 ] ->
      Alcotest.(check bool) "winner committed" true (committed o0);
      Alcotest.(check int) "winner rid" r0 o0.Svc.rid;
      (match o1.Svc.verdict with
      | Svc.Denied (Svc.Conflict { with_rid; _ }) ->
          Alcotest.(check int) "denial names the winner" r0 with_rid
      | v -> Alcotest.failf "expected conflict denial, got %a" Svc.pp_verdict v);
      Alcotest.(check int) "loser rid" r1 o1.Svc.rid;
      Alcotest.(check (list (pair int (list int)))) "loser's route unchanged"
        [ (0, via2 0); (1, via2 0) ]
        (Svc.routes svc)
  | os -> Alcotest.failf "expected two outcomes, got %d" (List.length os)

(* ------------------------------------------------------------------ *)
(* Structured denials *)

let test_door_denials () =
  let svc = Svc.create ~queue_limit:1 (two_diamond_multi ()) in
  (match Svc.submit svc ~fid:9 ~target:(via2 0) with
  | Error (Svc.Unknown_flow 9) -> ()
  | _ -> Alcotest.fail "expected Unknown_flow");
  (match Svc.submit svc ~fid:0 ~target:(via2 10) with
  | Error (Svc.Invalid_path _) -> ()
  | _ -> Alcotest.fail "expected Invalid_path (wrong endpoints)");
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  match Svc.submit svc ~fid:1 ~target:(via2 10) with
  | Error (Svc.Queue_full { limit = 1 }) -> ()
  | _ -> Alcotest.fail "expected Queue_full"

let test_capacity_denial () =
  (* A steady neighbour saturates the lower arm: flow 0's request for it
     must be denied with the exact link and residual. *)
  let g = Graph.create () in
  diamond ~cap:1 g 0;
  let multi =
    Instance.create_multi ~graph:g [ steady 0 (via1 0); steady 1 [ 0; 2 ] ]
  in
  let svc = Svc.create multi in
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  match Svc.process ~jobs:1 svc with
  | [ { Svc.verdict = Svc.Denied (Svc.Capacity { u = 0; v = 2; need = 1; available = 0 }); _ } ]
    ->
      Alcotest.(check (list (pair int (list int)))) "route unchanged"
        [ (0, via1 0); (1, [ 0; 2 ]) ]
        (Svc.routes svc)
  | [ o ] -> Alcotest.failf "expected capacity denial, got %a" Svc.pp_outcome o
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

let test_unschedulable_denial () =
  (* Helpers.infeasible's topology: no consistent schedule moves the flow
     from [0;1;2;3] to [0;2;3], so the transaction aborts. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v, capacity, delay) -> Graph.add_edge ~capacity ~delay g u v)
    [ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 1, 3); (0, 2, 1, 1) ];
  let multi = Instance.create_multi ~graph:g [ steady 0 [ 0; 1; 2; 3 ] ] in
  let svc = Svc.create multi in
  ignore (submit_ok svc ~fid:0 ~target:[ 0; 2; 3 ]);
  match Svc.process ~jobs:1 svc with
  | [ { Svc.verdict = Svc.Denied (Svc.Unschedulable { remaining }); _ } ] ->
      Alcotest.(check bool) "names unplaced switches" true (remaining > 0)
  | [ o ] ->
      Alcotest.failf "expected unschedulable denial, got %a" Svc.pp_outcome o
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

(* ------------------------------------------------------------------ *)
(* The solver's foundation: validating one flow's schedule against the
   others' steady routes via [?background] on the full graph is the same
   judgement as validating on the residual-capacity graph. *)

let prop_background_residual_equivalence =
  QCheck.Test.make ~count:100
    ~name:"oracle ?background == residual-graph evaluation"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let rng = Rng.derive seed [ 3 ] in
      let spec =
        Chronus_topo.Scenario.spec ~capacity_choices:[ 2; 3 ] ~delay_lo:1
          ~delay_hi:3
          (Rng.in_range rng 4 8)
      in
      let inst = Chronus_topo.Scenario.mixed ~rng spec in
      (* A phantom steady flow on the final path: the heaviest plausible
         sharing pattern. *)
      let bg = Instance.background [ (1, inst.Instance.p_fin) ] in
      let residual = Instance.residual_graph inst.Instance.graph bg in
      match
        Instance.create ~graph:residual ~demand:inst.Instance.demand
          ~p_init:inst.Instance.p_init ~p_fin:inst.Instance.p_fin
      with
      | exception Instance.Ill_formed _ -> QCheck.assume_fail ()
      | rinst ->
          let sched =
            Schedule.of_list
              (List.map
                 (fun v -> (v, Rng.in_range rng 0 3))
                 (Instance.switches_to_update inst))
          in
          let full = Oracle.evaluate ~background:bg inst sched in
          let res = Oracle.evaluate rinst sched in
          full.Oracle.ok = res.Oracle.ok
          && full.Oracle.congested = res.Oracle.congested)

let prop_zero_background_identity =
  QCheck.Test.make ~count:100 ~name:"zero background is the identity"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let sched = Helpers.all_at_zero inst in
      Oracle.evaluate ~background:(fun _ _ -> 0) inst sched
      = Oracle.evaluate inst sched)

(* ------------------------------------------------------------------ *)
(* Golden multi-flow replay: two disjoint transactions and one
   serialized one, driven through the timed executor (Simulate mode).
   The digest pins every deterministic outcome field plus the final
   routes; wall_ns is projected away. Captured at jobs=1 and asserted
   at jobs=2 — the parity is the point. *)

let replay_config =
  {
    Chronus_exec.Exec_env.default with
    Chronus_exec.Exec_env.warmup = Chronus_sim.Sim_time.sec 1;
    drain = Chronus_sim.Sim_time.sec 2;
  }

let proj_outcome (o : Svc.outcome) =
  ( o.Svc.rid,
    o.Svc.fid,
    o.Svc.target,
    (match o.Svc.verdict with
    | Svc.Committed { schedule; makespan } ->
        Ok (Schedule.to_list schedule, makespan)
    | Svc.Denied d -> Error (Format.asprintf "%a" Svc.pp_denial d)),
    o.Svc.batch,
    o.Svc.serialized_after,
    o.Svc.execution )

let replay_run ~jobs =
  let g = Graph.create () in
  diamond g 0;
  diamond g 10;
  let multi =
    Instance.create_multi ~graph:g
      [ steady 0 (via1 0); steady 1 (via1 10); steady 2 (via2 0) ]
  in
  let svc =
    Svc.create ~exec:(Svc.Simulate { seed = 5; config = replay_config }) multi
  in
  ignore (submit_ok svc ~fid:0 ~target:(via2 0));
  ignore (submit_ok svc ~fid:1 ~target:(via2 10));
  ignore (submit_ok svc ~fid:2 ~target:(via1 0));
  let outcomes = Svc.process ~jobs svc in
  (List.map proj_outcome outcomes, Svc.routes svc)

let test_golden_replay () =
  let outcomes, routes = replay_run ~jobs:2 in
  List.iter
    (fun (_, _, _, verdict, _, _, execution) ->
      (match execution with
      | Some e ->
          Alcotest.(check bool) "simulated run clean" true e.Svc.exec_clean
      | None -> Alcotest.fail "expected an execution summary");
      match verdict with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "expected commit, got %s" d)
    outcomes;
  Alcotest.(check string) "replay digest (seed-identical)"
    "5ba917a0b57b81e705eccdec905d0c2d"
    (dig (outcomes, routes));
  Alcotest.(check string) "jobs parity" (dig (replay_run ~jobs:1)) (dig (outcomes, routes))

(* ------------------------------------------------------------------ *)
(* The service figure: deterministic columns independent of the job
   count, and the books balancing. *)

let deterministic (r : E.Fig_service.row) =
  ( r.E.Fig_service.offered_per_round,
    r.E.Fig_service.rounds,
    r.E.Fig_service.flows,
    r.E.Fig_service.submitted,
    r.E.Fig_service.committed,
    r.E.Fig_service.serialized,
    r.E.Fig_service.denied,
    r.E.Fig_service.batches,
    r.E.Fig_service.mean_makespan )

let test_fig_service_jobs_parity () =
  let run jobs = E.Fig_service.run ~jobs ~scale:E.Scale.tiny () in
  let rows = run 1 in
  List.iter
    (fun r ->
      Alcotest.(check int)
        "books balance: committed + denied = submitted"
        r.E.Fig_service.submitted
        (r.E.Fig_service.committed + r.E.Fig_service.denied))
    rows;
  Alcotest.(check string) "rows identical at jobs=1 and jobs=3"
    (dig (List.map deterministic rows))
    (dig (List.map deterministic (run 3)))

let suite =
  ( "service",
    [
      Alcotest.test_case "footprint conflict rules" `Quick
        test_footprint_conflicts;
      QCheck_alcotest.to_alcotest ~long:false prop_disjoint_commute;
      QCheck_alcotest.to_alcotest ~long:false prop_conflict_serializes;
      Alcotest.test_case "deny policy names the winner" `Quick
        test_conflict_deny_policy;
      Alcotest.test_case "door denials are structured" `Quick test_door_denials;
      Alcotest.test_case "capacity denial names the link" `Quick
        test_capacity_denial;
      Alcotest.test_case "unschedulable transaction aborts" `Quick
        test_unschedulable_denial;
      QCheck_alcotest.to_alcotest ~long:false
        prop_background_residual_equivalence;
      QCheck_alcotest.to_alcotest ~long:false prop_zero_background_identity;
      Alcotest.test_case "golden multi-flow replay (seed-identical)" `Quick
        test_golden_replay;
      Alcotest.test_case "fig-service rows independent of job count" `Slow
        test_fig_service_jobs_parity;
    ] )
