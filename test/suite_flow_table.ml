(* Differential suite: the indexed Flow_table against the legacy list
   implementation it replaced. Random operation sequences — installs,
   modifies, removes, snapshots, crash-restarts — must leave both
   structures in states that agree exactly: same sizes, same counts
   returned, same (priority, id) tie-breaks on every lookup, same
   [rules] listing. *)

open Chronus_sim
module FT = Flow_table
module L = Flow_table.Legacy

let n_dsts = 5
let tags = [ FT.Any_tag; FT.Tag 1; FT.Tag 2 ]
let queries = [ None; Some 1; Some 2; Some 3 ]

let rule_pp (r : FT.rule) =
  Printf.sprintf "{id=%d; prio=%d; dst=%d}" r.FT.id r.FT.priority r.FT.dst

let agree t l =
  if FT.size t <> L.size l then failwith "size mismatch";
  let rt = FT.rules t and rl = L.rules l in
  if rt <> rl then
    failwith
      (Printf.sprintf "rules mismatch: [%s] vs [%s]"
         (String.concat ";" (List.map rule_pp rt))
         (String.concat ";" (List.map rule_pp rl)));
  for dst = 0 to n_dsts - 1 do
    List.iter
      (fun tag ->
        let a = FT.lookup t ~dst ~tag and b = L.lookup l ~dst ~tag in
        if a <> b then
          failwith
            (Printf.sprintf "lookup dst=%d tag=%s: %s vs %s" dst
               (match tag with None -> "-" | Some v -> string_of_int v)
               (match a with None -> "none" | Some r -> rule_pp r)
               (match b with None -> "none" | Some r -> rule_pp r)))
      queries
  done

let random_action rng =
  {
    FT.set_tag =
      (if Chronus_topo.Rng.bool rng then
         Some (Chronus_topo.Rng.int rng 3)
       else None);
    FT.forward =
      (match Chronus_topo.Rng.int rng 3 with
      | 0 -> FT.Out (Chronus_topo.Rng.int rng n_dsts)
      | 1 -> FT.To_host
      | _ -> FT.Drop);
  }

(* One differential run from a seed: both tables see the identical
   operation sequence; any state divergence raises. *)
let run_ops seed =
  let rng = Chronus_topo.Rng.derive seed [ 81 ] in
  let t = FT.create () and l = L.create () in
  let snaps = ref [] in
  for _ = 1 to 120 do
    let dst = Chronus_topo.Rng.int rng n_dsts in
    let tag_match = Chronus_topo.Rng.pick rng tags in
    (match Chronus_topo.Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
        let priority = Chronus_topo.Rng.int rng 3 in
        let action = random_action rng in
        let a = FT.install t ~priority ~dst ~tag_match action in
        let b = L.install l ~priority ~dst ~tag_match action in
        if a <> b then failwith "install returned different rules"
    | 4 ->
        let action = random_action rng in
        let a = FT.modify_actions t ~dst ~tag_match action in
        let b = L.modify_actions l ~dst ~tag_match action in
        if a <> b then failwith "modify_actions count mismatch"
    | 5 ->
        let a = FT.remove t ~dst ~tag_match in
        let b = L.remove l ~dst ~tag_match in
        if a <> b then failwith "remove count mismatch"
    | 6 -> snaps := (FT.snapshot t, L.snapshot l) :: !snaps
    | _ -> (
        (* Crash-restart: both revert to the same persisted state; ids
           installed afterwards must stay younger on both sides. *)
        match !snaps with
        | [] -> ()
        | (st, sl) :: _ ->
            FT.restore t st;
            L.restore l sl));
    agree t l
  done;
  true

let differential =
  QCheck.Test.make ~count:80 ~name:"indexed table = legacy list on random ops"
    QCheck.small_nat run_ops

(* The satellite fix: remove must report the number of removed rules
   (single pass), on both implementations. *)
let test_remove_count () =
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let t = FT.create () and l = L.create () in
  List.iter
    (fun i ->
      ignore (FT.install t ~priority:i ~dst:7 ~tag_match:FT.Any_tag act);
      ignore (L.install l ~priority:i ~dst:7 ~tag_match:FT.Any_tag act))
    [ 0; 1; 2 ];
  ignore (FT.install t ~priority:0 ~dst:7 ~tag_match:(FT.Tag 1) act);
  ignore (L.install l ~priority:0 ~dst:7 ~tag_match:(FT.Tag 1) act);
  Alcotest.(check int) "indexed removes 3" 3 (FT.remove t ~dst:7 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "legacy removes 3" 3 (L.remove l ~dst:7 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "indexed keeps the tagged rule" 1 (FT.size t);
  Alcotest.(check int) "legacy keeps the tagged rule" 1 (L.size l);
  Alcotest.(check int) "removing nothing reports 0" 0
    (FT.remove t ~dst:9 ~tag_match:FT.Any_tag)

(* Snapshots share buckets with the live table: mutating after a
   snapshot must not leak into it. *)
let test_snapshot_isolated () =
  let act v = { FT.set_tag = None; forward = FT.Out v } in
  let t = FT.create () in
  ignore (FT.install t ~priority:1 ~dst:0 ~tag_match:FT.Any_tag (act 1));
  let snap = FT.snapshot t in
  ignore (FT.install t ~priority:2 ~dst:0 ~tag_match:FT.Any_tag (act 2));
  ignore (FT.modify_actions t ~dst:0 ~tag_match:FT.Any_tag (act 3));
  Alcotest.(check int) "live table has 2 rules" 2 (FT.size t);
  FT.restore t snap;
  Alcotest.(check int) "restore rewinds to 1 rule" 1 (FT.size t);
  (match FT.lookup t ~dst:0 ~tag:None with
  | Some r -> Alcotest.(check bool) "restored action" true (r.FT.action = act 1)
  | None -> Alcotest.fail "rule lost");
  (* next_id is not rewound: post-restore installs lose priority ties. *)
  let fresh = FT.install t ~priority:1 ~dst:0 ~tag_match:FT.Any_tag (act 9) in
  Alcotest.(check bool) "post-restore id younger" true (fresh.FT.id >= 2);
  match FT.lookup t ~dst:0 ~tag:None with
  | Some r -> Alcotest.(check int) "older rule still wins the tie" 0 r.FT.id
  | None -> Alcotest.fail "rule lost"

let test_size_observer () =
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let t = FT.create () in
  let total = ref 0 in
  FT.on_size_change t (fun d -> total := !total + d);
  ignore (FT.install t ~priority:0 ~dst:1 ~tag_match:FT.Any_tag act);
  ignore (FT.install t ~priority:0 ~dst:1 ~tag_match:FT.Any_tag act);
  let snap = FT.snapshot t in
  ignore (FT.install t ~priority:0 ~dst:2 ~tag_match:FT.Any_tag act);
  Alcotest.(check int) "observer tracked installs" 3 !total;
  ignore (FT.remove t ~dst:1 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "observer tracked removal" 1 !total;
  FT.restore t snap;
  Alcotest.(check int) "observer tracked restore delta" 2 !total;
  Alcotest.(check int) "observer agrees with size" (FT.size t) !total

let suite =
  ( "flow-table",
    [
      QCheck_alcotest.to_alcotest differential;
      Alcotest.test_case "remove counts in one pass" `Quick test_remove_count;
      Alcotest.test_case "snapshot isolation + monotone ids" `Quick
        test_snapshot_isolated;
      Alcotest.test_case "size observer" `Quick test_size_observer;
    ] )
