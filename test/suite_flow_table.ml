(* Differential suite: the prefix-capable Flow_table against the
   dst-indexed exact table and the legacy list implementation behind the
   same seam. Random operation sequences — installs, modifies, removes,
   snapshots, crash-restarts — must leave all three structures in states
   that agree exactly: same sizes, same counts returned, same
   (priority, id) tie-breaks on every lookup, same [rules] listing. A
   second differential pits the longest-prefix trie against a naive
   scan-all-rules model. *)

open Chronus_sim
module FT = Flow_table
module X = Flow_table.Exact
module L = Flow_table.Legacy

let n_dsts = 5
let tags = [ FT.Any_tag; FT.Tag 1; FT.Tag 2 ]
let queries = [ None; Some 1; Some 2; Some 3 ]

let rule_pp (r : FT.rule) =
  Printf.sprintf "{id=%d; prio=%d; dst=%d}" r.FT.id r.FT.priority r.FT.dst

let agree t x l =
  if FT.size t <> L.size l || X.size x <> L.size l then
    failwith "size mismatch";
  let rt = FT.rules t and rx = X.rules x and rl = L.rules l in
  if rt <> rl || rx <> rl then
    failwith
      (Printf.sprintf "rules mismatch: [%s] vs [%s] vs [%s]"
         (String.concat ";" (List.map rule_pp rt))
         (String.concat ";" (List.map rule_pp rx))
         (String.concat ";" (List.map rule_pp rl)));
  for dst = 0 to n_dsts - 1 do
    List.iter
      (fun tag ->
        let a = FT.lookup t ~dst ~tag
        and b = L.lookup l ~dst ~tag
        and c = X.lookup x ~dst ~tag in
        if a <> b || c <> b then
          failwith
            (Printf.sprintf "lookup dst=%d tag=%s: %s vs %s vs %s" dst
               (match tag with None -> "-" | Some v -> string_of_int v)
               (match a with None -> "none" | Some r -> rule_pp r)
               (match c with None -> "none" | Some r -> rule_pp r)
               (match b with None -> "none" | Some r -> rule_pp r)))
      queries
  done

let random_action rng =
  {
    FT.set_tag =
      (if Chronus_topo.Rng.bool rng then
         Some (Chronus_topo.Rng.int rng 3)
       else None);
    FT.forward =
      (match Chronus_topo.Rng.int rng 3 with
      | 0 -> FT.Out (Chronus_topo.Rng.int rng n_dsts)
      | 1 -> FT.To_host
      | _ -> FT.Drop);
  }

(* One differential run from a seed: all three tables see the identical
   operation sequence; any state divergence raises. *)
let run_ops seed =
  let rng = Chronus_topo.Rng.derive seed [ 81 ] in
  let t = FT.create () and x = X.create () and l = L.create () in
  let snaps = ref [] in
  for _ = 1 to 120 do
    let dst = Chronus_topo.Rng.int rng n_dsts in
    let tag_match = Chronus_topo.Rng.pick rng tags in
    (match Chronus_topo.Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
        let priority = Chronus_topo.Rng.int rng 3 in
        let action = random_action rng in
        let a = FT.install t ~priority ~dst ~tag_match action in
        let c = X.install x ~priority ~dst ~tag_match action in
        let b = L.install l ~priority ~dst ~tag_match action in
        if a <> b || c <> b then failwith "install returned different rules"
    | 4 ->
        let action = random_action rng in
        let a = FT.modify_actions t ~dst ~tag_match action in
        let c = X.modify_actions x ~dst ~tag_match action in
        let b = L.modify_actions l ~dst ~tag_match action in
        if a <> b || c <> b then failwith "modify_actions count mismatch"
    | 5 ->
        let a = FT.remove t ~dst ~tag_match in
        let c = X.remove x ~dst ~tag_match in
        let b = L.remove l ~dst ~tag_match in
        if a <> b || c <> b then failwith "remove count mismatch"
    | 6 -> snaps := (FT.snapshot t, X.snapshot x, L.snapshot l) :: !snaps
    | _ -> (
        (* Crash-restart: all revert to the same persisted state; ids
           installed afterwards must stay younger on every side. *)
        match !snaps with
        | [] -> ()
        | (st, sx, sl) :: _ ->
            FT.restore t st;
            X.restore x sx;
            L.restore l sl));
    agree t x l
  done;
  true

let differential =
  QCheck.Test.make ~count:80
    ~name:"prefix table = exact table = legacy list on random exact ops"
    QCheck.small_nat run_ops

(* ------------------------------------------------------------------ *)
(* The longest-prefix trie against a naive model: a flat rule list where
   lookup scans everything and picks the (len desc, priority desc, id
   asc) maximum over covering, tag-satisfied rules — the semantics the
   .mli promises. Exercises exact rules shadowing aggregated prefixes,
   removal, and crash-restart. *)

let covers ~prefix ~len dst =
  len = 0 || dst lsr (FT.addr_bits - len) = prefix lsr (FT.addr_bits - len)

let model_tag_ok tm tag =
  match (tm, tag) with
  | FT.Any_tag, _ -> true
  | FT.Tag v, Some v' -> v = v'
  | FT.Tag _, None -> false

let model_lookup rules ~dst ~tag =
  List.fold_left
    (fun best (r : FT.rule) ->
      if not (covers ~prefix:r.FT.dst ~len:r.FT.len dst && model_tag_ok r.FT.tag_match tag)
      then best
      else
        match best with
        | None -> Some r
        | Some (b : FT.rule) ->
            if
              r.FT.len > b.FT.len
              || (r.FT.len = b.FT.len
                 && (r.FT.priority > b.FT.priority
                    || (r.FT.priority = b.FT.priority && r.FT.id < b.FT.id)))
            then Some r
            else best)
    None rules

let run_prefix_ops seed =
  let module Rng = Chronus_topo.Rng in
  let rng = Rng.derive seed [ 82 ] in
  let space = 1 lsl FT.addr_bits in
  let t = FT.create () in
  let model = ref [] in
  let snaps = ref [] in
  (* Drawing dsts near installed prefixes makes collisions/shadows
     likely; a few fully random dsts cover the empty-miss path. *)
  let probes t =
    for _ = 1 to 16 do
      let dst = Rng.int rng space in
      let tag = Rng.pick rng [ None; Some 1; Some 2 ] in
      let a = FT.lookup t ~dst ~tag and b = model_lookup !model ~dst ~tag in
      if a <> b then
        failwith
          (Printf.sprintf "prefix lookup dst=0x%x: %s vs model %s" dst
             (match a with None -> "none" | Some r -> rule_pp r)
             (match b with None -> "none" | Some r -> rule_pp r))
    done
  in
  for _ = 1 to 80 do
    let tag_match = Rng.pick rng tags in
    (match Rng.int rng 8 with
    | 0 | 1 | 2 ->
        let len = Rng.int rng (FT.addr_bits + 1) in
        let prefix = Rng.int rng space in
        let priority = Rng.int rng 3 in
        let r =
          FT.install_prefix t ~priority ~prefix ~len ~tag_match
            (random_action rng)
        in
        model := r :: !model
    | 3 | 4 ->
        (* Exact rules shadow any aggregated rule covering the same
           destination, whatever the priorities. *)
        let dst = Rng.int rng space in
        let priority = Rng.int rng 3 in
        let r = FT.install t ~priority ~dst ~tag_match (random_action rng) in
        model := r :: !model
    | 5 -> (
        match !model with
        | [] -> ()
        | rules ->
            let (victim : FT.rule) = Rng.pick rng rules in
            let n =
              FT.remove_prefix t ~prefix:victim.FT.dst ~len:victim.FT.len
                ~tag_match:victim.FT.tag_match
            in
            let keep, dropped =
              List.partition
                (fun (r : FT.rule) ->
                  not
                    (r.FT.dst = victim.FT.dst && r.FT.len = victim.FT.len
                   && r.FT.tag_match = victim.FT.tag_match))
                rules
            in
            if n <> List.length dropped then
              failwith "remove_prefix count mismatch";
            model := keep)
    | 6 -> snaps := (FT.snapshot t, !model) :: !snaps
    | _ -> (
        match !snaps with
        | [] -> ()
        | (st, sm) :: _ ->
            FT.restore t st;
            model := sm));
    if FT.size t <> List.length !model then failwith "prefix size mismatch";
    probes t
  done;
  true

let prefix_differential =
  QCheck.Test.make ~count:80
    ~name:"longest-prefix trie = naive scan model on random prefix ops"
    QCheck.small_nat run_prefix_ops

(* The satellite fix: remove must report the number of removed rules
   (single pass), on both implementations. *)
let test_remove_count () =
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let t = FT.create () and l = L.create () in
  List.iter
    (fun i ->
      ignore (FT.install t ~priority:i ~dst:7 ~tag_match:FT.Any_tag act);
      ignore (L.install l ~priority:i ~dst:7 ~tag_match:FT.Any_tag act))
    [ 0; 1; 2 ];
  ignore (FT.install t ~priority:0 ~dst:7 ~tag_match:(FT.Tag 1) act);
  ignore (L.install l ~priority:0 ~dst:7 ~tag_match:(FT.Tag 1) act);
  Alcotest.(check int) "indexed removes 3" 3 (FT.remove t ~dst:7 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "legacy removes 3" 3 (L.remove l ~dst:7 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "indexed keeps the tagged rule" 1 (FT.size t);
  Alcotest.(check int) "legacy keeps the tagged rule" 1 (L.size l);
  Alcotest.(check int) "removing nothing reports 0" 0
    (FT.remove t ~dst:9 ~tag_match:FT.Any_tag)

(* Snapshots share buckets with the live table: mutating after a
   snapshot must not leak into it. *)
let test_snapshot_isolated () =
  let act v = { FT.set_tag = None; forward = FT.Out v } in
  let t = FT.create () in
  ignore (FT.install t ~priority:1 ~dst:0 ~tag_match:FT.Any_tag (act 1));
  let snap = FT.snapshot t in
  ignore (FT.install t ~priority:2 ~dst:0 ~tag_match:FT.Any_tag (act 2));
  ignore (FT.modify_actions t ~dst:0 ~tag_match:FT.Any_tag (act 3));
  Alcotest.(check int) "live table has 2 rules" 2 (FT.size t);
  FT.restore t snap;
  Alcotest.(check int) "restore rewinds to 1 rule" 1 (FT.size t);
  (match FT.lookup t ~dst:0 ~tag:None with
  | Some r -> Alcotest.(check bool) "restored action" true (r.FT.action = act 1)
  | None -> Alcotest.fail "rule lost");
  (* next_id is not rewound: post-restore installs lose priority ties. *)
  let fresh = FT.install t ~priority:1 ~dst:0 ~tag_match:FT.Any_tag (act 9) in
  Alcotest.(check bool) "post-restore id younger" true (fresh.FT.id >= 2);
  match FT.lookup t ~dst:0 ~tag:None with
  | Some r -> Alcotest.(check int) "older rule still wins the tie" 0 r.FT.id
  | None -> Alcotest.fail "rule lost"

let test_size_observer () =
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let t = FT.create () in
  let total = ref 0 in
  FT.on_size_change t (fun d -> total := !total + d);
  ignore (FT.install t ~priority:0 ~dst:1 ~tag_match:FT.Any_tag act);
  ignore (FT.install t ~priority:0 ~dst:1 ~tag_match:FT.Any_tag act);
  let snap = FT.snapshot t in
  ignore (FT.install t ~priority:0 ~dst:2 ~tag_match:FT.Any_tag act);
  Alcotest.(check int) "observer tracked installs" 3 !total;
  ignore (FT.remove t ~dst:1 ~tag_match:FT.Any_tag);
  Alcotest.(check int) "observer tracked removal" 1 !total;
  FT.restore t snap;
  Alcotest.(check int) "observer tracked restore delta" 2 !total;
  Alcotest.(check int) "observer agrees with size" (FT.size t) !total

(* Restore fires the observer exactly once, with the signed net change —
   not once per rule, and not at all when sizes already agree. Mixed
   exact and prefix rules on both sides of the snapshot. *)
let test_restore_single_delta () =
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let t = FT.create () in
  ignore (FT.install t ~priority:0 ~dst:1 ~tag_match:FT.Any_tag act);
  ignore
    (FT.install_prefix t ~priority:0 ~prefix:0x8000 ~len:4
       ~tag_match:FT.Any_tag act);
  let snap = FT.snapshot t in
  let calls = ref [] in
  FT.on_size_change t (fun d -> calls := d :: !calls);
  ignore (FT.install t ~priority:0 ~dst:2 ~tag_match:FT.Any_tag act);
  ignore (FT.install t ~priority:0 ~dst:3 ~tag_match:FT.Any_tag act);
  ignore
    (FT.install_prefix t ~priority:0 ~prefix:0x4000 ~len:2
       ~tag_match:FT.Any_tag act);
  calls := [];
  FT.restore t snap;
  Alcotest.(check (list int)) "one signed delta = net change" [ -3 ] !calls;
  calls := [];
  FT.restore t snap;
  Alcotest.(check (list int)) "no-op restore stays silent" [] !calls;
  ignore (FT.remove t ~dst:1 ~tag_match:FT.Any_tag);
  ignore (FT.remove_prefix t ~prefix:0x8000 ~len:4 ~tag_match:FT.Any_tag);
  calls := [];
  FT.restore t snap;
  Alcotest.(check (list int)) "growing restore emits one positive delta"
    [ 2 ] !calls

(* Crash-restart on a prefix table: a rebooting switch must come back
   with its compiled base and answer LPM lookups exactly as before. *)
let test_prefix_crash_restart () =
  let act v = { FT.set_tag = None; forward = FT.Out v } in
  let t = FT.create () in
  ignore
    (FT.install_prefix t ~priority:5 ~prefix:0x8000 ~len:1 ~tag_match:FT.Any_tag
       (act 1));
  ignore
    (FT.install_prefix t ~priority:5 ~prefix:0xc000 ~len:4 ~tag_match:FT.Any_tag
       (act 2));
  let persisted = FT.snapshot t in
  (* An in-flight update layers exact rules over the base, then the
     switch crashes. *)
  ignore (FT.install t ~priority:10 ~dst:0xc001 ~tag_match:FT.Any_tag (act 7));
  ignore (FT.remove_prefix t ~prefix:0x8000 ~len:1 ~tag_match:FT.Any_tag);
  (match FT.lookup t ~dst:0xc001 ~tag:None with
  | Some r -> Alcotest.(check bool) "update rule shadows base" true (r.FT.action = act 7)
  | None -> Alcotest.fail "lookup lost");
  FT.restore t persisted;
  Alcotest.(check int) "rebooted with the compiled base" 2 (FT.size t);
  Alcotest.(check int) "both rules are prefixes" 2 (FT.prefix_size t);
  (match FT.lookup t ~dst:0xc001 ~tag:None with
  | Some r ->
      Alcotest.(check bool) "longest prefix wins again" true (r.FT.action = act 2)
  | None -> Alcotest.fail "base rule lost");
  match FT.lookup t ~dst:0x8123 ~tag:None with
  | Some r ->
      Alcotest.(check bool) "short prefix covers the rest" true
        (r.FT.action = act 1)
  | None -> Alcotest.fail "base rule lost"

let suite =
  ( "flow-table",
    [
      QCheck_alcotest.to_alcotest differential;
      QCheck_alcotest.to_alcotest prefix_differential;
      Alcotest.test_case "remove counts in one pass" `Quick test_remove_count;
      Alcotest.test_case "snapshot isolation + monotone ids" `Quick
        test_snapshot_isolated;
      Alcotest.test_case "size observer" `Quick test_size_observer;
      Alcotest.test_case "restore emits one signed delta" `Quick
        test_restore_single_delta;
      Alcotest.test_case "crash-restart on a prefix table" `Quick
        test_prefix_crash_restart;
    ] )
