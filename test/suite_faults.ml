(* The fault-injection subsystem: config presets, the deterministic
   engine, the [Exec_env.dispatch] injection point, the hardened timed
   executor's retry/fallback machinery, and the robustness experiment.

   The two contracts everything else leans on:
   - zero-magnitude configs are provable no-ops (bit-identical results
     to not passing a fault config at all), and
   - a (seed, fault config) pair replays bit-identically, which the
     golden grid pins for all three executors. *)

open Chronus_sim
open Chronus_exec
module Faults = Chronus_faults.Faults

(* Same fast config as suite_exec. *)
let config =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    delay_unit = Sim_time.msec 20;
  }

(* ------------------------------------------------------------------ *)
(* Configs and presets.                                                *)

let test_presets () =
  Alcotest.(check bool) "none is zero" true (Faults.is_zero (Faults.of_preset "none"));
  Alcotest.(check bool) "drift not zero" false (Faults.is_zero Faults.drift);
  Alcotest.(check bool) "lossy not zero" false (Faults.is_zero Faults.lossy);
  Alcotest.(check bool) "chaos not zero" false (Faults.is_zero Faults.chaos);
  List.iter
    (fun name -> ignore (Faults.of_preset name))
    Faults.preset_names;
  Alcotest.check_raises "unknown preset"
    (Invalid_argument "Faults.of_preset: unknown preset \"mayhem\"")
    (fun () -> ignore (Faults.of_preset "mayhem"))

let test_with_clock_error () =
  let c = Faults.with_clock_error (Sim_time.msec 30) Faults.zero in
  Alcotest.(check int) "offset set" (Sim_time.msec 30) c.Faults.clock.Faults.offset_us;
  Alcotest.(check int) "jitter set" (Sim_time.msec 30) c.Faults.clock.Faults.jitter_us;
  Alcotest.(check int) "drift untouched" 0 c.Faults.clock.Faults.drift_ppm;
  Alcotest.(check bool) "back to zero" true
    (Faults.is_zero (Faults.with_clock_error 0 c))

(* ------------------------------------------------------------------ *)
(* The engine.                                                         *)

let test_engine_zero_is_silent () =
  let e = Faults.Engine.create ~seed:3 Faults.zero in
  for switch = 0 to 9 do
    Alcotest.(check int) "no clock error" 0
      (Faults.Engine.clock_error e ~switch ~at:(Sim_time.sec switch));
    Alcotest.(check bool) "no fault" true
      (Faults.Engine.command_fate e ~switch = Faults.no_fault)
  done

let test_engine_determinism () =
  let draw () =
    let e = Faults.Engine.create ~seed:7 ~lane:[ 1 ] Faults.chaos in
    List.init 20 (fun i ->
        ( Faults.Engine.command_fate e ~switch:(i mod 5),
          Faults.Engine.clock_error e ~switch:(i mod 5)
            ~at:(Sim_time.msec (100 * i)) ))
  in
  Alcotest.(check bool) "same coordinates, same draws" true (draw () = draw ())

let test_engine_offsets_bounded () =
  let cfg = Faults.with_clock_error (Sim_time.msec 40) Faults.zero in
  let e = Faults.Engine.create ~seed:5 cfg in
  for switch = 0 to 19 do
    let err = Faults.Engine.clock_error e ~switch ~at:0 in
    Alcotest.(check bool) "offset+jitter within bounds" true
      (abs err <= Sim_time.msec 80)
  done

(* ------------------------------------------------------------------ *)
(* The dispatch injection point.                                       *)

let extra_rule_mod dst =
  Controller.Install
    {
      priority = 30;
      dst;
      tag_match = Flow_table.Any_tag;
      action = { Flow_table.set_tag = None; forward = Flow_table.Drop };
    }

let with_env faults f =
  let inst = Helpers.fig1 () in
  let env = Exec_env.build ~config ~seed:2 ~faults ~tag_initial:None inst in
  f inst env

let run_briefly env =
  Chronus_sim.Engine.run ~until:(Sim_time.sec 1)
    (Network.engine env.Exec_env.net)

let test_dispatch_loss () =
  with_env { Faults.zero with Faults.channel = { Faults.zero.Faults.channel with Faults.loss_p = 1.0 } }
  @@ fun inst env ->
  let src = Chronus_flow.Instance.source inst in
  let table = Network.table env.Exec_env.net src in
  let before = Flow_table.size table in
  Exec_env.dispatch env ~switch:src
    (extra_rule_mod (Chronus_flow.Instance.destination inst));
  run_briefly env;
  Alcotest.(check int) "lost command never applies" before
    (Flow_table.size table);
  Alcotest.(check int) "still counted as sent" 1
    (Controller.commands_sent env.Exec_env.controller)

let test_dispatch_reject () =
  with_env
    { Faults.zero with Faults.switches = { Faults.zero.Faults.switches with Faults.reject_p = 1.0 } }
  @@ fun inst env ->
  let src = Chronus_flow.Instance.source inst in
  let table = Network.table env.Exec_env.net src in
  let before = Flow_table.size table in
  let acked = ref false in
  Exec_env.dispatch env ~switch:src
    ~on_ack:(fun _ -> acked := true)
    (extra_rule_mod (Chronus_flow.Instance.destination inst));
  run_briefly env;
  Alcotest.(check int) "rejected command never applies" before
    (Flow_table.size table);
  Alcotest.(check bool) "rejected command never acks" false !acked

let test_dispatch_crash_restores_snapshot () =
  with_env
    { Faults.zero with Faults.switches = { Faults.zero.Faults.switches with Faults.crash_p = 1.0 } }
  @@ fun inst env ->
  let src = Chronus_flow.Instance.source inst in
  let dst = Chronus_flow.Instance.destination inst in
  let table = Network.table env.Exec_env.net src in
  let snapshot_size = Flow_table.size table in
  (* Mutate the running table behind the controller's back, then crash
     the switch: it must come back with the installed configuration. *)
  ignore
    (Flow_table.install table ~priority:40 ~dst ~tag_match:Flow_table.Any_tag
       { Flow_table.set_tag = None; forward = Flow_table.Drop });
  Alcotest.(check int) "mutation visible" (snapshot_size + 1)
    (Flow_table.size table);
  Exec_env.dispatch env ~switch:src (extra_rule_mod dst);
  run_briefly env;
  Alcotest.(check int) "crash-restart reverts to the snapshot"
    snapshot_size (Flow_table.size table)

let test_dispatch_ack () =
  with_env Faults.zero @@ fun inst env ->
  let src = Chronus_flow.Instance.source inst in
  let table = Network.table env.Exec_env.net src in
  let before = Flow_table.size table in
  let acked = ref None in
  Exec_env.dispatch env ~switch:src
    ~on_ack:(fun at -> acked := Some at)
    (extra_rule_mod (Chronus_flow.Instance.destination inst));
  run_briefly env;
  Alcotest.(check int) "command applied" (before + 1) (Flow_table.size table);
  match !acked with
  | None -> Alcotest.fail "ack never arrived"
  | Some at -> Alcotest.(check bool) "ack takes two legs" true (at > 0)

(* ------------------------------------------------------------------ *)
(* Zero-fault identity: engine present with all magnitudes zero ===    *)
(* engine absent, for every executor, on random scenarios.             *)

let prop_zero_identity =
  QCheck.Test.make ~count:8 ~name:"zero faults are a provable no-op"
    (Helpers.arbitrary_instance ~min_n:4 ~max_n:7 ())
    (fun seed ->
      let inst = Helpers.instance_of_seed ~min_n:4 ~max_n:7 seed in
      let c0 = Timed_exec.run ~config ~seed inst in
      let c1 = Timed_exec.run ~config ~seed ~faults:Faults.zero inst in
      let o0 = Order_exec.run ~config ~seed inst in
      let o1 = Order_exec.run ~config ~seed ~faults:Faults.zero inst in
      let t0 = Two_phase_exec.run ~config ~seed inst in
      let t1 = Two_phase_exec.run ~config ~seed ~faults:Faults.zero inst in
      c0.Timed_exec.result = c1.Timed_exec.result
      && c0.Timed_exec.path = c1.Timed_exec.path
      && c0.Timed_exec.retries = c1.Timed_exec.retries
      && o0.Order_exec.result = o1.Order_exec.result
      && t0.Two_phase_exec.result = t1.Two_phase_exec.result)

(* ------------------------------------------------------------------ *)
(* Golden deterministic replay: the (seed, preset) grid on the worked  *)
(* example, pinned for all three executors. Values captured once and   *)
(* reproducible by construction; a change here means fault draws or    *)
(* executor semantics changed.                                         *)

let violation_total (r : Exec_env.result) =
  r.Exec_env.violations.Monitor.transient_loops
  + r.Exec_env.violations.Monitor.blackholes
  + r.Exec_env.violations.Monitor.overload_samples

let test_golden_grid () =
  let inst = Helpers.fig1 () in
  (* (preset, seed) -> expected
     (chronus violations, retries, fallback?, OR violations, OR commands,
      TP violations, TP commands) *)
  let grid =
    [
      (("none", 11), (0, 0, false, 0, 5, 0, 10));
      (("none", 12), (0, 0, false, 0, 5, 0, 10));
      (("drift", 11), (0, 0, false, 0, 5, 0, 10));
      (("drift", 12), (0, 0, false, 0, 5, 0, 10));
      (("lossy", 11), (0, 0, false, 0, 5, 0, 10));
      (("lossy", 12), (0, 1, false, 0, 5, 0, 10));
      (("chaos", 11), (0, 1, false, 1, 5, 784, 10));
      (("chaos", 12), (0, 3, false, 0, 5, 761, 10));
    ]
  in
  List.iter
    (fun ((preset, seed), (cv, cr, cf, ov, oc, tv, tc)) ->
      let faults = Faults.of_preset preset in
      let where what = Printf.sprintf "%s/%d %s" preset seed what in
      let c = Timed_exec.run ~config ~seed ~faults inst in
      Alcotest.(check int) (where "chronus violations") cv
        (violation_total c.Timed_exec.result);
      Alcotest.(check int) (where "chronus retries") cr c.Timed_exec.retries;
      Alcotest.(check bool) (where "chronus fallback") cf
        (c.Timed_exec.path = Timed_exec.Two_phase_fallback);
      let o = Order_exec.run ~config ~seed ~faults inst in
      Alcotest.(check int) (where "or violations") ov
        (violation_total o.Order_exec.result);
      Alcotest.(check int) (where "or commands") oc
        o.Order_exec.result.Exec_env.commands;
      let tp = Two_phase_exec.run ~config ~seed ~faults inst in
      Alcotest.(check int) (where "tp violations") tv
        (violation_total tp.Two_phase_exec.result);
      Alcotest.(check int) (where "tp commands") tc
        tp.Two_phase_exec.result.Exec_env.commands)
    grid

(* ------------------------------------------------------------------ *)
(* Hardened executor: retries and the two-phase fallback.              *)

let test_total_loss_falls_back () =
  let inst = Helpers.fig1 () in
  let faults =
    { Faults.zero with Faults.channel = { Faults.zero.Faults.channel with Faults.loss_p = 1.0 } }
  in
  let run = Timed_exec.run ~config ~seed:4 ~faults inst in
  Alcotest.(check bool) "fallback path ran" true
    (run.Timed_exec.path = Timed_exec.Two_phase_fallback);
  Alcotest.(check bool) "retries were attempted" true
    (run.Timed_exec.retries > 0);
  Alcotest.(check int) "nothing ever acked" 5 run.Timed_exec.unacked

let test_retry_recovers_without_fallback () =
  (* The chaos grid rows above all complete on the timed path with
     retries > 0 somewhere; this pins the recovery explicitly. *)
  let inst = Helpers.fig1 () in
  let run = Timed_exec.run ~config ~seed:12 ~faults:Faults.chaos inst in
  Alcotest.(check bool) "timed path despite faults" true
    (run.Timed_exec.path = Timed_exec.Timed);
  Alcotest.(check bool) "recovered via retries" true
    (run.Timed_exec.retries > 0);
  Alcotest.(check int) "every switch acked" 0 run.Timed_exec.unacked

(* ------------------------------------------------------------------ *)
(* The robustness experiment.                                          *)

let robust_scale =
  { Chronus_experiments.Scale.tiny with Chronus_experiments.Scale.instances = 20 }

let test_fig_robust () =
  let rows =
    Chronus_experiments.Fig_robust.run ~scale:robust_scale
      ~errors_ms:[ 0; 50 ] ()
  in
  Alcotest.(check int) "one row per magnitude" 2 (List.length rows);
  let at e =
    List.find
      (fun r -> r.Chronus_experiments.Fig_robust.clock_error_ms = e)
      rows
  in
  let r0 = at 0 and r50 = at 50 in
  Alcotest.(check (float 0.0)) "no violations without clock error" 0.
    r0.Chronus_experiments.Fig_robust.chronus_violation_pct;
  Alcotest.(check (float 0.0)) "no fallbacks without clock error" 0.
    r0.Chronus_experiments.Fig_robust.chronus_fallback_pct;
  (* One delay unit of error: the timed premise is broken and it shows. *)
  Alcotest.(check bool) "error of one delay unit breaks consistency" true
    (r50.Chronus_experiments.Fig_robust.chronus_violation_pct
     +. r50.Chronus_experiments.Fig_robust.chronus_fallback_pct
    > 0.)

let test_fig_robust_rows_identical_across_jobs () =
  let run jobs =
    Chronus_experiments.Fig_robust.run ~jobs ~scale:robust_scale
      ~errors_ms:[ 0; 50 ] ()
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 rows bit-identical" true
    (run 1 = run 4)

let suite =
  ( "faults",
    [
      Alcotest.test_case "presets" `Quick test_presets;
      Alcotest.test_case "with_clock_error" `Quick test_with_clock_error;
      Alcotest.test_case "zero engine is silent" `Quick
        test_engine_zero_is_silent;
      Alcotest.test_case "engine replays deterministically" `Quick
        test_engine_determinism;
      Alcotest.test_case "clock offsets bounded" `Quick
        test_engine_offsets_bounded;
      Alcotest.test_case "dispatch: loss" `Quick test_dispatch_loss;
      Alcotest.test_case "dispatch: rejection" `Quick test_dispatch_reject;
      Alcotest.test_case "dispatch: crash-restart" `Quick
        test_dispatch_crash_restores_snapshot;
      Alcotest.test_case "dispatch: ack round trip" `Quick test_dispatch_ack;
      QCheck_alcotest.to_alcotest ~long:false prop_zero_identity;
      Alcotest.test_case "golden replay grid" `Slow test_golden_grid;
      Alcotest.test_case "total loss falls back to two-phase" `Quick
        test_total_loss_falls_back;
      Alcotest.test_case "chaos recovered by retries" `Quick
        test_retry_recovers_without_fallback;
      Alcotest.test_case "robustness figure" `Slow test_fig_robust;
      Alcotest.test_case "robustness rows independent of jobs" `Slow
        test_fig_robust_rows_identical_across_jobs;
    ] )
