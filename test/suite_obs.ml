(* The observability layer: counter aggregation across domains, span
   nesting, trace on/off parity of experiment rows, trace-schema
   validity, and the OBSERVABILITY.md label table staying in sync with
   the labels the code actually registers.

   Test-local metrics use the reserved [test.] label prefix, which the
   documentation diff ignores (see OBSERVABILITY.md). *)

module Obs = Chronus_obs.Obs
module Pool = Chronus_parallel.Pool
module E = Chronus_experiments

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — just enough to validate trace records. The
   repo deliberately has no JSON dependency. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
                Buffer.add_char b c;
                advance ();
                go ()
            | Some 'n' ->
                Buffer.add_char b '\n';
                advance ();
                go ()
            | Some 't' ->
                Buffer.add_char b '\t';
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elements []
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "empty"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end

(* ------------------------------------------------------------------ *)

let test_counter_across_domains () =
  let c = Obs.Counter.v "test.obs.counter" in
  let before = Obs.Counter.value c in
  Pool.parallel_iter ~jobs:4
    (fun _ -> Obs.Counter.incr c)
    (List.init 1000 Fun.id);
  Alcotest.(check int)
    "1000 increments from 4 domains all land" 1000
    (Obs.Counter.value c - before);
  Obs.Counter.incr ~by:5 c;
  Alcotest.(check int) "incr ~by" 1005 (Obs.Counter.value c - before);
  Alcotest.(check bool)
    "same label yields the same cell" true
    (Obs.Counter.value (Obs.Counter.v "test.obs.counter")
    = Obs.Counter.value c)

let test_gauge_high_water () =
  let g = Obs.Gauge.v "test.obs.gauge" in
  List.iter (Obs.Gauge.observe g) [ 5; 3; 9; 2 ];
  Alcotest.(check int) "keeps the maximum" 9 (Obs.Gauge.value g);
  Pool.parallel_iter ~jobs:4 (Obs.Gauge.observe g) (List.init 64 Fun.id);
  Alcotest.(check int) "concurrent maximum" 63 (Obs.Gauge.value g)

let test_kind_clash () =
  ignore (Obs.Counter.v "test.obs.clash");
  Alcotest.(check bool)
    "re-registering a label as another kind is refused" true
    (match Obs.Gauge.v "test.obs.clash" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_span_nesting () =
  let outer = Obs.Span.v "test.obs.outer" in
  let inner = Obs.Span.v "test.obs.inner" in
  let o0 = (Obs.Span.stat outer).Obs.Span.count in
  let spin () = ignore (Sys.opaque_identity (List.init 1000 Fun.id)) in
  let r =
    Obs.Span.with_h outer (fun () ->
        Obs.Span.with_h inner (fun () ->
            spin ();
            17))
  in
  Alcotest.(check int) "value passes through" 17 r;
  let so = Obs.Span.stat outer and si = Obs.Span.stat inner in
  Alcotest.(check int) "outer counted once" (o0 + 1) so.Obs.Span.count;
  Alcotest.(check bool)
    "outer total includes inner total" true
    (so.Obs.Span.total_ns >= si.Obs.Span.total_ns);
  Alcotest.(check bool)
    "max bounded by total" true
    (so.Obs.Span.max_ns <= so.Obs.Span.total_ns);
  (* A raising body is still recorded, and the exception survives. *)
  Alcotest.check_raises "exception re-raised" (Failure "boom") (fun () ->
      Obs.Span.with_ "test.obs.raise" (fun () -> failwith "boom"));
  Alcotest.(check int)
    "raising span recorded" 1
    (Obs.Span.stat (Obs.Span.v "test.obs.raise")).Obs.Span.count

(* The fingerprint of an experiment's rows must not depend on whether the
   trace sink is open: metrics observe, never branch. *)
let test_trace_parity () =
  let scale = E.Scale.tiny in
  let fingerprint v = Digest.string (Marshal.to_string v []) in
  let off = fingerprint (E.Fig7.run ~jobs:1 ~scale ()) in
  let file = Filename.temp_file "chronus_obs_parity" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_path None;
      Sys.remove file)
    (fun () ->
      Obs.Trace.set_path (Some file);
      Alcotest.(check bool) "sink reports enabled" true (Obs.Trace.enabled ());
      let on = fingerprint (E.Fig7.run ~jobs:1 ~scale ()) in
      Obs.Trace.set_path None;
      Alcotest.(check string) "rows identical with tracing on vs off" off on;
      Alcotest.(check bool)
        "trace file non-empty" true
        ((Unix.stat file).Unix.st_size > 0))

(* Every line of an emitted trace parses as JSON and carries the
   chronus-trace/1 required keys with the right types. *)
let test_trace_schema () =
  let file = Filename.temp_file "chronus_obs_schema" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_path None;
      Sys.remove file)
    (fun () ->
      Obs.Trace.set_path (Some file);
      let inst = Helpers.fig1 () in
      ignore (Chronus_exec.Timed_exec.run ~seed:1 inst);
      ignore (Chronus_exec.Two_phase_exec.run ~seed:1 inst);
      ignore (Chronus_exec.Order_exec.run ~seed:1 inst);
      ignore
        (Chronus_baselines.Opt.solve ~budget:50_000 ~timeout:5.0 ~jobs:2 inst);
      Obs.Trace.set_path None;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check bool)
        "trace has records beyond the meta line" true
        (List.length lines > 1);
      let kinds = Hashtbl.create 8 in
      List.iteri
        (fun i line ->
          match Json.parse line with
          | Json.Obj fields ->
              let str k =
                match List.assoc_opt k fields with
                | Some (Json.Str s) -> s
                | _ ->
                    Alcotest.failf "line %d: missing string key %S: %s" i k
                      line
              in
              let num k =
                match List.assoc_opt k fields with
                | Some (Json.Num f) -> f
                | _ ->
                    Alcotest.failf "line %d: missing numeric key %S: %s" i k
                      line
              in
              (match List.assoc_opt "fields" fields with
              | Some (Json.Obj _) -> ()
              | _ -> Alcotest.failf "line %d: fields is not an object" i);
              Hashtbl.replace kinds (str "kind") ();
              ignore (str "label");
              Alcotest.(check bool)
                (Printf.sprintf "line %d: ts non-negative" i)
                true
                (num "ts" >= 0.);
              Alcotest.(check bool)
                (Printf.sprintf "line %d: domain non-negative" i)
                true
                (num "domain" >= 0.)
          | _ -> Alcotest.failf "line %d is not a JSON object: %s" i line
          | exception Json.Bad msg ->
              Alcotest.failf "line %d does not parse (%s): %s" i msg line)
        lines;
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "trace contains a %S record" k)
            true (Hashtbl.mem kinds k))
        [ "meta"; "span"; "point" ];
      (match Json.parse (List.hd lines) with
      | Json.Obj fields ->
          (match List.assoc_opt "fields" fields with
          | Some (Json.Obj meta) ->
              Alcotest.(check bool)
                "meta record declares chronus-trace/1" true
                (List.assoc_opt "schema" meta
                = Some (Json.Str "chronus-trace/1"))
          | _ -> Alcotest.fail "meta record has no fields")
      | _ -> Alcotest.fail "first line is not an object"))

(* OBSERVABILITY.md's label table and the labels the code registers must
   be the same set (the reserved [test.] prefix aside). *)
let test_labels_documented () =
  let doc =
    let candidates =
      [ "../OBSERVABILITY.md"; "OBSERVABILITY.md"; "../../OBSERVABILITY.md" ]
    in
    match List.find_opt Sys.file_exists candidates with
    | None -> Alcotest.fail "OBSERVABILITY.md not found next to the test"
    | Some path ->
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        List.rev !lines
  in
  (* Rows of the label table look like:  | `greedy.rounds` | counter | … *)
  let documented =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.length line > 3 && line.[0] = '|' && line.[1] = ' '
           && line.[2] = '`'
        then
          match String.index_from_opt line 3 '`' with
          | Some close -> Some (String.sub line 3 (close - 3))
          | None -> None
        else None)
      doc
    |> List.sort_uniq compare
  in
  let registered =
    Obs.all_labels ()
    |> List.map fst
    |> List.filter (fun l -> not (String.starts_with ~prefix:"test." l))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "OBSERVABILITY.md label table matches the registered labels" registered
    documented

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter aggregation across domains" `Quick
        test_counter_across_domains;
      Alcotest.test_case "gauge high-water" `Quick test_gauge_high_water;
      Alcotest.test_case "label kind clash refused" `Quick test_kind_clash;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "trace on/off row parity" `Slow test_trace_parity;
      Alcotest.test_case "trace schema" `Quick test_trace_schema;
      Alcotest.test_case "labels documented" `Quick test_labels_documented;
    ] )
