module E = Chronus_experiments

(* Miniature scale so the full pipelines run in seconds. *)
let tiny = E.Scale.tiny

let test_scale_parse () =
  Alcotest.(check int) "quick instances" 10
    E.Scale.quick.E.Scale.instances;
  Alcotest.(check int) "paper instances" 500
    (E.Scale.parse "paper").E.Scale.instances;
  Alcotest.check_raises "unknown preset"
    (Invalid_argument "Scale.parse: unknown preset \"huge\"") (fun () ->
      ignore (E.Scale.parse "huge"))

let test_trial () =
  let rng = Chronus_topo.Rng.make 4 in
  let inst = Helpers.fig1 () in
  let t = E.Trial.run ~scale:tiny ~rng inst in
  Alcotest.(check bool) "chronus clean on fig1" true t.E.Trial.chronus_clean;
  Alcotest.(check int) "no congested links" 0
    t.E.Trial.chronus_congested_links;
  Alcotest.(check int) "makespan 4" 4 t.E.Trial.chronus_makespan;
  Alcotest.(check int) "or rounds" 2 t.E.Trial.or_rounds;
  Alcotest.(check bool) "tp needs more rules" true
    (t.E.Trial.tp_rules > t.E.Trial.chronus_rules)

let test_fig7_pipeline () =
  let rows = E.Fig7.run ~scale:tiny () in
  Alcotest.(check int) "one row per size" 2 (List.length rows);
  List.iter
    (fun r ->
      let sane p = p >= 0. && p <= 100. in
      Alcotest.(check bool) "percentages sane" true
        (sane r.E.Fig7.chronus_congestion_pct
        && sane r.E.Fig7.opt_congestion_pct
        && sane r.E.Fig7.or_congestion_pct);
      (* Chronus never congests more often than OR. *)
      Alcotest.(check bool) "chronus <= or" true
        (r.E.Fig7.chronus_congestion_pct <= r.E.Fig7.or_congestion_pct))
    rows

let test_fig8_pipeline () =
  (* Per-instance outcomes are noisy; the paper's claim is about the
     aggregate, so compare sums over a slightly larger sample. *)
  let scale = { tiny with E.Scale.instances = 12 } in
  let rows = E.Fig8.run ~scale () in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check bool) "chronus total <= or total" true
    (total (fun r -> r.E.Fig8.chronus_congested)
    <= total (fun r -> r.E.Fig8.or_congested));
  List.iter
    (fun r ->
      Alcotest.(check bool) "counts non-negative" true
        (r.E.Fig8.chronus_congested >= 0 && r.E.Fig8.or_congested >= 0))
    rows

let test_fig9_pipeline () =
  let rows = E.Fig9.run ~scale:tiny () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "tp mean above chronus mean" true
        (r.E.Fig9.tp_mean > r.E.Fig9.chronus_mean);
      Alcotest.(check bool) "saving positive" true (r.E.Fig9.saving_pct > 0.))
    rows

let test_fig10_pipeline () =
  let rows = E.Fig10.run ~scale:tiny () in
  List.iter
    (fun r ->
      match r.E.Fig10.chronus with
      | E.Fig10.Seconds s ->
          Alcotest.(check bool) "chronus fast" true (s < 10.)
      | E.Fig10.Capped _ -> Alcotest.fail "chronus must not time out")
    rows

let test_fig11_pipeline () =
  let r = E.Fig11.run ~scale:tiny ~switches:8 () in
  Alcotest.(check bool) "has samples" true (r.E.Fig11.instances >= 1);
  Alcotest.(check bool) "opt median <= chronus median" true
    (r.E.Fig11.opt_median <= r.E.Fig11.chronus_median)

let test_fig6_pipeline () =
  let r = E.Fig6.run () in
  Alcotest.(check bool) "rows exist" true (List.length r.E.Fig6.rows > 5);
  (* The headline claim: OR overloads the link, Chronus stays in range. *)
  Alcotest.(check bool) "or congests" true
    (r.E.Fig6.or_peak > r.E.Fig6.capacity_mbps +. 0.1);
  Alcotest.(check bool) "chronus stays in range" true
    (r.E.Fig6.chronus_peak <= r.E.Fig6.capacity_mbps +. 0.1);
  Alcotest.(check bool) "tp stays in range" true
    (r.E.Fig6.tp_peak <= r.E.Fig6.capacity_mbps +. 0.1)

let test_table2 () =
  let r = E.Table2.run () in
  let has text sub =
    let n = String.length text and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub text i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "source stamps during transition" true
    (has r.E.Table2.source_during "set_tag:2");
  Alcotest.(check bool) "destination delivers" true
    (has r.E.Table2.destination_before "output:host");
  Alcotest.(check bool) "steady state has no version-2 rule" true
    (not (has r.E.Table2.source_before "tag 2"))

let suite =
  ( "experiments",
    [
      Alcotest.test_case "scale presets" `Quick test_scale_parse;
      Alcotest.test_case "trial on the worked example" `Quick test_trial;
      Alcotest.test_case "fig7 pipeline" `Slow test_fig7_pipeline;
      Alcotest.test_case "fig8 pipeline" `Slow test_fig8_pipeline;
      Alcotest.test_case "fig9 pipeline" `Quick test_fig9_pipeline;
      Alcotest.test_case "fig10 pipeline" `Slow test_fig10_pipeline;
      Alcotest.test_case "fig11 pipeline" `Slow test_fig11_pipeline;
      Alcotest.test_case "fig6 pipeline" `Slow test_fig6_pipeline;
      Alcotest.test_case "table2" `Quick test_table2;
    ] )
