(* Scale acceptance and golden replay.

   The golden digests below were captured from the seed (pre-indexed,
   pre-calendar) implementation and verified bit-identical against the
   rewrite: they pin the complete observable outcome of one run of each
   executor on the worked example, and of the tiny robustness grid.
   [Marshal.No_sharing] makes the digest depend on values only, not on
   which subterms happen to be physically shared. *)

module E = Chronus_experiments
open Chronus_exec
open Chronus_topo

let dig v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let proj (r : Exec_env.result) =
  ( r.Exec_env.series,
    r.Exec_env.busiest,
    r.Exec_env.peak_mbps,
    r.Exec_env.congested_samples,
    r.Exec_env.peak_rules,
    r.Exec_env.loss_bytes,
    r.Exec_env.update_span,
    r.Exec_env.commands,
    r.Exec_env.violations )

let test_golden_fig1 () =
  let inst = Scenario.fig1_example () in
  let c = Timed_exec.run ~seed:1 inst in
  Alcotest.(check string) "timed executor digest"
    "517bc243add4b3fd5d9b92fd5ae5b7c2"
    (dig
       ( proj c.Timed_exec.result,
         c.Timed_exec.schedule,
         c.Timed_exec.clean,
         c.Timed_exec.path,
         c.Timed_exec.retries,
         c.Timed_exec.unacked ));
  let tp = Two_phase_exec.run ~seed:1 inst in
  Alcotest.(check string) "two-phase executor digest"
    "e6c860f00e610f55803874babc3d851a"
    (dig
       ( proj tp.Two_phase_exec.result,
         tp.Two_phase_exec.phase1_done,
         tp.Two_phase_exec.phase2_done,
         tp.Two_phase_exec.rules_installed ));
  let o = Order_exec.run ~seed:1 inst in
  Alcotest.(check string) "ordered executor digest"
    "bebc02a297341a3bc6610ba83cba439e"
    (dig
       (proj o.Order_exec.result, o.Order_exec.rounds, o.Order_exec.optimal_rounds))

let test_golden_fig_robust () =
  let rows = E.Fig_robust.run ~jobs:1 ~scale:E.Scale.tiny () in
  Alcotest.(check string) "robustness grid digest"
    "0b80e9e893e44141c5e81738cffdba7e" (dig rows)

(* The acceptance scenario: a fat-tree k=8 — 80 switches, >10k installed
   rules network-wide — completes a timed update end-to-end, cleanly. *)
let test_fat_tree_k8 () =
  let rows =
    E.Fig_scale.run ~jobs:2 ~scale:E.Scale.tiny
      ~kinds:[ E.Fig_scale.Fat_tree 8 ] ()
  in
  match rows with
  | [ r ] ->
      Alcotest.(check int) "switches" 80 r.E.Fig_scale.switches;
      Alcotest.(check bool) "at least 10k exact-equivalent rules" true
        (r.E.Fig_scale.rules_exact >= 10_000);
      Alcotest.(check bool) "compiled base is at least 4x smaller" true
        (r.E.Fig_scale.compression >= 4.);
      Alcotest.(check bool) "update completed" true
        (r.E.Fig_scale.chronus_span_s > 0.);
      Alcotest.(check bool) "tp completed" true (r.E.Fig_scale.tp_span_s > 0.);
      Alcotest.(check bool) "or completed" true (r.E.Fig_scale.or_span_s > 0.);
      Alcotest.(check bool) "no violations" true r.E.Fig_scale.chronus_clean;
      Alcotest.(check bool) "events dispatched" true (r.E.Fig_scale.events > 0)
  | rows ->
      Alcotest.failf "expected exactly one row, got %d" (List.length rows)

(* The ISSUE-9 acceptance scenario: a k=32 fat-tree — 1,280 switches,
   2.6M exact-equivalent rules — completes a clean timed update
   end-to-end with the compiled base at >= 4x compression. *)
let test_fat_tree_k32 () =
  let rows =
    E.Fig_scale.run ~jobs:1 ~scale:E.Scale.tiny
      ~kinds:[ E.Fig_scale.Fat_tree 32 ] ()
  in
  match rows with
  | [ r ] ->
      Alcotest.(check int) "switches" 1280 r.E.Fig_scale.switches;
      Alcotest.(check bool) "million-rule exact equivalent" true
        (r.E.Fig_scale.rules_exact >= 1_000_000);
      Alcotest.(check bool) "compiled base is at least 4x smaller" true
        (r.E.Fig_scale.compression >= 4.);
      Alcotest.(check bool) "update completed" true
        (r.E.Fig_scale.chronus_span_s > 0.);
      Alcotest.(check bool) "no violations" true r.E.Fig_scale.chronus_clean
  | rows ->
      Alcotest.failf "expected exactly one row, got %d" (List.length rows)

(* Deterministic columns must not depend on the job count. *)
let deterministic (r : E.Fig_scale.row) =
  ( r.E.Fig_scale.topo,
    r.E.Fig_scale.switches,
    r.E.Fig_scale.links,
    r.E.Fig_scale.rules_exact,
    r.E.Fig_scale.rules_compiled,
    r.E.Fig_scale.table_words,
    r.E.Fig_scale.updates,
    r.E.Fig_scale.events,
    r.E.Fig_scale.chronus_span_s,
    r.E.Fig_scale.tp_span_s,
    r.E.Fig_scale.or_span_s,
    r.E.Fig_scale.chronus_clean )

let test_jobs_parity () =
  let run jobs = E.Fig_scale.run ~jobs ~scale:E.Scale.tiny () in
  Alcotest.(check string) "rows identical at jobs=1 and jobs=3"
    (dig (List.map deterministic (run 1)))
    (dig (List.map deterministic (run 3)))

let test_fat_tree_reroute_disjoint () =
  let open Chronus_flow in
  for seed = 0 to 9 do
    let rng = Rng.derive seed [ 99 ] in
    let inst = Scenario.fat_tree_reroute ~rng 8 in
    let edges p = Chronus_graph.Path.edges p in
    let shared =
      List.filter
        (fun e -> List.mem e (edges inst.Instance.p_fin))
        (edges inst.Instance.p_init)
    in
    Alcotest.(check (list (pair int int))) "paths are link-disjoint" [] shared;
    Alcotest.(check int) "4-hop routes" 5 (List.length inst.Instance.p_init)
  done

let test_detour_on_wans () =
  let open Chronus_flow in
  let params = { Topology.capacity = 2; Topology.delay = 1 } in
  for seed = 0 to 9 do
    let rng = Rng.derive seed [ 98 ] in
    let g =
      if seed mod 2 = 0 then Topology.b4 ~params ()
      else Topology.wan ~params ~rng 12
    in
    let inst = Scenario.detour ~rng g in
    Alcotest.(check bool) "paths differ" true
      (inst.Instance.p_init <> inst.Instance.p_fin);
    Alcotest.(check bool) "detour avoids the failed link" true
      (match (inst.Instance.p_init, inst.Instance.p_fin) with
      | a :: b :: _, a' :: b' :: _ -> a = a' && b <> b'
      | _ -> false)
  done

let suite =
  ( "scale",
    [
      Alcotest.test_case "golden fig1 digests (seed-identical)" `Quick
        test_golden_fig1;
      Alcotest.test_case "golden fig_robust digest (seed-identical)" `Slow
        test_golden_fig_robust;
      Alcotest.test_case "fat-tree k=8 end-to-end" `Slow test_fat_tree_k8;
      Alcotest.test_case "fat-tree k=32 end-to-end (1,280 switches)" `Slow
        test_fat_tree_k32;
      Alcotest.test_case "rows independent of job count" `Slow test_jobs_parity;
      Alcotest.test_case "fat-tree reroute is link-disjoint" `Quick
        test_fat_tree_reroute_disjoint;
      Alcotest.test_case "detour generator on B4/WAN" `Quick test_detour_on_wans;
    ] )
