(* Differential tests for the incremental oracle: every [Checker] probe,
   commit, push/pop and rebase must produce a report structurally
   identical to [Oracle.evaluate] run from scratch on the same schedule —
   the equivalence obligation stated in oracle.mli. Plus golden replays
   of the schedulers, pinning the exact schedules the pre-incremental
   implementation produced. *)

open Chronus_flow
open Chronus_core
open Chronus_baselines
open QCheck
module O = Oracle
module Rng = Chronus_topo.Rng

let count = 40

(* Reports contain only immediate data (ints, variants, tuples, lists),
   and every list field is order-canonical, so structural equality is the
   right notion of "identical". *)
let report_eq (a : O.report) (b : O.report) = a = b

let add_all flips sched =
  List.fold_left (fun s (v, t) -> Schedule.add v t s) sched flips

(* A random partial base schedule: each switch independently scheduled
   (or not) at a small random time. *)
let random_partial rng inst =
  List.fold_left
    (fun acc v ->
      if Rng.bool rng then Schedule.add v (Rng.in_range rng 0 9) acc else acc)
    Schedule.empty
    (Instance.switches_to_update inst)

let unscheduled inst base =
  List.filter
    (fun v -> not (Schedule.mem v base))
    (Instance.switches_to_update inst)

(* Probes of every unscheduled switch, at an early, a mid-window and a
   beyond-the-horizon time, must match a from-scratch evaluation. *)
let probe_matches =
  Test.make ~count ~name:"probe = evaluate from scratch"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 17 ] in
      let base = random_partial rng inst in
      let ck = O.Checker.create inst base in
      let horizon =
        (if Schedule.is_empty base then 0 else Schedule.max_time base) + 3
      in
      List.for_all
        (fun v ->
          List.for_all
            (fun t ->
              report_eq (O.Checker.probe ck v t)
                (O.evaluate inst (Schedule.add v t base)))
            [ 0; Rng.in_range rng 1 6; horizon ])
        (unscheduled inst base))

(* Repeating a probe (memoised) must return the identical report. *)
let probe_idempotent =
  Test.make ~count ~name:"repeated probe is stable"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 19 ] in
      let base = random_partial rng inst in
      let ck = O.Checker.create inst base in
      List.for_all
        (fun v ->
          let t = Rng.in_range rng 0 7 in
          let first = O.Checker.probe ck v t in
          report_eq first (O.Checker.probe ck v t))
        (unscheduled inst base))

(* Growing the base one commit at a time: after every commit the promoted
   report — and the cached [base_report] — must equal a from-scratch
   evaluation of the grown schedule, and subsequent probes must be
   differentially correct against the *new* base. *)
let commit_matches =
  Test.make ~count ~name:"commit sequence tracks evaluate"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 23 ] in
      let ck = O.Checker.create inst Schedule.empty in
      let _, ok =
        List.fold_left
          (fun (sched, ok) v ->
            let t = Rng.in_range rng 0 8 in
            let sched' = Schedule.add v t sched in
            let committed = O.Checker.commit ck v t in
            let scratch = O.evaluate inst sched' in
            ( sched',
              ok && report_eq committed scratch
              && report_eq (O.Checker.base_report ck) scratch
              && Schedule.equal (O.Checker.base ck) sched' ))
          (Schedule.empty, true)
          (Instance.switches_to_update inst)
      in
      ok)

(* Probing several flips at once (the branch-and-bound's last-step
   closure) must match evaluating them added together. *)
let probe_list_matches =
  Test.make ~count ~name:"probe_list = evaluate of joint schedule"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 29 ] in
      let base = random_partial rng inst in
      let ck = O.Checker.create inst base in
      match unscheduled inst base with
      | [] -> true
      | free ->
          let flips =
            List.filteri (fun i _ -> i < 3) free
            |> List.map (fun v -> (v, Rng.in_range rng 0 7))
          in
          report_eq
            (O.Checker.probe_list ck flips)
            (O.evaluate inst (add_all flips base)))

(* push/pop bracketing: pushes behave like commits, pops restore the
   saved base exactly (schedule, report, and differential correctness of
   probes issued after the pop). *)
let push_pop_matches =
  Test.make ~count ~name:"push/pop restores the base"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 31 ] in
      let base = random_partial rng inst in
      let ck = O.Checker.create inst base in
      let before = O.Checker.base_report ck in
      match unscheduled inst base with
      | [] -> true
      | v :: rest ->
          let tv = Rng.in_range rng 0 6 in
          let pushed = O.Checker.push ck v tv in
          let ok1 =
            report_eq pushed (O.evaluate inst (Schedule.add v tv base))
          in
          let ok2 =
            match rest with
            | [] -> true
            | w :: _ ->
                let tw = Rng.in_range rng 0 6 in
                let deep = O.Checker.push ck w tw in
                let good =
                  report_eq deep
                    (O.evaluate inst
                       (Schedule.add w tw (Schedule.add v tv base)))
                in
                O.Checker.pop ck;
                good
                && report_eq (O.Checker.base_report ck) pushed
                && Schedule.equal (O.Checker.base ck) (Schedule.add v tv base)
          in
          O.Checker.pop ck;
          let ok3 =
            report_eq (O.Checker.base_report ck) before
            && Schedule.equal (O.Checker.base ck) base
          in
          let ok4 =
            report_eq
              (O.Checker.probe ck v (tv + 1))
              (O.evaluate inst (Schedule.add v (tv + 1) base))
          in
          ok1 && ok2 && ok3 && ok4)

(* rebase drops all cached state and re-anchors on a fresh schedule. *)
let rebase_matches =
  Test.make ~count ~name:"rebase re-anchors the session"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 37 ] in
      let ck = O.Checker.create inst (random_partial rng inst) in
      let base' = random_partial rng inst in
      O.Checker.rebase ck base';
      report_eq (O.Checker.base_report ck) (O.evaluate inst base')
      && List.for_all
           (fun v ->
             let t = Rng.in_range rng 0 7 in
             report_eq (O.Checker.probe ck v t)
               (O.evaluate inst (Schedule.add v t base')))
           (unscheduled inst base'))

(* retarget re-points a pooled session at another instance over the same
   graph: afterwards the session must be indistinguishable from a fresh
   [create inst' Schedule.empty] — base report and probes alike — and
   retargeting back must restore the original judgements. The reverse
   move (p_init and p_fin swapped) is a genuinely different instance on
   the same physical graph, exactly the service pool's situation. *)
let retarget_matches =
  Test.make ~count ~name:"retarget = fresh create on the new instance"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 41 ] in
      let ck = O.Checker.create inst (random_partial rng inst) in
      let inst' =
        Instance.create ~graph:inst.Instance.graph
          ~demand:inst.Instance.demand ~p_init:inst.Instance.p_fin
          ~p_fin:inst.Instance.p_init
      in
      O.Checker.retarget ck inst';
      let fresh v t = O.evaluate inst' (Schedule.add v t Schedule.empty) in
      let ok1 =
        report_eq (O.Checker.base_report ck) (O.evaluate inst' Schedule.empty)
        && Schedule.is_empty (O.Checker.base ck)
        && List.for_all
             (fun v ->
               let t = Rng.in_range rng 0 7 in
               report_eq (O.Checker.probe ck v t) (fresh v t))
             (Instance.switches_to_update inst')
      in
      O.Checker.retarget ck inst;
      ok1
      && report_eq (O.Checker.base_report ck) (O.evaluate inst Schedule.empty)
      && List.for_all
           (fun v ->
             let t = Rng.in_range rng 0 7 in
             report_eq (O.Checker.probe ck v t)
               (O.evaluate inst (Schedule.add v t Schedule.empty)))
           (Instance.switches_to_update inst))

(* set_background swaps the cross-flow steady load under a session
   without re-tracing: reports must match a session created with that
   background from the start, on the base and on probes (cached and
   fresh alike). *)
let set_background_matches =
  Test.make ~count ~name:"set_background = fresh create with background"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Rng.derive seed [ 43 ] in
      let base = random_partial rng inst in
      let ck = O.Checker.create inst base in
      (* Populate the probe cache before the swap so reassembly covers
         cached simulations too. *)
      let probed =
        List.map
          (fun v -> (v, Rng.in_range rng 0 7))
          (unscheduled inst base)
      in
      List.iter (fun (v, t) -> ignore (O.Checker.probe ck v t)) probed;
      let bg u v = (u + (2 * v)) mod 2 in
      O.Checker.set_background ck bg;
      let ck' = O.Checker.create ~background:bg inst base in
      report_eq (O.Checker.base_report ck) (O.Checker.base_report ck')
      && List.for_all
           (fun (v, t) ->
             report_eq (O.Checker.probe ck v t) (O.Checker.probe ck' v t))
           probed)

(* --- Golden replays -----------------------------------------------------

   Schedules produced by the schedulers before the incremental oracle
   landed, dumped from the pre-change tree. The checker is a pure
   performance substrate: greedy, fallback and branch-and-bound must
   still produce these exact schedules. *)

let sched_t = Alcotest.(list (pair int int))

let greedy_exact inst =
  match Greedy.schedule ~mode:Greedy.Exact inst with
  | Greedy.Scheduled s -> `Scheduled (Schedule.to_list s)
  | Greedy.Infeasible { partial; remaining } ->
      `Infeasible (Schedule.to_list partial, remaining)

let golden_greedy =
  [
    (1, [ (1, 0); (2, 3); (3, 4); (4, 7) ]);
    (7, [ (0, 0); (3, 0); (1, 3); (4, 3); (5, 5); (2, 6) ]);
    (23, [ (1, 0); (3, 0); (2, 1); (4, 1); (5, 4) ]);
    (123, [ (0, 0); (3, 0); (1, 1); (2, 2); (4, 2); (5, 4); (6, 5) ]);
    (777, [ (1, 0); (0, 3); (2, 3) ]);
    (2024, [ (0, 0); (1, 1); (2, 3); (3, 5) ]);
    (4242, [ (0, 0); (1, 1) ]);
    (9001, [ (0, 0); (1, 0); (2, 3) ]);
    (31415, [ (2, 0); (3, 0); (4, 2); (5, 4) ]);
  ]

let golden_opt_makespan =
  [
    (1, 8); (7, 7); (23, 5); (123, 6); (777, 4); (2024, 6); (4242, 2);
    (9001, 4); (31415, 5);
  ]

let test_golden_greedy () =
  (match greedy_exact (Helpers.fig1 ()) with
  | `Scheduled s ->
      Alcotest.check sched_t "fig1 greedy schedule unchanged"
        [ (2, 0); (1, 1); (3, 1); (4, 2); (5, 3) ]
        s
  | `Infeasible _ -> Alcotest.fail "fig1 unexpectedly infeasible");
  List.iter
    (fun (seed, golden) ->
      match greedy_exact (Helpers.instance_of_seed seed) with
      | `Scheduled s ->
          Alcotest.check sched_t
            (Printf.sprintf "seed %d greedy schedule unchanged" seed)
            golden s
      | `Infeasible _ ->
          Alcotest.failf "seed %d unexpectedly infeasible" seed)
    golden_greedy;
  (* The one infeasible seed: the partial schedule and leftovers are
     pinned too, as is the fallback's completion of them. *)
  match greedy_exact (Helpers.instance_of_seed 271828) with
  | `Scheduled _ -> Alcotest.fail "seed 271828 unexpectedly feasible"
  | `Infeasible (partial, remaining) ->
      Alcotest.check sched_t "seed 271828 partial unchanged"
        [ (2, 0); (3, 3); (4, 4) ]
        partial;
      Alcotest.(check (list int)) "seed 271828 remaining unchanged" [ 0; 1 ]
        remaining

let test_golden_fallback () =
  List.iter
    (fun (seed, golden) ->
      let { Fallback.schedule = s; clean } =
        Fallback.schedule (Helpers.instance_of_seed seed)
      in
      Alcotest.check sched_t
        (Printf.sprintf "seed %d fallback schedule unchanged" seed)
        golden (Schedule.to_list s);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d fallback clean" seed)
        true clean)
    golden_greedy;
  let { Fallback.schedule = s; clean } =
    Fallback.schedule (Helpers.instance_of_seed 271828)
  in
  Alcotest.check sched_t "seed 271828 fallback schedule unchanged"
    [ (2, 0); (3, 3); (4, 4); (0, 5); (1, 7) ]
    (Schedule.to_list s);
  Alcotest.(check bool) "seed 271828 fallback not clean" false clean

let test_golden_opt () =
  let fig1 = Opt.solve ~budget:200_000 ~timeout:10.0 (Helpers.fig1 ()) in
  (match fig1.Opt.outcome with
  | Opt.Optimal s ->
      Alcotest.check sched_t "fig1 optimal schedule unchanged"
        [ (2, 0); (1, 1); (3, 1); (4, 2); (5, 3) ]
        (Schedule.to_list s)
  | _ -> Alcotest.fail "fig1 no longer proved optimal");
  List.iter
    (fun (seed, golden) ->
      let r =
        Opt.solve ~budget:100_000 ~timeout:10.0
          (Helpers.instance_of_seed seed)
      in
      match r.Opt.outcome with
      | Opt.Optimal s ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d optimal makespan unchanged" seed)
            golden (Schedule.makespan s)
      | _ -> Alcotest.failf "seed %d no longer proved optimal" seed)
    golden_opt_makespan;
  let r =
    Opt.solve ~budget:100_000 ~timeout:10.0 (Helpers.instance_of_seed 271828)
  in
  Alcotest.(check bool) "seed 271828 opt outcome unchanged" true
    (match r.Opt.outcome with
    | Opt.Unknown | Opt.Feasible _ -> true
    | Opt.Optimal _ | Opt.Infeasible -> false)

let suite =
  let name, qtests =
    Helpers.qsuite "oracle-incremental"
      [
        probe_matches;
        probe_idempotent;
        commit_matches;
        probe_list_matches;
        push_pop_matches;
        rebase_matches;
        retarget_matches;
        set_background_matches;
      ]
  in
  ( name,
    qtests
    @ [
        Alcotest.test_case "golden greedy schedules" `Quick test_golden_greedy;
        Alcotest.test_case "golden fallback schedules" `Quick
          test_golden_fallback;
        Alcotest.test_case "golden opt makespans" `Slow test_golden_opt;
      ] )
