(* The prefix-compilation layer: Table_compiler semantic equivalence on
   random forwarding functions, deterministic compression on fat-tree
   shapes, and the Addressing layout's invariants — including that the
   analytically routed compiled base actually delivers every host
   address from every switch on a real fat-tree. *)

open Chronus_sim
open Chronus_topo
module FT = Flow_table
module TC = Table_compiler
module E = Chronus_experiments

let act v = { FT.set_tag = None; forward = FT.Out v }

let install_compiled rules =
  let t = FT.create () in
  List.iter
    (fun (prefix, len, action) ->
      ignore
        (FT.install_prefix t ~priority:5 ~prefix ~len ~tag_match:FT.Any_tag
           action))
    rules;
  t

(* Semantic equivalence: installing the compiled rules into a fresh
   table, every bound address must look up to exactly its bound action.
   Random functions over a clustered address pool (clusters make
   aggregation actually fire). *)
let run_compile seed =
  let rng = Rng.derive seed [ 83 ] in
  let n = 1 + Rng.int rng 120 in
  let bindings =
    List.init n (fun _ ->
        let cluster = Rng.int rng 4 lsl 12 in
        (cluster lor Rng.int rng 256, act (Rng.int rng 5)))
  in
  (* Last binding wins on duplicates — mirror that in the expectation. *)
  let expected = Hashtbl.create 64 in
  List.iter (fun (a, v) -> Hashtbl.replace expected a v) bindings;
  let compiled = TC.compile bindings in
  let t = install_compiled compiled in
  Hashtbl.iter
    (fun addr action ->
      match FT.lookup t ~dst:addr ~tag:None with
      | Some r when r.FT.action = action -> ()
      | Some r ->
          failwith
            (Printf.sprintf "addr 0x%x: compiled to %s, expected %s" addr
               (match r.FT.action.FT.forward with
               | FT.Out v -> string_of_int v
               | _ -> "?")
               (match action.FT.forward with
               | FT.Out v -> string_of_int v
               | _ -> "?"))
      | None -> failwith (Printf.sprintf "addr 0x%x: no rule" addr))
    expected;
  (* No rule set larger than the trivial one-per-address table. *)
  List.length compiled <= Hashtbl.length expected

let compile_equivalence =
  QCheck.Test.make ~count:200
    ~name:"compiled prefix table forwards every bound address correctly"
    QCheck.small_nat run_compile

let test_compile_edge_cases () =
  Alcotest.(check (list (triple int int (of_pp Fmt.nop))))
    "empty input compiles to the empty table" [] (TC.compile []);
  (* A constant function compiles to a single rule. *)
  let bindings = List.init 64 (fun i -> (0x8000 lor i, act 3)) in
  Alcotest.(check int) "constant function = one rule" 1
    (List.length (TC.compile bindings));
  (* Determinism: same input, same output. *)
  let b2 =
    List.init 100 (fun i -> (0x8000 lor (i * 37 mod 256), act (i mod 3)))
  in
  Alcotest.(check bool) "deterministic output" true
    (TC.compile b2 = TC.compile b2)

(* A fat-tree core switch's forwarding function — one next hop per pod —
   must compile to O(k) rules, not one per host. *)
let test_core_switch_compression () =
  List.iter
    (fun k ->
      let addressing = Addressing.fat_tree k in
      let holders = Addressing.holders addressing in
      let half = k / 2 in
      let core_count = half * half in
      (* Core 0's next hop for a host in pod p is agg(p, 0). *)
      let bindings =
        List.concat_map
          (fun h ->
            let pod = (h - core_count) / k in
            List.init (Addressing.hosts_per_holder addressing) (fun i ->
                ( Addressing.addr_of addressing ~holder:h ~host:i,
                  act (core_count + (pod * k)) )))
          holders
      in
      let compiled = TC.compile bindings in
      let exact = List.length bindings in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d core compiles to <= k+2 rules" k)
        true
        (List.length compiled <= k + 2);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d core compression >= 4x" k)
        true
        (exact >= 4 * List.length compiled))
    [ 4; 8; 16; 32 ]

(* Addressing invariants: width matches the flow table's address space,
   every address is unique, carries the marker bit, and stays disjoint
   from raw switch ids. *)
let test_addressing_layout () =
  Alcotest.(check int) "Addressing.width = Flow_table.addr_bits"
    FT.addr_bits Addressing.width;
  List.iter
    (fun addressing ->
      let addrs = Addressing.all_addrs addressing in
      let uniq = List.sort_uniq compare addrs in
      Alcotest.(check int) "addresses are unique" (List.length addrs)
        (List.length uniq);
      List.iter
        (fun a ->
          Alcotest.(check bool) "marker bit set" true
            (a land (1 lsl (Addressing.width - 1)) <> 0);
          Alcotest.(check bool) "fits the width" true
            (a lsr Addressing.width = 0))
        addrs)
    [
      Addressing.fat_tree 4;
      Addressing.fat_tree 32;
      Addressing.flat ~holders:(List.init 128 Fun.id) ();
    ];
  (* Each holder's prefix covers exactly its own hosts. *)
  let addressing = Addressing.fat_tree 8 in
  List.iter
    (fun h ->
      let prefix, len = Addressing.holder_prefix addressing h in
      let shift = Addressing.width - len in
      List.iter
        (fun h' ->
          List.iter
            (fun i ->
              let a = Addressing.addr_of addressing ~holder:h' ~host:i in
              Alcotest.(check bool) "prefix covers iff same holder" (h = h')
                (a lsr shift = prefix lsr shift))
            (List.init (Addressing.hosts_per_holder addressing) Fun.id))
        (Addressing.holders addressing))
    (Addressing.holders addressing)

(* End-to-end over the exact compiled tables the scale figure installs:
   from every switch, every host address must walk — hop by hop, along
   existing links only — to its holder's To_host rule within a
   node-count hop bound. Covers analytic fat-tree routing and the
   Dijkstra-routed flat topologies. *)
let test_compiled_delivery () =
  let module G = Chronus_graph.Graph in
  let check_kind label g kind =
    let addressing = E.Fig_scale.addressing g kind in
    let preinstall, _ = E.Fig_scale.compiled_preinstall g kind addressing in
    let tables = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace tables v (FT.create ())) (G.nodes g);
    List.iter
      (fun (switch, mod_) ->
        match mod_ with
        | Controller.Install_prefix { priority; prefix; len; tag_match; action }
          ->
            ignore
              (FT.install_prefix (Hashtbl.find tables switch) ~priority ~prefix
                 ~len ~tag_match action)
        | _ -> Alcotest.fail "preinstall must be Install_prefix only")
      preinstall;
    let bound = G.node_count g in
    List.iter
      (fun holder ->
        List.iter
          (fun host ->
            let addr = Addressing.addr_of addressing ~holder ~host in
            List.iter
              (fun start ->
                let rec walk v hops =
                  if hops > bound then
                    Alcotest.failf "%s: loop delivering 0x%x from %d" label
                      addr start
                  else
                    match
                      FT.lookup (Hashtbl.find tables v) ~dst:addr ~tag:None
                    with
                    | None ->
                        Alcotest.failf "%s: no rule for 0x%x at %d" label addr v
                    | Some r -> (
                        match r.FT.action.FT.forward with
                        | FT.To_host ->
                            if v <> holder then
                              Alcotest.failf
                                "%s: 0x%x delivered at %d, holder is %d" label
                                addr v holder
                        | FT.Out w ->
                            if not (G.mem_edge g v w) then
                              Alcotest.failf "%s: %d -> %d is not a link" label
                                v w;
                            walk w (hops + 1)
                        | FT.Drop ->
                            Alcotest.failf "%s: 0x%x dropped at %d" label addr v)
                in
                walk start 0)
              (G.nodes g))
          (List.init (Addressing.hosts_per_holder addressing) Fun.id))
      (Addressing.holders addressing)
  in
  check_kind "fat-tree k=4" (Topology.fat_tree 4) (E.Fig_scale.Fat_tree 4);
  check_kind "fat-tree k=8" (Topology.fat_tree 8) (E.Fig_scale.Fat_tree 8);
  check_kind "b4" (Topology.b4 ()) E.Fig_scale.B4

let suite =
  ( "prefix",
    [
      QCheck_alcotest.to_alcotest compile_equivalence;
      Alcotest.test_case "compiler edge cases" `Quick test_compile_edge_cases;
      Alcotest.test_case "core-switch compression is O(k)" `Quick
        test_core_switch_compression;
      Alcotest.test_case "addressing layout invariants" `Quick
        test_addressing_layout;
      Alcotest.test_case "delivery over the figure's compiled tables" `Quick
        test_compiled_delivery;
    ] )
