module Pool = Chronus_parallel.Pool
module E = Chronus_experiments

let square x = x * x

let test_ordering () =
  let input = List.init 100 (fun i -> i - 50) in
  let expected = List.map square input in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map order preserved at jobs=%d" jobs)
        expected
        (Pool.parallel_map ~jobs square input);
      Alcotest.(check (list int))
        (Printf.sprintf "chunked map order preserved at jobs=%d" jobs)
        expected
        (Pool.parallel_map ~jobs ~chunk:7 square input))
    [ 1; 2; 8 ]

let test_init () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "init matches List.init at jobs=%d" jobs)
        (List.init 33 square)
        (Pool.parallel_init ~jobs 33 square))
    [ 1; 2; 8 ]

let test_mapi () =
  Alcotest.(check (list int))
    "mapi passes positions" [ 10; 21; 32 ]
    (Pool.parallel_mapi ~jobs:2 (fun i x -> x + i) [ 10; 20; 30 ])

let test_edge_inputs () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) "empty input" []
        (Pool.parallel_map ~jobs square []);
      Alcotest.(check (list int)) "singleton input" [ 49 ]
        (Pool.parallel_map ~jobs square [ 7 ]);
      Alcotest.(check (list int)) "zero-length init" []
        (Pool.parallel_init ~jobs 0 square))
    [ 1; 2; 8 ]

let test_iter_runs_all () =
  let hits = Atomic.make 0 in
  Pool.parallel_iter ~jobs:4
    (fun _ -> Atomic.incr hits)
    (List.init 57 Fun.id);
  Alcotest.(check int) "every element visited" 57 (Atomic.get hits)

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failure re-raised at jobs=%d" jobs)
        (Failure "task-10")
        (fun () ->
          ignore
            (Pool.parallel_map ~jobs
               (fun i ->
                 if i >= 10 then failwith (Printf.sprintf "task-%d" i) else i)
               (List.init 100 Fun.id))))
    [ 1; 2; 8 ]

let test_exception_cancels () =
  (* Once a task fails, no chunk past the failure should start: with the
     failing task at position 0 and chunk 1, far fewer than all 200
     tasks run before the pool drains. Can't assert an exact count —
     workers legitimately finish chunks already claimed — but all-200
     would mean cancellation never happened. *)
  let started = Atomic.make 0 in
  (try
     Pool.parallel_iter ~jobs:2
       (fun i ->
         Atomic.incr started;
         if i = 0 then failwith "early")
       (List.init 200 Fun.id)
   with Failure _ -> ());
  Alcotest.(check bool) "later chunks cancelled" true
    (Atomic.get started < 200)

(* The pool is persistent: after a warm-up batch, further batches at the
   same (or a smaller) job count must not spawn any new domain. *)
let test_pool_reuse () =
  let input = List.init 64 Fun.id in
  let expected = List.map square input in
  ignore (Pool.parallel_map ~jobs:3 square input);
  let before = Pool.spawned_domains () in
  for _ = 1 to 5 do
    Alcotest.(check (list int))
      "warm batch correct" expected
      (Pool.parallel_map ~jobs:3 square input)
  done;
  Alcotest.(check int) "no new domains across batches" before
    (Pool.spawned_domains ());
  ignore (Pool.parallel_map ~jobs:2 square input);
  Alcotest.(check int) "smaller batches reuse parked workers" before
    (Pool.spawned_domains ())

let test_pool_reuse_after_failure () =
  ignore (Pool.parallel_map ~jobs:3 square (List.init 16 Fun.id));
  let before = Pool.spawned_domains () in
  (try
     ignore
       (Pool.parallel_map ~jobs:3
          (fun _ -> failwith "boom")
          (List.init 16 Fun.id))
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool survives a failing batch"
    (List.init 32 square)
    (Pool.parallel_map ~jobs:3 square (List.init 32 Fun.id));
  Alcotest.(check int) "no new domains after the failure" before
    (Pool.spawned_domains ())

(* A task that itself calls into the pool must not deadlock on the busy
   pool: nested submissions take the spawn-per-call fallback. *)
let test_nested_fallback () =
  let expected = List.init 8 square in
  let outer =
    Pool.parallel_map ~jobs:2
      (fun _ -> Pool.parallel_map ~jobs:2 square (List.init 8 Fun.id))
      (List.init 4 Fun.id)
  in
  List.iter
    (fun inner ->
      Alcotest.(check (list int)) "nested map correct" expected inner)
    outer

let test_jobs_env () =
  let saved = Sys.getenv_opt "CHRONUS_JOBS" in
  let restore () =
    Unix.putenv "CHRONUS_JOBS" (Option.value ~default:"1" saved)
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "CHRONUS_JOBS" "3";
      Alcotest.(check int) "CHRONUS_JOBS honoured" 3 (Pool.default_jobs ());
      Unix.putenv "CHRONUS_JOBS" "0";
      Alcotest.(check bool) "non-positive rejected" true
        (match Pool.default_jobs () with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* The tentpole guarantee: fanning the experiment trials out across
   domains changes nothing about the rows. *)
let test_experiments_equal () =
  let scale = E.Scale.tiny in
  let fingerprint v = Digest.string (Marshal.to_string v []) in
  let check name seq par =
    Alcotest.(check string)
      (name ^ " rows identical sequential vs parallel")
      (fingerprint seq) (fingerprint par)
  in
  let fig7_seq = E.Fig7.run ~jobs:1 ~scale () in
  check "fig7" fig7_seq (E.Fig7.run ~jobs:4 ~scale ());
  (* Metrics observe, never branch: a traced parallel run still matches
     the untraced sequential fingerprint. *)
  let module Obs = Chronus_obs.Obs in
  let file = Filename.temp_file "chronus_parallel_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_path None;
      Sys.remove file)
    (fun () ->
      Obs.Trace.set_path (Some file);
      check "fig7 traced" fig7_seq (E.Fig7.run ~jobs:4 ~scale ()));
  check "fig8" (E.Fig8.run ~jobs:1 ~scale ()) (E.Fig8.run ~jobs:4 ~scale ());
  check "fig9" (E.Fig9.run ~jobs:1 ~scale ()) (E.Fig9.run ~jobs:4 ~scale ());
  check "fig11"
    (E.Fig11.run ~jobs:1 ~scale ())
    (E.Fig11.run ~jobs:4 ~scale ());
  check "ablation"
    (E.Ablation.run ~jobs:1 ~scale ())
    (E.Ablation.run ~jobs:4 ~scale ())

let test_opt_portfolio () =
  let inst = Helpers.fig1 () in
  let seq = Chronus_baselines.Opt.solve ~budget:200_000 ~timeout:10.0 inst in
  let par =
    Chronus_baselines.Opt.solve ~budget:200_000 ~timeout:10.0 ~jobs:4 inst
  in
  let makespan r = Chronus_baselines.Opt.makespan_of r in
  Alcotest.(check bool) "sequential proves optimal" true
    (match seq.Chronus_baselines.Opt.outcome with
    | Chronus_baselines.Opt.Optimal _ -> true
    | _ -> false);
  Alcotest.(check bool) "portfolio proves optimal" true
    (match par.Chronus_baselines.Opt.outcome with
    | Chronus_baselines.Opt.Optimal _ -> true
    | _ -> false);
  Alcotest.(check (option int))
    "same optimal makespan" (makespan seq) (makespan par)

let test_opt_portfolio_budget () =
  (* With a starved shared budget and a greedy hint, the portfolio must
     degrade to [Feasible hint] exactly like the single-domain path. *)
  let open Chronus_topo in
  let rng = Rng.make 77 in
  let inst = Scenario.random_final ~rng (Scenario.spec 14) in
  match Chronus_core.Greedy.schedule inst with
  | Chronus_core.Greedy.Infeasible _ -> ()
  | Chronus_core.Greedy.Scheduled hint ->
      let r =
        Chronus_baselines.Opt.solve ~budget:3 ~timeout:10.0 ~hint ~jobs:4 inst
      in
      Alcotest.(check bool) "falls back to the hint" true
        (match r.Chronus_baselines.Opt.outcome with
        | Chronus_baselines.Opt.Feasible s ->
            Chronus_flow.Schedule.equal s hint
        | Chronus_baselines.Opt.Optimal _ ->
            (* A tiny instance can be solved within even 3 nodes. *)
            true
        | _ -> false)

let suite =
  ( "parallel",
    [
      Alcotest.test_case "map ordering" `Quick test_ordering;
      Alcotest.test_case "init" `Quick test_init;
      Alcotest.test_case "mapi positions" `Quick test_mapi;
      Alcotest.test_case "empty and singleton" `Quick test_edge_inputs;
      Alcotest.test_case "iter visits all" `Quick test_iter_runs_all;
      Alcotest.test_case "exception re-raised" `Quick test_exception_propagates;
      Alcotest.test_case "exception cancels" `Quick test_exception_cancels;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "pool reuse after failure" `Quick
        test_pool_reuse_after_failure;
      Alcotest.test_case "nested call falls back" `Quick test_nested_fallback;
      Alcotest.test_case "CHRONUS_JOBS env" `Quick test_jobs_env;
      Alcotest.test_case "experiments identical at any jobs" `Slow
        test_experiments_equal;
      Alcotest.test_case "opt portfolio optimality" `Quick test_opt_portfolio;
      Alcotest.test_case "opt portfolio budget fallback" `Quick
        test_opt_portfolio_budget;
    ] )
