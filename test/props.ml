(* Property-based tests (qcheck) over the core invariants. Instances are
   generated from integer seeds so that counterexamples shrink to a seed
   that can be replayed directly. *)

open Chronus_flow
open Chronus_core
open Chronus_baselines
open QCheck

let count = 60

(* The headline guarantee (Theorem 3): whatever the greedy schedules in
   Exact mode is congestion- and loop-free per the oracle. *)
let greedy_exact_consistent =
  Test.make ~count ~name:"greedy (exact) schedules are oracle-consistent"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      match Greedy.schedule ~mode:Greedy.Exact inst with
      | Greedy.Scheduled sched -> Oracle.is_consistent inst sched
      | Greedy.Infeasible _ -> true)

let greedy_analytic_consistent =
  Test.make ~count
    ~name:"greedy (analytic) schedules are oracle-consistent"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      match Greedy.schedule ~mode:Greedy.Analytic inst with
      | Greedy.Scheduled sched -> Oracle.is_consistent inst sched
      | Greedy.Infeasible _ -> true)

(* Greedy is *not* complete: committing every safe head as early as
   possible can paint the scheduler into a corner that a coordinated
   delay avoids (instance seed 8643 is a witness — branch-and-bound
   schedules it by holding one flip back four steps). Theorem 2's
   monotone-waiting argument grounds the infeasible verdict differently:
   the committed prefix is itself consistent, it genuinely leaves
   switches unscheduled, and waiting longer under *that prefix* can
   never help. That is what we can assert against ground truth. *)
let greedy_infeasible_prefix_grounded =
  Test.make ~count:30
    ~name:"greedy infeasibility leaves a consistent partial schedule"
    (Helpers.arbitrary_instance ~max_n:6 ())
    (fun seed ->
      let inst = Helpers.instance_of_seed ~max_n:6 seed in
      match Greedy.schedule ~mode:Greedy.Exact inst with
      | Greedy.Scheduled _ -> true
      | Greedy.Infeasible { partial; remaining } ->
          remaining <> []
          && (not (Schedule.covers inst partial))
          && (Oracle.evaluate inst partial).Oracle.ok)

let fallback_covers_and_never_misroutes =
  Test.make ~count
    ~name:"fallback covers all updates and never loops/blackholes"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let { Fallback.schedule; _ } = Fallback.schedule inst in
      Schedule.covers inst schedule
      && List.for_all
           (function Oracle.Congestion _ -> true | _ -> false)
           (Oracle.evaluate inst schedule).Oracle.violations)

let opt_optimal_below_greedy =
  Test.make ~count:30 ~name:"OPT is consistent and no worse than greedy"
    (Helpers.arbitrary_instance ~max_n:6 ())
    (fun seed ->
      let inst = Helpers.instance_of_seed ~max_n:6 seed in
      match (Opt.solve ~budget:30_000 ~timeout:2.0 inst).Opt.outcome with
      | Opt.Optimal sched -> (
          Oracle.is_consistent inst sched
          &&
          match Greedy.schedule inst with
          | Greedy.Scheduled g ->
              Schedule.makespan sched <= Schedule.makespan g
          | Greedy.Infeasible _ -> true)
      | Opt.Infeasible -> true (* exactness vs enumeration tested in suite_opt *)
      | Opt.Feasible _ | Opt.Unknown -> true)

let or_rounds_loop_free =
  Test.make ~count ~name:"OR rounds are loop-free under any interleaving"
    (Helpers.arbitrary_instance ~max_n:7 ())
    (fun seed ->
      let inst = Helpers.instance_of_seed ~max_n:7 seed in
      match Order_replacement.greedy_rounds inst with
      | None -> true
      | Some rounds ->
          let _, ok =
            List.fold_left
              (fun (done_, ok) round ->
                ( done_ @ round,
                  ok
                  && List.length round <= 10
                     (* keep the 2^|round| check bounded *)
                  && Order_replacement.interleavings_loop_free inst ~done_
                       ~round ))
              ([], true) rounds
          in
          ok)

let oracle_steady_states_consistent =
  Test.make ~count ~name:"empty and complete-at-drain schedules behave"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      (* Never updating anything is always consistent (the old path is a
         valid steady state). *)
      (Oracle.evaluate inst Schedule.empty).Oracle.ok)

let dependency_heads_subset =
  Test.make ~count ~name:"dependency heads are remaining switches"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      let remaining = Instance.switches_to_update inst in
      let dep =
        Dependency.at inst (Drain.make inst) Schedule.empty ~remaining
          ~time:0
      in
      List.for_all (fun h -> List.mem h remaining) (Dependency.heads dep))

let schedule_shift_preserves_order =
  Test.make ~count:100 ~name:"schedule shift preserves relative order"
    (pair (list (pair (int_bound 50) (int_bound 20))) (int_bound 10))
    (fun (entries, delta) ->
      let entries =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) entries
      in
      let sched = Schedule.of_list entries in
      let shifted = Schedule.shift delta sched in
      List.for_all2
        (fun (v1, t1) (v2, t2) -> v1 = v2 && t2 = t1 + delta)
        (Schedule.to_list sched)
        (Schedule.to_list shifted))

let cdf_monotone =
  Test.make ~count:100 ~name:"CDF evaluation is monotone and bounded"
    (list_of_size Gen.(1 -- 30) (int_bound 100))
    (fun samples ->
      let open Chronus_stats in
      let cdf = Cdf.of_int_samples samples in
      let xs = List.init 20 (fun i -> float_of_int (i * 10)) in
      let values = List.map (Cdf.eval cdf) xs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone values
      && List.for_all (fun v -> v >= 0. && v <= 1.) values)

let heap_sorts =
  Test.make ~count:100 ~name:"event queue pops in time order"
    (list (int_bound 1000))
    (fun times ->
      let open Chronus_sim in
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ignore) times;
      let rec pop acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> pop (t :: acc)
      in
      pop [] = List.sort compare times)

let dijkstra_triangle_inequality =
  Test.make ~count:50 ~name:"dijkstra distances obey relaxation"
    (int_bound 10_000)
    (fun seed ->
      let open Chronus_graph in
      let rng = Chronus_topo.Rng.make seed in
      let g =
        Chronus_topo.Topology.erdos_renyi
          ~params:{ Chronus_topo.Topology.capacity = 1; delay = 1 }
          ~rng ~p:0.3 8
      in
      let g = Chronus_topo.Topology.randomize_delays ~rng ~lo:1 ~hi:5 g in
      let dist = Shortest.dijkstra g 0 in
      List.for_all
        (fun (u, v, (e : Graph.edge)) ->
          match (Hashtbl.find_opt dist u, Hashtbl.find_opt dist v) with
          | Some (du, _), Some (dv, _) -> dv <= du + e.Graph.delay
          | Some _, None -> false (* v reachable through u *)
          | None, _ -> true)
        (Graph.edges g))

(* The closed-form accounting of pure and stable cohorts must agree with
   brute-force materialisation of every cohort. *)
let oracle_closed_form_equiv =
  Test.make ~count ~name:"oracle fast path agrees with exhaustive replay"
    (pair (Helpers.arbitrary_instance ()) (int_bound 100_000))
    (fun (seed, salt) ->
      let inst = Helpers.instance_of_seed seed in
      let rng = Chronus_topo.Rng.make salt in
      let sched =
        List.fold_left
          (fun s v ->
            if Chronus_topo.Rng.bool rng then
              Schedule.add v (Chronus_topo.Rng.int rng 6) s
            else s)
          Schedule.empty
          (Instance.switches_to_update inst)
      in
      let fast = (Oracle.evaluate inst sched).Oracle.ok in
      (* link_loads runs the exhaustive replay; reconstruct its verdict on
         congestion and combine with trace outcomes over the window. *)
      let exhaustive_congested =
        List.exists
          (fun ((u, v, _), load) ->
            load > Chronus_graph.Graph.capacity inst.Instance.graph u v)
          (Oracle.link_loads inst sched)
      in
      let window_lo = -Instance.init_delay inst - 1 in
      let window_hi =
        Schedule.max_time sched + Instance.init_delay inst
        + Instance.fin_delay inst + 2
      in
      let misrouted = ref false in
      for tau = window_lo to window_hi do
        match (Oracle.trace inst sched tau).Oracle.outcome with
        | Oracle.Delivered -> ()
        | Oracle.Looped _ | Oracle.Dropped _ -> misrouted := true
      done;
      fast = ((not exhaustive_congested) && not !misrouted))

let dijkstra_optimal =
  Test.make ~count:40 ~name:"dijkstra matches brute-force shortest delay"
    (int_bound 10_000)
    (fun seed ->
      let open Chronus_graph in
      let rng = Chronus_topo.Rng.make (seed + 77) in
      let g =
        Chronus_topo.Topology.erdos_renyi
          ~params:{ Chronus_topo.Topology.capacity = 1; delay = 1 }
          ~rng ~p:0.4 6
      in
      let g = Chronus_topo.Topology.randomize_delays ~rng ~lo:1 ~hi:4 g in
      (* Enumerate every simple path 0 ~> 5 and take the cheapest. *)
      let best = ref None in
      let rec dfs v cost visited =
        if v = 5 then
          best :=
            Some
              (match !best with None -> cost | Some b -> min b cost)
        else
          List.iter
            (fun (w, (e : Graph.edge)) ->
              if not (List.mem w visited) then
                dfs w (cost + e.Graph.delay) (w :: visited))
            (Graph.succ g v)
      in
      if Graph.mem_node g 0 then dfs 0 0 [ 0 ];
      Shortest.distance g 0 5 = !best)

let or_jitter_in_round_window =
  Test.make ~count:60 ~name:"round schedules stay inside their windows"
    (pair (Helpers.arbitrary_instance ()) (int_bound 1_000))
    (fun (seed, salt) ->
      let inst = Helpers.instance_of_seed seed in
      match Order_replacement.greedy_rounds inst with
      | None -> true
      | Some rounds ->
          let rng = Chronus_topo.Rng.make salt in
          let gap = 6 in
          let sched =
            Order_replacement.schedule_of_rounds ~gap
              ~jitter:(fun ~round:_ _ -> Chronus_topo.Rng.int rng 100)
              rounds
          in
          List.for_all
            (fun (v, t) ->
              let round =
                let rec find i = function
                  | [] -> -1
                  | r :: rest -> if List.mem v r then i else find (i + 1) rest
                in
                find 0 rounds
              in
              t >= round * gap && t < (round + 1) * gap)
            (Schedule.to_list sched))

let tp_rules_exceed_chronus =
  Test.make ~count ~name:"TP transition footprint exceeds Chronus's"
    (Helpers.arbitrary_instance ())
    (fun seed ->
      let inst = Helpers.instance_of_seed seed in
      Instance.is_trivial inst
      || (Two_phase.rule_count inst).Two_phase.transition_peak
         > Two_phase.chronus_rule_count inst)

let suite =
  Helpers.qsuite "properties"
    [
      greedy_exact_consistent;
      greedy_analytic_consistent;
      greedy_infeasible_prefix_grounded;
      fallback_covers_and_never_misroutes;
      opt_optimal_below_greedy;
      or_rounds_loop_free;
      oracle_steady_states_consistent;
      dependency_heads_subset;
      schedule_shift_preserves_order;
      cdf_monotone;
      heap_sorts;
      dijkstra_triangle_inequality;
      oracle_closed_form_equiv;
      dijkstra_optimal;
      or_jitter_in_round_window;
      tp_rules_exceed_chronus;
    ]
