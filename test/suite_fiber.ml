(* The effects-based cooperative runtime: deterministic replay (same
   spawn order -> bit-identical trace, at any job count), the two-batch
   id-ordered scheduling discipline, mailbox FIFO delivery and timeouts,
   virtual-time sleep/timeout, structured cancellation cascading to
   children, and the heavy-traffic acceptance run — ten thousand live
   session fibers through one clean timed update on a k=16 fat-tree. *)

module Fiber = Chronus_fiber.Fiber
module Engine = Chronus_sim.Engine
module Sim_time = Chronus_sim.Sim_time
module Obs = Chronus_obs.Obs
module E = Chronus_experiments

let dig v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Scheduling: ready fibers run in spawn-id order; yield defers to the
   next batch; the whole interleaving replays bit-identically. *)

(* A little concurrent program whose observable trace depends on every
   scheduler decision: fibers yield, sleep, and relay tokens through a
   shared mailbox. *)
let trace_program () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let trace = ref [] in
  let say fmt = Printf.ksprintf (fun s -> trace := s :: !trace) fmt in
  let box = Fiber.Mailbox.create rt in
  for i = 0 to 4 do
    ignore
      (Fiber.spawn_root rt (fun () ->
           say "%d: start at %d" i (Fiber.now ());
           Fiber.yield ();
           say "%d: yielded" i;
           Fiber.sleep (Sim_time.msec (10 * (i + 1)));
           Fiber.Mailbox.send box i;
           say "%d: sent at %d" i (Fiber.now ()))
        : unit Fiber.t)
  done;
  ignore
    (Fiber.spawn_root rt (fun () ->
         for _ = 0 to 4 do
           let i = Fiber.Mailbox.recv box in
           say "collector: got %d at %d" i (Fiber.now ())
         done)
      : unit Fiber.t);
  Engine.run engine;
  List.rev !trace

let test_trace_deterministic () =
  let a = trace_program () in
  Alcotest.(check bool) "trace is non-trivial" true (List.length a > 15);
  Alcotest.(check string) "bit-identical replay" (dig a)
    (dig (trace_program ()))

let test_ready_order_by_id () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let order = ref [] in
  (* Spawn in reverse announcement order: ids still dictate who runs
     first within the batch. *)
  let fibers =
    List.init 5 (fun i ->
        Fiber.spawn_root rt (fun () -> order := i :: !order))
  in
  ignore (fibers : unit Fiber.t list);
  Fiber.drain rt;
  Alcotest.(check (list int)) "id order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_yield_is_starvation_free () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let log = ref [] in
  for i = 0 to 1 do
    ignore
      (Fiber.spawn_root rt (fun () ->
           for round = 0 to 2 do
             log := (i, round) :: !log;
             Fiber.yield ()
           done)
        : unit Fiber.t)
  done;
  Fiber.drain rt;
  (* Rounds interleave: both fibers complete round r before either
     starts round r+1. *)
  Alcotest.(check (list (pair int int)))
    "round-robin interleaving"
    [ (0, 0); (1, 0); (0, 1); (1, 1); (0, 2); (1, 2) ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Mailboxes. *)

let test_mailbox_fifo () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let box = Fiber.Mailbox.create rt in
  let got = ref [] in
  List.iter (fun i -> Fiber.Mailbox.send box i) [ 1; 2; 3 ];
  Alcotest.(check int) "depth counts queued messages" 3
    (Fiber.Mailbox.depth box);
  ignore
    (Fiber.spawn_root rt (fun () ->
         for _ = 1 to 3 do
           got := Fiber.Mailbox.recv box :: !got
         done)
      : unit Fiber.t);
  Fiber.drain rt;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] (List.rev !got);
  Alcotest.(check (option int)) "try_recv on empty" None
    (Fiber.Mailbox.try_recv box)

let test_mailbox_recv_until () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let box = Fiber.Mailbox.create rt in
  let timed_out = ref None and late = ref None in
  ignore
    (Fiber.spawn_root rt (fun () ->
         timed_out := Some (Fiber.Mailbox.recv_until ~deadline:(Sim_time.msec 5) box);
         (* The message lands at 10 ms, after the first deadline but
            before the second. *)
         late := Some (Fiber.Mailbox.recv_until ~deadline:(Sim_time.msec 50) box))
      : unit Fiber.t);
  ignore
    (Fiber.spawn_root rt (fun () ->
         Fiber.sleep_until (Sim_time.msec 10);
         Fiber.Mailbox.send box 42)
      : unit Fiber.t);
  Engine.run engine;
  Alcotest.(check (option (option int))) "deadline passes empty-handed"
    (Some None) !timed_out;
  Alcotest.(check (option (option int))) "message beats second deadline"
    (Some (Some 42)) !late

(* ------------------------------------------------------------------ *)
(* Virtual time. *)

let test_sleep_and_timeout () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let wake = ref (-1) and fast = ref None and slow = ref None in
  ignore
    (Fiber.spawn_root rt (fun () ->
         Fiber.sleep (Sim_time.msec 7);
         wake := Fiber.now ();
         (* A body that finishes before its budget. *)
         fast :=
           Fiber.timeout_at
             (Fiber.now () + Sim_time.msec 100)
             (fun () ->
               Fiber.sleep (Sim_time.msec 1);
               "done");
         (* A body that oversleeps its budget. *)
         slow :=
           Some
             (Fiber.timeout_at
                (Fiber.now () + Sim_time.msec 2)
                (fun () ->
                  Fiber.sleep (Sim_time.msec 50);
                  "never")))
      : unit Fiber.t);
  Engine.run engine;
  Alcotest.(check int) "sleep wakes at the virtual instant" (Sim_time.msec 7)
    !wake;
  Alcotest.(check (option string)) "fast body returns" (Some "done") !fast;
  Alcotest.(check (option (option string))) "slow body times out" (Some None)
    !slow

(* ------------------------------------------------------------------ *)
(* Join, poll, and structured cancellation. *)

let test_wait_and_poll () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let child =
    Fiber.spawn_root rt (fun () ->
        Fiber.sleep (Sim_time.msec 3);
        41 + 1)
  in
  Alcotest.(check bool) "unfinished fiber polls None" true
    (Fiber.poll child = None);
  let joined = ref None in
  ignore
    (Fiber.spawn_root rt (fun () -> joined := Some (Fiber.join child))
      : unit Fiber.t);
  Engine.run engine;
  Alcotest.(check (option int)) "join returns the fiber's value" (Some 42)
    !joined;
  Alcotest.(check bool) "finished fiber polls its result" true
    (Fiber.poll child = Some (Ok 42))

let test_cancellation_cascades () =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  let before = Obs.snapshot () in
  let child_state = ref `Running and parent_state = ref `Running in
  let parent =
    Fiber.spawn_root rt (fun () ->
        ignore
          (Fiber.spawn (fun () ->
               match Fiber.sleep (Sim_time.sec 10) with
               | () -> child_state := `Finished
               | exception Fiber.Cancelled ->
                   child_state := `Cancelled;
                   raise Fiber.Cancelled)
            : unit Fiber.t);
        match Fiber.sleep (Sim_time.sec 10) with
        | () -> parent_state := `Finished
        | exception Fiber.Cancelled ->
            parent_state := `Cancelled;
            raise Fiber.Cancelled)
  in
  Fiber.drain rt;
  Fiber.cancel parent;
  Fiber.drain rt;
  let state = Alcotest.testable Fmt.(any "state") ( = ) in
  Alcotest.check state "parent saw Cancelled at its sleep" `Cancelled
    !parent_state;
  Alcotest.check state "cancellation cascaded to the child" `Cancelled
    !child_state;
  Alcotest.(check bool) "the fiber resolved to Cancelled" true
    (match Fiber.poll parent with
    | Some (Error Fiber.Cancelled) -> true
    | _ -> false);
  let cancelled =
    match
      List.assoc_opt "fiber.cancellations" (Obs.diff before (Obs.snapshot ()))
    with
    | Some (Obs.Counter n) -> n
    | _ -> 0
  in
  Alcotest.(check bool) "fiber.cancellations counted both" true (cancelled >= 2)

(* ------------------------------------------------------------------ *)
(* The heavy-traffic figure: the ISSUE's acceptance bar (>= 10,000
   concurrent fibers through one clean timed update on a k=16 fat-tree)
   and jobs-parity of every deterministic column. *)

let deterministic (r : E.Fig_conns.row) =
  ( r.E.Fig_conns.conns,
    r.E.Fig_conns.switches,
    r.E.Fig_conns.peak_fibers,
    r.E.Fig_conns.pings,
    r.E.Fig_conns.rtt_p50_ms,
    r.E.Fig_conns.rtt_p99_ms,
    r.E.Fig_conns.update_clean,
    r.E.Fig_conns.update_span_s,
    r.E.Fig_conns.events )

let test_conns_ten_thousand () =
  match E.Fig_conns.run ~jobs:1 ~scale:E.Scale.quick ~conns:[ 10_000 ] () with
  | [ r ] ->
      Alcotest.(check bool) "k=16 fat-tree" true (r.E.Fig_conns.switches = 320);
      Alcotest.(check bool) "ten thousand concurrent fibers" true
        (r.E.Fig_conns.peak_fibers >= 10_000);
      Alcotest.(check bool) "the timed update completed cleanly" true
        r.E.Fig_conns.update_clean;
      Alcotest.(check bool) "sessions actually pinged" true
        (r.E.Fig_conns.pings > 10_000)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_conns_jobs_parity () =
  let run jobs = E.Fig_conns.run ~jobs ~scale:E.Scale.tiny () in
  Alcotest.(check string) "rows identical at jobs=1 and jobs=3"
    (dig (List.map deterministic (run 1)))
    (dig (List.map deterministic (run 3)))

let suite =
  ( "fiber",
    [
      Alcotest.test_case "concurrent trace replays bit-identically" `Quick
        test_trace_deterministic;
      Alcotest.test_case "ready fibers run in spawn-id order" `Quick
        test_ready_order_by_id;
      Alcotest.test_case "yield round-robins the batch" `Quick
        test_yield_is_starvation_free;
      Alcotest.test_case "mailbox is FIFO; depth and try_recv" `Quick
        test_mailbox_fifo;
      Alcotest.test_case "recv_until times out and recovers" `Quick
        test_mailbox_recv_until;
      Alcotest.test_case "sleep and timeout_at on virtual time" `Quick
        test_sleep_and_timeout;
      Alcotest.test_case "wait, join and poll" `Quick test_wait_and_poll;
      Alcotest.test_case "cancellation cascades to children" `Quick
        test_cancellation_cascades;
      Alcotest.test_case "conns: 10k fibers, clean k=16 update" `Slow
        test_conns_ten_thousand;
      Alcotest.test_case "conns rows independent of job count" `Slow
        test_conns_jobs_parity;
    ] )
