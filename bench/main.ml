(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Table II, Figs. 6-11) at the `quick` scale and prints the same
   rows/series the paper reports — set CHRONUS_SCALE=paper in the
   environment for the published scale (CHRONUS_SCALE=tiny is the CI
   smoke scale). When more than one domain is available (CHRONUS_JOBS,
   else the recommended domain count) the suite is run twice — once
   sequentially, once with the trial fan-out — the wall-clock of both
   passes is reported, and the deterministic experiment rows of the two
   passes are checked for equality.

   Part 2 runs Bechamel micro-benchmarks over every algorithmic
   component: the greedy scheduler (both engines), the
   dependency-relation and loop-check primitives, the oracle, the
   time-extended network construction, and the baselines.

   Both parts also land in BENCH_results.json (schema documented in
   EXPERIMENTS.md) so successive PRs can track the perf trajectory
   mechanically. CHRONUS_BENCH=experiments|micro|all (default all)
   selects the parts to run. *)

open Bechamel
module E = Chronus_experiments
module Pool = Chronus_parallel.Pool
module Obs = Chronus_obs.Obs
open Chronus_flow
open Chronus_core
open Chronus_baselines
open Chronus_topo

(* ------------------------------------------------------------------ *)
(* Part 1: the experiment suite.                                       *)

(* Every figure is optional so `--figures <list>` can run a subset: a
   field is [None] exactly when the filter excluded that figure, which
   keeps the sequential/parallel digest comparison meaningful (both
   passes run the same subset). *)
type suite = {
  table2 : E.Table2.result option;
  fig6 : E.Fig6.result option;
  fig7 : E.Fig7.row list option;
  fig8 : E.Fig8.row list option;
  fig9 : E.Fig9.row list option;
  fig10 : E.Fig10.row list option;
  fig_scale : E.Fig_scale.row list option;
  fig_service : E.Fig_service.row list option;
  fig_conns : E.Fig_conns.row list option;
  fig11 : E.Fig11.result option;
  robust : E.Fig_robust.row list option;
  ablation : E.Ablation.row list option;
  wall_s : float;  (** full part-1 wall clock *)
  trial_wall_s : float;  (** the trial-parallel experiments only *)
  metrics : (string * Obs.snapshot) list;
      (** per-figure observability deltas, in run order; excluded from
          the determinism digest (metrics observe, never decide) *)
}

let figure_names =
  [
    E.Table2.name; E.Fig6.name; E.Fig7.name; E.Fig8.name; E.Fig9.name;
    E.Fig10.name; E.Fig_scale.name; E.Fig_service.name; E.Fig_conns.name;
    E.Fig11.name; E.Fig_robust.name; E.Ablation.name;
  ]

(* Everything except the measured timings of Fig. 10, the scale figure
   and the service figure is a pure function of (scale, seed), so the
   digest must match between a sequential and a parallel pass bit for
   bit. *)
let digest s =
  Digest.string
    (Marshal.to_string
       (s.table2, s.fig6, s.fig7, s.fig8, s.fig9, s.fig11, s.robust, s.ablation)
       [])

let run_suite ~jobs ~want scale =
  let now () = Unix.gettimeofday () in
  let figure_metrics = ref [] in
  (* Counters are cumulative across the whole process; per-figure views
     are snapshot deltas taken around each figure's run. *)
  let measured name f =
    if not (want name) then None
    else begin
      let before = Obs.snapshot () in
      let r = f () in
      figure_metrics :=
        (name, Obs.diff before (Obs.snapshot ())) :: !figure_metrics;
      Some r
    end
  in
  let t0 = now () in
  let table2 = measured E.Table2.name (fun () -> E.Table2.run ~jobs ()) in
  let fig6 = measured E.Fig6.name (fun () -> E.Fig6.run ()) in
  let t1 = now () in
  let fig7 = measured E.Fig7.name (fun () -> E.Fig7.run ~jobs ~scale ()) in
  let fig8 = measured E.Fig8.name (fun () -> E.Fig8.run ~jobs ~scale ()) in
  let fig9 = measured E.Fig9.name (fun () -> E.Fig9.run ~jobs ~scale ()) in
  let fig11 = measured E.Fig11.name (fun () -> E.Fig11.run ~jobs ~scale ()) in
  let robust =
    measured E.Fig_robust.name (fun () -> E.Fig_robust.run ~jobs ~scale ())
  in
  let ablation =
    measured E.Ablation.name (fun () -> E.Ablation.run ~jobs ~scale ())
  in
  let t2 = now () in
  let fig10 = measured E.Fig10.name (fun () -> E.Fig10.run ~jobs ~scale ()) in
  let fig_scale =
    measured E.Fig_scale.name (fun () -> E.Fig_scale.run ~jobs ~scale ())
  in
  let fig_service =
    measured E.Fig_service.name (fun () -> E.Fig_service.run ~jobs ~scale ())
  in
  let fig_conns =
    measured E.Fig_conns.name (fun () -> E.Fig_conns.run ~jobs ~scale ())
  in
  let t3 = now () in
  {
    table2;
    fig6;
    fig7;
    fig8;
    fig9;
    fig10;
    fig_scale;
    fig_service;
    fig_conns;
    fig11;
    robust;
    ablation;
    wall_s = t3 -. t0;
    trial_wall_s = t2 -. t1;
    metrics = List.rev !figure_metrics;
  }

let print_suite ?(metrics = false) s =
  let banner name =
    Printf.printf "\n================ %s ================\n%!" name
  in
  let print_metrics name =
    if metrics then
      match List.assoc_opt name s.metrics with
      | None | Some [] -> ()
      | Some snap ->
          Printf.printf "\n-- metrics (%s) --\n" name;
          Obs.print_table snap
  in
  let figure name print v =
    match v with
    | None -> ()
    | Some v ->
        banner name;
        print v;
        print_metrics name
  in
  figure E.Table2.name E.Table2.print s.table2;
  figure E.Fig6.name E.Fig6.print s.fig6;
  figure E.Fig7.name E.Fig7.print s.fig7;
  figure E.Fig8.name E.Fig8.print s.fig8;
  figure E.Fig9.name E.Fig9.print s.fig9;
  figure E.Fig10.name E.Fig10.print s.fig10;
  figure E.Fig_scale.name E.Fig_scale.print s.fig_scale;
  figure E.Fig_service.name E.Fig_service.print s.fig_service;
  figure E.Fig_conns.name E.Fig_conns.print s.fig_conns;
  figure E.Fig11.name E.Fig11.print s.fig11;
  figure E.Fig_robust.name E.Fig_robust.print s.robust;
  figure E.Ablation.name E.Ablation.print s.ablation

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks.                                           *)

(* Deterministic instances reused across benchmark iterations. *)
let instance_of_size n =
  let rng = Rng.make (1000 + n) in
  Scenario.long_chain ~rng (Scenario.spec ~capacity_choices:[ 2 ] n)

let fig1 = Scenario.fig1_example ()

let greedy_tests =
  List.map
    (fun n ->
      let inst = instance_of_size n in
      Test.make
        ~name:(Printf.sprintf "greedy-analytic/%d" n)
        (Staged.stage (fun () ->
             ignore (Greedy.schedule ~mode:Greedy.Analytic inst))))
    [ 50; 200; 800 ]

let greedy_exact_tests =
  List.map
    (fun n ->
      let inst = instance_of_size n in
      Test.make
        ~name:(Printf.sprintf "greedy-exact/%d" n)
        (Staged.stage (fun () ->
             ignore (Greedy.schedule ~mode:Greedy.Exact inst))))
    [ 20; 60 ]

let primitive_tests =
  let inst = instance_of_size 200 in
  let drain = Drain.make inst in
  let remaining = Instance.switches_to_update inst in
  let sched =
    match Greedy.schedule ~mode:Greedy.Analytic inst with
    | Greedy.Scheduled s -> s
    | Greedy.Infeasible { partial; _ } -> partial
  in
  [
    Test.make ~name:"dependency-set/200"
      (Staged.stage (fun () ->
           ignore
             (Dependency.at inst drain Schedule.empty ~remaining ~time:0)));
    Test.make ~name:"drain-view/200"
      (Staged.stage (fun () -> ignore (Drain.view drain sched)));
    Test.make ~name:"loop-check/200"
      (Staged.stage (fun () ->
           ignore
             (Loop_check.timed inst Schedule.empty
                ~candidate:(List.hd remaining) ~time:0)));
    Test.make ~name:"oracle-evaluate/200"
      (Staged.stage (fun () -> ignore (Oracle.evaluate inst sched)));
    Test.make ~name:"time-extended-build/fig1"
      (Staged.stage (fun () ->
           ignore
             (Time_extended.build fig1.Instance.graph ~t_lo:(-5) ~t_hi:5)));
    Test.make ~name:"tree-check/fig1"
      (Staged.stage (fun () -> ignore (Tree.check fig1)));
  ]

(* The incremental-checker primitives, on the same 200-switch chain the
   [oracle-evaluate/200] benchmark uses so the probe cost reads directly
   against the from-scratch cost it replaces. The base schedule holds the
   last few greedy flips out; probes cycle through them (two or more
   distinct probes, so the single-flip memo never short-circuits the
   measurement). *)
let oracle_incremental_tests =
  let inst = instance_of_size 200 in
  let sched =
    match Greedy.schedule ~mode:Greedy.Analytic inst with
    | Greedy.Scheduled s -> s
    | Greedy.Infeasible { partial; _ } -> partial
  in
  let flips = Schedule.to_list sched in
  let held = min 4 (List.length flips - 1) in
  let cut = List.length flips - held in
  let base =
    List.filteri (fun i _ -> i < cut) flips
    |> List.fold_left (fun s (v, t) -> Schedule.add v t s) Schedule.empty
  in
  let probes = Array.of_list (List.filteri (fun i _ -> i >= cut) flips) in
  let ck = Oracle.Checker.create inst base in
  let cursor = ref 0 in
  let next () =
    let p = probes.(!cursor mod Array.length probes) in
    incr cursor;
    p
  in
  if Array.length probes = 0 then []
  else
    [
      Test.make ~name:"oracle-incremental/create/200"
        (Staged.stage (fun () -> ignore (Oracle.Checker.create inst base)));
      Test.make ~name:"oracle-incremental/probe/200"
        (Staged.stage (fun () ->
             let v, t = next () in
             ignore (Oracle.Checker.probe ck v t)));
      Test.make ~name:"oracle-incremental/push-pop/200"
        (Staged.stage (fun () ->
             let v, t = next () in
             ignore (Oracle.Checker.push ck v t);
             Oracle.Checker.pop ck));
    ]

(* The data-plane structures, at the acceptance load: 1000 rules per
   switch over 256 destinations. The indexed table answers lookups from
   a per-destination bucket; the legacy list — the seed implementation,
   kept in-tree as [Flow_table.Legacy] — scans all 1000 rules, so the
   pair of rows reads directly as the speedup. *)
let flow_table_tests =
  let module FT = Chronus_sim.Flow_table in
  let act = { FT.set_tag = None; forward = FT.To_host } in
  let rules =
    let rng = Rng.make 77 in
    List.init 1000 (fun _ -> (Rng.int rng 8, Rng.int rng 256))
  in
  let t = FT.create () in
  List.iter
    (fun (priority, dst) ->
      ignore (FT.install t ~priority ~dst ~tag_match:FT.Any_tag act))
    rules;
  let l = FT.Legacy.create () in
  List.iter
    (fun (priority, dst) ->
      ignore (FT.Legacy.install l ~priority ~dst ~tag_match:FT.Any_tag act))
    rules;
  let probes =
    let rng = Rng.make 78 in
    Array.init 1024 (fun _ -> Rng.int rng 256)
  in
  let cursor = ref 0 in
  let next () =
    let d = probes.(!cursor land 1023) in
    incr cursor;
    d
  in
  [
    Test.make ~name:"flow-table/lookup/1000"
      (Staged.stage (fun () -> ignore (FT.lookup t ~dst:(next ()) ~tag:None)));
    Test.make ~name:"flow-table/legacy-lookup/1000"
      (Staged.stage (fun () ->
           ignore (FT.Legacy.lookup l ~dst:(next ()) ~tag:None)));
    Test.make ~name:"flow-table/modify/1000"
      (Staged.stage (fun () ->
           ignore (FT.modify_actions t ~dst:(next ()) ~tag_match:FT.Any_tag act)));
  ]

(* The prefix layer at the same load: 1000 aggregated rules in the
   longest-prefix trie, probed with random full-width addresses; plus
   one ORTC compilation of a 256-address fat-tree-shaped forwarding
   function (8 distinct next hops, 32 addresses each). *)
let prefix_table_tests =
  let module FT = Chronus_sim.Flow_table in
  let module TC = Chronus_sim.Table_compiler in
  let act v = { FT.set_tag = None; forward = FT.Out v } in
  let rng = Rng.make 80 in
  let space = 1 lsl FT.addr_bits in
  let p = FT.create () in
  for _ = 1 to 1000 do
    ignore
      (FT.install_prefix p
         ~priority:(Rng.int rng 8)
         ~prefix:(Rng.int rng space)
         ~len:(4 + Rng.int rng (FT.addr_bits - 4))
         ~tag_match:FT.Any_tag
         (act (Rng.int rng 16)))
  done;
  let probes = Array.init 1024 (fun _ -> Rng.int rng space) in
  let cursor = ref 0 in
  let next () =
    let d = probes.(!cursor land 1023) in
    incr cursor;
    d
  in
  let bindings =
    List.init 256 (fun i -> ((space / 2) lor i, act (i / 32)))
  in
  [
    Test.make ~name:"flow-table/prefix-lookup/1000"
      (Staged.stage (fun () -> ignore (FT.lookup p ~dst:(next ()) ~tag:None)));
    Test.make ~name:"table-compiler/compile/256"
      (Staged.stage (fun () -> ignore (TC.compile bindings)));
  ]

(* Steady-state hold model (push one, dispatch one) on a queue holding
   1000 pending events with microsecond-spread timestamps — the
   calendar ring against the seed binary heap it replaced. *)
let event_queue_tests =
  let module EQ = Chronus_sim.Event_queue in
  let times =
    let rng = Rng.make 79 in
    Array.init 4096 (fun _ -> Rng.int rng 1_000_000)
  in
  let nothing () = () in
  let preload push = for i = 0 to 999 do push ~time:times.(i) nothing done in
  let cq = EQ.Calendar.create () in
  preload (EQ.Calendar.push cq);
  let hq = EQ.Heap.create () in
  preload (EQ.Heap.push hq);
  let cursor = ref 1000 in
  let next () =
    let t = times.(!cursor land 4095) in
    incr cursor;
    t
  in
  [
    Test.make ~name:"event-queue/push-pop"
      (Staged.stage (fun () ->
           EQ.Calendar.push cq ~time:(next ()) nothing;
           ignore (EQ.Calendar.run_next cq)));
    Test.make ~name:"event-queue/heap-push-pop"
      (Staged.stage (fun () ->
           EQ.Heap.push hq ~time:(next ()) nothing;
           ignore (EQ.Heap.run_next hq)));
  ]

(* The update service's admission pipeline, on the shared-WAN shape
   fig-service drives: deriving one rule-granular footprint for a
   min-hop reroute, admitting a 16-request batch through the budget's
   per-link accounting, and the pooled checker's retarget-and-probe
   gate that replaced per-transaction from-scratch oracle
   evaluations. *)
let service_tests =
  let module G = Chronus_graph.Graph in
  let module Path = Chronus_graph.Path in
  let module Shortest = Chronus_graph.Shortest in
  let module Footprint = Chronus_service.Footprint in
  let rng = Rng.make 91 in
  let g =
    Topology.wan ~params:{ Topology.capacity = 3; delay = 1 } ~rng 32
  in
  let nodes = Array.of_list (G.nodes g) in
  (* Random reroute pairs — a min-hop route plus the min-hop detour
     around one of its links, the request shape fig-service submits. *)
  let rec draw_pair tries =
    if tries > 500 then failwith "bench: WAN yielded no detour pair"
    else
      let src = nodes.(Rng.int rng (Array.length nodes)) in
      let dst = nodes.(Rng.int rng (Array.length nodes)) in
      match if src = dst then None else Shortest.hop_path g src dst with
      | None -> draw_pair (tries + 1)
      | Some current -> (
          match Path.edges current with
          | [] -> draw_pair (tries + 1)
          | edges -> (
              let u, v = Rng.pick rng edges in
              let g' = G.copy g in
              G.remove_edge g' u v;
              match Shortest.hop_path g' src dst with
              | Some target when not (Path.equal current target) ->
                  (current, target)
              | Some _ | None -> draw_pair (tries + 1)))
  in
  let pairs = Array.init 16 (fun _ -> draw_pair 0) in
  let footprints =
    Array.to_list
      (Array.mapi
         (fun fid (current, target) ->
           Footprint.of_flow ~graph:g ~fid ~demand:1 ~current ~target)
         pairs)
  in
  let cursor = ref 0 in
  let next_pair () =
    let p = pairs.(!cursor land 15) in
    incr cursor;
    p
  in
  let no_steady _ _ = 0 in
  (* Two single-flow reroute instances over the same graph; each
     iteration retargets the persistent session to the other one and
     probes its full flip set — the service's per-transaction gate. *)
  let prepared =
    Array.map
      (fun (current, target) ->
        let inst =
          Instance.create ~graph:g ~demand:1 ~p_init:current ~p_fin:target
        in
        let flips =
          match Greedy.schedule ~mode:Greedy.Analytic inst with
          | Greedy.Scheduled s -> Schedule.to_list s
          | Greedy.Infeasible { partial; _ } -> Schedule.to_list partial
        in
        (inst, flips))
      [| pairs.(0); pairs.(1) |]
  in
  let ck = Oracle.Checker.create (fst prepared.(0)) Schedule.empty in
  let ck_cursor = ref 0 in
  [
    Test.make ~name:"service/footprint"
      (Staged.stage (fun () ->
           let current, target = next_pair () in
           ignore
             (Footprint.of_flow ~graph:g ~fid:0 ~demand:1 ~current ~target)));
    Test.make ~name:"service/admission"
      (Staged.stage (fun () ->
           let b =
             Footprint.Budget.create ~capacity:(G.capacity g)
               ~steady:no_steady
           in
           List.iteri
             (fun rid fp -> ignore (Footprint.Budget.admit b ~rid fp))
             footprints));
    Test.make ~name:"service/checker-probe"
      (Staged.stage (fun () ->
           let inst, flips = prepared.(!ck_cursor land 1) in
           incr ck_cursor;
           Oracle.Checker.retarget ck inst;
           ignore (Oracle.Checker.probe_list ck flips)));
  ]

(* The effects runtime: the cost of spawning-and-retiring one fiber on a
   free-standing runtime, and one full controller -> switch -> ack round
   trip through the fiber-per-switch channel (the session ping fig-conns
   multiplies by tens of thousands). *)
let fiber_tests =
  let module Fiber = Chronus_fiber.Fiber in
  let clock = ref 0 in
  let rt =
    Fiber.runtime ~now:(fun () -> !clock) ~schedule:(fun _ _ -> ())
  in
  let engine = Chronus_sim.Engine.create () in
  let net = Chronus_sim.Network.create engine in
  Chronus_sim.Network.add_switch net 0;
  let ctrl = Chronus_sim.Controller.create net in
  [
    Test.make ~name:"fiber/spawn"
      (Staged.stage (fun () ->
           ignore (Fiber.spawn_root rt (fun () -> ()) : unit Fiber.t);
           Fiber.drain rt));
    Test.make ~name:"fiber/switch-rtt"
      (Staged.stage (fun () ->
           Chronus_sim.Controller.send ctrl
             ~ack:(fun _ -> ())
             ~switch:0
             (Chronus_sim.Controller.Remove
                { dst = 9_999; tag_match = Chronus_sim.Flow_table.Any_tag });
           Chronus_sim.Engine.run engine));
  ]

let baseline_tests =
  let inst = instance_of_size 60 in
  [
    Test.make ~name:"or-greedy-rounds/60"
      (Staged.stage (fun () ->
           ignore (Order_replacement.greedy_rounds inst)));
    Test.make ~name:"or-minimum-rounds/fig1"
      (Staged.stage (fun () ->
           ignore (Order_replacement.minimum_rounds fig1)));
    Test.make ~name:"opt-branch-and-bound/fig1"
      (Staged.stage (fun () ->
           ignore (Opt.solve ~budget:100_000 ~timeout:10.0 fig1)));
    Test.make ~name:"tp-rule-count/60"
      (Staged.stage (fun () -> ignore (Two_phase.rule_count inst)));
  ]

let benchmarks () =
  let tests =
    Test.make_grouped ~name:"chronus"
      (greedy_tests @ greedy_exact_tests @ primitive_tests
      @ oracle_incremental_tests @ service_tests @ flow_table_tests
      @ prefix_table_tests @ event_queue_tests @ fiber_tests
      @ baseline_tests)
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "\n================ micro-benchmarks ================\n";
  Printf.printf "%-45s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (name, nanos) ->
      let human =
        if Float.is_nan nanos then "n/a"
        else if nanos > 1e9 then Printf.sprintf "%8.3f  s" (nanos /. 1e9)
        else if nanos > 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Printf.sprintf "%8.3f us" (nanos /. 1e3)
        else Printf.sprintf "%8.0f ns" nanos
      in
      Printf.printf "%-45s %16s\n" name human)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* BENCH_results.json: a tiny hand-rolled JSON emitter (the repo has no
   JSON dependency and must not grow one).                             *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec emit b indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f || Float.abs f = Float.infinity then
          Buffer.add_string b "null"
        else Buffer.add_string b (Printf.sprintf "%.6g" f)
    | String s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
    | Obj fields ->
        let pad n = String.make n ' ' in
        Buffer.add_string b "{";
        List.iteri
          (fun i (key, v) ->
            if i > 0 then Buffer.add_string b ",";
            Buffer.add_string b
              (Printf.sprintf "\n%s\"%s\": " (pad (indent + 2)) (escape key));
            emit b (indent + 2) v)
          fields;
        if fields <> [] then
          Buffer.add_string b (Printf.sprintf "\n%s" (pad indent));
        Buffer.add_string b "}"

  let to_string t =
    let b = Buffer.create 1024 in
    emit b 0 t;
    Buffer.add_char b '\n';
    Buffer.contents b
end

(* The cumulative observability snapshot: counters/gauges as numbers,
   spans as {count, total_ns, max_ns} objects (since chronus-bench/2). *)
let metrics_json () =
  Json.Obj
    (List.map
       (fun (label, v) ->
         match v with
         | Obs.Counter n | Obs.Gauge n -> (label, Json.Int n)
         | Obs.Span s ->
             ( label,
               Json.Obj
                 [
                   ("count", Json.Int s.Obs.Span.count);
                   ("total_ns", Json.Int s.Obs.Span.total_ns);
                   ("max_ns", Json.Int s.Obs.Span.max_ns);
                 ] ))
       (Obs.snapshot ()))

(* chronus-bench/3: how hard the incremental oracle worked across the
   whole run, plus the headline probes-per-second figure derived from the
   micro pass (null when only experiments ran). *)
let oracle_cache_json ~micro =
  let snap = Obs.snapshot () in
  let counter label =
    match List.assoc_opt label snap with
    | Some (Obs.Counter n) -> Json.Int n
    | _ -> Json.Int 0
  in
  let probes_per_s =
    match micro with
    | None -> Json.Null
    | Some rows -> (
        match List.assoc_opt "chronus/oracle-incremental/probe/200" rows with
        | Some ns when ns > 0. && not (Float.is_nan ns) ->
            Json.Float (1e9 /. ns)
        | _ -> Json.Null)
  in
  Json.Obj
    [
      ("cache_hits", counter "oracle.cache_hits");
      ("cohorts_retraced", counter "oracle.cohorts_retraced");
      ("full_evals", counter "oracle.full_evals");
      ("probes_per_s", probes_per_s);
    ]

(* chronus-bench/4: fault-injection and recovery activity across the
   whole run — every fault site plus the hardened timed executor's
   retry/fallback counters and the monitor's online violation tallies.
   Keys are always present (0 when a site never fired). *)
let faults_json () =
  let snap = Obs.snapshot () in
  let counter label =
    match List.assoc_opt label snap with
    | Some (Obs.Counter n) -> Json.Int n
    | _ -> Json.Int 0
  in
  Json.Obj
    [
      ("chan_lost", counter "faults.chan.lost");
      ("chan_duplicated", counter "faults.chan.duplicated");
      ("chan_delayed", counter "faults.chan.delayed");
      ("chan_reordered", counter "faults.chan.reordered");
      ("switch_rejected", counter "faults.switch.rejected");
      ("switch_straggled", counter "faults.switch.straggled");
      ("switch_crashed", counter "faults.switch.crashed");
      ("clock_skewed_flips", counter "faults.clock.skewed_flips");
      ("exec_retries", counter "exec.retries");
      ("exec_fallbacks", counter "exec.fallbacks");
      ("transient_loops", counter "monitor.transient_loops");
      ("blackhole_drops", counter "monitor.blackhole_drops");
      ("overload_samples", counter "monitor.overload_samples");
    ]

(* chronus-bench/5: the scale figure's rows — deterministic shape/size
   columns plus the wall-measured throughput and lookup cost. The wall
   columns vary run to run; they are reported here but never enter the
   determinism digest. *)
let scale_json suite =
  match suite.fig_scale with
  | None -> Json.Null
  | Some rows ->
      Json.Obj
        (List.map
           (fun (r : E.Fig_scale.row) ->
             ( r.E.Fig_scale.topo,
               Json.Obj
                 [
                   ("switches", Json.Int r.E.Fig_scale.switches);
                   ("links", Json.Int r.E.Fig_scale.links);
                   ("rules_exact", Json.Int r.E.Fig_scale.rules_exact);
                   ("rules_compiled", Json.Int r.E.Fig_scale.rules_compiled);
                   ("compression", Json.Float r.E.Fig_scale.compression);
                   ("table_words", Json.Int r.E.Fig_scale.table_words);
                   ("updates", Json.Int r.E.Fig_scale.updates);
                   ("events", Json.Int r.E.Fig_scale.events);
                   ("chronus_span_s", Json.Float r.E.Fig_scale.chronus_span_s);
                   ("tp_span_s", Json.Float r.E.Fig_scale.tp_span_s);
                   ("or_span_s", Json.Float r.E.Fig_scale.or_span_s);
                   ("chronus_clean", Json.Bool r.E.Fig_scale.chronus_clean);
                   ("events_per_s", Json.Float r.E.Fig_scale.events_per_s);
                   ("lookup_ns", Json.Float r.E.Fig_scale.lookup_ns);
                 ] ))
           rows)

(* chronus-bench/8: the prefix-compilation headline — address width and
   per-fat-tree-cell compression, including the floor CI asserts. *)
let prefix_json suite =
  match suite.fig_scale with
  | None -> Json.Null
  | Some rows ->
      let fat_tree =
        List.filter
          (fun (r : E.Fig_scale.row) ->
            String.length r.E.Fig_scale.topo >= 8
            && String.sub r.E.Fig_scale.topo 0 8 = "fat-tree")
          rows
      in
      let min_compression =
        List.fold_left
          (fun acc (r : E.Fig_scale.row) ->
            min acc r.E.Fig_scale.compression)
          infinity fat_tree
      in
      Json.Obj
        [
          ("addr_bits", Json.Int Chronus_sim.Flow_table.addr_bits);
          ( "cells",
            Json.Obj
              (List.map
                 (fun (r : E.Fig_scale.row) ->
                   ( r.E.Fig_scale.topo,
                     Json.Obj
                       [
                         ("rules_exact", Json.Int r.E.Fig_scale.rules_exact);
                         ( "rules_compiled",
                           Json.Int r.E.Fig_scale.rules_compiled );
                         ("compression", Json.Float r.E.Fig_scale.compression);
                       ] ))
                 fat_tree) );
          ( "min_fat_tree_compression",
            if fat_tree = [] then Json.Null else Json.Float min_compression );
        ]

(* chronus-bench/7: the update-service figure, one entry per offered
   rate — deterministic admission/commit columns, derived denial and
   serialization rates, the per-transaction from-scratch oracle
   evaluation cost (checker-pool misses over committed transactions —
   the admission pipeline's headline ratio, asserted < 1 in CI), and
   the wall-measured throughput and latency percentiles. As with the
   scale rows, the wall columns never enter the determinism digest;
   neither does full_evals, which depends on pool timing. *)
let service_json suite =
  match suite.fig_service with
  | None -> Json.Null
  | Some rows ->
  Json.Obj
    (List.map
       (fun (r : E.Fig_service.row) ->
         let denial_rate =
           if r.E.Fig_service.submitted > 0 then
             Json.Float
               (float_of_int r.E.Fig_service.denied
               /. float_of_int r.E.Fig_service.submitted)
           else Json.Null
         in
         ( Printf.sprintf "rate-%d" r.E.Fig_service.offered_per_round,
           Json.Obj
             [
               ("rounds", Json.Int r.E.Fig_service.rounds);
               ("flows", Json.Int r.E.Fig_service.flows);
               ("submitted", Json.Int r.E.Fig_service.submitted);
               ("committed", Json.Int r.E.Fig_service.committed);
               ("serialized", Json.Int r.E.Fig_service.serialized);
               ( "serialized_rate",
                 Json.Float r.E.Fig_service.serialized_rate );
               ("denied", Json.Int r.E.Fig_service.denied);
               ("batches", Json.Int r.E.Fig_service.batches);
               ("denial_rate", denial_rate);
               ("full_evals", Json.Int r.E.Fig_service.full_evals);
               ( "full_evals_per_txn",
                 Json.Float r.E.Fig_service.full_evals_per_txn );
               ("mean_makespan", Json.Float r.E.Fig_service.mean_makespan);
               ("throughput_per_s", Json.Float r.E.Fig_service.throughput_per_s);
               ("p50_ms", Json.Float r.E.Fig_service.p50_ms);
               ("p99_ms", Json.Float r.E.Fig_service.p99_ms);
             ] ))
       rows)

(* chronus-bench/9: the heavy-traffic figure — peak concurrent fibers
   and virtual-time switch-RTT percentiles per session count. Every
   column but wall_s is deterministic. *)
let conns_json suite =
  match suite.fig_conns with
  | None -> Json.Null
  | Some rows ->
      Json.Obj
        (List.map
           (fun (r : E.Fig_conns.row) ->
             ( Printf.sprintf "conns-%d" r.E.Fig_conns.conns,
               Json.Obj
                 [
                   ("switches", Json.Int r.E.Fig_conns.switches);
                   ("peak_fibers", Json.Int r.E.Fig_conns.peak_fibers);
                   ("pings", Json.Int r.E.Fig_conns.pings);
                   ("rtt_p50_ms", Json.Float r.E.Fig_conns.rtt_p50_ms);
                   ("rtt_p99_ms", Json.Float r.E.Fig_conns.rtt_p99_ms);
                   ("update_clean", Json.Bool r.E.Fig_conns.update_clean);
                   ("update_span_s", Json.Float r.E.Fig_conns.update_span_s);
                   ("events", Json.Int r.E.Fig_conns.events);
                   ("wall_s", Json.Float r.E.Fig_conns.wall_s);
                 ] ))
           rows)

let write_json ~path ~scale_name ~jobs ~host_cores ~experiments ~micro =
  let experiments_json =
    match experiments with
    | None -> Json.Null
    | Some (seq, par) ->
        let speedup a b = if b > 0. then Json.Float (a /. b) else Json.Null in
        let base =
          [
            ("wall_s_jobs1", Json.Float seq.wall_s);
            ("trial_wall_s_jobs1", Json.Float seq.trial_wall_s);
          ]
        in
        let parallel =
          match par with
          | None -> [ ("rows_identical", Json.Null) ]
          | Some p ->
              [
                ("wall_s_jobsN", Json.Float p.wall_s);
                ("trial_wall_s_jobsN", Json.Float p.trial_wall_s);
                ("speedup", speedup seq.wall_s p.wall_s);
                ("trial_speedup", speedup seq.trial_wall_s p.trial_wall_s);
                ("rows_identical", Json.Bool (digest seq = digest p));
              ]
        in
        Json.Obj (base @ parallel)
  in
  let micro_json =
    match micro with
    | None -> Json.Null
    | Some rows ->
        Json.Obj (List.map (fun (name, ns) -> (name, Json.Float ns)) rows)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "chronus-bench/9");
        ("scale", Json.String scale_name);
        ("jobs", Json.Int jobs);
        ("host_cores", Json.Int host_cores);
        ("experiments", experiments_json);
        ( "scale_rows",
          match experiments with
          | None -> Json.Null
          | Some (seq, _) -> scale_json seq );
        ( "prefix",
          match experiments with
          | None -> Json.Null
          | Some (seq, _) -> prefix_json seq );
        ( "service",
          match experiments with
          | None -> Json.Null
          | Some (seq, _) -> service_json seq );
        ( "conns",
          match experiments with
          | None -> Json.Null
          | Some (seq, _) -> conns_json seq );
        ("oracle_cache", oracle_cache_json ~micro);
        ("faults", faults_json ());
        ("metrics", metrics_json ());
        ("microbench_ns_per_run", micro_json);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

(* ------------------------------------------------------------------ *)

let () =
  let scale_name =
    Option.value ~default:"quick" (Sys.getenv_opt "CHRONUS_SCALE")
  in
  let scale = E.Scale.parse scale_name in
  let jobs = Pool.default_jobs () in
  let part =
    match Sys.getenv_opt "CHRONUS_BENCH" with
    | None | Some "all" -> `All
    | Some "experiments" -> `Experiments
    | Some "micro" -> `Micro
    | Some other ->
        invalid_arg
          (Printf.sprintf
             "CHRONUS_BENCH must be experiments|micro|all, got %S" other)
  in
  let metrics =
    Array.exists (( = ) "--metrics") Sys.argv
    || Sys.getenv_opt "CHRONUS_METRICS" <> None
  in
  (* --figures a,b,c (or --figures=a,b,c): run only those figures of the
     experiment suite — the dev loop for a single figure without the
     ~190 s full pass. *)
  let figures_filter =
    let args = Array.to_list Sys.argv in
    let value =
      let prefix = "--figures=" in
      let rec scan = function
        | [] -> None
        | "--figures" :: v :: _ -> Some v
        | a :: rest ->
            if String.length a > String.length prefix
               && String.sub a 0 (String.length prefix) = prefix
            then
              Some
                (String.sub a (String.length prefix)
                   (String.length a - String.length prefix))
            else scan rest
      in
      scan args
    in
    match value with
    | None -> None
    | Some v ->
        let names =
          String.split_on_char ',' v
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        List.iter
          (fun n ->
            if not (List.mem n figure_names) then begin
              Printf.eprintf "unknown figure %S; valid figures:\n  %s\n%!" n
                (String.concat "\n  " figure_names);
              exit 2
            end)
          names;
        Some names
  in
  let want name =
    match figures_filter with None -> true | Some l -> List.mem name l
  in
  let host_cores = Domain.recommended_domain_count () in
  let experiments =
    match part with
    | `Micro -> None
    | `All | `Experiments ->
        let seq = run_suite ~jobs:1 ~want scale in
        let par =
          if jobs > 1 then Some (run_suite ~jobs ~want scale) else None
        in
        (* The two passes print identical rows; show the suite once. *)
        print_suite ~metrics (Option.value ~default:seq par);
        Printf.printf "\nexperiment suite wall clock: %.2f s at jobs=1"
          seq.wall_s;
        (match par with
        | None -> print_newline ()
        | Some p ->
            Printf.printf ", %.2f s at jobs=%d (%.2fx; trial subset %.2fx)\n"
              p.wall_s jobs (seq.wall_s /. p.wall_s)
              (seq.trial_wall_s /. p.trial_wall_s);
            if digest seq <> digest p then begin
              Printf.eprintf
                "ERROR: sequential and parallel experiment rows differ\n%!";
              exit 1
            end
            else print_endline "sequential and parallel rows are identical");
        if host_cores = 1 && par <> None then
          print_endline
            "note: speedup not meaningful: 1 physical core (jobs > 1 \
             time-slices one core)";
        Some (seq, par)
  in
  let micro =
    match part with `Experiments -> None | `All | `Micro -> Some (benchmarks ())
  in
  let path =
    Option.value ~default:"BENCH_results.json"
      (Sys.getenv_opt "CHRONUS_BENCH_OUT")
  in
  write_json ~path ~scale_name ~jobs ~host_cores ~experiments ~micro;
  print_newline ()
