(* Timed vs untimed updates, measured in the dynamic-flow model: sweep a
   population of random route changes and compare (a) the naive
   all-at-once update, (b) asynchronous order replacement rounds, and
   (c) Chronus's timed schedule, counting how often each stays consistent
   and how many time-extended links each overloads.

   Run with: dune exec examples/timed_vs_untimed.exe *)

open Chronus_flow
open Chronus_core
open Chronus_baselines
open Chronus_topo

let () =
  let rng = Rng.make 2026 in
  let spec = Scenario.spec 16 in
  let trials = 40 in
  let naive_clean = ref 0
  and or_clean = ref 0
  and chronus_clean = ref 0 in
  let naive_links = ref 0 and or_links = ref 0 and chronus_links = ref 0 in
  let misrouted report =
    List.exists
      (function
        | Oracle.Loop _ | Oracle.Blackhole _ -> true
        | Oracle.Congestion _ -> false)
      report.Oracle.violations
  in
  let naive_misrouted = ref 0
  and or_misrouted = ref 0
  and chronus_misrouted = ref 0 in
  for _ = 1 to trials do
    let inst = Scenario.mixed ~rng spec in
    (* (a) flip everything at once — what a controller without any update
       protocol effectively does. *)
    let naive =
      List.fold_left
        (fun s v -> Schedule.add v 0 s)
        Schedule.empty
        (Instance.switches_to_update inst)
    in
    let report = Oracle.evaluate inst naive in
    if report.Oracle.ok then incr naive_clean;
    if misrouted report then incr naive_misrouted;
    naive_links := !naive_links + List.length report.Oracle.congested;
    (* (b) loop-free rounds with asynchronous application. *)
    (match Order_replacement.greedy_rounds inst with
    | Some rounds ->
        let sched =
          Order_replacement.schedule_of_rounds ~gap:6
            ~jitter:(fun ~round:_ _ -> Rng.int rng 6)
            rounds
        in
        let report = Oracle.evaluate inst sched in
        if report.Oracle.ok then incr or_clean;
        if misrouted report then incr or_misrouted;
        or_links := !or_links + List.length report.Oracle.congested
    | None -> ());
    (* (c) Chronus: exact time points (best-effort when infeasible). *)
    let { Fallback.schedule; _ } = Fallback.schedule inst in
    let report = Oracle.evaluate inst schedule in
    if report.Oracle.ok then incr chronus_clean;
    if misrouted report then incr chronus_misrouted;
    chronus_links := !chronus_links + List.length report.Oracle.congested
  done;
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "scheme"; "consistent runs"; "runs that misroute";
          "congested links (total)";
        ]
  in
  Table.add_row table
    [ "all-at-once"; Printf.sprintf "%d/%d" !naive_clean trials;
      Printf.sprintf "%d/%d" !naive_misrouted trials;
      string_of_int !naive_links ];
  Table.add_row table
    [ "OR rounds"; Printf.sprintf "%d/%d" !or_clean trials;
      Printf.sprintf "%d/%d" !or_misrouted trials;
      string_of_int !or_links ];
  Table.add_row table
    [ "Chronus timed"; Printf.sprintf "%d/%d" !chronus_clean trials;
      Printf.sprintf "%d/%d" !chronus_misrouted trials;
      string_of_int !chronus_links ];
  Table.print table;
  (* Chronus never misroutes and is consistent at least as often as OR. *)
  assert (!chronus_misrouted = 0);
  assert (!chronus_clean >= !or_clean)
