(* Traffic engineering (motivation (2) of the paper): an operator moves a
   flow onto a longer but less-utilised route to relieve a hot link. The
   example compares the three update machineries on the same change and
   shows why Chronus needs neither rule-space headroom (TP) nor luck with
   message timing (OR).

   Run with: dune exec examples/traffic_engineering.exe *)

open Chronus_graph
open Chronus_flow
open Chronus_core
open Chronus_baselines

let () =
  (* A 9-switch WAN-ish topology. The direct route 0-1-2-8 shares the
     congested link (2, 8); traffic engineering moves the flow onto the
     longer 0-3-4-5-6-7-8 route. Delays differ per link, which is exactly
     when naive reordering merges streams. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v, capacity, delay) -> Graph.add_edge ~capacity ~delay g u v)
    [
      (0, 1, 1, 2); (1, 2, 1, 2); (2, 8, 1, 1);   (* current route *)
      (0, 3, 1, 1); (3, 4, 1, 1); (4, 5, 1, 2);
      (5, 6, 1, 1); (6, 7, 1, 2); (7, 8, 1, 3);   (* engineered route *)
      (1, 5, 1, 1); (4, 2, 1, 1);                 (* cross links *)
    ];
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 8 ]
      ~p_fin:[ 0; 3; 4; 5; 6; 7; 8 ]
  in
  Format.printf "%a@.@." Instance.pp inst;

  (* Chronus: a timed schedule, validated. *)
  (match Greedy.schedule inst with
  | Greedy.Scheduled sched ->
      Format.printf "Chronus schedule: %a  (|T| = %d)@." Schedule.pp sched
        (Schedule.makespan sched);
      Format.printf "  oracle: %a@." Oracle.pp_report
        (Oracle.evaluate inst sched)
  | Greedy.Infeasible _ -> Format.printf "Chronus: infeasible@.");

  (* OR: minimum loop-free rounds, but the data plane is asynchronous —
     sample a few random interleavings and measure the damage. *)
  (match Order_replacement.minimum_rounds inst with
  | { Order_replacement.rounds = Some rounds; _ } ->
      Format.printf "@.OR needs %d rounds@." (List.length rounds);
      let rng = Chronus_topo.Rng.make 11 in
      List.iter
        (fun trial ->
          let sched =
            Order_replacement.schedule_of_rounds ~gap:6
              ~jitter:(fun ~round:_ _ -> Chronus_topo.Rng.int rng 6)
              rounds
          in
          let report = Oracle.evaluate inst sched in
          Format.printf "  async trial %d: %a@." trial Oracle.pp_report
            report)
        [ 1; 2; 3 ]
  | { Order_replacement.rounds = None; _ } ->
      Format.printf "@.OR: stuck@.");

  (* TP: consistent, but at a rule-space price. *)
  let rc = Two_phase.rule_count inst in
  Format.printf
    "@.TP rule footprint: %d rules during the transition (steady state %d, \
     Chronus needs %d)@."
    rc.Two_phase.transition_peak rc.Two_phase.steady
    (Two_phase.chronus_rule_count inst)
