(* Failure recovery (motivation (4) of the paper): a link fails, traffic
   must move to the precomputed backup path *now* — but a panicked
   all-at-once update melts the backup path's shared links. The example
   sweeps every (primary, backup) pair of a grid topology, showing that
   Chronus schedules are both fast (small |T|) and always consistent.

   Run with: dune exec examples/failure_recovery.exe *)

open Chronus_graph
open Chronus_flow
open Chronus_core
open Chronus_topo

let () =
  let rng = Rng.make 5 in
  let params = { Topology.capacity = 2; delay = 1 } in
  let g = Topology.grid ~params 4 3 in
  let g = Topology.randomize_delays ~rng ~lo:1 ~hi:3 g in
  let src = 0 and dst = 11 in
  let primary =
    match Shortest.shortest_path g src dst with
    | Some p -> p
    | None -> failwith "grid is connected"
  in
  Format.printf "primary route: %a@." Path.pp primary;

  (* Fail each link of the primary in turn; the backup is the shortest
     path avoiding it. *)
  let consistent = ref 0 and total = ref 0 in
  List.iter
    (fun (u, v) ->
      let g' = Graph.copy g in
      Graph.remove_edge g' u v;
      match Shortest.shortest_path g' src dst with
      | None -> ()
      | Some backup ->
          incr total;
          (* Make-before-break: the backup avoids the degrading link, but
             the link still carries the old flow until the reroute — so
             the instance keeps the full graph. *)
          let inst =
            Instance.create ~graph:g ~demand:1 ~p_init:primary
              ~p_fin:backup
          in
          let outcome = Greedy.schedule inst in
          (match outcome with
          | Greedy.Scheduled sched ->
              incr consistent;
              Format.printf
                "link v%d->v%d fails: backup %a, |T| = %d, %a@." u v Path.pp
                backup (Schedule.makespan sched) Oracle.pp_report
                (Oracle.evaluate inst sched)
          | Greedy.Infeasible _ ->
              Format.printf
                "link v%d->v%d fails: backup %a, no consistent schedule — \
                 falling back@."
                u v Path.pp backup))
    (Path.edges primary);
  Format.printf "@.%d/%d failovers scheduled consistently@." !consistent
    !total;
  assert (!total > 0)
