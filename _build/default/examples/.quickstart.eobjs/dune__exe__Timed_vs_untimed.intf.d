examples/timed_vs_untimed.mli:
