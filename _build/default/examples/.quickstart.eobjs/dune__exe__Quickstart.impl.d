examples/quickstart.ml: Chronus_core Chronus_flow Chronus_graph Format Graph Greedy Instance List Oracle Schedule
