examples/failure_recovery.ml: Chronus_core Chronus_flow Chronus_graph Chronus_topo Format Graph Greedy Instance List Oracle Path Rng Schedule Shortest Topology
