examples/maintenance.ml: Chronus_core Chronus_exec Chronus_flow Chronus_graph Chronus_sim Exec_env Format Graph Greedy Instance List Oracle Schedule Sim_time Timed_exec
