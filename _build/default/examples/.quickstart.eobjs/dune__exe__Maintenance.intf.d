examples/maintenance.mli:
