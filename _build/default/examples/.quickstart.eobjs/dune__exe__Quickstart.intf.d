examples/quickstart.mli:
