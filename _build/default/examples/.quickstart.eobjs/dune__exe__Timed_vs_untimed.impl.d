examples/timed_vs_untimed.ml: Chronus_baselines Chronus_core Chronus_flow Chronus_stats Chronus_topo Fallback Instance List Oracle Order_replacement Printf Rng Scenario Schedule Table
