(* Network maintenance (motivation (3) of the paper): drain a router that
   must be replaced. The flow is moved off the router, the schedule shows
   when the router's own rule can be *deleted* — only after its traffic
   has provably drained — and the update is then executed on the
   discrete-event simulator, end to end, with byte-level accounting.

   Run with: dune exec examples/maintenance.exe *)

open Chronus_graph
open Chronus_flow
open Chronus_core
open Chronus_sim
open Chronus_exec

let () =
  (* Router 3 must be serviced. The flow 0 -> 6 currently crosses it;
     the replacement route goes 0-1-4-5-6 around it. Router 2 and 3 both
     leave the path, so their rules are deleted during the update. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v, delay) -> Graph.add_edge ~capacity:1 ~delay g u v)
    [
      (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 6, 2);  (* current route *)
      (1, 4, 2); (4, 5, 1); (5, 6, 2);             (* replacement *)
    ];
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3; 6 ]
      ~p_fin:[ 0; 1; 4; 5; 6 ]
  in
  Format.printf "%a@.@." Instance.pp inst;
  List.iter
    (fun (u : Instance.update) ->
      Format.printf "update at v%d: %s@." u.Instance.switch
        (match u.Instance.kind with
        | Instance.Modify -> "modify action"
        | Instance.Add -> "install rule"
        | Instance.Delete -> "delete rule (after drain)"))
    (Instance.updates inst);

  (match Greedy.schedule inst with
  | Greedy.Scheduled sched ->
      Format.printf "@.maintenance schedule: %a@." Schedule.pp sched;
      let report = Oracle.evaluate inst sched in
      Format.printf "oracle: %a@." Oracle.pp_report report;
      (* The deletes land strictly after the last cohort through v2/v3. *)
      List.iter
        (fun v ->
          match Schedule.find v sched with
          | Some t -> Format.printf "  router v%d decommissioned at t=%d@." v t
          | None -> ())
        [ 2; 3 ]
  | Greedy.Infeasible _ -> Format.printf "infeasible@.");

  (* Execute on the simulator: microsecond-timestamped flow-mods, barrier
     confirmation, per-link byte counters. *)
  let run = Timed_exec.run inst in
  let r = run.Timed_exec.result in
  Format.printf
    "@.simulator: peak %.2f Mbit/s, %d bytes lost, update span %a, %d \
     commands@."
    r.Exec_env.peak_mbps r.Exec_env.loss_bytes Sim_time.pp
    r.Exec_env.update_span r.Exec_env.commands;
  assert (r.Exec_env.loss_bytes = 0)
