(* Quickstart: define a network, describe a route change, compute a
   congestion- and loop-free timed update schedule, and validate it.

   Run with: dune exec examples/quickstart.exe *)

open Chronus_graph
open Chronus_flow
open Chronus_core

let () =
  (* 1. A network: directed links with capacity (flow units per step) and
     transmission delay (steps). This is the paper's Fig. 1 topology. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:1 ~delay:1 g u v)
    [
      (1, 2); (2, 3); (3, 4); (4, 5); (5, 6);
      (1, 4); (4, 3); (3, 5); (5, 2); (2, 6);
    ];

  (* 2. The update: move one unit of flow from the solid path to the
     dashed path (same source v1 and destination v6). *)
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 1; 2; 3; 4; 5; 6 ]
      ~p_fin:[ 1; 4; 3; 5; 2; 6 ]
  in
  Format.printf "%a@.@." Instance.pp inst;

  (* 3. Schedule it: every switch gets an exact time point such that no
     link is ever overloaded and no transient loop forms. *)
  (match Greedy.schedule inst with
  | Greedy.Scheduled sched ->
      Format.printf "timed schedule: %a@." Schedule.pp sched;
      Format.printf "total update time |T| = %d steps@.@."
        (Schedule.makespan sched);

      (* 4. Validate against the dynamic-flow oracle: it simulates every
         traffic cohort, old and new, through the changing rules. *)
      let report = Oracle.evaluate inst sched in
      Format.printf "oracle verdict: %a@.@." Oracle.pp_report report;

      (* 5. Compare with what a naive simultaneous update would do. *)
      let naive =
        Schedule.of_list
          (List.map (fun v -> (v, 0)) (Instance.switches_to_update inst))
      in
      Format.printf "naive all-at-once verdict: %a@." Oracle.pp_report
        (Oracle.evaluate inst naive)
  | Greedy.Infeasible { remaining; _ } ->
      Format.printf "no consistent schedule exists; %d switches stuck@."
        (List.length remaining))
