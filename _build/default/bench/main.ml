(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Table II, Figs. 6-11) at the `quick` scale and prints the same
   rows/series the paper reports — set CHRONUS_SCALE=paper in the
   environment for the published scale.

   Part 2 runs Bechamel micro-benchmarks over every algorithmic component:
   the greedy scheduler (both engines), the dependency-relation and
   loop-check primitives, the oracle, the time-extended network
   construction, and the baselines. *)

open Bechamel
module E = Chronus_experiments
open Chronus_flow
open Chronus_core
open Chronus_baselines
open Chronus_topo

let experiments scale =
  let banner name =
    Printf.printf "\n================ %s ================\n%!" name
  in
  banner E.Table2.name;
  E.Table2.print (E.Table2.run ());
  banner E.Fig6.name;
  E.Fig6.print (E.Fig6.run ());
  banner E.Fig7.name;
  E.Fig7.print (E.Fig7.run ~scale ());
  banner E.Fig8.name;
  E.Fig8.print (E.Fig8.run ~scale ());
  banner E.Fig9.name;
  E.Fig9.print (E.Fig9.run ~scale ());
  banner E.Fig10.name;
  E.Fig10.print (E.Fig10.run ~scale ());
  banner E.Fig11.name;
  E.Fig11.print (E.Fig11.run ~scale ());
  banner E.Ablation.name;
  E.Ablation.print (E.Ablation.run ~scale ())

(* Deterministic instances reused across benchmark iterations. *)
let instance_of_size n =
  let rng = Rng.make (1000 + n) in
  Scenario.long_chain ~rng (Scenario.spec ~capacity_choices:[ 2 ] n)

let fig1 = Scenario.fig1_example ()

let greedy_tests =
  List.map
    (fun n ->
      let inst = instance_of_size n in
      Test.make
        ~name:(Printf.sprintf "greedy-analytic/%d" n)
        (Staged.stage (fun () ->
             ignore (Greedy.schedule ~mode:Greedy.Analytic inst))))
    [ 50; 200; 800 ]

let greedy_exact_tests =
  List.map
    (fun n ->
      let inst = instance_of_size n in
      Test.make
        ~name:(Printf.sprintf "greedy-exact/%d" n)
        (Staged.stage (fun () ->
             ignore (Greedy.schedule ~mode:Greedy.Exact inst))))
    [ 20; 60 ]

let primitive_tests =
  let inst = instance_of_size 200 in
  let drain = Drain.make inst in
  let remaining = Instance.switches_to_update inst in
  let sched =
    match Greedy.schedule ~mode:Greedy.Analytic inst with
    | Greedy.Scheduled s -> s
    | Greedy.Infeasible { partial; _ } -> partial
  in
  [
    Test.make ~name:"dependency-set/200"
      (Staged.stage (fun () ->
           ignore
             (Dependency.at inst drain Schedule.empty ~remaining ~time:0)));
    Test.make ~name:"drain-view/200"
      (Staged.stage (fun () -> ignore (Drain.view drain sched)));
    Test.make ~name:"loop-check/200"
      (Staged.stage (fun () ->
           ignore
             (Loop_check.timed inst Schedule.empty
                ~candidate:(List.hd remaining) ~time:0)));
    Test.make ~name:"oracle-evaluate/200"
      (Staged.stage (fun () -> ignore (Oracle.evaluate inst sched)));
    Test.make ~name:"time-extended-build/fig1"
      (Staged.stage (fun () ->
           ignore
             (Time_extended.build fig1.Instance.graph ~t_lo:(-5) ~t_hi:5)));
    Test.make ~name:"tree-check/fig1"
      (Staged.stage (fun () -> ignore (Tree.check fig1)));
  ]

let baseline_tests =
  let inst = instance_of_size 60 in
  [
    Test.make ~name:"or-greedy-rounds/60"
      (Staged.stage (fun () ->
           ignore (Order_replacement.greedy_rounds inst)));
    Test.make ~name:"or-minimum-rounds/fig1"
      (Staged.stage (fun () ->
           ignore (Order_replacement.minimum_rounds fig1)));
    Test.make ~name:"opt-branch-and-bound/fig1"
      (Staged.stage (fun () ->
           ignore (Opt.solve ~budget:100_000 ~timeout:10.0 fig1)));
    Test.make ~name:"tp-rule-count/60"
      (Staged.stage (fun () -> ignore (Two_phase.rule_count inst)));
  ]

let benchmarks () =
  let tests =
    Test.make_grouped ~name:"chronus"
      (greedy_tests @ greedy_exact_tests @ primitive_tests @ baseline_tests)
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "\n================ micro-benchmarks ================\n";
  Printf.printf "%-45s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (name, nanos) ->
      let human =
        if Float.is_nan nanos then "n/a"
        else if nanos > 1e9 then Printf.sprintf "%8.3f  s" (nanos /. 1e9)
        else if nanos > 1e6 then Printf.sprintf "%8.3f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Printf.sprintf "%8.3f us" (nanos /. 1e3)
        else Printf.sprintf "%8.0f ns" nanos
      in
      Printf.printf "%-45s %16s\n" name human)
    rows

let () =
  let scale =
    match Sys.getenv_opt "CHRONUS_SCALE" with
    | Some preset -> E.Scale.parse preset
    | None -> E.Scale.quick
  in
  experiments scale;
  benchmarks ();
  print_newline ()
