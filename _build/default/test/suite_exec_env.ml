open Chronus_sim
open Chronus_flow
open Chronus_exec

let test_default_config () =
  let c = Exec_env.default in
  Alcotest.(check (float 0.001)) "5 Mbit/s links" 5.0 c.Exec_env.capacity_mbps;
  Alcotest.(check (float 0.001)) "5 Mbit/s flow" 5.0 c.Exec_env.rate_mbps;
  Alcotest.(check int) "1 s samples" (Sim_time.sec 1) c.Exec_env.sample;
  let lo, hi = c.Exec_env.control_latency in
  Alcotest.(check bool) "latency range ordered" true (lo < hi)

let test_modify_of_update_mapping () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 3) ] in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
      ~p_fin:[ 0; 4; 3 ]
  in
  let find v =
    List.find (fun (u : Instance.update) -> u.Instance.switch = v)
      (Instance.updates inst)
  in
  (match Exec_env.modify_of_update inst (find 0) with
  | Controller.Modify { action; _ } ->
      Alcotest.(check bool) "modify forwards to v4" true
        (action.Flow_table.forward = Flow_table.Out 4)
  | _ -> Alcotest.fail "v0 should be a Modify");
  (match Exec_env.modify_of_update inst (find 4) with
  | Controller.Install { action; dst; _ } ->
      Alcotest.(check int) "install matches dst" 3 dst;
      Alcotest.(check bool) "install forwards to v3" true
        (action.Flow_table.forward = Flow_table.Out 3)
  | _ -> Alcotest.fail "v4 should be an Install");
  match Exec_env.modify_of_update inst (find 1) with
  | Controller.Remove { dst; _ } -> Alcotest.(check int) "remove dst" 3 dst
  | _ -> Alcotest.fail "v1 should be a Remove"

let test_env_initial_rules () =
  let inst = Helpers.fig1 () in
  let env = Exec_env.build ~tag_initial:None inst in
  (* One rule per old-path switch plus the destination's delivery rule. *)
  Alcotest.(check int) "initial rules" 6
    (Network.total_rules env.Exec_env.net);
  List.iter
    (fun v ->
      match
        Flow_table.lookup
          (Network.table env.Exec_env.net v)
          ~dst:(Instance.destination inst) ~tag:None
      with
      | Some rule ->
          let expected =
            match Instance.old_next inst v with
            | Some w -> Flow_table.Out w
            | None -> Flow_table.To_host
          in
          Alcotest.(check bool)
            (Printf.sprintf "v%d forwards along the old path" v)
            true
            (rule.Flow_table.action.Flow_table.forward = expected)
      | None -> Alcotest.failf "v%d has no rule" v)
    inst.Instance.p_init

let test_env_tagged_variant () =
  let inst = Helpers.fig1 () in
  let env = Exec_env.build ~tag_initial:(Some 1) inst in
  let src = Instance.source inst in
  (match
     Flow_table.lookup
       (Network.table env.Exec_env.net src)
       ~dst:(Instance.destination inst) ~tag:None
   with
  | Some rule ->
      Alcotest.(check (option int)) "ingress stamps tag 1" (Some 1)
        rule.Flow_table.action.Flow_table.set_tag
  | None -> Alcotest.fail "ingress rule missing");
  (* Transit rules only match the stamped tag. *)
  let transit = 3 in
  Alcotest.(check bool) "untagged misses transit rule" true
    (Flow_table.lookup
       (Network.table env.Exec_env.net transit)
       ~dst:(Instance.destination inst) ~tag:None
    = None);
  Alcotest.(check bool) "tag-1 matches transit rule" true
    (Flow_table.lookup
       (Network.table env.Exec_env.net transit)
       ~dst:(Instance.destination inst) ~tag:(Some 1)
    <> None)

let test_update_start_and_links () =
  let inst = Helpers.fig1 () in
  let config =
    { Exec_env.default with Exec_env.warmup = Sim_time.sec 2 }
  in
  let env = Exec_env.build ~config ~tag_initial:None inst in
  Alcotest.(check int) "update starts at warmup" (Sim_time.sec 2)
    (Exec_env.update_start env);
  (* One simulated link per graph edge, with the scaled delay. *)
  Alcotest.(check int) "links" 10 (List.length (Network.links env.Exec_env.net));
  Alcotest.(check int) "delay scaled by unit"
    config.Exec_env.delay_unit
    (Network.link_delay env.Exec_env.net (1, 2))

let suite =
  ( "exec_env",
    [
      Alcotest.test_case "default config" `Quick test_default_config;
      Alcotest.test_case "update-to-flow-mod mapping" `Quick
        test_modify_of_update_mapping;
      Alcotest.test_case "initial rules installed" `Quick
        test_env_initial_rules;
      Alcotest.test_case "tagged (two-phase) variant" `Quick
        test_env_tagged_variant;
      Alcotest.test_case "warmup and link scaling" `Quick
        test_update_start_and_links;
    ] )
