open Chronus_graph
open Chronus_flow
open Chronus_baselines

let test_rule_counts () =
  let inst = Helpers.fig1 () in
  let rc = Two_phase.rule_count inst in
  (* Five hops on each path plus the ingress stamping rule. *)
  Alcotest.(check int) "steady" 5 rc.Two_phase.steady;
  Alcotest.(check int) "transition peak" 11 rc.Two_phase.transition_peak;
  Alcotest.(check int) "chronus in-place" 5
    (Two_phase.chronus_rule_count inst);
  Alcotest.(check bool) "chronus saves" true
    (Two_phase.chronus_rule_count inst < rc.Two_phase.transition_peak)

let test_per_packet_paths () =
  let inst = Helpers.fig1 () in
  (* Before the flip every cohort follows the old path; after it, the new
     path; never a mixture. *)
  Alcotest.(check (list int)) "old tag" inst.Instance.p_init
    (Two_phase.path_of_cohort inst ~flip:5 4);
  Alcotest.(check (list int)) "new tag" inst.Instance.p_fin
    (Two_phase.path_of_cohort inst ~flip:5 5);
  Alcotest.(check bool) "consistent" true
    (Two_phase.is_per_packet_consistent inst ~flip:5)

let shared_link_instance () =
  (* Both paths traverse (2, 3); the old route reaches it later than the
     new one, so an old cohort and a younger new cohort collide there. *)
  let g =
    Helpers.graph_of
      [ (0, 1, 1, 2); (1, 2, 1, 2); (2, 3, 1, 1); (0, 2, 1, 1) ]
  in
  Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
    ~p_fin:[ 0; 2; 3 ]

let test_congested_links_detection () =
  let inst = shared_link_instance () in
  (match Two_phase.congested_links inst ~flip:10 with
  | [ (2, 3, t) ] ->
      (* Witness time: last old cohort (injected at flip-1) enters the
         shared link after the old prefix delay. *)
      Alcotest.(check int) "witness step" (10 - 1 + 4) t
  | other ->
      Alcotest.failf "expected one clash on (2,3), got %d"
        (List.length other));
  (* No clash when the old route is faster to the shared link. *)
  let g =
    Helpers.graph_of
      [ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 1, 1); (0, 2, 1, 5) ]
  in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
      ~p_fin:[ 0; 2; 3 ]
  in
  Alcotest.(check int) "no clash" 0
    (List.length (Two_phase.congested_links inst ~flip:10))

let test_congestion_prediction_brute_force () =
  (* Verify the analytic clash rule by enumerating cohorts directly. *)
  for seed = 0 to 19 do
    let inst = Helpers.instance_of_seed seed in
    let flip = 6 in
    let g = inst.Instance.graph in
    let predicted =
      List.map (fun (u, v, _) -> (u, v)) (Two_phase.congested_links inst ~flip)
    in
    let prefix p v =
      match Path.prefix_to p v with
      | None -> None
      | Some pre -> Some (Path.delay g pre)
    in
    List.iter
      (fun (u, v) ->
        if Path.mem_edge u v inst.Instance.p_fin then
          match
            (prefix inst.Instance.p_init u, prefix inst.Instance.p_fin u)
          with
          | Some p_old, Some p_new ->
              let clash = ref false in
              for t1 = flip - 30 to flip - 1 do
                for t2 = flip to flip + 30 do
                  if t1 + p_old = t2 + p_new then clash := true
                done
              done;
              let expected =
                !clash && Graph.capacity g u v < 2 * inst.Instance.demand
              in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d link %d->%d" seed u v)
                expected
                (List.mem (u, v) predicted)
          | _ -> ())
      (Path.edges inst.Instance.p_init)
  done

let suite =
  ( "two_phase",
    [
      Alcotest.test_case "rule counts" `Quick test_rule_counts;
      Alcotest.test_case "per-packet paths" `Quick test_per_packet_paths;
      Alcotest.test_case "shared-link clash detection" `Quick
        test_congested_links_detection;
      Alcotest.test_case "clash rule matches brute force" `Quick
        test_congestion_prediction_brute_force;
    ] )
