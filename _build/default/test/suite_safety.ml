open Chronus_flow
open Chronus_core

(* Direct tests of the Safety engines and the stream-walk bookkeeping. *)

let inst () = Helpers.fig1 ()

let test_exact_agrees_with_oracle () =
  (* The exact verdict for a candidate is Safe iff the tentative schedule
     is violation-free. *)
  let inst = inst () in
  List.iter
    (fun v ->
      let verdict = Safety.exact inst Schedule.empty ~time:0 v in
      let tentative = Schedule.add v 0 Schedule.empty in
      Alcotest.(check bool)
        (Printf.sprintf "v%d verdict matches oracle" v)
        (Oracle.evaluate inst tentative).Oracle.ok
        (Safety.is_safe verdict))
    (Instance.switches_to_update inst)

let test_analytic_never_accepts_loops () =
  (* Whenever analytic says Safe for a single first flip, the oracle finds
     no loop or blackhole in the tentative schedule (congestion may need
     the multi-stream view, but misrouting may not slip through). *)
  for seed = 300 to 339 do
    let inst = Helpers.instance_of_seed seed in
    let drain = Drain.make inst in
    List.iter
      (fun v ->
        if
          Safety.is_safe
            (Safety.analytic inst drain Schedule.empty ~time:0 v)
        then begin
          let tentative = Schedule.add v 0 Schedule.empty in
          let report = Oracle.evaluate inst tentative in
          List.iter
            (function
              | Oracle.Congestion _ -> ()
              | Oracle.Loop _ ->
                  Alcotest.failf "seed %d: v%d loops but analytic said safe"
                    seed v
              | Oracle.Blackhole _ ->
                  Alcotest.failf
                    "seed %d: v%d blackholes but analytic said safe" seed v)
            report.Oracle.violations
        end)
      (Instance.switches_to_update inst)
  done

let test_walk_accessors () =
  let w =
    Safety.make_walk ~feed:(Horizon.Until 5) ~base:2
      [ (1, 2); (4, 3); (5, 6) ]
  in
  Alcotest.(check bool) "feed" true (Safety.walk_feed w = Horizon.Until 5);
  Alcotest.(check int) "base" 2 (Safety.walk_base w);
  Alcotest.(check int) "visits" 3 (List.length (Safety.walk_visits w));
  Alcotest.(check bool) "crosses non-origin" true (Safety.walk_crosses w 4);
  Alcotest.(check bool) "origin not crossed" false (Safety.walk_crosses w 1);
  Alcotest.(check bool) "absent not crossed" false (Safety.walk_crosses w 9);
  let w' = Safety.with_feed Horizon.Forever w in
  Alcotest.(check bool) "feed replaced" true
    (Safety.walk_feed w' = Horizon.Forever);
  Alcotest.(check int) "visits kept" 3 (List.length (Safety.walk_visits w'))

let test_analytic_walk_counting () =
  (* The v0 walk through the merge link forces the candidate to wait even
     though pairwise capacity would suffice: three streams, capacity 2. *)
  let g =
    Helpers.graph_of
      [
        (0, 1, 2, 2); (1, 2, 2, 2); (2, 3, 2, 3); (3, 4, 2, 2); (4, 5, 2, 3);
        (0, 4, 2, 2); (1, 3, 1, 1); (3, 2, 2, 1); (2, 5, 1, 2); (4, 1, 1, 3);
      ]
  in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3; 4; 5 ]
      ~p_fin:[ 0; 4; 1; 3; 2; 5 ]
  in
  let drain = Drain.make inst in
  (* v0's stream crosses (4, 5) while old flow still does: with that walk
     registered, flipping v1 (whose redirected stream also reaches (4, 5))
     must be vetoed; without it, the pairwise view would allow it. *)
  let sched = Schedule.of_list [ (0, 0) ] in
  let walk =
    let cohort = Oracle.trace_from inst sched 0 0 in
    Safety.make_walk ~feed:Horizon.Forever ~base:0 cohort.Oracle.visits
  in
  let without = Safety.analytic inst drain sched ~time:0 1 in
  let with_walk =
    Safety.analytic ~streams:(Safety.view_of_walks [ walk ]) inst drain sched ~time:0 1
  in
  Alcotest.(check bool) "pairwise view accepts" true (Safety.is_safe without);
  (match with_walk with
  | Safety.Would_congest _ -> ()
  | other ->
      Alcotest.failf "expected congestion veto, got %a" Safety.pp_verdict
        other)

let test_verdict_printer () =
  let render v = Format.asprintf "%a" Safety.pp_verdict v in
  Alcotest.(check string) "safe" "safe" (render Safety.Safe);
  Alcotest.(check string) "loop" "would loop through v3"
    (render (Safety.Would_loop 3));
  Alcotest.(check string) "congest" "would congest v1 -> v2 at t=5"
    (render (Safety.Would_congest (1, 2, 5)));
  Alcotest.(check string) "blackhole" "would blackhole at v7"
    (render (Safety.Would_blackhole 7));
  Alcotest.(check string) "drain" "traffic not yet drained"
    (render Safety.Not_drained)

let suite =
  ( "safety",
    [
      Alcotest.test_case "exact agrees with the oracle" `Quick
        test_exact_agrees_with_oracle;
      Alcotest.test_case "analytic never accepts misrouting" `Slow
        test_analytic_never_accepts_loops;
      Alcotest.test_case "walk accessors" `Quick test_walk_accessors;
      Alcotest.test_case "multi-stream counting vetoes merges" `Quick
        test_analytic_walk_counting;
      Alcotest.test_case "verdict printer" `Quick test_verdict_printer;
    ] )
