open Chronus_graph
open Chronus_topo

let rng () = Rng.make 7

let test_rng_determinism () =
  let a = Rng.make 3 and b = Rng.make 3 in
  let draws r = List.init 10 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (draws a) (draws b);
  let c = Rng.make 4 in
  Alcotest.(check bool) "different seed differs" true (draws a <> draws c)

let test_rng_ranges () =
  let r = rng () in
  for _ = 1 to 200 do
    let x = Rng.in_range r 3 7 in
    Alcotest.(check bool) "in range" true (x >= 3 && x <= 7)
  done;
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.in_range: empty range")
    (fun () -> ignore (Rng.in_range r 5 4));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r ([] : int list)))

let test_shuffle_sample () =
  let r = rng () in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare s);
  let sample = Rng.sample r 5 l in
  Alcotest.(check int) "sample size" 5 (List.length sample);
  Alcotest.(check int) "no repeats" 5
    (List.length (List.sort_uniq compare sample));
  Alcotest.(check int) "oversample capped" 20
    (List.length (Rng.sample r 100 l))

let test_line_ring () =
  let line = Topology.line 5 in
  Alcotest.(check int) "line nodes" 5 (Graph.node_count line);
  Alcotest.(check int) "line edges" 8 (Graph.edge_count line);
  Alcotest.(check bool) "bidirectional" true
    (Graph.mem_edge line 1 2 && Graph.mem_edge line 2 1);
  let ring = Topology.ring 5 in
  Alcotest.(check int) "ring edges" 10 (Graph.edge_count ring);
  Alcotest.(check bool) "wrap" true (Graph.mem_edge ring 4 0)

let test_grid_torus () =
  let grid = Topology.grid 3 2 in
  Alcotest.(check int) "grid nodes" 6 (Graph.node_count grid);
  (* 3x2: horizontal 2*2, vertical 3*1, doubled. *)
  Alcotest.(check int) "grid edges" 14 (Graph.edge_count grid);
  let torus = Topology.torus 3 3 in
  Alcotest.(check bool) "torus wraps rows" true (Graph.mem_edge torus 2 0);
  Alcotest.(check bool) "torus wraps columns" true (Graph.mem_edge torus 6 0)

let test_complete_star () =
  let k = Topology.complete 4 in
  Alcotest.(check int) "complete edges" 12 (Graph.edge_count k);
  let s = Topology.star 5 in
  Alcotest.(check int) "star edges" 8 (Graph.edge_count s);
  Alcotest.(check int) "hub degree" 4 (Graph.out_degree s 0)

let test_fat_tree () =
  let ft = Topology.fat_tree 4 in
  (* k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 switches. *)
  Alcotest.(check int) "fat-tree switches" 20 (Graph.node_count ft);
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Topology.fat_tree: k must be even") (fun () ->
      ignore (Topology.fat_tree 3));
  (* Every edge switch reaches every core via some aggregation switch. *)
  Alcotest.(check bool) "edge reaches core" true
    (Chronus_graph.Traversal.is_reachable ft 19 0)

let test_random_graphs () =
  let r = rng () in
  let er = Topology.erdos_renyi ~rng:r ~p:0.3 20 in
  Alcotest.(check int) "er nodes present" 20 (Graph.node_count er);
  let rr = Topology.random_regular ~rng:r ~k:3 12 in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "degree of %d at most 3" v)
        true
        (Graph.out_degree rr v <= 3))
    (Graph.nodes rr);
  let wx = Topology.waxman ~rng:r ~alpha:0.9 ~beta:0.9 15 in
  Alcotest.(check int) "waxman nodes" 15 (Graph.node_count wx)

let test_randomizers () =
  let r = rng () in
  let g = Topology.line ~params:{ Topology.capacity = 1; delay = 1 } 6 in
  let g' = Topology.randomize_delays ~rng:r ~lo:2 ~hi:4 g in
  List.iter
    (fun (_, _, (e : Graph.edge)) ->
      Alcotest.(check bool) "delay in range" true
        (e.Graph.delay >= 2 && e.Graph.delay <= 4))
    (Graph.edges g');
  let g'' = Topology.randomize_capacities ~rng:r ~choices:[ 5; 9 ] g in
  List.iter
    (fun (_, _, (e : Graph.edge)) ->
      Alcotest.(check bool) "capacity from choices" true
        (List.mem e.Graph.capacity [ 5; 9 ]))
    (Graph.edges g'')

let suite =
  ( "topology",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
      Alcotest.test_case "shuffle and sample" `Quick test_shuffle_sample;
      Alcotest.test_case "line and ring" `Quick test_line_ring;
      Alcotest.test_case "grid and torus" `Quick test_grid_torus;
      Alcotest.test_case "complete and star" `Quick test_complete_star;
      Alcotest.test_case "fat tree" `Quick test_fat_tree;
      Alcotest.test_case "random graphs" `Quick test_random_graphs;
      Alcotest.test_case "delay/capacity randomizers" `Quick test_randomizers;
    ] )
