test/suite_schedule.ml: Alcotest Chronus_flow Helpers Schedule
