test/suite_experiments.ml: Alcotest Chronus_experiments Chronus_topo Helpers List String
