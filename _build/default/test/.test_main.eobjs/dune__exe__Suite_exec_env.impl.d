test/suite_exec_env.ml: Alcotest Chronus_exec Chronus_flow Chronus_sim Controller Exec_env Flow_table Helpers Instance List Network Printf Sim_time
