test/suite_stats.ml: Alcotest Boxplot Cdf Chronus_stats Descriptive List String Table
