test/suite_instance.ml: Alcotest Chronus_flow Helpers Instance List
