test/suite_drain.ml: Alcotest Chronus_core Chronus_flow Chronus_topo Drain Format Helpers Horizon Instance List Option Oracle Printf Schedule
