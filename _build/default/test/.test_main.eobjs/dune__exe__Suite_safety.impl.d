test/suite_safety.ml: Alcotest Chronus_core Chronus_flow Drain Format Helpers Horizon Instance List Oracle Printf Safety Schedule
