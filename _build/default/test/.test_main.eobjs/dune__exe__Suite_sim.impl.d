test/suite_sim.ml: Alcotest Chronus_sim Chronus_topo Controller Engine Event_queue Flow_table List Monitor Network Sim_time
