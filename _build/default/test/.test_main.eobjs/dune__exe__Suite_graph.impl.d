test/suite_graph.ml: Alcotest Chronus_graph Graph List Option
