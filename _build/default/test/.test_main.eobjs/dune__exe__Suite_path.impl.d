test/suite_path.ml: Alcotest Chronus_graph Helpers Path
