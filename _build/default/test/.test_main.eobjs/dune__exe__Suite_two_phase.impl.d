test/suite_two_phase.ml: Alcotest Chronus_baselines Chronus_flow Chronus_graph Graph Helpers Instance List Path Printf Two_phase
