test/helpers.ml: Alcotest Chronus_flow Chronus_graph Chronus_topo Format Graph Instance List Oracle QCheck QCheck_alcotest Schedule
