test/suite_time_extended.ml: Alcotest Chronus_flow Chronus_graph Graph Helpers Instance List Oracle Printf Schedule String Time_extended
