test/suite_dependency.ml: Alcotest Chronus_core Chronus_flow Dependency Drain Helpers Instance List Printf Schedule
