test/suite_order_replacement.ml: Alcotest Chronus_baselines Chronus_flow Chronus_topo Helpers List Oracle Order_replacement Printf Schedule String
