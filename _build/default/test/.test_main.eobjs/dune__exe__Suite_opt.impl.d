test/suite_opt.ml: Alcotest Chronus_baselines Chronus_core Chronus_flow Feasibility Format Greedy Helpers Instance Opt Printf Schedule
