test/suite_tree.ml: Alcotest Chronus_baselines Chronus_core Chronus_flow Format Greedy Helpers Instance List Oracle Tree
