test/suite_scenario.ml: Alcotest Chronus_flow Chronus_graph Chronus_topo Fun Graph Instance List Path Rng Scenario
