test/suite_greedy.ml: Alcotest Chronus_core Chronus_flow Drain Greedy Helpers Instance Loop_check Safety Schedule
