test/suite_traversal.ml: Alcotest Chronus_graph Cycle Dot Graph Helpers List Printf Shortest String Traversal
