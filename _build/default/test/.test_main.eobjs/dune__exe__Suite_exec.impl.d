test/suite_exec.ml: Alcotest Chronus_exec Chronus_flow Chronus_sim Exec_env Helpers List Order_exec Sim_time Timed_exec Two_phase_exec
