test/suite_oracle.ml: Alcotest Chronus_core Chronus_flow Chronus_graph Helpers Instance List Oracle Printf Schedule
