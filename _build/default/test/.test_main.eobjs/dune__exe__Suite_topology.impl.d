test/suite_topology.ml: Alcotest Chronus_graph Chronus_topo Fun Graph List Printf Rng Topology
