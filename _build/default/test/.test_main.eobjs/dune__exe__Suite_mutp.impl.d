test/suite_mutp.ml: Alcotest Chronus_core Chronus_flow Fallback Feasibility Helpers Instance List Mutp Oracle Schedule String
