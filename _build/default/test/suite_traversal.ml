open Chronus_graph

let diamond () = Graph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ]

let test_bfs () =
  let g = diamond () in
  Alcotest.(check (list int)) "bfs order" [ 1; 2; 3; 4 ]
    (Traversal.bfs_order g 1);
  Alcotest.(check (list int)) "bfs from sink" [ 4 ] (Traversal.bfs_order g 4);
  Alcotest.(check (list int)) "bfs unknown root" []
    (Traversal.bfs_order g 99)

let test_dfs () =
  let g = diamond () in
  Alcotest.(check (list int)) "dfs preorder" [ 1; 2; 4; 3 ]
    (Traversal.dfs_order g 1)

let test_reachability () =
  let g = Graph.of_edges [ (1, 2); (2, 3); (4, 5) ] in
  Alcotest.(check bool) "reachable" true (Traversal.is_reachable g 1 3);
  Alcotest.(check bool) "not reachable" false (Traversal.is_reachable g 1 5);
  Alcotest.(check bool) "self" true (Traversal.is_reachable g 1 1);
  Alcotest.(check bool) "not backwards" false (Traversal.is_reachable g 3 1)

let weighted () =
  Helpers.graph_of
    [
      (1, 2, 1, 1); (2, 4, 1, 10); (1, 3, 1, 2); (3, 4, 1, 2); (4, 5, 1, 1);
    ]

let test_dijkstra () =
  let g = weighted () in
  Alcotest.(check (option int)) "distance" (Some 5) (Shortest.distance g 1 5);
  Alcotest.(check (option (list int)))
    "path" (Some [ 1; 3; 4; 5 ]) (Shortest.shortest_path g 1 5);
  Alcotest.(check (option int)) "unreachable" None (Shortest.distance g 5 1);
  Alcotest.(check (option int)) "self distance" (Some 0)
    (Shortest.distance g 1 1)

let test_hop_path () =
  let g = weighted () in
  (* Fewest hops prefers the big-delay route 1-2-4. *)
  Alcotest.(check (option (list int)))
    "hop path" (Some [ 1; 2; 4 ]) (Shortest.hop_path g 1 4);
  Alcotest.(check (option (list int))) "unreachable" None
    (Shortest.hop_path g 5 1)

let test_cycles () =
  let dag = diamond () in
  Alcotest.(check bool) "diamond acyclic" false (Cycle.has_cycle dag);
  let cyclic = Graph.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  Alcotest.(check bool) "cycle found" true (Cycle.has_cycle cyclic);
  (match Cycle.find_cycle cyclic with
  | None -> Alcotest.fail "expected a cycle"
  | Some nodes ->
      Alcotest.(check int) "cycle length" 3 (List.length nodes);
      (* Consecutive cycle nodes are edges, wrapping around. *)
      let rec pairs = function
        | [] | [ _ ] -> []
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      in
      let wrap = (List.nth nodes (List.length nodes - 1), List.hd nodes) in
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %d->%d" a b)
            true (Graph.mem_edge cyclic a b))
        (wrap :: pairs nodes))

let test_topological_sort () =
  let dag = diamond () in
  (match Cycle.topological_sort dag with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
      Alcotest.(check int) "covers all" 4 (List.length order);
      let position v =
        let rec idx i = function
          | [] -> -1
          | x :: rest -> if x = v then i else idx (i + 1) rest
        in
        idx 0 order
      in
      List.iter
        (fun (u, v, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "%d before %d" u v)
            true
            (position u < position v))
        (Graph.edges dag));
  let cyclic = Graph.of_edges [ (1, 2); (2, 1) ] in
  Alcotest.(check bool)
    "cyclic has no order" true
    (Cycle.topological_sort cyclic = None)

let test_dot () =
  let g = Helpers.unit_graph_of [ (1, 2); (2, 3) ] in
  let dot = Dot.to_dot ~initial_path:[ 1; 2 ] ~final_path:[ 2; 3 ] g in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let has sub =
    let n = String.length dot and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub dot i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "initial edge solid red" true
    (has "v1 -> v2 [color=red, style=solid");
  Alcotest.(check bool) "final edge dashed red" true
    (has "v2 -> v3 [color=red, style=dashed")

let suite =
  ( "traversal",
    [
      Alcotest.test_case "bfs" `Quick test_bfs;
      Alcotest.test_case "dfs" `Quick test_dfs;
      Alcotest.test_case "reachability" `Quick test_reachability;
      Alcotest.test_case "dijkstra" `Quick test_dijkstra;
      Alcotest.test_case "hop path" `Quick test_hop_path;
      Alcotest.test_case "cycle detection" `Quick test_cycles;
      Alcotest.test_case "topological sort" `Quick test_topological_sort;
      Alcotest.test_case "dot export" `Quick test_dot;
    ] )
