open Chronus_flow

let test_build_and_query () =
  let s = Schedule.of_list [ (2, 0); (1, 3); (5, 3) ] in
  Alcotest.(check int) "size" 3 (Schedule.size s);
  Alcotest.(check bool) "mem" true (Schedule.mem 1 s);
  Alcotest.(check bool) "not mem" false (Schedule.mem 4 s);
  Alcotest.(check (option int)) "find" (Some 3) (Schedule.find 1 s);
  Alcotest.(check (option int)) "find absent" None (Schedule.find 9 s);
  Alcotest.(check (list (pair int int)))
    "sorted by time then id"
    [ (2, 0); (1, 3); (5, 3) ]
    (Schedule.to_list s)

let test_times () =
  let s = Schedule.of_list [ (2, 0); (1, 3); (5, 3) ] in
  Alcotest.(check int) "max time" 3 (Schedule.max_time s);
  Alcotest.(check int) "makespan" 4 (Schedule.makespan s);
  Alcotest.(check (list int)) "distinct times" [ 0; 3 ]
    (Schedule.distinct_times s);
  Alcotest.(check (list int)) "at 3" [ 1; 5 ] (Schedule.at 3 s);
  Alcotest.(check (list int)) "at empty step" [] (Schedule.at 1 s)

let test_empty () =
  Alcotest.(check bool) "empty" true (Schedule.is_empty Schedule.empty);
  Alcotest.(check int) "makespan 0" 0 (Schedule.makespan Schedule.empty);
  Alcotest.(check int) "max time -1" (-1) (Schedule.max_time Schedule.empty)

let test_invalid () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Schedule.add: negative time") (fun () ->
      ignore (Schedule.add 1 (-1) Schedule.empty));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schedule.add: v1 already scheduled") (fun () ->
      ignore (Schedule.of_list [ (1, 0); (1, 2) ]))

let test_covers_restrict () =
  let inst = Helpers.fig1 () in
  let partial = Schedule.of_list [ (2, 0); (3, 1) ] in
  Alcotest.(check bool) "partial does not cover" false
    (Schedule.covers inst partial);
  Alcotest.(check bool) "paper schedule covers" true
    (Schedule.covers inst Helpers.fig1_paper_schedule);
  let padded = Schedule.add 42 7 Helpers.fig1_paper_schedule in
  let restricted = Schedule.restrict_to inst padded in
  Alcotest.(check bool) "restriction drops stranger" true
    (Schedule.equal restricted Helpers.fig1_paper_schedule)

let test_shift () =
  let s = Schedule.of_list [ (1, 1); (2, 4) ] in
  let s' = Schedule.shift 2 s in
  Alcotest.(check (option int)) "shifted" (Some 3) (Schedule.find 1 s');
  Alcotest.check_raises "negative shift rejected"
    (Invalid_argument "Schedule.shift: negative time") (fun () ->
      ignore (Schedule.shift (-2) s))

let suite =
  ( "schedule",
    [
      Alcotest.test_case "build and query" `Quick test_build_and_query;
      Alcotest.test_case "time accessors" `Quick test_times;
      Alcotest.test_case "empty schedule" `Quick test_empty;
      Alcotest.test_case "invalid additions" `Quick test_invalid;
      Alcotest.test_case "covers and restrict" `Quick test_covers_restrict;
      Alcotest.test_case "shift" `Quick test_shift;
    ] )
