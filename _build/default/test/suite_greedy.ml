open Chronus_flow
open Chronus_core

let test_loop_check_structural () =
  let inst = Helpers.fig1 () in
  (* v4's dashed link points to v3, which is upstream of v4 on the old
     path — the loop configuration. v2's points to the destination. *)
  Alcotest.(check bool) "v4 structural loop" true
    (Loop_check.structural inst ~candidate:4);
  Alcotest.(check bool) "v5 structural loop" true
    (Loop_check.structural inst ~candidate:5);
  Alcotest.(check bool) "v2 no structural loop" false
    (Loop_check.structural inst ~candidate:2);
  Alcotest.(check bool) "v1 no structural loop" false
    (Loop_check.structural inst ~candidate:1)

let test_loop_check_timed () =
  let inst = Helpers.fig1 () in
  (* The paper's walkthrough: v4 loops if flipped at t1 (v3 still old)
     but is safe at t2 once v3 flipped at t1. *)
  let sched_t1 = Schedule.of_list [ (2, 0) ] in
  Alcotest.(check bool) "v4 at t1 loops" true
    (Loop_check.timed inst sched_t1 ~candidate:4 ~time:1);
  let sched_t2 = Schedule.of_list [ (2, 0); (3, 1) ] in
  Alcotest.(check bool) "v4 at t2 safe" false
    (Loop_check.timed inst sched_t2 ~candidate:4 ~time:2)

let test_safety_verdicts () =
  let inst = Helpers.fig1 () in
  let drain = Drain.make inst in
  (* v3 at t0 congests (v5, v6): redirected flow meets the old stream. *)
  (match Safety.analytic inst drain Schedule.empty ~time:0 3 with
  | Safety.Would_congest (5, 6, 1) -> ()
  | other ->
      Alcotest.failf "expected congestion on (5,6) at t=1, got %a"
        Safety.pp_verdict other);
  (* v2 at t0 is safe, and the oracle agrees. *)
  Alcotest.(check bool) "v2 analytic safe" true
    (Safety.is_safe (Safety.analytic inst drain Schedule.empty ~time:0 2));
  Alcotest.(check bool) "v2 exact safe" true
    (Safety.is_safe (Safety.exact inst Schedule.empty ~time:0 2));
  (* v4 at t0 loops. *)
  (match Safety.analytic inst drain Schedule.empty ~time:0 4 with
  | Safety.Would_loop _ -> ()
  | other -> Alcotest.failf "expected loop, got %a" Safety.pp_verdict other)

let test_safety_delete_gating () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2); (0, 2) ] in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2 ] ~p_fin:[ 0; 2 ]
  in
  let drain = Drain.make inst in
  (* Deleting v1 before anything diverted its traffic must wait. *)
  (match Safety.analytic inst drain Schedule.empty ~time:0 1 with
  | Safety.Not_drained -> ()
  | other -> Alcotest.failf "expected Not_drained, got %a" Safety.pp_verdict other);
  (* Once v0 has flipped at t0, v1 is drained from t1 on. *)
  let sched = Schedule.of_list [ (0, 0) ] in
  Alcotest.(check bool) "drained at t1" true
    (Safety.is_safe (Safety.analytic inst drain sched ~time:1 1))

let test_greedy_on_fig1 () =
  let inst = Helpers.fig1 () in
  (match Greedy.schedule ~mode:Greedy.Exact inst with
  | Greedy.Scheduled sched ->
      Helpers.check_consistent "greedy schedule" inst sched;
      Alcotest.(check bool) "covers" true (Schedule.covers inst sched);
      (* The exhaustive optimum for this instance is 4 steps; the greedy
         must achieve it (it is the paper's own walkthrough). *)
      Alcotest.(check int) "makespan 4" 4 (Schedule.makespan sched);
      Alcotest.(check (list int)) "v2 goes first" [ 2 ] (Schedule.at 0 sched)
  | Greedy.Infeasible _ -> Alcotest.fail "fig1 is feasible")

let test_greedy_analytic_on_fig1 () =
  let inst = Helpers.fig1 () in
  match Greedy.schedule ~mode:Greedy.Analytic inst with
  | Greedy.Scheduled sched ->
      Helpers.check_consistent "analytic schedule" inst sched
  | Greedy.Infeasible _ -> Alcotest.fail "fig1 is feasible"

let test_greedy_trivial () =
  let g = Helpers.unit_graph_of [ (0, 1) ] in
  let p = [ 0; 1 ] in
  let inst = Instance.create ~graph:g ~demand:1 ~p_init:p ~p_fin:p in
  match Greedy.schedule inst with
  | Greedy.Scheduled s ->
      Alcotest.(check bool) "empty schedule" true (Schedule.is_empty s)
  | Greedy.Infeasible _ -> Alcotest.fail "trivial is schedulable"

let test_greedy_detects_infeasible () =
  let inst = Helpers.infeasible () in
  (match Greedy.schedule ~mode:Greedy.Exact inst with
  | Greedy.Infeasible { remaining; _ } ->
      Alcotest.(check bool) "something remains" true (remaining <> [])
  | Greedy.Scheduled s ->
      Alcotest.failf "claimed schedulable: %a" Schedule.pp s);
  match Greedy.schedule ~mode:Greedy.Analytic inst with
  | Greedy.Infeasible _ -> ()
  | Greedy.Scheduled s ->
      (* The analytic engine may only accept it if the oracle does. *)
      Helpers.check_consistent "analytic claimed consistent" inst s

let test_greedy_waits_for_drain () =
  (* 0-1-2-3 to 0-2-3 with a slow tail: v0 can flip immediately only if
     capacity admits both streams; with capacity 2 on the tail it does. *)
  let g =
    Helpers.graph_of
      [ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 2, 3); (0, 2, 1, 1) ]
  in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
      ~p_fin:[ 0; 2; 3 ]
  in
  match Greedy.schedule ~mode:Greedy.Exact inst with
  | Greedy.Scheduled sched ->
      Helpers.check_consistent "tail capacity 2" inst sched
  | Greedy.Infeasible _ -> Alcotest.fail "feasible with roomy tail"

let test_stats () =
  let inst = Helpers.fig1 () in
  let _, stats = Greedy.schedule_with_stats inst in
  Alcotest.(check bool) "examined some steps" true (stats.Greedy.steps_examined >= 1);
  Alcotest.(check bool) "checked candidates" true
    (stats.Greedy.candidates_checked >= 5)

let suite =
  ( "greedy",
    [
      Alcotest.test_case "structural loop check (Alg. 4)" `Quick
        test_loop_check_structural;
      Alcotest.test_case "timed loop check follows the walkthrough" `Quick
        test_loop_check_timed;
      Alcotest.test_case "safety verdicts" `Quick test_safety_verdicts;
      Alcotest.test_case "deletes gated by drain" `Quick
        test_safety_delete_gating;
      Alcotest.test_case "greedy solves the worked example" `Quick
        test_greedy_on_fig1;
      Alcotest.test_case "analytic greedy solves it too" `Quick
        test_greedy_analytic_on_fig1;
      Alcotest.test_case "trivial instance" `Quick test_greedy_trivial;
      Alcotest.test_case "infeasible instance detected" `Quick
        test_greedy_detects_infeasible;
      Alcotest.test_case "capacity headroom enables immediate flip" `Quick
        test_greedy_waits_for_drain;
      Alcotest.test_case "scheduler statistics" `Quick test_stats;
    ] )
