open Chronus_sim

let test_sim_time () =
  Alcotest.(check int) "msec" 2_000 (Sim_time.msec 2);
  Alcotest.(check int) "sec" 3_000_000 (Sim_time.sec 3);
  Alcotest.(check (float 1e-9)) "to_sec" 1.5 (Sim_time.to_sec 1_500_000);
  Alcotest.(check int) "of_sec_float" 250_000 (Sim_time.of_sec_float 0.25)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  Event_queue.push q ~time:30 (note "c");
  Event_queue.push q ~time:10 (note "a");
  Event_queue.push q ~time:20 (note "b");
  Event_queue.push q ~time:10 (note "a2");
  Alcotest.(check int) "size" 4 (Event_queue.size q);
  Alcotest.(check (option int)) "peek" (Some 10) (Event_queue.peek_time q);
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, thunk) ->
        thunk ();
        drain ()
  in
  drain ();
  (* Same-time events keep insertion order. *)
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ]
    (List.rev !fired);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_random_vs_sort () =
  let q = Event_queue.create () in
  let rng = Chronus_topo.Rng.make 17 in
  let times = List.init 500 (fun _ -> Chronus_topo.Rng.int rng 1000) in
  List.iter (fun t -> Event_queue.push q ~time:t ignore) times;
  let rec pop_all acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, _) -> pop_all (t :: acc)
  in
  Alcotest.(check (list int)) "heap sorts" (List.sort compare times)
    (pop_all [])

let test_engine () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 100 (fun () -> log := (100, Engine.now e) :: !log);
  Engine.after e 50 (fun () ->
      log := (50, Engine.now e) :: !log;
      Engine.after e 25 (fun () -> log := (75, Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair int int)))
    "clock advances with events"
    [ (50, 50); (75, 75); (100, 100) ]
    (List.rev !log);
  Alcotest.(check int) "final clock" 100 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.at e 10 (fun () -> incr count);
  Engine.at e 90 (fun () -> incr count);
  Engine.run ~until:50 e;
  Alcotest.(check int) "only early event" 1 !count;
  Alcotest.(check int) "clock at until" 50 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 2 !count

let test_flow_table () =
  let t = Flow_table.create () in
  let out v = { Flow_table.set_tag = None; forward = Flow_table.Out v } in
  let low =
    Flow_table.install t ~priority:1 ~dst:9 ~tag_match:Flow_table.Any_tag
      (out 2)
  in
  let high =
    Flow_table.install t ~priority:5 ~dst:9 ~tag_match:(Flow_table.Tag 2)
      (out 3)
  in
  Alcotest.(check int) "size" 2 (Flow_table.size t);
  (* Untagged packets cannot match the tag rule. *)
  (match Flow_table.lookup t ~dst:9 ~tag:None with
  | Some r -> Alcotest.(check int) "untagged -> low" low.Flow_table.id r.Flow_table.id
  | None -> Alcotest.fail "expected match");
  (match Flow_table.lookup t ~dst:9 ~tag:(Some 2) with
  | Some r ->
      Alcotest.(check int) "tagged -> high priority" high.Flow_table.id
        r.Flow_table.id
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "wrong dst" true
    (Flow_table.lookup t ~dst:8 ~tag:None = None);
  let changed =
    Flow_table.modify_actions t ~dst:9 ~tag_match:Flow_table.Any_tag (out 7)
  in
  Alcotest.(check int) "modified one" 1 changed;
  (match Flow_table.lookup t ~dst:9 ~tag:None with
  | Some r ->
      Alcotest.(check bool) "action rewritten" true
        (r.Flow_table.action.Flow_table.forward = Flow_table.Out 7)
  | None -> Alcotest.fail "rule vanished");
  let removed = Flow_table.remove t ~dst:9 ~tag_match:(Flow_table.Tag 2) in
  Alcotest.(check int) "removed one" 1 removed;
  Alcotest.(check int) "one left" 1 (Flow_table.size t)

let mini_net () =
  let e = Engine.create () in
  let net = Network.create e in
  Network.add_link net ~capacity_mbps:10. ~delay:(Sim_time.msec 5) 0 1;
  Network.add_link net ~capacity_mbps:10. ~delay:(Sim_time.msec 5) 1 2;
  let out v = { Flow_table.set_tag = None; forward = Flow_table.Out v } in
  ignore
    (Flow_table.install (Network.table net 0) ~priority:1 ~dst:2
       ~tag_match:Flow_table.Any_tag (out 1));
  ignore
    (Flow_table.install (Network.table net 1) ~priority:1 ~dst:2
       ~tag_match:Flow_table.Any_tag (out 2));
  ignore
    (Flow_table.install (Network.table net 2) ~priority:1 ~dst:2
       ~tag_match:Flow_table.Any_tag
       { Flow_table.set_tag = None; forward = Flow_table.To_host });
  (e, net)

let test_network_delivery_and_conservation () =
  let e, net = mini_net () in
  Network.add_source net ~attach:0 ~dst:2 ~rate_mbps:8. ~chunk:(Sim_time.msec 100)
    ~start:0 ~stop:(Sim_time.sec 1) ();
  Engine.run e;
  let stats = Network.stats net in
  (* 8 Mbit/s for 1 s = 1 MB injected; everything delivered. *)
  Alcotest.(check int) "delivered" 1_000_000 stats.Network.delivered_bytes;
  Alcotest.(check int) "no blackhole" 0 stats.Network.dropped_no_rule;
  Alcotest.(check int) "no loops" 0 stats.Network.dropped_loop;
  Alcotest.(check int) "counters match on both links" (Network.link_bytes net (0, 1))
    (Network.link_bytes net (1, 2));
  Alcotest.(check int) "bytes entered equal delivered" 1_000_000
    (Network.link_bytes net (0, 1))

let test_network_blackhole () =
  let e, net = mini_net () in
  ignore (Flow_table.remove (Network.table net 1) ~dst:2 ~tag_match:Flow_table.Any_tag);
  let dropped = ref 0 in
  Network.on_drop net (fun reason ~switch ~bytes ->
      Alcotest.(check bool) "reason no rule" true (reason = Network.No_rule);
      Alcotest.(check int) "at switch 1" 1 switch;
      dropped := !dropped + bytes);
  Network.inject net ~at:0 ~dst:2 ~bytes:500 ();
  Engine.run e;
  Alcotest.(check int) "observer saw the drop" 500 !dropped;
  Alcotest.(check int) "stats agree" 500 (Network.stats net).Network.dropped_no_rule

let test_network_loop_drop () =
  let e = Engine.create () in
  let net = Network.create e in
  Network.add_link net ~capacity_mbps:10. ~delay:(Sim_time.msec 1) 0 1;
  Network.add_link net ~capacity_mbps:10. ~delay:(Sim_time.msec 1) 1 0;
  let out v = { Flow_table.set_tag = None; forward = Flow_table.Out v } in
  ignore
    (Flow_table.install (Network.table net 0) ~priority:1 ~dst:9
       ~tag_match:Flow_table.Any_tag (out 1));
  ignore
    (Flow_table.install (Network.table net 1) ~priority:1 ~dst:9
       ~tag_match:Flow_table.Any_tag (out 0));
  Network.inject net ~at:0 ~dst:9 ~bytes:100 ();
  Engine.run e;
  Alcotest.(check int) "looped traffic dropped" 100
    (Network.stats net).Network.dropped_loop

let test_controller_flow_mods () =
  let e, net = mini_net () in
  let ctrl =
    Controller.create ~latency:(fun ~switch:_ -> Sim_time.msec 10) net
  in
  Controller.send ctrl ~switch:1
    (Controller.Modify
       {
         dst = 2;
         tag_match = Flow_table.Any_tag;
         action = { Flow_table.set_tag = None; forward = Flow_table.Drop };
       });
  Alcotest.(check int) "sent" 1 (Controller.commands_sent ctrl);
  (* Before the command lands, the rule still forwards. *)
  (match Flow_table.lookup (Network.table net 1) ~dst:2 ~tag:None with
  | Some r ->
      Alcotest.(check bool) "not yet applied" true
        (r.Flow_table.action.Flow_table.forward = Flow_table.Out 2)
  | None -> Alcotest.fail "rule present");
  Engine.run e;
  match Flow_table.lookup (Network.table net 1) ~dst:2 ~tag:None with
  | Some r ->
      Alcotest.(check bool) "applied after latency" true
        (r.Flow_table.action.Flow_table.forward = Flow_table.Drop)
  | None -> Alcotest.fail "rule present"

let test_controller_timed_execution () =
  let e, net = mini_net () in
  let ctrl =
    Controller.create ~latency:(fun ~switch:_ -> Sim_time.msec 1) net
  in
  let stamp = Sim_time.sec 2 in
  Controller.send ctrl ~execute_at:stamp ~switch:1
    (Controller.Remove { dst = 2; tag_match = Flow_table.Any_tag });
  Engine.run ~until:(Sim_time.sec 1) e;
  Alcotest.(check int) "still installed at 1s" 1
    (Flow_table.size (Network.table net 1));
  Engine.run e;
  Alcotest.(check int) "gone at its timestamp" 0
    (Flow_table.size (Network.table net 1));
  Alcotest.(check int) "applied exactly at the stamp" stamp (Engine.now e)

let test_controller_barrier () =
  let e, net = mini_net () in
  let ctrl =
    Controller.create ~latency:(fun ~switch:_ -> Sim_time.msec 10) net
  in
  let stamp = Sim_time.sec 1 in
  Controller.send ctrl ~execute_at:stamp ~switch:1
    (Controller.Remove { dst = 2; tag_match = Flow_table.Any_tag });
  let reply = ref 0 in
  Controller.barrier ctrl ~switch:1 (fun at -> reply := at);
  Engine.run e;
  (* The barrier reply waits for the timed command to be applied. *)
  Alcotest.(check int) "reply after execution + return leg"
    (stamp + Sim_time.msec 10)
    !reply

let test_monitor_series () =
  let e, net = mini_net () in
  let monitor = Monitor.create ~interval:(Sim_time.sec 1) net in
  Network.add_source net ~attach:0 ~dst:2 ~rate_mbps:4.
    ~chunk:(Sim_time.msec 100) ~start:0 ~stop:(Sim_time.sec 3) ();
  Monitor.stop_after monitor (Sim_time.sec 4);
  Engine.run ~until:(Sim_time.sec 4) e;
  let series = Monitor.series monitor (0, 1) in
  Alcotest.(check bool) "sampled" true (List.length series >= 3);
  let first = List.hd series in
  Alcotest.(check (float 0.01)) "4 Mbit/s measured" 4.0 first.Monitor.mbps;
  Alcotest.(check (float 0.01)) "peak" 4.0 (Monitor.peak monitor (0, 1));
  (match Monitor.busiest_link monitor with
  | Some (_, peak) -> Alcotest.(check (float 0.01)) "busiest peak" 4.0 peak
  | None -> Alcotest.fail "expected a busiest link");
  Alcotest.(check int) "no congested samples" 0
    (List.length (Monitor.congested_samples monitor))

let suite =
  ( "sim",
    [
      Alcotest.test_case "time units" `Quick test_sim_time;
      Alcotest.test_case "event queue ordering" `Quick test_event_queue_order;
      Alcotest.test_case "event queue vs sort" `Quick
        test_event_queue_random_vs_sort;
      Alcotest.test_case "engine" `Quick test_engine;
      Alcotest.test_case "engine run until" `Quick test_engine_until;
      Alcotest.test_case "flow table" `Quick test_flow_table;
      Alcotest.test_case "delivery and byte conservation" `Quick
        test_network_delivery_and_conservation;
      Alcotest.test_case "blackhole accounting" `Quick test_network_blackhole;
      Alcotest.test_case "loop drop" `Quick test_network_loop_drop;
      Alcotest.test_case "controller flow mods" `Quick
        test_controller_flow_mods;
      Alcotest.test_case "timed execution (Time4)" `Quick
        test_controller_timed_execution;
      Alcotest.test_case "barriers wait for applications" `Quick
        test_controller_barrier;
      Alcotest.test_case "bandwidth monitor" `Quick test_monitor_series;
    ] )
