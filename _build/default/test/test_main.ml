let () =
  Alcotest.run "chronus"
    [
      Suite_graph.suite;
      Suite_path.suite;
      Suite_traversal.suite;
      Suite_instance.suite;
      Suite_schedule.suite;
      Suite_oracle.suite;
      Suite_time_extended.suite;
      Suite_drain.suite;
      Suite_dependency.suite;
      Suite_greedy.suite;
      Suite_safety.suite;
      Suite_tree.suite;
      Suite_mutp.suite;
      Suite_order_replacement.suite;
      Suite_two_phase.suite;
      Suite_opt.suite;
      Suite_topology.suite;
      Suite_scenario.suite;
      Suite_stats.suite;
      Suite_sim.suite;
      Suite_exec_env.suite;
      Suite_exec.suite;
      Suite_experiments.suite;
      Props.suite;
    ]
