open Chronus_flow

let test_fig1_shape () =
  let inst = Helpers.fig1 () in
  Alcotest.(check int) "source" 1 (Instance.source inst);
  Alcotest.(check int) "destination" 6 (Instance.destination inst);
  Alcotest.(check int) "five updates" 5 (Instance.update_count inst);
  Alcotest.(check (list int))
    "update switches" [ 1; 2; 3; 4; 5 ]
    (Instance.switches_to_update inst);
  Alcotest.(check bool) "not trivial" false (Instance.is_trivial inst);
  Alcotest.(check int) "init delay" 5 (Instance.init_delay inst);
  Alcotest.(check int) "fin delay" 5 (Instance.fin_delay inst)

let test_next_hops () =
  let inst = Helpers.fig1 () in
  Alcotest.(check (option int)) "old next of v2" (Some 3)
    (Instance.old_next inst 2);
  Alcotest.(check (option int)) "new next of v2" (Some 6)
    (Instance.new_next inst 2);
  Alcotest.(check (option int)) "old next of dst" None
    (Instance.old_next inst 6);
  Alcotest.(check (option int)) "old prev of v2" (Some 1)
    (Instance.old_prev inst 2);
  Alcotest.(check (option int)) "new prev of v6" (Some 2)
    (Instance.new_prev inst 6);
  Alcotest.(check (option int)) "off-path" None (Instance.old_next inst 42)

let test_update_kinds () =
  (* 0-1-2-3 moves to 0-4-3: v1, v2 deleted; v4 added; v0 modified. *)
  let g =
    Helpers.unit_graph_of [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 3) ]
  in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
      ~p_fin:[ 0; 4; 3 ]
  in
  let kinds =
    List.map
      (fun (u : Instance.update) -> (u.Instance.switch, u.Instance.kind))
      (Instance.updates inst)
  in
  Alcotest.(check bool)
    "kinds" true
    (kinds
    = [
        (0, Instance.Modify);
        (1, Instance.Delete);
        (2, Instance.Delete);
        (4, Instance.Add);
      ])

let test_trivial () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2) ] in
  let p = [ 0; 1; 2 ] in
  let inst = Instance.create ~graph:g ~demand:1 ~p_init:p ~p_fin:p in
  Alcotest.(check bool) "trivial" true (Instance.is_trivial inst);
  Alcotest.(check int) "no updates" 0 (Instance.update_count inst)

let ill_formed name f =
  match f () with
  | exception Instance.Ill_formed _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Ill_formed")

let test_validation () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2); (0, 2) ] in
  ill_formed "different destinations" (fun () ->
      Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1 ] ~p_fin:[ 0; 2 ]);
  ill_formed "empty path" (fun () ->
      Instance.create ~graph:g ~demand:1 ~p_init:[] ~p_fin:[ 0; 2 ]);
  ill_formed "missing link" (fun () ->
      Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 2 ] ~p_fin:[ 0; 1; 2 ]
      |> fun _ ->
      Instance.create ~graph:g ~demand:1 ~p_init:[ 2; 0 ] ~p_fin:[ 2; 0 ]);
  ill_formed "zero demand" (fun () ->
      Instance.create ~graph:g ~demand:0 ~p_init:[ 0; 2 ] ~p_fin:[ 0; 2 ]);
  ill_formed "capacity below demand" (fun () ->
      Instance.create ~graph:g ~demand:7 ~p_init:[ 0; 2 ] ~p_fin:[ 0; 2 ]);
  ill_formed "repeated switch" (fun () ->
      Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2 ]
        ~p_fin:[ 0; 1; 0; 2 ])

let suite =
  ( "instance",
    [
      Alcotest.test_case "worked example shape" `Quick test_fig1_shape;
      Alcotest.test_case "next hops" `Quick test_next_hops;
      Alcotest.test_case "update kinds" `Quick test_update_kinds;
      Alcotest.test_case "trivial instance" `Quick test_trivial;
      Alcotest.test_case "ill-formed instances rejected" `Quick
        test_validation;
    ] )
