open Chronus_graph

let g () =
  Helpers.graph_of
    [ (1, 2, 2, 1); (2, 3, 1, 2); (3, 4, 3, 3); (2, 4, 1, 1) ]

let p = [ 1; 2; 3; 4 ]

let test_endpoints () =
  Alcotest.(check int) "source" 1 (Path.source p);
  Alcotest.(check int) "destination" 4 (Path.destination p);
  Alcotest.(check int) "singleton" 9 (Path.source [ 9 ]);
  Alcotest.check_raises "empty source" (Invalid_argument "Path.source: empty path")
    (fun () -> ignore (Path.source []))

let test_hops_edges () =
  Alcotest.(check int) "hops" 3 (Path.hops p);
  Alcotest.(check int) "single node hops" 0 (Path.hops [ 1 ]);
  Alcotest.(check (list (pair int int)))
    "edges" [ (1, 2); (2, 3); (3, 4) ] (Path.edges p);
  Alcotest.(check bool) "mem_edge" true (Path.mem_edge 2 3 p);
  Alcotest.(check bool) "not mem_edge reversed" false (Path.mem_edge 3 2 p)

let test_next_prev () =
  Alcotest.(check (option int)) "next of 2" (Some 3) (Path.next_hop p 2);
  Alcotest.(check (option int)) "next of dst" None (Path.next_hop p 4);
  Alcotest.(check (option int)) "next of stranger" None (Path.next_hop p 7);
  Alcotest.(check (option int)) "prev of 2" (Some 1) (Path.prev_hop p 2);
  Alcotest.(check (option int)) "prev of src" None (Path.prev_hop p 1)

let test_validity () =
  let g = g () in
  Alcotest.(check bool) "valid" true (Path.is_valid g p);
  Alcotest.(check bool) "repeated node" false (Path.is_valid g [ 1; 2; 1 ]);
  Alcotest.(check bool) "missing edge" false (Path.is_valid g [ 1; 3 ]);
  Alcotest.(check bool) "unknown node" false (Path.is_valid g [ 1; 2; 9 ]);
  Alcotest.(check bool) "empty invalid" false (Path.is_valid g []);
  Alcotest.(check bool) "simple" true (Path.is_simple [ 1; 2; 3 ]);
  Alcotest.(check bool) "not simple" false (Path.is_simple [ 1; 2; 2 ])

let test_metrics () =
  let g = g () in
  Alcotest.(check int) "phi(p)" 6 (Path.delay g p);
  Alcotest.(check int) "bottleneck" 1 (Path.bottleneck_capacity g p);
  Alcotest.(check int) "shortcut delay" 2 (Path.delay g [ 1; 2; 4 ]);
  Alcotest.(check int)
    "single node bottleneck" max_int
    (Path.bottleneck_capacity g [ 1 ])

let test_sub_paths () =
  Alcotest.(check (option (list int)))
    "suffix" (Some [ 3; 4 ]) (Path.suffix_from p 3);
  Alcotest.(check (option (list int)))
    "suffix from src is whole" (Some p) (Path.suffix_from p 1);
  Alcotest.(check (option (list int))) "suffix missing" None
    (Path.suffix_from p 7);
  Alcotest.(check (option (list int)))
    "prefix" (Some [ 1; 2 ]) (Path.prefix_to p 2);
  Alcotest.(check (option (list int))) "prefix missing" None
    (Path.prefix_to p 7)

let test_pp () =
  Alcotest.(check string) "render" "1 -> 2 -> 3 -> 4" (Path.to_string p)

let suite =
  ( "path",
    [
      Alcotest.test_case "endpoints" `Quick test_endpoints;
      Alcotest.test_case "hops and edges" `Quick test_hops_edges;
      Alcotest.test_case "next and prev hops" `Quick test_next_prev;
      Alcotest.test_case "validity" `Quick test_validity;
      Alcotest.test_case "delay and bottleneck" `Quick test_metrics;
      Alcotest.test_case "prefix and suffix" `Quick test_sub_paths;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )
