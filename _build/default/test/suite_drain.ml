open Chronus_flow
open Chronus_core

let test_horizon_algebra () =
  let open Horizon in
  Alcotest.(check bool) "never before anything" true (before Never 0);
  Alcotest.(check bool) "forever never before" false (before Forever max_int);
  Alcotest.(check bool) "until strict" true (before (Until 3) 4);
  Alcotest.(check bool) "until inclusive edge" false (before (Until 3) 3);
  Alcotest.(check bool) "at_or_after" true (at_or_after (Until 3) 3);
  Alcotest.(check bool) "min order" true (min (Until 2) (Until 5) = Until 2);
  Alcotest.(check bool) "never smallest" true (min Never (Until 0) = Never);
  Alcotest.(check bool) "forever largest" true
    (max Forever (Until 100) = Forever);
  Alcotest.(check bool) "add shifts" true (add (Until 3) 2 = Until 5);
  Alcotest.(check bool) "add absorbs never" true (add Never 2 = Never);
  Alcotest.(check bool) "add absorbs forever" true (add Forever 2 = Forever);
  Alcotest.(check int) "compare equal" 0 (compare (Until 7) (Until 7))

let test_unscheduled_flows_forever () =
  let inst = Helpers.fig1 () in
  let drain = Drain.make inst in
  let view = Drain.view drain Schedule.empty in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "arrivals at v%d forever" v)
        true
        (Drain.last_arrival view v = Horizon.Forever))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "all_drained is forever" true
    (Drain.all_drained_by view = Horizon.Forever);
  Alcotest.(check bool) "off-path never" true
    (Drain.last_arrival view 42 = Horizon.Never)

let test_divert_horizons () =
  (* v2 flips at t0: arrivals downstream stop after the in-flight tail. *)
  let inst = Helpers.fig1 () in
  let drain = Drain.make inst in
  let view = Drain.view drain (Schedule.of_list [ (2, 0) ]) in
  Alcotest.(check bool) "source keeps receiving" true
    (Drain.last_arrival view 1 = Horizon.Forever);
  Alcotest.(check bool) "v2 keeps receiving" true
    (Drain.last_arrival view 2 = Horizon.Forever);
  Alcotest.(check bool) "v3 last arrival t0" true
    (Drain.last_arrival view 3 = Horizon.Until 0);
  Alcotest.(check bool) "v4 last arrival t1" true
    (Drain.last_arrival view 4 = Horizon.Until 1);
  Alcotest.(check bool) "v5 last arrival t2" true
    (Drain.last_arrival view 5 = Horizon.Until 2);
  (* Exits: v2's own flip also stops its old outgoing link. *)
  Alcotest.(check bool) "v2 old exit stops" true
    (Drain.last_old_exit view 2 = Horizon.Until (-1));
  Alcotest.(check bool) "v5 exit t2" true
    (Drain.last_old_exit view 5 = Horizon.Until 2);
  Alcotest.(check bool) "dst never exits" true
    (Drain.last_old_exit view 6 = Horizon.Never);
  (* The prefix link (v1, v2) still carries the rerouted flow forever, so
     the old path as a whole never drains under this partial schedule. *)
  Alcotest.(check bool) "not fully drained" true
    (Drain.all_drained_by view = Horizon.Forever);
  (* Once the source itself diverts, everything drains: the tail needs
     its prefix delay to clear each link. *)
  let view = Drain.view drain (Schedule.of_list [ (1, 0); (2, 0) ]) in
  (* Last pure-old cohort is injected at -2 (later ones divert at v1 or
     v2); it reaches the destination at t = 3. *)
  Alcotest.(check bool) "drained by t3 after source flip" true
    (Drain.all_drained_by view = Horizon.Until 3)

(* Ground truth: compute last pure-old-path arrival by tracing every
   cohort through the oracle and keeping those whose visit prefix matches
   the initial path. *)
let brute_force_last_arrival inst sched v =
  let p_init = inst.Instance.p_init in
  let window_lo = -Instance.init_delay inst - 2 in
  let window_hi = Schedule.max_time sched + Instance.init_delay inst + 3 in
  let last = ref None in
  for tau = window_lo to window_hi do
    let cohort = Oracle.trace inst sched tau in
    let rec arrives_via_old path visits =
      match (path, visits) with
      | p :: _, [ (w, t) ] -> if p = w && w = v then Some t else None
      | p :: prest, (w, t) :: vrest ->
          if p <> w then None
          else if w = v then Some t
          else arrives_via_old prest vrest
      | [], _ | _, [] -> None
    in
    match arrives_via_old p_init cohort.Oracle.visits with
    | Some t -> last := Some (max t (Option.value ~default:min_int !last))
    | None -> ()
  done;
  !last

let test_drain_matches_oracle () =
  (* The closed-form horizons agree with brute force on random partial
     schedules, as long as the window is wide enough to see the last
     arrival. *)
  let rng = Chronus_topo.Rng.make 99 in
  for seed = 0 to 24 do
    let inst = Helpers.instance_of_seed seed in
    let drain = Drain.make inst in
    let switches = Instance.switches_to_update inst in
    let sched =
      List.fold_left
        (fun s v ->
          if Chronus_topo.Rng.bool rng then
            Schedule.add v (Chronus_topo.Rng.int rng 5) s
          else s)
        Schedule.empty switches
    in
    let view = Drain.view drain sched in
    List.iter
      (fun v ->
        match Drain.last_arrival view v with
        | Horizon.Until expected -> (
            match brute_force_last_arrival inst sched v with
            | Some actual ->
                Alcotest.(check int)
                  (Format.asprintf "seed %d, v%d under %a" seed v Schedule.pp
                     sched)
                  expected actual
            | None -> ())
        | Horizon.Forever | Horizon.Never -> ())
      inst.Instance.p_init
  done

let test_expiries () =
  let inst = Helpers.fig1 () in
  let drain = Drain.make inst in
  let view = Drain.view drain (Schedule.of_list [ (2, 0) ]) in
  let expiries = Drain.expiries view in
  Alcotest.(check bool) "sorted" true (List.sort compare expiries = expiries);
  Alcotest.(check bool) "contains v5 horizon" true (List.mem 2 expiries)

let suite =
  ( "drain",
    [
      Alcotest.test_case "horizon algebra" `Quick test_horizon_algebra;
      Alcotest.test_case "no schedule, flows forever" `Quick
        test_unscheduled_flows_forever;
      Alcotest.test_case "divert horizons after one flip" `Quick
        test_divert_horizons;
      Alcotest.test_case "horizons match the oracle" `Slow
        test_drain_matches_oracle;
      Alcotest.test_case "expiries" `Quick test_expiries;
    ] )
