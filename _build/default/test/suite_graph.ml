open Chronus_graph

let check_nodes = Alcotest.(check (list int))

let test_empty () =
  let g = Graph.create () in
  Alcotest.(check int) "no nodes" 0 (Graph.node_count g);
  Alcotest.(check int) "no edges" 0 (Graph.edge_count g);
  check_nodes "nodes" [] (Graph.nodes g)

let test_add_nodes () =
  let g = Graph.create () in
  Graph.add_node g 3;
  Graph.add_node g 1;
  Graph.add_node g 3;
  check_nodes "sorted, deduplicated" [ 1; 3 ] (Graph.nodes g);
  Alcotest.(check bool) "mem 3" true (Graph.mem_node g 3);
  Alcotest.(check bool) "not mem 2" false (Graph.mem_node g 2)

let test_add_edge () =
  let g = Graph.create () in
  Graph.add_edge ~capacity:5 ~delay:2 g 1 2;
  Alcotest.(check bool) "edge present" true (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "reverse absent" false (Graph.mem_edge g 2 1);
  Alcotest.(check int) "capacity" 5 (Graph.capacity g 1 2);
  Alcotest.(check int) "delay" 2 (Graph.delay g 1 2);
  Alcotest.(check int) "endpoints added" 2 (Graph.node_count g)

let test_edge_replacement () =
  let g = Graph.create () in
  Graph.add_edge ~capacity:1 ~delay:1 g 1 2;
  Graph.add_edge ~capacity:9 ~delay:4 g 1 2;
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g);
  Alcotest.(check int) "latest capacity" 9 (Graph.capacity g 1 2);
  Alcotest.(check int) "latest delay" 4 (Graph.delay g 1 2)

let test_remove_edge () =
  let g = Graph.of_edges [ (1, 2); (2, 3) ] in
  Graph.remove_edge g 1 2;
  Alcotest.(check bool) "removed" false (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "other kept" true (Graph.mem_edge g 2 3);
  Graph.remove_edge g 1 2 (* no-op *)

let test_invalid_edges () =
  let g = Graph.create () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Graph.add_edge: non-positive capacity") (fun () ->
      Graph.add_edge ~capacity:0 g 1 2);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Graph.add_edge: negative delay") (fun () ->
      Graph.add_edge ~delay:(-1) g 1 2)

let test_succ_pred () =
  let g = Graph.of_edges [ (1, 2); (1, 3); (4, 1) ] in
  Alcotest.(check (list int))
    "succ sorted" [ 2; 3 ]
    (List.map fst (Graph.succ g 1));
  Alcotest.(check (list int)) "pred" [ 4 ] (List.map fst (Graph.pred g 1));
  Alcotest.(check int) "out degree" 2 (Graph.out_degree g 1);
  Alcotest.(check int) "in degree" 1 (Graph.in_degree g 1);
  Alcotest.(check int) "sink degree" 0 (Graph.out_degree g 2)

let test_copy_independent () =
  let g = Graph.of_edges [ (1, 2) ] in
  let g' = Graph.copy g in
  Graph.add_edge g' 2 3;
  Alcotest.(check bool) "copy has new edge" true (Graph.mem_edge g' 2 3);
  Alcotest.(check bool) "original untouched" false (Graph.mem_edge g 2 3);
  Alcotest.(check bool) "copies equal before divergence" false
    (Graph.equal g g')

let test_of_labelled_edges_roundtrip () =
  let edges =
    [
      (1, 2, { Graph.capacity = 3; delay = 2 });
      (2, 3, { Graph.capacity = 1; delay = 5 });
    ]
  in
  let g = Graph.of_labelled_edges edges in
  Alcotest.(check bool)
    "roundtrip" true
    (Graph.edges g = List.sort compare edges)

let test_delay_aggregates () =
  let g =
    Graph.of_labelled_edges
      [
        (1, 2, { Graph.capacity = 1; delay = 2 });
        (2, 3, { Graph.capacity = 1; delay = 7 });
      ]
  in
  Alcotest.(check int) "max delay" 7 (Graph.max_delay g);
  Alcotest.(check int) "total delay" 9 (Graph.total_delay g);
  Alcotest.(check int) "edgeless max" 0 (Graph.max_delay (Graph.create ()))

let test_missing_edge_raises () =
  let g = Graph.of_edges [ (1, 2) ] in
  Alcotest.check_raises "capacity of absent edge" Not_found (fun () ->
      ignore (Graph.capacity g 2 1));
  Alcotest.(check (option (pair int int))) "find_edge absent" None
    (Option.map
       (fun (e : Graph.edge) -> (e.Graph.capacity, e.Graph.delay))
       (Graph.find_edge g 2 1))

let suite =
  ( "graph",
    [
      Alcotest.test_case "empty graph" `Quick test_empty;
      Alcotest.test_case "add nodes" `Quick test_add_nodes;
      Alcotest.test_case "add edge" `Quick test_add_edge;
      Alcotest.test_case "edge replacement" `Quick test_edge_replacement;
      Alcotest.test_case "remove edge" `Quick test_remove_edge;
      Alcotest.test_case "invalid edges rejected" `Quick test_invalid_edges;
      Alcotest.test_case "successors and predecessors" `Quick test_succ_pred;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "labelled edges roundtrip" `Quick
        test_of_labelled_edges_roundtrip;
      Alcotest.test_case "delay aggregates" `Quick test_delay_aggregates;
      Alcotest.test_case "missing edge raises" `Quick test_missing_edge_raises;
    ] )
