open Chronus_flow
open Chronus_core

let test_objective () =
  Alcotest.(check int) "paper schedule objective" 4
    (Mutp.objective Helpers.fig1_paper_schedule);
  Alcotest.(check int) "empty objective" 0 (Mutp.objective Schedule.empty)

let test_is_solution () =
  let inst = Helpers.fig1 () in
  Alcotest.(check bool) "paper schedule solves" true
    (Mutp.is_solution inst Helpers.fig1_paper_schedule);
  Alcotest.(check bool) "all-at-zero does not" false
    (Mutp.is_solution inst (Helpers.all_at_zero inst));
  Alcotest.(check bool) "partial does not" false
    (Mutp.is_solution inst (Schedule.of_list [ (2, 0) ]))

let test_bounds () =
  let inst = Helpers.fig1 () in
  Alcotest.(check int) "fig1 lower bound 2" 2 (Mutp.lower_bound inst);
  Alcotest.(check bool) "upper above lower" true
    (Mutp.upper_bound_hint inst >= Mutp.lower_bound inst);
  (* A one-step instance: ample capacity, no deletes (a delete can never
     happen at t0 because in-flight traffic would be blackholed). *)
  let g =
    Helpers.graph_of
      [ (0, 1, 2, 1); (1, 2, 2, 1); (1, 3, 2, 1); (3, 2, 2, 1) ]
  in
  let easy =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2 ]
      ~p_fin:[ 0; 1; 3; 2 ]
  in
  Alcotest.(check int) "easy lower bound 1" 1 (Mutp.lower_bound easy)

let test_render_ilp () =
  let text = Mutp.render_ilp (Helpers.fig1 ()) in
  let has sub =
    let n = String.length text and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub text i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "objective line" true (has "minimize |T|");
  Alcotest.(check bool) "capacity rows" true (has "(3a)");
  Alcotest.(check bool) "path rows" true (has "(3b)");
  Alcotest.(check bool) "integrality row" true (has "(3c)");
  Alcotest.(check bool) "mentions variables" true (has "x[f")

let test_feasibility_min_makespan () =
  let inst = Helpers.fig1 () in
  match Feasibility.min_makespan ~horizon:6 inst with
  | Some (m, witness) ->
      Alcotest.(check int) "optimum is 4" 4 m;
      Helpers.check_consistent "witness" inst witness
  | None -> Alcotest.fail "fig1 is feasible"

let test_fallback_completes () =
  let inst = Helpers.infeasible () in
  let { Fallback.schedule; clean } = Fallback.schedule inst in
  Alcotest.(check bool) "not clean" false clean;
  Alcotest.(check bool) "covers all updates" true
    (Schedule.covers inst schedule)

let test_fallback_clean_on_feasible () =
  let inst = Helpers.fig1 () in
  let { Fallback.schedule; clean } = Fallback.schedule inst in
  Alcotest.(check bool) "clean" true clean;
  Helpers.check_consistent "clean schedule" inst schedule

let test_fallback_never_loops () =
  (* Even on infeasible instances the best-effort schedule must not create
     forwarding loops or blackholes — only congestion. *)
  for seed = 200 to 219 do
    let inst = Helpers.instance_of_seed ~max_n:7 seed in
    let { Fallback.schedule; _ } = Fallback.schedule inst in
    let report = Oracle.evaluate inst schedule in
    List.iter
      (function
        | Oracle.Congestion _ -> ()
        | Oracle.Loop _ -> Alcotest.failf "seed %d: loop in fallback" seed
        | Oracle.Blackhole _ ->
            Alcotest.failf "seed %d: blackhole in fallback" seed)
      report.Oracle.violations
  done

let suite =
  ( "mutp",
    [
      Alcotest.test_case "objective" `Quick test_objective;
      Alcotest.test_case "solution admissibility" `Quick test_is_solution;
      Alcotest.test_case "bounds" `Quick test_bounds;
      Alcotest.test_case "ILP rendering" `Quick test_render_ilp;
      Alcotest.test_case "exhaustive optimum on fig1" `Slow
        test_feasibility_min_makespan;
      Alcotest.test_case "fallback completes infeasible instances" `Quick
        test_fallback_completes;
      Alcotest.test_case "fallback is clean on feasible instances" `Quick
        test_fallback_clean_on_feasible;
      Alcotest.test_case "fallback never loops or blackholes" `Slow
        test_fallback_never_loops;
    ] )
