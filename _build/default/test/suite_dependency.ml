open Chronus_flow
open Chronus_core

let deps_at inst sched ~remaining ~time =
  Dependency.at inst (Drain.make inst) sched ~remaining ~time

let test_fig5_t0_chain () =
  (* Fig. 5 at t0: the single chain v2 -> v4 -> v3 -> v1 -> v5. *)
  let inst = Helpers.fig1 () in
  let dep =
    deps_at inst Schedule.empty
      ~remaining:(Instance.switches_to_update inst)
      ~time:0
  in
  Alcotest.(check bool)
    "single chain" true
    (dep.Dependency.chains = [ [ 2; 4; 3; 1; 5 ] ]);
  Alcotest.(check bool) "no cycle" true (dep.Dependency.cyclic = []);
  Alcotest.(check (list int)) "head is v2" [ 2 ] (Dependency.heads dep)

let test_fig5_t1_inertness () =
  (* After v2 flips at t0, v3 receives no further traffic: at t1 it is
     inert and becomes a head (the refinement that reproduces the paper's
     {(v3 v1 v5), (v4)} evolution). *)
  let inst = Helpers.fig1 () in
  let dep =
    deps_at inst
      (Schedule.of_list [ (2, 0) ])
      ~remaining:[ 1; 3; 4; 5 ] ~time:1
  in
  Alcotest.(check bool) "v3 among heads" true
    (List.mem 3 (Dependency.heads dep))

let test_heads_are_chain_heads () =
  let inst = Helpers.fig1 () in
  let dep =
    deps_at inst Schedule.empty
      ~remaining:(Instance.switches_to_update inst)
      ~time:0
  in
  List.iter
    (fun chain ->
      match chain with
      | [] -> Alcotest.fail "empty chain"
      | head :: _ ->
          Alcotest.(check bool)
            (Printf.sprintf "v%d is a head" head)
            true
            (List.mem head (Dependency.heads dep)))
    dep.Dependency.chains

let test_no_dependency_when_capacity_suffices () =
  (* Same shape as Fig. 1 but with capacity 2 everywhere: both streams fit
     on every link, so nothing depends on anything. *)
  let g =
    Helpers.graph_of
      (List.map
         (fun (u, v) -> (u, v, 2, 1))
         [
           (1, 2); (2, 3); (3, 4); (4, 5); (5, 6);
           (1, 4); (4, 3); (3, 5); (5, 2); (2, 6);
         ])
  in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 1; 2; 3; 4; 5; 6 ]
      ~p_fin:[ 1; 4; 3; 5; 2; 6 ]
  in
  let dep =
    deps_at inst Schedule.empty
      ~remaining:(Instance.switches_to_update inst)
      ~time:0
  in
  Alcotest.(check (list int))
    "everyone is a singleton head" [ 1; 2; 3; 4; 5 ]
    (Dependency.heads dep)

let test_chains_partition_remaining () =
  for seed = 0 to 19 do
    let inst = Helpers.instance_of_seed seed in
    let remaining = Instance.switches_to_update inst in
    let dep = deps_at inst Schedule.empty ~remaining ~time:0 in
    let members =
      List.concat dep.Dependency.chains @ List.concat dep.Dependency.cyclic
    in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: partition" seed)
      remaining
      (List.sort compare members)
  done

let suite =
  ( "dependency",
    [
      Alcotest.test_case "Fig. 5 chain at t0" `Quick test_fig5_t0_chain;
      Alcotest.test_case "inert switches become heads (Fig. 5 t1)" `Quick
        test_fig5_t1_inertness;
      Alcotest.test_case "heads are chain heads" `Quick
        test_heads_are_chain_heads;
      Alcotest.test_case "ample capacity removes dependencies" `Quick
        test_no_dependency_when_capacity_suffices;
      Alcotest.test_case "chains partition the remaining switches" `Quick
        test_chains_partition_remaining;
    ] )
