(* Shared fixtures and generators for the test suite. *)

open Chronus_graph
open Chronus_flow

let graph_of edges =
  let g = Graph.create () in
  List.iter
    (fun (u, v, capacity, delay) -> Graph.add_edge ~capacity ~delay g u v)
    edges;
  g

let unit_graph_of edges =
  graph_of (List.map (fun (u, v) -> (u, v, 1, 1)) edges)

(* The worked example of Figs. 1-3 and 5. *)
let fig1 () = Chronus_topo.Scenario.fig1_example ()

(* Paper's timed schedule for it: v2@t0, v3@t1, {v1,v4}@t2, v5@t3. *)
let fig1_paper_schedule =
  Schedule.of_list [ (2, 0); (3, 1); (1, 2); (4, 2); (5, 3) ]

let all_at_zero inst =
  Schedule.of_list
    (List.map (fun v -> (v, 0)) (Instance.switches_to_update inst))

(* A small two-path instance where no consistent schedule exists: the
   final path shortcuts onto the tail link (2, 3), so redirected traffic
   always catches the old stream on it and the link cannot carry both. *)
let infeasible () =
  let g =
    graph_of [ (0, 1, 1, 1); (1, 2, 1, 1); (2, 3, 1, 3); (0, 2, 1, 1) ]
  in
  Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
    ~p_fin:[ 0; 2; 3 ]

(* Random small instances for property tests, derived from a seed so that
   QCheck can shrink over integers. *)
let instance_of_seed ?(uniform_delay = false) ?(min_n = 4) ?(max_n = 8) seed =
  let rng = Chronus_topo.Rng.make seed in
  let n = Chronus_topo.Rng.in_range rng min_n max_n in
  let delay_hi = if uniform_delay then 1 else 3 in
  let spec =
    Chronus_topo.Scenario.spec ~capacity_choices:[ 1; 2 ] ~delay_lo:1
      ~delay_hi n
  in
  Chronus_topo.Scenario.mixed ~rng spec

let arbitrary_instance ?uniform_delay ?min_n ?max_n () =
  QCheck.make
    ~print:(fun seed ->
      Format.asprintf "seed %d:@ %a" seed Instance.pp
        (instance_of_seed ?uniform_delay ?min_n ?max_n seed))
    QCheck.Gen.(0 -- 10_000)

let qsuite name props =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) props)

let check_consistent what inst sched =
  let report = Oracle.evaluate inst sched in
  Alcotest.(check bool)
    (what ^ ": "
    ^ Format.asprintf "%a" Oracle.pp_report report)
    true report.Oracle.ok
