open Chronus_graph
open Chronus_flow

let test_build_counts () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2) ] in
  let te = Time_extended.build g ~t_lo:0 ~t_hi:3 in
  Alcotest.(check int) "span" 4 (Time_extended.span te);
  Alcotest.(check (pair int int)) "window" (0, 3) (Time_extended.window te);
  (* 3 switches x 4 steps; each unit-delay link has 3 copies. *)
  Alcotest.(check int) "nodes" 12 (Graph.node_count (Time_extended.graph te));
  Alcotest.(check int) "edges" 6 (Graph.edge_count (Time_extended.graph te))

let test_encode_decode () =
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2) ] in
  let te = Time_extended.build g ~t_lo:(-2) ~t_hi:2 in
  List.iter
    (fun (v, t) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "roundtrip v%d(t%d)" v t)
        (v, t)
        (Time_extended.decode te (Time_extended.encode te v t)))
    [ (0, -2); (1, 0); (2, 2) ];
  Alcotest.check_raises "time outside window"
    (Invalid_argument "Time_extended.encode: t=5 outside [-2, 2]") (fun () ->
      ignore (Time_extended.encode te 0 5))

let test_link_structure () =
  (* A delay-2 link u -> v yields u(t) -> v(t+2), preserving capacity. *)
  let g = Helpers.graph_of [ (0, 1, 7, 2) ] in
  let te = Time_extended.build g ~t_lo:0 ~t_hi:3 in
  let net = Time_extended.graph te in
  let a = Time_extended.encode te 0 0 and b = Time_extended.encode te 1 2 in
  Alcotest.(check bool) "edge 0(0)->1(2)" true (Graph.mem_edge net a b);
  Alcotest.(check int) "capacity preserved" 7 (Graph.capacity net a b);
  (* No edge whose arrival would leave the window. *)
  let c = Time_extended.encode te 0 2 in
  Alcotest.(check int) "0(2) has no out-edge in window" 0
    (Graph.out_degree net c)

let test_flow_links_match_oracle () =
  let inst = Helpers.fig1 () in
  let sched = Helpers.fig1_paper_schedule in
  let te = Time_extended.of_instance inst sched in
  let flow = Time_extended.flow_links te inst sched in
  let loads = Oracle.link_loads inst sched in
  Alcotest.(check int) "one flow link per load entry" (List.length loads)
    (List.length flow);
  List.iter
    (fun ((u, tu), (v, tv), load) ->
      Alcotest.(check bool)
        (Printf.sprintf "load entry for %d(%d)->%d(%d)" u tu v tv)
        true
        (List.mem_assoc (u, v, tu) loads);
      Alcotest.(check int) "load value" (List.assoc (u, v, tu) loads) load;
      Alcotest.(check int)
        "arrival time consistent"
        (tu + Graph.delay inst.Instance.graph u v)
        tv)
    flow

let test_dot_render () =
  let inst = Helpers.fig1 () in
  let te = Time_extended.of_instance inst Schedule.empty in
  let dot = Time_extended.to_dot te in
  Alcotest.(check bool) "non-empty digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let suite =
  ( "time_extended",
    [
      Alcotest.test_case "build counts" `Quick test_build_counts;
      Alcotest.test_case "encode/decode" `Quick test_encode_decode;
      Alcotest.test_case "link structure (Definition 4)" `Quick
        test_link_structure;
      Alcotest.test_case "flow links match the oracle" `Quick
        test_flow_links_match_oracle;
      Alcotest.test_case "dot rendering" `Quick test_dot_render;
    ] )
