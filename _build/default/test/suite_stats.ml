open Chronus_stats

let feq = Alcotest.(check (float 1e-9))

let test_descriptive () =
  let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  feq "mean" 5.0 (Descriptive.mean xs);
  feq "variance" 4.0 (Descriptive.variance xs);
  feq "stddev" 2.0 (Descriptive.stddev xs);
  feq "min" 2.0 (Descriptive.minimum xs);
  feq "max" 9.0 (Descriptive.maximum xs);
  feq "total" 40.0 (Descriptive.total xs);
  feq "empty total" 0.0 (Descriptive.total []);
  Alcotest.check_raises "empty mean" (Invalid_argument "Descriptive: empty sample")
    (fun () -> ignore (Descriptive.mean []))

let test_percentiles () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  feq "median" 3.0 (Descriptive.median xs);
  feq "p0" 1.0 (Descriptive.percentile 0. xs);
  feq "p100" 5.0 (Descriptive.percentile 100. xs);
  feq "p25" 2.0 (Descriptive.percentile 25. xs);
  feq "interpolated" 3.5 (Descriptive.percentile 62.5 xs);
  feq "singleton" 7.0 (Descriptive.percentile 50. [ 7. ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Descriptive.percentile: p out of range") (fun () ->
      ignore (Descriptive.percentile 101. xs))

let test_cdf () =
  let cdf = Cdf.of_int_samples [ 1; 2; 2; 3; 10 ] in
  Alcotest.(check int) "size" 5 (Cdf.size cdf);
  feq "F(0)" 0.0 (Cdf.eval cdf 0.);
  feq "F(2)" 0.6 (Cdf.eval cdf 2.);
  feq "F(10)" 1.0 (Cdf.eval cdf 10.);
  feq "F(100)" 1.0 (Cdf.eval cdf 100.);
  feq "inverse median" 2.0 (Cdf.inverse cdf 0.5);
  feq "inverse 1.0" 10.0 (Cdf.inverse cdf 1.0);
  Alcotest.(check int) "distinct points" 4 (List.length (Cdf.points cdf));
  (* Points are a valid, increasing step function ending at 1. *)
  let points = Cdf.points cdf in
  let rec increasing = function
    | (x1, f1) :: ((x2, f2) :: _ as rest) ->
        x1 < x2 && f1 < f2 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing points);
  feq "last point at 1" 1.0 (snd (List.nth points 3))

let test_boxplot () =
  let b = Boxplot.of_int_samples [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  feq "median" 5.0 b.Boxplot.median;
  feq "q1" 3.0 b.Boxplot.q1;
  feq "q3" 7.0 b.Boxplot.q3;
  feq "low whisker" 1.0 b.Boxplot.low_whisker;
  feq "high whisker" 9.0 b.Boxplot.high_whisker;
  Alcotest.(check int) "no outliers" 0 (List.length b.Boxplot.outliers);
  let with_outlier = Boxplot.of_int_samples [ 1; 2; 3; 4; 5; 100 ] in
  Alcotest.(check int) "outlier detected" 1
    (List.length with_outlier.Boxplot.outliers)

let test_table () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_float_row t "x" [ 3.14159 ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  Alcotest.(check bool) "float formatted" true
    (List.exists
       (fun l ->
         let has sub =
           let n = String.length l and m = String.length sub in
           let rec scan i =
             i + m <= n && (String.sub l i m = sub || scan (i + 1))
           in
           scan 0
         in
         has "3.14")
       lines);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let suite =
  ( "stats",
    [
      Alcotest.test_case "descriptive statistics" `Quick test_descriptive;
      Alcotest.test_case "percentiles" `Quick test_percentiles;
      Alcotest.test_case "empirical CDF" `Quick test_cdf;
      Alcotest.test_case "box plots" `Quick test_boxplot;
      Alcotest.test_case "text tables" `Quick test_table;
    ] )
