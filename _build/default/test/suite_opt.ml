open Chronus_flow
open Chronus_core
open Chronus_baselines

let test_fig1_optimal () =
  let inst = Helpers.fig1 () in
  let r = Opt.solve inst in
  (match r.Opt.outcome with
  | Opt.Optimal sched ->
      Alcotest.(check int) "optimal makespan 4" 4 (Schedule.makespan sched);
      Helpers.check_consistent "optimal schedule" inst sched
  | _ -> Alcotest.fail "expected Optimal");
  Alcotest.(check (option int)) "makespan accessor" (Some 4)
    (Opt.makespan_of r)

let test_trivial () =
  let g = Helpers.unit_graph_of [ (0, 1) ] in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1 ] ~p_fin:[ 0; 1 ]
  in
  match (Opt.solve inst).Opt.outcome with
  | Opt.Optimal s -> Alcotest.(check int) "zero steps" 0 (Schedule.makespan s)
  | _ -> Alcotest.fail "trivial is optimal"

let test_infeasible () =
  let inst = Helpers.infeasible () in
  match (Opt.solve inst).Opt.outcome with
  | Opt.Infeasible -> ()
  | Opt.Optimal s -> Alcotest.failf "claimed optimal %a" Schedule.pp s
  | Opt.Feasible _ | Opt.Unknown -> Alcotest.fail "should prove infeasibility"

let test_budget_degrades_gracefully () =
  let inst = Helpers.fig1 () in
  (* Without a hint, an exhausted budget yields an honest Unknown... *)
  (match (Opt.solve ~budget:3 ~horizon:6 inst).Opt.outcome with
  | Opt.Unknown -> ()
  | Opt.Feasible s -> Helpers.check_consistent "fallback schedule" inst s
  | Opt.Optimal _ -> Alcotest.fail "cannot be proven optimal in 3 nodes"
  | Opt.Infeasible -> Alcotest.fail "fig1 is feasible");
  (* ...with one, the hint comes back as the Feasible fallback. *)
  match
    (Opt.solve ~budget:3 ~hint:Helpers.fig1_paper_schedule inst).Opt.outcome
  with
  | Opt.Feasible s -> Helpers.check_consistent "hint returned" inst s
  | Opt.Optimal _ -> Alcotest.fail "cannot be proven optimal in 3 nodes"
  | Opt.Infeasible | Opt.Unknown -> Alcotest.fail "hint should be reused"

let test_matches_exhaustive () =
  (* Both searches restricted to the same small makespan horizon so the
     naive enumeration stays tractable. *)
  let horizon = 7 in
  for seed = 0 to 11 do
    let inst = Helpers.instance_of_seed ~max_n:5 seed in
    let r = Opt.solve ~timeout:20.0 ~horizon inst in
    match (r.Opt.outcome, Feasibility.min_makespan ~horizon inst) with
    | Opt.Optimal s, Some (m, _) ->
        Alcotest.(check int)
          (Format.asprintf "seed %d optimum (%a)" seed Instance.pp inst)
          m (Schedule.makespan s)
    | Opt.Infeasible, None -> ()
    | Opt.Optimal s, None ->
        Alcotest.failf "seed %d: OPT found %a, exhaustive says infeasible"
          seed Schedule.pp s
    | Opt.Infeasible, Some (m, _) ->
        Alcotest.failf "seed %d: OPT says infeasible, exhaustive found %d"
          seed m
    | (Opt.Feasible _ | Opt.Unknown), _ -> () (* budget ran out: no claim *)
  done

let test_never_beats_greedy_downward () =
  (* OPT's makespan is at most the greedy's whenever both succeed. *)
  for seed = 50 to 69 do
    let inst = Helpers.instance_of_seed ~max_n:7 seed in
    match (Opt.solve ~budget:30_000 ~timeout:2.0 inst).Opt.outcome with
    | Opt.Optimal s -> (
        match Greedy.schedule inst with
        | Greedy.Scheduled g ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: opt <= greedy" seed)
              true
              (Schedule.makespan s <= Schedule.makespan g)
        | Greedy.Infeasible _ -> ())
    | _ -> ()
  done

let suite =
  ( "opt",
    [
      Alcotest.test_case "worked example solved optimally" `Quick
        test_fig1_optimal;
      Alcotest.test_case "trivial instance" `Quick test_trivial;
      Alcotest.test_case "infeasible instance proven" `Quick test_infeasible;
      Alcotest.test_case "budget exhaustion degrades gracefully" `Quick
        test_budget_degrades_gracefully;
      Alcotest.test_case "matches exhaustive enumeration" `Slow
        test_matches_exhaustive;
      Alcotest.test_case "never worse than the greedy" `Slow
        test_never_beats_greedy_downward;
    ] )
