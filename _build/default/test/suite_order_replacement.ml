open Chronus_flow
open Chronus_baselines

let test_round_safety_basics () =
  let inst = Helpers.fig1 () in
  (* Flipping v2 alone can never loop. *)
  Alcotest.(check bool) "v2 alone safe" true
    (Order_replacement.round_safe inst ~done_:[] ~round:[ 2 ]);
  (* v3 and v4 together: some interleaving yields the v3 <-> v4 loop. *)
  Alcotest.(check bool) "v3+v4 unsafe" false
    (Order_replacement.round_safe inst ~done_:[] ~round:[ 3; 4 ]);
  (* Even v4 alone is unsafe while v3 still has its old rule. *)
  Alcotest.(check bool) "v4 alone unsafe" false
    (Order_replacement.round_safe inst ~done_:[] ~round:[ 4 ]);
  (* Once v3 is done, v4 is fine. *)
  Alcotest.(check bool) "v4 after v3" true
    (Order_replacement.round_safe inst ~done_:[ 3 ] ~round:[ 4 ])

let test_safety_matches_interleavings () =
  let inst = Helpers.fig1 () in
  let switches = Order_replacement.replaceable_switches inst in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun l -> x :: l) s
  in
  List.iter
    (fun round ->
      if List.length round <= 3 then
        Alcotest.(check bool)
          (Printf.sprintf "round {%s}"
             (String.concat "," (List.map string_of_int round)))
          (Order_replacement.interleavings_loop_free inst ~done_:[] ~round)
          (Order_replacement.round_safe inst ~done_:[] ~round))
    (subsets switches)

let test_greedy_rounds_valid () =
  let inst = Helpers.fig1 () in
  match Order_replacement.greedy_rounds inst with
  | None -> Alcotest.fail "fig1 has an order"
  | Some rounds ->
      let all = List.concat rounds in
      Alcotest.(check (list int))
        "covers replaceable switches"
        (Order_replacement.replaceable_switches inst)
        (List.sort compare all);
      (* Each round must be safe given the prefix. *)
      let _ =
        List.fold_left
          (fun done_ round ->
            Alcotest.(check bool) "round safe" true
              (Order_replacement.round_safe inst ~done_ ~round);
            done_ @ round)
          [] rounds
      in
      ()

let test_minimum_rounds_optimal () =
  let inst = Helpers.fig1 () in
  let r = Order_replacement.minimum_rounds inst in
  Alcotest.(check bool) "optimal" true r.Order_replacement.optimal;
  match r.Order_replacement.rounds with
  | None -> Alcotest.fail "exists"
  | Some rounds ->
      Alcotest.(check int) "two rounds suffice" 2 (List.length rounds);
      (* And one round cannot (flipping everything at once loops). *)
      Alcotest.(check bool) "one round unsafe" false
        (Order_replacement.round_safe inst ~done_:[]
           ~round:(Order_replacement.replaceable_switches inst))

let test_minimum_le_greedy () =
  for seed = 0 to 19 do
    let inst = Helpers.instance_of_seed seed in
    match
      ( Order_replacement.greedy_rounds inst,
        (Order_replacement.minimum_rounds inst).Order_replacement.rounds )
    with
    | Some g, Some m ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: exact <= greedy" seed)
          true
          (List.length m <= List.length g)
    | None, None -> ()
    | Some _, None ->
        Alcotest.failf "seed %d: exact failed where greedy succeeded" seed
    | None, Some _ -> ()
  done

let test_schedule_of_rounds () =
  let rounds = [ [ 2 ]; [ 1; 3 ] ] in
  let sched =
    Order_replacement.schedule_of_rounds ~gap:5
      ~jitter:(fun ~round v -> (round + v) mod 5)
      rounds
  in
  Alcotest.(check (option int)) "round 0" (Some 2) (Schedule.find 2 sched);
  Alcotest.(check (option int)) "round 1 switch 1" (Some 7)
    (Schedule.find 1 sched);
  Alcotest.(check (option int)) "round 1 switch 3" (Some 9)
    (Schedule.find 3 sched)

let test_or_ignores_capacity () =
  (* OR only guarantees loop freedom: on the worked example with adverse
     jitter the oracle finds congestion. *)
  let inst = Helpers.fig1 () in
  let r = Order_replacement.minimum_rounds inst in
  match r.Order_replacement.rounds with
  | None -> Alcotest.fail "rounds exist"
  | Some rounds ->
      let congested = ref false in
      for seed = 0 to 19 do
        let rng = Chronus_topo.Rng.make seed in
        let sched =
          Order_replacement.schedule_of_rounds ~gap:6
            ~jitter:(fun ~round:_ _ -> Chronus_topo.Rng.int rng 6)
            rounds
        in
        let report = Oracle.evaluate inst sched in
        if
          List.exists
            (function Oracle.Congestion _ -> true | _ -> false)
            report.Oracle.violations
        then congested := true
      done;
      Alcotest.(check bool) "some jitter congests" true !congested

let suite =
  ( "order_replacement",
    [
      Alcotest.test_case "round safety basics" `Quick
        test_round_safety_basics;
      Alcotest.test_case "safety characterisation matches interleavings"
        `Quick test_safety_matches_interleavings;
      Alcotest.test_case "greedy rounds are valid" `Quick
        test_greedy_rounds_valid;
      Alcotest.test_case "minimum rounds on the worked example" `Quick
        test_minimum_rounds_optimal;
      Alcotest.test_case "exact never beats greedy upward" `Slow
        test_minimum_le_greedy;
      Alcotest.test_case "rounds to timed schedule" `Quick
        test_schedule_of_rounds;
      Alcotest.test_case "OR ignores capacities" `Quick
        test_or_ignores_capacity;
    ] )
