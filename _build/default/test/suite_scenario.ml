open Chronus_graph
open Chronus_flow
open Chronus_topo

let well_formed name inst =
  let g = inst.Instance.graph in
  Alcotest.(check bool) (name ^ ": init valid") true
    (Path.is_valid g inst.Instance.p_init);
  Alcotest.(check bool) (name ^ ": fin valid") true
    (Path.is_valid g inst.Instance.p_fin);
  Alcotest.(check int)
    (name ^ ": same source")
    (Path.source inst.Instance.p_init)
    (Path.source inst.Instance.p_fin);
  Alcotest.(check int)
    (name ^ ": same destination")
    (Path.destination inst.Instance.p_init)
    (Path.destination inst.Instance.p_fin)

let test_generators_well_formed () =
  let rng = Rng.make 21 in
  for n = 4 to 12 do
    let spec = Scenario.spec n in
    well_formed "random_final" (Scenario.random_final ~rng spec);
    well_formed "segment_reversal" (Scenario.segment_reversal ~rng spec);
    well_formed "shortcut" (Scenario.shortcut ~rng spec);
    well_formed "random_pair" (Scenario.random_pair ~rng spec);
    well_formed "mixed" (Scenario.mixed ~rng spec);
    well_formed "long_chain" (Scenario.long_chain ~rng spec)
  done

let test_random_final_shape () =
  let rng = Rng.make 3 in
  let spec = Scenario.spec 10 in
  let inst = Scenario.random_final ~rng spec in
  Alcotest.(check (list int)) "initial path is the chain"
    (List.init 10 Fun.id) inst.Instance.p_init;
  Alcotest.(check bool) "final endpoints" true
    (Path.source inst.Instance.p_fin = 0
    && Path.destination inst.Instance.p_fin = 9)

let test_long_chain_updates () =
  let rng = Rng.make 3 in
  let spec = Scenario.spec 40 in
  let inst = Scenario.long_chain ~rng spec in
  (* A reversed segment of eight switches: nine rules change. *)
  Alcotest.(check bool) "local update region" true
    (let c = Instance.update_count inst in
     c >= 8 && c <= 10);
  Alcotest.(check int) "path spans the network" 40
    (List.length inst.Instance.p_init)

let test_delays_capacities_within_spec () =
  let rng = Rng.make 9 in
  let spec =
    Scenario.spec ~capacity_choices:[ 2; 3 ] ~delay_lo:2 ~delay_hi:5 8
  in
  let inst = Scenario.mixed ~rng spec in
  List.iter
    (fun (_, _, (e : Graph.edge)) ->
      Alcotest.(check bool) "capacity choice" true
        (List.mem e.Graph.capacity [ 2; 3 ]);
      Alcotest.(check bool) "delay range" true
        (e.Graph.delay >= 2 && e.Graph.delay <= 5))
    (Graph.edges inst.Instance.graph)

let test_spec_validation () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Scenario.spec: need at least 3 switches") (fun () ->
      ignore (Scenario.spec 2));
  Alcotest.check_raises "capacity below demand"
    (Invalid_argument "Scenario.spec: capacity below demand") (fun () ->
      ignore (Scenario.spec ~demand:5 ~capacity_choices:[ 1 ] 5))

let test_fig1_fixture () =
  let inst = Scenario.fig1_example () in
  Alcotest.(check int) "updates" 5 (Instance.update_count inst);
  Alcotest.(check int) "edges" 10
    (Graph.edge_count inst.Instance.graph)

let suite =
  ( "scenario",
    [
      Alcotest.test_case "generators produce well-formed instances" `Quick
        test_generators_well_formed;
      Alcotest.test_case "random_final shape" `Quick test_random_final_shape;
      Alcotest.test_case "long_chain has many updates" `Quick
        test_long_chain_updates;
      Alcotest.test_case "spec attributes respected" `Quick
        test_delays_capacities_within_spec;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "fig1 fixture" `Quick test_fig1_fixture;
    ] )
