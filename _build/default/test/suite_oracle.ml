open Chronus_flow

let test_paper_schedule_consistent () =
  let inst = Helpers.fig1 () in
  Helpers.check_consistent "paper schedule" inst Helpers.fig1_paper_schedule;
  Alcotest.(check bool) "is_consistent" true
    (Oracle.is_consistent inst Helpers.fig1_paper_schedule)

let test_all_at_zero_loops () =
  (* Fig. 2(a): updating every switch at t0 creates three transient
     forwarding loops. *)
  let inst = Helpers.fig1 () in
  let report = Oracle.evaluate inst (Helpers.all_at_zero inst) in
  let loops =
    List.filter
      (function Oracle.Loop _ -> true | _ -> false)
      report.Oracle.violations
  in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  Alcotest.(check bool) "not ok" false report.Oracle.ok

let test_fig2b_congestion () =
  (* Fig. 2(b): v1 and v2 at t0, then v3, v4, v5 at t1 overloads the
     time-extended link v4(t1) -> v3(t2). *)
  let inst = Helpers.fig1 () in
  let sched = Schedule.of_list [ (1, 0); (2, 0); (3, 1); (4, 1); (5, 1) ] in
  let report = Oracle.evaluate inst sched in
  let congested_4_3 =
    List.exists
      (function
        | Oracle.Congestion { u = 4; v = 3; time = 1; load = 2; _ } -> true
        | _ -> false)
      report.Oracle.violations
  in
  Alcotest.(check bool) "v4(t1)->v3(t2) overloaded" true congested_4_3

let test_steady_state_loads () =
  (* Before any update, every old-path link carries exactly the demand at
     every step. *)
  let inst = Helpers.fig1 () in
  let loads = Oracle.link_loads inst Schedule.empty in
  Alcotest.(check bool) "some loads recorded" true (loads <> []);
  List.iter
    (fun ((u, v, _), load) ->
      Alcotest.(check int) (Printf.sprintf "load on %d->%d" u v) 1 load;
      Alcotest.(check bool)
        (Printf.sprintf "%d->%d on old path" u v)
        true
        (Chronus_graph.Path.mem_edge u v inst.Instance.p_init))
    loads

let test_trace_arrival_times () =
  let inst = Helpers.fig1 () in
  let cohort = Oracle.trace inst Schedule.empty 0 in
  Alcotest.(check bool) "delivered" true (cohort.Oracle.outcome = Oracle.Delivered);
  Alcotest.(check (list (pair int int)))
    "visits at prefix delays"
    [ (1, 0); (2, 1); (3, 2); (4, 3); (5, 4); (6, 5) ]
    cohort.Oracle.visits

let test_trace_respects_schedule () =
  let inst = Helpers.fig1 () in
  let sched = Schedule.of_list [ (2, 0) ] in
  (* A cohort arriving at v2 after its flip takes the new link to v6. *)
  let cohort = Oracle.trace inst sched 0 in
  Alcotest.(check (list (pair int int)))
    "diverted at v2"
    [ (1, 0); (2, 1); (6, 2) ]
    cohort.Oracle.visits;
  (* A cohort old enough to pass v2 before the flip follows the old path;
     unscheduled switches never flip (partial-schedule semantics). *)
  let old_cohort = Oracle.trace inst sched (-3) in
  Alcotest.(check (list (pair int int)))
    "pre-flip cohort stays"
    [ (1, -3); (2, -2); (3, -1); (4, 0); (5, 1); (6, 2) ]
    old_cohort.Oracle.visits

let test_trace_from () =
  let inst = Helpers.fig1 () in
  let sched = Schedule.of_list [ (4, 0) ] in
  (* From v4 at t0 with v4 flipped: v4 -> v3 (new), v3 still old -> v4:
     the cohort revisits v4. *)
  let cohort = Oracle.trace_from inst sched 4 0 in
  Alcotest.(check bool)
    "loops back" true
    (cohort.Oracle.outcome = Oracle.Looped 4)

let test_blackhole_on_early_delete () =
  (* Deleting v1's rule while traffic still arrives blackholes it. *)
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2); (0, 2) ] in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2 ] ~p_fin:[ 0; 2 ]
  in
  let bad = Schedule.of_list [ (0, 5); (1, 0) ] in
  let report = Oracle.evaluate inst bad in
  Alcotest.(check bool)
    "blackhole at v1" true
    (List.exists
       (function
         | Oracle.Blackhole { switch = 1; _ } -> true | _ -> false)
       report.Oracle.violations);
  (* Deleting only after the diverted flow has drained is fine. *)
  let good = Schedule.of_list [ (0, 0); (1, 3) ] in
  Helpers.check_consistent "drain before delete" inst good

let test_congested_link_count () =
  let inst = Helpers.infeasible () in
  let sched = Schedule.of_list [ (0, 0); (1, 4) ] in
  Alcotest.(check bool)
    "at least one congested time-extended link" true
    (Oracle.congested_link_count inst sched >= 1)

let test_peak_load () =
  let inst = Helpers.fig1 () in
  let report = Oracle.evaluate inst Helpers.fig1_paper_schedule in
  Alcotest.(check int) "peak load within capacity" 1 report.Oracle.peak_load

let test_infeasible_instance_has_no_schedule () =
  let inst = Helpers.infeasible () in
  Alcotest.(check bool)
    "exhaustive search finds nothing" true
    (Chronus_core.Feasibility.find inst = None)

let suite =
  ( "oracle",
    [
      Alcotest.test_case "paper schedule is consistent" `Quick
        test_paper_schedule_consistent;
      Alcotest.test_case "all-at-t0 yields the three loops of Fig. 2(a)"
        `Quick test_all_at_zero_loops;
      Alcotest.test_case "Fig. 2(b) congestion reproduced" `Quick
        test_fig2b_congestion;
      Alcotest.test_case "steady-state loads" `Quick test_steady_state_loads;
      Alcotest.test_case "trace arrival times" `Quick
        test_trace_arrival_times;
      Alcotest.test_case "trace respects schedule" `Quick
        test_trace_respects_schedule;
      Alcotest.test_case "trace from a switch" `Quick test_trace_from;
      Alcotest.test_case "early delete blackholes" `Quick
        test_blackhole_on_early_delete;
      Alcotest.test_case "congested link count" `Quick
        test_congested_link_count;
      Alcotest.test_case "peak load" `Quick test_peak_load;
      Alcotest.test_case "infeasible fixture really is infeasible" `Slow
        test_infeasible_instance_has_no_schedule;
    ] )
