open Chronus_sim
open Chronus_exec

(* A faster config so the integration tests stay quick. *)
let config =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    delay_unit = Sim_time.msec 20;
  }

let test_chronus_execution () =
  let inst = Helpers.fig1 () in
  let run = Timed_exec.run ~config inst in
  Alcotest.(check bool) "clean schedule" true run.Timed_exec.clean;
  let r = run.Timed_exec.result in
  Alcotest.(check int) "no loss" 0 r.Exec_env.loss_bytes;
  Alcotest.(check int) "no congested samples" 0 r.Exec_env.congested_samples;
  Alcotest.(check bool) "peak at the flow rate" true
    (r.Exec_env.peak_mbps <= config.Exec_env.capacity_mbps +. 0.01);
  Alcotest.(check int) "one command per update" 5 r.Exec_env.commands;
  Alcotest.(check bool) "span covers the schedule" true
    (r.Exec_env.update_span
    >= Chronus_flow.Schedule.max_time run.Timed_exec.schedule
       * config.Exec_env.delay_unit)

let test_or_execution () =
  let inst = Helpers.fig1 () in
  let run = Order_exec.run ~config ~seed:3 inst in
  Alcotest.(check bool) "two rounds" true
    (List.length run.Order_exec.rounds >= 2);
  (* OR never loses traffic to loops on this instance (rounds are safe)
     but is not guaranteed congestion-free; delivery continues. *)
  let r = run.Order_exec.result in
  Alcotest.(check int) "commands equal replaceable switches" 5
    r.Exec_env.commands

let test_tp_execution () =
  let inst = Helpers.fig1 () in
  let run = Two_phase_exec.run ~config inst in
  let r = run.Two_phase_exec.result in
  Alcotest.(check int) "five tagged rules installed" 5
    run.Two_phase_exec.rules_installed;
  Alcotest.(check int) "no loss" 0 r.Exec_env.loss_bytes;
  (* Transition peak: 5 old + 5 new + ingress + destination host rule. *)
  Alcotest.(check bool) "rule footprint doubles" true (r.Exec_env.peak_rules >= 10);
  Alcotest.(check bool) "phases ordered" true
    (run.Two_phase_exec.phase1_done < run.Two_phase_exec.phase2_done)

let test_chronus_beats_tp_on_rules () =
  let inst = Helpers.fig1 () in
  let c = Timed_exec.run ~config inst in
  let tp = Two_phase_exec.run ~config inst in
  Alcotest.(check bool) "chronus uses fewer rules" true
    (c.Timed_exec.result.Exec_env.peak_rules
    < tp.Two_phase_exec.result.Exec_env.peak_rules)

let test_determinism () =
  let inst = Helpers.fig1 () in
  let a = Order_exec.run ~config ~seed:5 inst in
  let b = Order_exec.run ~config ~seed:5 inst in
  Alcotest.(check bool) "same seed, same series" true
    (a.Order_exec.result.Exec_env.series = b.Order_exec.result.Exec_env.series)

let suite =
  ( "exec",
    [
      Alcotest.test_case "Chronus timed execution" `Quick
        test_chronus_execution;
      Alcotest.test_case "OR round execution" `Quick test_or_execution;
      Alcotest.test_case "two-phase execution" `Quick test_tp_execution;
      Alcotest.test_case "Chronus beats TP on rule space" `Quick
        test_chronus_beats_tp_on_rules;
      Alcotest.test_case "deterministic under a seed" `Quick test_determinism;
    ] )
