open Chronus_flow
open Chronus_core

let test_fig1_crossings () =
  let inst = Helpers.fig1 () in
  let crossings = Tree.crossings inst in
  Alcotest.(check int) "five crossings" 5 (List.length crossings);
  let find v = List.find (fun c -> c.Tree.switch = v) crossings in
  (* v2 jumps straight to the destination: no merge, admissible. *)
  let c2 = find 2 in
  Alcotest.(check bool) "v2 no merge" true (c2.Tree.merge = None);
  Alcotest.(check bool) "v2 admissible" true c2.Tree.admissible;
  (* v4 and v5 jump backwards along the old path. *)
  Alcotest.(check bool) "v4 backward" true (find 4).Tree.backward;
  Alcotest.(check bool) "v5 backward" true (find 5).Tree.backward;
  (* v1 merges at v4 with a shorter new segment over unit capacity: it
     must wait for drain. *)
  let c1 = find 1 in
  Alcotest.(check (option int)) "v1 merge" (Some 4) c1.Tree.merge;
  Alcotest.(check bool) "v1 must wait" false c1.Tree.admissible;
  Alcotest.(check int) "v1 phi_new" 1 c1.Tree.phi_new;
  Alcotest.(check (option int)) "v1 phi_old" (Some 3) c1.Tree.phi_old

let test_first_divergence () =
  let inst = Helpers.fig1 () in
  Alcotest.(check (option int)) "fig1 diverges at the source" (Some 1)
    (Tree.first_divergence inst);
  let g = Helpers.unit_graph_of [ (0, 1); (1, 2); (2, 3); (1, 3) ] in
  let inst =
    Instance.create ~graph:g ~demand:1 ~p_init:[ 0; 1; 2; 3 ]
      ~p_fin:[ 0; 1; 3 ]
  in
  Alcotest.(check (option int)) "common prefix skipped" (Some 1)
    (Tree.first_divergence inst)

let test_check_positive () =
  Alcotest.(check bool) "fig1 feasible" true (Tree.check (Helpers.fig1 ()))

let test_check_negative () =
  Alcotest.(check bool) "shortcut onto slow tail infeasible" false
    (Tree.check (Helpers.infeasible ()))

let test_check_agrees_with_exhaustive_uniform () =
  (* On uniform-delay instances the polynomial decision must agree with
     the exact solver (Theorem 2's setting). The solver's branch and bound
     prunes well enough to be exact at these sizes; samples on which it
     runs out of budget are skipped. *)
  for seed = 0 to 39 do
    let inst = Helpers.instance_of_seed ~uniform_delay:true ~max_n:6 seed in
    let polynomial = Tree.check inst in
    match
      (Chronus_baselines.Opt.solve ~budget:150_000 ~timeout:5.0 inst)
        .Chronus_baselines.Opt.outcome
    with
    | Chronus_baselines.Opt.Optimal _ ->
        Alcotest.(check bool)
          (Format.asprintf "seed %d feasible: %a" seed Instance.pp inst)
          true polynomial
    | Chronus_baselines.Opt.Infeasible ->
        Alcotest.(check bool)
          (Format.asprintf "seed %d infeasible: %a" seed Instance.pp inst)
          false polynomial
    | Chronus_baselines.Opt.Feasible _ | Chronus_baselines.Opt.Unknown -> ()
  done

let test_check_sound_general () =
  (* With arbitrary delays, a positive answer must still be witnessed by a
     schedule that the oracle accepts (Tree.check is constructive via the
     analytic greedy; re-derive the witness and validate it). *)
  for seed = 100 to 139 do
    let inst = Helpers.instance_of_seed ~max_n:6 seed in
    if Tree.check inst && not (Instance.is_trivial inst) then
      match Greedy.schedule ~mode:Greedy.Analytic inst with
      | Greedy.Scheduled sched ->
          Alcotest.(check bool)
            (Format.asprintf "seed %d witness consistent" seed)
            true
            (Oracle.is_consistent inst sched)
      | Greedy.Infeasible _ ->
          Alcotest.failf "seed %d: check true but greedy failed" seed
  done

let suite =
  ( "tree",
    [
      Alcotest.test_case "crossing analysis of the worked example" `Quick
        test_fig1_crossings;
      Alcotest.test_case "first divergence" `Quick test_first_divergence;
      Alcotest.test_case "feasible instance accepted" `Quick
        test_check_positive;
      Alcotest.test_case "infeasible instance rejected" `Quick
        test_check_negative;
      Alcotest.test_case "agrees with exhaustive search (uniform delays)"
        `Slow test_check_agrees_with_exhaustive_uniform;
      Alcotest.test_case "sound on general delays" `Slow
        test_check_sound_general;
    ] )
