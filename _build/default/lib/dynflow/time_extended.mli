(** The time-extended network [G_T] of Definition 4: one copy [v(t)] of
    every switch per time step, and a link [u(t) -> v(t + sigma(u,v))] of
    capacity [C(u,v)] for every network link. History steps (negative
    times) let the algorithms reason about traffic that is already in
    flight, exactly as in Fig. 2 of the paper. *)

open Chronus_graph

type t

val build : Graph.t -> t_lo:int -> t_hi:int -> t
(** Time-extended copy of a graph over the inclusive step window
    [[t_lo, t_hi]]. Links whose arrival step would fall outside the window
    are omitted. @raise Invalid_argument if [t_lo > t_hi]. *)

val of_instance : ?margin:int -> Instance.t -> Schedule.t -> t
(** Window chosen from the oracle's simulation of the schedule: every step
    on which flow enters some link is covered, plus [margin] extra steps at
    each end (default 1). *)

val graph : t -> Graph.t
(** The underlying expanded graph; nodes are encoded, see {!encode}. *)

val base : t -> Graph.t
val window : t -> int * int
val span : t -> int
(** Number of time steps in the window. *)

val encode : t -> Graph.node -> int -> Graph.node
(** [encode te v t] is the expanded-graph id of [v(t)].
    @raise Invalid_argument if [t] is outside the window. *)

val decode : t -> Graph.node -> Graph.node * int
(** Inverse of {!encode}. *)

val mem : t -> Graph.node -> int -> bool
(** Is [v(t)] a node of the expanded graph? *)

val flow_links :
  t -> Instance.t -> Schedule.t ->
  ((Graph.node * int) * (Graph.node * int) * int) list
(** The time-extended links actually carrying flow under a schedule, as
    [((u, t), (v, t + sigma), load)] triples — the red links of Fig. 2.
    Links outside the window are dropped. *)

val to_dot : ?highlight:((Graph.node * int) * (Graph.node * int)) list ->
  t -> string
(** DOT rendering with switches as rows and time steps as columns. *)
