open Chronus_graph

type t = { base : Graph.t; t_lo : int; t_hi : int; net : Graph.t }

let span te = te.t_hi - te.t_lo + 1

let encode te v time =
  if time < te.t_lo || time > te.t_hi then
    invalid_arg
      (Printf.sprintf "Time_extended.encode: t=%d outside [%d, %d]" time
         te.t_lo te.t_hi);
  (v * span te) + (time - te.t_lo)

let decode te id = (id / span te, (id mod span te) + te.t_lo)

let build base ~t_lo ~t_hi =
  if t_lo > t_hi then invalid_arg "Time_extended.build: empty window";
  let te = { base; t_lo; t_hi; net = Graph.create () } in
  List.iter
    (fun v ->
      for time = t_lo to t_hi do
        Graph.add_node te.net (encode te v time)
      done)
    (Graph.nodes base);
  List.iter
    (fun (u, v, (e : Graph.edge)) ->
      for time = t_lo to t_hi - e.delay do
        Graph.add_edge ~capacity:e.capacity ~delay:e.delay te.net
          (encode te u time)
          (encode te v (time + e.delay))
      done)
    (Graph.edges base);
  te

let of_instance ?(margin = 1) inst sched =
  let loads = Oracle.link_loads inst sched in
  let g = inst.Instance.graph in
  let t_lo, t_hi =
    List.fold_left
      (fun (lo, hi) ((u, v, time), _) ->
        (min lo time, max hi (time + Graph.delay g u v)))
      (0, max 1 (Schedule.max_time sched))
      loads
  in
  build g ~t_lo:(t_lo - margin) ~t_hi:(t_hi + margin)

let graph te = te.net
let base te = te.base
let window te = (te.t_lo, te.t_hi)

let mem te v time =
  time >= te.t_lo && time <= te.t_hi && Graph.mem_node te.base v

let flow_links te inst sched =
  let g = inst.Instance.graph in
  List.filter_map
    (fun ((u, v, time), load) ->
      let arrival = time + Graph.delay g u v in
      if mem te u time && mem te v arrival then
        Some ((u, time), (v, arrival), load)
      else None)
    (Oracle.link_loads inst sched)

let to_dot ?(highlight = []) te =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph time_extended {\n  rankdir=LR;\n";
  List.iter
    (fun v ->
      for time = te.t_lo to te.t_hi do
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"v%d(t%d)\"];\n" (encode te v time) v
             time)
      done)
    (Graph.nodes te.base);
  List.iter
    (fun (a, b, _) ->
      let u, tu = decode te a and v, tv = decode te b in
      let hot = List.mem ((u, tu), (v, tv)) highlight in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [color=%s];\n" a b
           (if hot then "red" else "gray")))
    (Graph.edges te.net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
