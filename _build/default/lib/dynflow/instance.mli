(** A network update instance: one dynamic flow of demand [d] must move
    from an initial routing path [p_init] to a final routing path [p_fin]
    with common source and destination (Section II-B of the paper). *)

open Chronus_graph

type memo
(** Precomputed next/previous-hop tables; an implementation detail that
    keeps the per-hop operations of the oracle O(1) on long paths. *)

type t = private {
  graph : Graph.t;
  demand : int;
  p_init : Path.t;  (** the solid line of Fig. 1 *)
  p_fin : Path.t;  (** the dashed line of Fig. 1 *)
  memo : memo;
}

(** How a switch's forwarding state changes during the update. *)
type update_kind =
  | Modify  (** on both paths with different next hops: action rewritten *)
  | Add  (** only on the final path: a rule is installed *)
  | Delete  (** only on the initial path: the rule is removed *)

type update = {
  switch : Graph.node;
  old_next : Graph.node option;
  new_next : Graph.node option;
  kind : update_kind;
}

exception Ill_formed of string

val create : graph:Graph.t -> demand:int -> p_init:Path.t -> p_fin:Path.t -> t
(** Validates the instance: both paths are simple and valid in [graph],
    share source and destination, [demand >= 1], and every link of either
    path has capacity at least [demand] (otherwise even the steady states
    are congested).
    @raise Ill_formed with an explanatory message otherwise. *)

val source : t -> Graph.node
val destination : t -> Graph.node

val old_next : t -> Graph.node -> Graph.node option
(** Next hop on [p_init]; [None] off the path or at the destination. *)

val new_next : t -> Graph.node -> Graph.node option
(** Next hop on [p_fin]; [None] off the path or at the destination. *)

val old_prev : t -> Graph.node -> Graph.node option
(** Predecessor on [p_init]. *)

val new_prev : t -> Graph.node -> Graph.node option

val updates : t -> update list
(** Switches whose forwarding state differs between the two paths, sorted
    by switch id. The destination never appears. *)

val switches_to_update : t -> Graph.node list
(** [List.map (fun u -> u.switch) (updates l)]. *)

val update_count : t -> int

val is_trivial : t -> bool
(** [true] when [p_init = p_fin] (nothing to update). *)

val init_delay : t -> int
(** [phi p_init]: total transmission delay of the initial path. *)

val fin_delay : t -> int

val pp : Format.formatter -> t -> unit
