lib/dynflow/schedule.ml: Format Instance Int List Map Printf
