lib/dynflow/time_extended.ml: Buffer Chronus_graph Graph Instance List Oracle Printf Schedule
