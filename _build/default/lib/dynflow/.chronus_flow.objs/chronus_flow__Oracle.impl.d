lib/dynflow/oracle.ml: Chronus_graph Format Graph Hashtbl Instance List Option Schedule
