lib/dynflow/schedule.mli: Chronus_graph Format Graph Instance
