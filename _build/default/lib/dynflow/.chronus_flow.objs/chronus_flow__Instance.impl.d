lib/dynflow/instance.ml: Chronus_graph Format Graph Hashtbl Int List Path Set
