lib/dynflow/instance.mli: Chronus_graph Format Graph Path
