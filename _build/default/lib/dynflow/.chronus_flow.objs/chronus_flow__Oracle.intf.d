lib/dynflow/oracle.mli: Chronus_graph Format Graph Instance Schedule
