lib/dynflow/time_extended.mli: Chronus_graph Graph Instance Schedule
