open Chronus_topo

type row = {
  switches : int;
  instances : int;
  chronus_congestion_pct : float;
  opt_congestion_pct : float;
  or_congestion_pct : float;
}

let name = "fig7-congestion-cases"

let pct bad total = 100. *. float_of_int bad /. float_of_int (max 1 total)

let run ?(scale = Scale.quick) () =
  let rng = Rng.make scale.Scale.seed in
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let chron = ref 0 and opt = ref 0 and ord = ref 0 in
      for _ = 1 to scale.Scale.instances do
        let inst = Scenario.random_final ~rng spec in
        let t = Trial.run ~scale ~rng inst in
        if not t.Trial.chronus_clean then incr chron;
        if not t.Trial.opt_clean then incr opt;
        if not t.Trial.or_clean then incr ord
      done;
      {
        switches = n;
        instances = scale.Scale.instances;
        chronus_congestion_pct = pct !chron scale.Scale.instances;
        opt_congestion_pct = pct !opt scale.Scale.instances;
        or_congestion_pct = pct !ord scale.Scale.instances;
      })
    scale.Scale.switch_counts

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:[ "switches"; "instances"; "Chronus %"; "OPT %"; "OR %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.instances;
          Printf.sprintf "%.1f" r.chronus_congestion_pct;
          Printf.sprintf "%.1f" r.opt_congestion_pct;
          Printf.sprintf "%.1f" r.or_congestion_pct;
        ])
    rows;
  print_endline "# Fig. 7 — percentage of congestion cases (lower is better)";
  Table.print table
