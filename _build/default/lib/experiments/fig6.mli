(** Fig. 6: link bandwidth consumption over time during one update on the
    emulated network (the Mininet experiment) — Chronus vs TP vs OR on the
    same 10-switch instance, 5 Mbit/s links carrying a 5 Mbit/s aggregate
    flow, link delays up to ~1 s, byte counters sampled every second.
    Each scheme's series is its most-loaded link; OR's consumption spikes
    above the link capacity while Chronus and TP stay in range. *)

type row = {
  second : int;
  chronus_mbps : float;
  tp_mbps : float;
  or_mbps : float;
}

type result = {
  rows : row list;
  chronus_peak : float;
  tp_peak : float;
  or_peak : float;
  chronus_loss : int;  (** bytes *)
  tp_loss : int;
  or_loss : int;
  capacity_mbps : float;
}

val run : ?seed:int -> ?switches:int -> unit -> result
val print : result -> unit
val name : string
