open Chronus_topo
open Chronus_stats

type row = {
  switches : int;
  chronus : Boxplot.t;
  chronus_mean : float;
  tp_mean : float;
  saving_pct : float;
}

let name = "fig9-forwarding-rules"

let run ?(scale = Scale.quick) () =
  let rng = Rng.make (scale.Scale.seed + 2) in
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let chronus_samples = ref [] and tp_samples = ref [] in
      for _ = 1 to scale.Scale.instances do
        let inst = Scenario.random_pair ~rng spec in
        chronus_samples :=
          Chronus_baselines.Two_phase.chronus_rule_count inst
          :: !chronus_samples;
        tp_samples :=
          (Chronus_baselines.Two_phase.rule_count inst)
            .Chronus_baselines.Two_phase.transition_peak
          :: !tp_samples
      done;
      let chronus_mean =
        Descriptive.mean (Descriptive.of_ints !chronus_samples)
      in
      let tp_mean = Descriptive.mean (Descriptive.of_ints !tp_samples) in
      {
        switches = n;
        chronus = Boxplot.of_int_samples !chronus_samples;
        chronus_mean;
        tp_mean;
        saving_pct = 100. *. (tp_mean -. chronus_mean) /. tp_mean;
      })
    scale.Scale.switch_counts

let print rows =
  let table =
    Table.create
      ~headers:
        [ "switches"; "Chronus box"; "Chronus mean"; "TP mean"; "saving %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          Format.asprintf "%a" Boxplot.pp r.chronus;
          Printf.sprintf "%.1f" r.chronus_mean;
          Printf.sprintf "%.1f" r.tp_mean;
          Printf.sprintf "%.1f" r.saving_pct;
        ])
    rows;
  print_endline "# Fig. 9 — forwarding rules during the transition";
  Table.print table
