(** One update instance run through every scheme — the shared measurement
    underlying Figs. 7, 8, 9 and 11. Everything is evaluated against the
    dynamic-flow oracle, i.e. in the time-extended network. *)

open Chronus_flow
open Chronus_topo

type t = {
  inst : Instance.t;
  updates : int;
  (* Chronus *)
  chronus_clean : bool;  (** greedy found a consistent schedule *)
  chronus_congested_links : int;
      (** overloaded time-extended links of the executed (fallback when
          necessary) schedule *)
  chronus_makespan : int;
  chronus_rules : int;
  (* OPT *)
  opt_clean : bool;
  opt_makespan : int option;
  opt_proved : bool;  (** the solver proved optimality within budget *)
  (* OR *)
  or_rounds : int;
  or_clean : bool;
  or_congested_links : int;
  (* TP *)
  tp_rules : int;  (** transition-peak rule footprint *)
}

val run : ?with_opt:bool -> scale:Scale.t -> rng:Rng.t -> Instance.t -> t
(** [with_opt] (default true) controls whether the exact solver runs —
    it dominates the cost of a trial. *)
