lib/experiments/fig10.ml: Chronus_baselines Chronus_core Chronus_flow Chronus_stats Chronus_topo Greedy Instance List Opt Order_replacement Printf Rng Scale Scenario Sys Table
