lib/experiments/fig11.ml: Cdf Chronus_stats Chronus_topo List Printf Rng Scale Scenario Table Trial
