lib/experiments/fig9.mli: Boxplot Chronus_stats Scale
