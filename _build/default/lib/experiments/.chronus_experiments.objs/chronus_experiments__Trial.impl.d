lib/experiments/trial.ml: Chronus_baselines Chronus_core Chronus_flow Chronus_topo Fallback Greedy Instance List Opt Oracle Order_replacement Rng Scale Schedule Two_phase
