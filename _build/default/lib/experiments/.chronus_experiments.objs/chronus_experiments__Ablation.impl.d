lib/experiments/ablation.ml: Chronus_core Chronus_flow Chronus_stats Chronus_topo Greedy List Printf Rng Scale Scenario Schedule Table
