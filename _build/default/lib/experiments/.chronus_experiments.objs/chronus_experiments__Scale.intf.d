lib/experiments/scale.mli:
