lib/experiments/fig7.ml: Chronus_stats Chronus_topo List Printf Rng Scale Scenario Table Trial
