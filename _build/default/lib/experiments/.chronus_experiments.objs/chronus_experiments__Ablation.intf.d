lib/experiments/ablation.mli: Scale
