lib/experiments/fig11.mli: Cdf Chronus_stats Scale
