lib/experiments/fig9.ml: Boxplot Chronus_baselines Chronus_stats Chronus_topo Descriptive Format List Printf Rng Scale Scenario Table
