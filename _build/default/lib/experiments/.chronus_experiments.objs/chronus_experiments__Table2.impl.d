lib/experiments/table2.ml: Chronus_exec Chronus_flow Chronus_graph Chronus_sim Exec_env Flow_table Format Graph Instance List Network Path
