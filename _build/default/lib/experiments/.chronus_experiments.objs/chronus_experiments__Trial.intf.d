lib/experiments/trial.mli: Chronus_flow Chronus_topo Instance Rng Scale
