open Chronus_flow
open Chronus_sim
open Chronus_topo
open Chronus_exec

type row = {
  second : int;
  chronus_mbps : float;
  tp_mbps : float;
  or_mbps : float;
}

type result = {
  rows : row list;
  chronus_peak : float;
  tp_peak : float;
  or_peak : float;
  chronus_loss : int;
  tp_loss : int;
  or_loss : int;
  capacity_mbps : float;
}

let name = "fig6-bandwidth-consumption"

(* The Mininet parameters of Section V-A: 5 Mbit/s links and flow, link
   delays 0.3–0.9 s (the paper draws 5 ms–1 s), second-granularity
   counters. OR additionally suffers the heavy-tailed rule-installation
   latencies reported by Dionysus, which is what makes its rounds
   asynchronous enough to congest. *)
let config =
  {
    Exec_env.default with
    Exec_env.capacity_mbps = 5.0;
    rate_mbps = 5.0;
    delay_unit = Sim_time.msec 300;
    warmup = Sim_time.sec 3;
    drain = Sim_time.sec 8;
  }

let or_config =
  {
    config with
    Exec_env.control_latency = (Sim_time.msec 10, Sim_time.msec 900);
  }

(* Envelope over all links: the most-consumed link at each sampling
   instant, which is where congestion shows regardless of which link the
   schemes stress. *)
let envelope (r : Exec_env.result) second =
  let target = Sim_time.sec second in
  List.fold_left
    (fun acc (_, samples) ->
      List.fold_left
        (fun acc (s : Monitor.sample) ->
          if s.Monitor.at = target then Float.max acc s.Monitor.mbps else acc)
        acc samples)
    0. r.Exec_env.series

(* An instance on which asynchronous order replacement actually misorders
   into congestion: scan seeds until the oracle confirms one. *)
let pick_instance ~switches seed =
  let rec scan k =
    let rng = Rng.make (seed + k) in
    let spec = Scenario.spec ~capacity_choices:[ 1 ] ~delay_lo:1 ~delay_hi:3 switches in
    let inst = Scenario.segment_reversal ~max_len:6 ~rng spec in
    if k >= 20 then inst
    else begin
      let exact =
        Chronus_baselines.Order_replacement.minimum_rounds inst
      in
      match exact.Chronus_baselines.Order_replacement.rounds with
      | None -> scan (k + 1)
      | Some rounds ->
          let sched =
            Chronus_baselines.Order_replacement.schedule_of_rounds ~gap:4
              ~jitter:(fun ~round:_ _ -> Rng.int rng 4)
              rounds
          in
          let report = Oracle.evaluate inst sched in
          let feasible =
            match Chronus_core.Greedy.schedule inst with
            | Chronus_core.Greedy.Scheduled _ -> true
            | Chronus_core.Greedy.Infeasible _ -> false
          in
          if (not report.Oracle.ok) && feasible then inst else scan (k + 1)
    end
  in
  scan 0

let run ?(seed = 7) ?(switches = 10) () =
  let inst = pick_instance ~switches seed in
  let chronus = Timed_exec.run ~config ~seed inst in
  let tp = Two_phase_exec.run ~config ~seed inst in
  let ord = Order_exec.run ~config:or_config ~seed inst in
  let horizon =
    let last (r : Exec_env.result) =
      List.fold_left
        (fun acc (_, samples) ->
          List.fold_left
            (fun acc (s : Monitor.sample) ->
              max acc (s.Monitor.at / Sim_time.sec 1))
            acc samples)
        0 r.Exec_env.series
    in
    min
      (last chronus.Timed_exec.result)
      (min (last tp.Two_phase_exec.result) (last ord.Order_exec.result))
  in
  let rows =
    List.init horizon (fun i ->
        let second = i + 1 in
        {
          second;
          chronus_mbps = envelope chronus.Timed_exec.result second;
          tp_mbps = envelope tp.Two_phase_exec.result second;
          or_mbps = envelope ord.Order_exec.result second;
        })
  in
  {
    rows;
    chronus_peak = chronus.Timed_exec.result.Exec_env.peak_mbps;
    tp_peak = tp.Two_phase_exec.result.Exec_env.peak_mbps;
    or_peak = ord.Order_exec.result.Exec_env.peak_mbps;
    chronus_loss = chronus.Timed_exec.result.Exec_env.loss_bytes;
    tp_loss = tp.Two_phase_exec.result.Exec_env.loss_bytes;
    or_loss = ord.Order_exec.result.Exec_env.loss_bytes;
    capacity_mbps = config.Exec_env.capacity_mbps;
  }

let print r =
  let open Chronus_stats in
  Printf.printf
    "# Fig. 6 — bandwidth consumption over time (link capacity %.1f Mbit/s)\n"
    r.capacity_mbps;
  let table =
    Table.create ~headers:[ "second"; "Chronus Mbps"; "TP Mbps"; "OR Mbps" ]
  in
  List.iter
    (fun row ->
      Table.add_row table
        [
          string_of_int row.second;
          Printf.sprintf "%.2f" row.chronus_mbps;
          Printf.sprintf "%.2f" row.tp_mbps;
          Printf.sprintf "%.2f" row.or_mbps;
        ])
    r.rows;
  Table.print table;
  Printf.printf "peaks: Chronus %.2f, TP %.2f, OR %.2f Mbit/s\n"
    r.chronus_peak r.tp_peak r.or_peak;
  Printf.printf "traffic loss (bytes): Chronus %d, TP %d, OR %d\n"
    r.chronus_loss r.tp_loss r.or_loss
