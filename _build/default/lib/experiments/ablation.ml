open Chronus_flow
open Chronus_core
open Chronus_topo

type row = {
  instances : int;
  switches : int;
  exact_success : int;
  analytic_success : int;
  agree : int;
  exact_mean_makespan : float;
  analytic_mean_makespan : float;
  exact_mean_checks : float;
  analytic_mean_checks : float;
  mean_waits : float;
}

let name = "ablation-scheduler-engines"

let run ?(scale = Scale.quick) () =
  let rng = Rng.make (scale.Scale.seed + 9) in
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let exact_ok = ref 0
      and analytic_ok = ref 0
      and agree = ref 0
      and e_span = ref [] and a_span = ref []
      and e_checks = ref [] and a_checks = ref []
      and waits = ref [] in
      for _ = 1 to scale.Scale.instances do
        let inst = Scenario.mixed ~rng spec in
        let e_out, e_stats =
          Greedy.schedule_with_stats ~mode:Greedy.Exact inst
        in
        let a_out, a_stats =
          Greedy.schedule_with_stats ~mode:Greedy.Analytic inst
        in
        e_checks := float_of_int e_stats.Greedy.candidates_checked :: !e_checks;
        a_checks := float_of_int a_stats.Greedy.candidates_checked :: !a_checks;
        waits := float_of_int e_stats.Greedy.waits :: !waits;
        (match (e_out, a_out) with
        | Greedy.Scheduled e, Greedy.Scheduled a ->
            incr exact_ok;
            incr analytic_ok;
            incr agree;
            e_span := float_of_int (Schedule.makespan e) :: !e_span;
            a_span := float_of_int (Schedule.makespan a) :: !a_span
        | Greedy.Scheduled e, Greedy.Infeasible _ ->
            incr exact_ok;
            e_span := float_of_int (Schedule.makespan e) :: !e_span
        | Greedy.Infeasible _, Greedy.Scheduled a ->
            incr analytic_ok;
            a_span := float_of_int (Schedule.makespan a) :: !a_span
        | Greedy.Infeasible _, Greedy.Infeasible _ -> incr agree)
      done;
      let mean = function
        | [] -> 0.
        | l -> Chronus_stats.Descriptive.mean l
      in
      {
        instances = scale.Scale.instances;
        switches = n;
        exact_success = !exact_ok;
        analytic_success = !analytic_ok;
        agree = !agree;
        exact_mean_makespan = mean !e_span;
        analytic_mean_makespan = mean !a_span;
        exact_mean_checks = mean !e_checks;
        analytic_mean_checks = mean !a_checks;
        mean_waits = mean !waits;
      })
    scale.Scale.switch_counts

let print rows =
  let open Chronus_stats in
  print_endline
    "# Ablation — exact (oracle-gated) vs analytic (polynomial) greedy";
  let table =
    Table.create
      ~headers:
        [
          "switches"; "n"; "exact ok"; "analytic ok"; "agree";
          "|T| exact"; "|T| analytic"; "checks exact"; "checks analytic";
          "waits";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.instances;
          string_of_int r.exact_success;
          string_of_int r.analytic_success;
          string_of_int r.agree;
          Printf.sprintf "%.1f" r.exact_mean_makespan;
          Printf.sprintf "%.1f" r.analytic_mean_makespan;
          Printf.sprintf "%.0f" r.exact_mean_checks;
          Printf.sprintf "%.0f" r.analytic_mean_checks;
          Printf.sprintf "%.1f" r.mean_waits;
        ])
    rows;
  Table.print table
