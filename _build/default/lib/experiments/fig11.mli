(** Fig. 11: CDF of the update time (the makespan [|T|], in time units)
    at 40 switches, Chronus vs OPT. *)

open Chronus_stats

type result = {
  switches : int;
  instances : int;
  chronus : Cdf.t;
  opt : Cdf.t;
  chronus_median : float;
  opt_median : float;
}

val run : ?scale:Scale.t -> ?switches:int -> unit -> result
val print : result -> unit
val name : string
