(** Fig. 7: percentage of congestion cases vs number of switches, for
    Chronus, OPT and OR. A case is congested when the executed schedule
    overloads at least one time-extended link (or, for OR, also when it
    loops or blackholes in-flight traffic — OR ignores transmission
    delays entirely). *)

type row = {
  switches : int;
  instances : int;
  chronus_congestion_pct : float;
  opt_congestion_pct : float;
  or_congestion_pct : float;
}

val run : ?scale:Scale.t -> unit -> row list
val print : row list -> unit
val name : string
