lib/exec/order_exec.mli: Chronus_flow Chronus_graph Exec_env Graph
