lib/exec/exec_env.mli: Chronus_flow Chronus_sim Chronus_topo Controller Instance Monitor Network Sim_time
