lib/exec/two_phase_exec.ml: Chronus_flow Chronus_sim Controller Engine Exec_env Flow_table Instance List Network Sim_time
