lib/exec/order_exec.ml: Chronus_baselines Chronus_flow Chronus_graph Chronus_sim Controller Engine Exec_env Graph Instance List Network Order_replacement Sim_time
