lib/exec/timed_exec.mli: Chronus_core Chronus_flow Exec_env Instance Schedule
