lib/exec/timed_exec.ml: Chronus_core Chronus_flow Chronus_sim Controller Engine Exec_env Fallback Instance List Network Schedule Sim_time
