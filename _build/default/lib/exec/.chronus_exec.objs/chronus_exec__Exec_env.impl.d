lib/exec/exec_env.ml: Chronus_flow Chronus_graph Chronus_sim Chronus_topo Controller Engine Flow_table Graph Instance List Monitor Network Rng Sim_time
