lib/exec/two_phase_exec.mli: Chronus_flow Chronus_sim Exec_env Sim_time
