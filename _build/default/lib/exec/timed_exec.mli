(** Executing a Chronus timed update on the simulator — Algorithm 5.

    The schedule computed by the greedy algorithm (with the best-effort
    fallback for infeasible instances) is translated into timed flow-mods:
    one command per switch carrying the execution timestamp
    [t0 + step * delay_unit]. Commands are dispatched ahead of time,
    barriers confirm the installation, and the flow is measured throughout. *)

open Chronus_flow

type t = {
  result : Exec_env.result;
  schedule : Schedule.t;
  clean : bool;  (** the greedy found a provably consistent schedule *)
}

val run :
  ?config:Exec_env.config ->
  ?seed:int ->
  ?mode:Chronus_core.Greedy.mode ->
  Instance.t ->
  t
