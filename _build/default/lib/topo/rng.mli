(** Seeded deterministic randomness for workload generation. Every
    experiment takes an explicit seed so that runs are reproducible. *)

type t

val make : int -> t
(** Independent generator from a seed. *)

val split : t -> t
(** A fresh generator derived from (and advancing) this one — use to give
    sub-experiments independent streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val float : t -> float -> float
val bool : t -> bool

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] draws [k] elements without replacement (all of [l] if
    [k >= List.length l]); order is random. *)
