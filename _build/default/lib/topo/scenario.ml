open Chronus_graph
open Chronus_flow

type spec = {
  n : int;
  demand : int;
  capacity_choices : int list;
  delay_lo : int;
  delay_hi : int;
}

let spec ?(demand = 1) ?(capacity_choices = [ 1; 2; 2 ]) ?(delay_lo = 1)
    ?(delay_hi = 3) n =
  if n < 3 then invalid_arg "Scenario.spec: need at least 3 switches";
  if List.exists (fun c -> c < demand) capacity_choices then
    invalid_arg "Scenario.spec: capacity below demand";
  if capacity_choices = [] then
    invalid_arg "Scenario.spec: no capacity choices";
  { n; demand; capacity_choices; delay_lo; delay_hi }

let fig1_example () =
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:1 ~delay:1 g u v)
    [
      (1, 2); (2, 3); (3, 4); (4, 5); (5, 6);
      (1, 4); (4, 3); (3, 5); (5, 2); (2, 6);
    ];
  Instance.create ~graph:g ~demand:1 ~p_init:[ 1; 2; 3; 4; 5; 6 ]
    ~p_fin:[ 1; 4; 3; 5; 2; 6 ]

(* Materialise the union graph of the given paths; links already present
   keep their first-drawn delay so shared hops stay shared. *)
let materialize ~rng s paths =
  let g = Graph.create ~size:s.n () in
  for v = 0 to s.n - 1 do
    Graph.add_node g v
  done;
  List.iter
    (fun p ->
      List.iter
        (fun (u, v) ->
          if not (Graph.mem_edge g u v) then
            Graph.add_edge
              ~capacity:(Rng.pick rng s.capacity_choices)
              ~delay:(Rng.in_range rng s.delay_lo s.delay_hi)
              g u v)
        (Path.edges p))
    paths;
  g

let chain s = List.init s.n Fun.id

let build ~rng s p_init p_fin =
  let g = materialize ~rng s [ p_init; p_fin ] in
  Instance.create ~graph:g ~demand:s.demand ~p_init ~p_fin

let random_final ~rng s =
  let p_init = chain s in
  let middle = List.init (s.n - 2) (fun i -> i + 1) in
  let k = Rng.in_range rng 1 (s.n - 2) in
  let via = Rng.sample rng k middle in
  let p_fin = (0 :: via) @ [ s.n - 1 ] in
  build ~rng s p_init p_fin

let segment_reversal ?(max_len = 8) ~rng s =
  let p_init = chain s in
  if s.n < 4 then build ~rng s p_init p_init
  else begin
    let i = Rng.in_range rng 1 (s.n - 3) in
    let j = Rng.in_range rng (i + 1) (min (s.n - 2) (i + max_len - 1)) in
    let arr = Array.of_list p_init in
    let lo = ref i and hi = ref j in
    while !lo < !hi do
      let tmp = arr.(!lo) in
      arr.(!lo) <- arr.(!hi);
      arr.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    build ~rng s p_init (Array.to_list arr)
  end

let shortcut ~rng s =
  let p_init = chain s in
  let keep =
    List.filter (fun v -> v = 0 || v = s.n - 1 || Rng.bool rng) p_init
  in
  build ~rng s p_init keep

let random_pair ~rng s =
  let middle = List.init (s.n - 2) (fun i -> i + 1) in
  let draw ~ordered =
    let k = Rng.in_range rng 1 (s.n - 2) in
    let via = Rng.sample rng k middle in
    let via = if ordered then List.sort compare via else via in
    (0 :: via) @ [ s.n - 1 ]
  in
  build ~rng s (draw ~ordered:true) (draw ~ordered:false)

let mixed ~rng s =
  match Rng.int rng 3 with
  | 0 -> random_final ~rng s
  | 1 -> segment_reversal ~rng s
  | _ -> shortcut ~rng s

let long_chain ~rng s =
  (* One reversed segment of bounded length at a random position in an
     n-switch chain: the flow's path — and hence every drain horizon,
     trace, and oracle window — scales with n, while the update region
     itself stays local, which is what keeps giant instances schedulable
     at all (Fig. 10 times the algorithms, not infeasibility proofs). *)
  let p_init = chain s in
  if s.n < 6 then build ~rng s p_init p_init
  else begin
    let seg = min 8 ((s.n - 2) / 2) in
    let i = Rng.in_range rng 1 (s.n - 1 - seg) in
    let j = i + seg - 1 in
    let arr = Array.of_list p_init in
    let lo = ref i and hi = ref j in
    while !lo < !hi do
      let tmp = arr.(!lo) in
      arr.(!lo) <- arr.(!hi);
      arr.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    build ~rng s p_init (Array.to_list arr)
  end
