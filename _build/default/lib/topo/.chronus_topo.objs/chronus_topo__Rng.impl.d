lib/topo/rng.ml: Array List Random
