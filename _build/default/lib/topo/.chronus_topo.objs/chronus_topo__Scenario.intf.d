lib/topo/scenario.mli: Chronus_flow Instance Rng
