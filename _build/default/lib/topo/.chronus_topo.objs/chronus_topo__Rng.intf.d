lib/topo/rng.mli:
