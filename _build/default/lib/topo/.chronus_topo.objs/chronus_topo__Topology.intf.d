lib/topo/topology.mli: Chronus_graph Graph Rng
