lib/topo/topology.ml: Array Chronus_graph Fun Graph List Rng
