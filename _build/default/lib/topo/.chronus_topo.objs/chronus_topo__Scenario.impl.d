lib/topo/scenario.ml: Array Chronus_flow Chronus_graph Fun Graph Instance List Path Rng
