(** The TP baseline: two-phase commit updates (Reitblatt et al.,
    SIGCOMM'12), versioned with VLAN-tag stamping as in the paper's
    experiments.

    Phase one installs, at every switch of the final path, a copy of the
    forwarding rule matching the new version tag, while traffic is still
    stamped with the old tag and follows the old rules. Phase two flips
    the stamp at the ingress; in-flight old-tag packets drain, after which
    the old rules are garbage-collected. The protocol is per-packet
    consistent by construction but is oblivious to link capacities and
    transmission delays, and it doubles the rule footprint during the
    transition — the cost plotted in Fig. 9. *)

open Chronus_graph
open Chronus_flow

type rule_count = {
  steady : int;  (** rules before/after the update (one per path switch) *)
  transition_peak : int;
      (** rules present between phase one and garbage collection: old
          rules + tagged new rules + the ingress stamping rule *)
}

val rule_count : Instance.t -> rule_count

val chronus_rule_count : Instance.t -> int
(** Rules Chronus needs during the same transition: one per switch on
    either path (actions are modified in place, no versioned copies). *)

(** Cohort-level behaviour: packets stamped before the flip follow the
    initial path, packets stamped after follow the final path. *)

val path_of_cohort : Instance.t -> flip:int -> int -> Path.t
(** The path of the cohort injected at a given step under an ingress flip
    at step [flip]. *)

val congested_links : Instance.t -> flip:int -> (Graph.node * Graph.node * int) list
(** Time-extended links that exceed capacity during the transition:
    a link shared by both paths clashes when the old-path prefix delay
    exceeds the new-path prefix delay (an old-tag cohort and a younger
    new-tag cohort enter it at the same step). Independent of [flip]
    except for the step labels. *)

val is_per_packet_consistent : Instance.t -> flip:int -> bool
(** Always [true]; exercised as a property test. *)
