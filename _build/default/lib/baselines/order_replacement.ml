open Chronus_graph
open Chronus_flow

(* Forwarding graph under a given rule choice. [both] switches contribute
   their old *and* new edge. *)
let forwarding_graph inst ~new_rule ~both =
  let g = Graph.create () in
  let module Ints = Set.Make (Int) in
  let nodes =
    Ints.union
      (Ints.of_list inst.Instance.p_init)
      (Ints.of_list inst.Instance.p_fin)
  in
  let news = Ints.of_list new_rule and boths = Ints.of_list both in
  Ints.iter
    (fun v ->
      Graph.add_node g v;
      let old_edge = Instance.old_next inst v in
      let new_edge = Instance.new_next inst v in
      let add = function None -> () | Some w -> Graph.add_edge g v w in
      if Ints.mem v boths then begin
        add old_edge;
        add new_edge
      end
      else if Ints.mem v news then add new_edge
      else add old_edge)
    nodes;
  g

let round_safe inst ~done_ ~round =
  let g = forwarding_graph inst ~new_rule:done_ ~both:round in
  not (Cycle.has_cycle g)

(* Order replacement replaces rules; stale rules on switches that are only
   on the initial path are garbage-collected after the transition and play
   no part in the rounds. *)
let replaceable_switches inst =
  List.filter_map
    (fun (u : Instance.update) ->
      match u.Instance.kind with
      | Instance.Delete -> None
      | Instance.Modify | Instance.Add -> Some u.Instance.switch)
    (Instance.updates inst)

let interleavings_loop_free inst ~done_ ~round =
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = subsets rest in
        subs @ List.map (fun s -> x :: s) subs
  in
  List.for_all
    (fun applied ->
      let g =
        forwarding_graph inst ~new_rule:(done_ @ applied) ~both:[]
      in
      not (Cycle.has_cycle g))
    (subsets round)

let greedy_rounds inst =
  let all = replaceable_switches inst in
  let rec build done_ remaining rounds =
    if remaining = [] then Some (List.rev rounds)
    else begin
      let round =
        List.fold_left
          (fun acc v ->
            if round_safe inst ~done_ ~round:(v :: acc) then v :: acc
            else acc)
          [] remaining
      in
      match round with
      | [] -> None
      | _ ->
          let round = List.sort compare round in
          build (done_ @ round)
            (List.filter (fun v -> not (List.mem v round)) remaining)
            (round :: rounds)
    end
  in
  build [] all []

type exact_result = {
  rounds : Graph.node list list option;
  optimal : bool;
  nodes_explored : int;
}

let minimum_rounds ?(budget = 200_000) inst =
  let all = replaceable_switches inst in
  let explored = ref 0 in
  let exhausted = ref false in
  let upper =
    match greedy_rounds inst with
    | Some rounds -> List.length rounds
    | None -> List.length all + 1
  in
  (* Depth-limited DFS: can the remaining switches be finished within
     [depth] more rounds? Rounds are built from the individually-safe
     candidates (any safe round is a subset of those, since removing
     switches from a round only removes edges). *)
  let rec fits done_ remaining depth =
    incr explored;
    if !explored > budget then begin
      exhausted := true;
      None
    end
    else if remaining = [] then Some []
    else if depth = 0 then None
    else begin
      let candidates =
        List.filter (fun v -> round_safe inst ~done_ ~round:[ v ]) remaining
      in
      if candidates = [] then None
      else begin
        (* Enumerate safe subsets of the candidates, largest-first bias:
           include each candidate unless it breaks round safety. *)
        let rec choose acc rest =
          match rest with
          | [] ->
              if acc = [] then None
              else begin
                let round = List.sort compare acc in
                match
                  fits (done_ @ round)
                    (List.filter (fun v -> not (List.mem v round)) remaining)
                    (depth - 1)
                with
                | Some rounds -> Some (round :: rounds)
                | None -> None
              end
          | v :: tl -> (
              let with_v =
                if round_safe inst ~done_ ~round:(v :: acc) then
                  choose (v :: acc) tl
                else None
              in
              match with_v with
              | Some _ as found -> found
              | None -> if !exhausted then None else choose acc tl)
        in
        choose [] candidates
      end
    end
  in
  let rec tighten depth best =
    if !exhausted || depth < 1 then best
    else
      match fits [] all depth with
      | Some rounds -> tighten (List.length rounds - 1) (Some rounds)
      | None -> best
  in
  let initial = greedy_rounds inst in
  let best = tighten (upper - 1) initial in
  { rounds = best; optimal = not !exhausted; nodes_explored = !explored }

let schedule_of_rounds ?(gap = 8) ~jitter rounds =
  let sched = ref Schedule.empty in
  List.iteri
    (fun i round ->
      List.iter
        (fun v ->
          let j = jitter ~round:i v in
          let j = if j < 0 || j >= gap then abs j mod gap else j in
          sched := Schedule.add v ((i * gap) + j) !sched)
        round)
    rounds;
  !sched
