lib/baselines/order_replacement.ml: Chronus_flow Chronus_graph Cycle Graph Instance Int List Schedule Set
