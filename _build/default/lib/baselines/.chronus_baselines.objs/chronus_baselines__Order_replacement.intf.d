lib/baselines/order_replacement.mli: Chronus_flow Chronus_graph Graph Instance Schedule
