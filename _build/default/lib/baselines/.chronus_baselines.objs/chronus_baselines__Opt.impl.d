lib/baselines/opt.ml: Chronus_core Chronus_flow Feasibility Greedy Instance Lazy List Mutp Oracle Schedule Sys
