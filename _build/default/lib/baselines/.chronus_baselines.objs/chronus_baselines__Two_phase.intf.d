lib/baselines/two_phase.mli: Chronus_flow Chronus_graph Graph Instance Path
