lib/baselines/opt.mli: Chronus_flow Instance Schedule
