lib/baselines/two_phase.ml: Chronus_flow Chronus_graph Graph Instance Int List Path Set
