open Chronus_graph
open Chronus_flow

type rule_count = { steady : int; transition_peak : int }

let path_switches p = max 0 (List.length p - 1)

let rule_count inst =
  let old_rules = path_switches inst.Instance.p_init in
  let new_rules = path_switches inst.Instance.p_fin in
  (* Old untagged rules stay installed while the tagged copies are added;
     the ingress additionally holds the stamping rule for the new tag. *)
  { steady = old_rules; transition_peak = old_rules + new_rules + 1 }

let chronus_rule_count inst =
  let module Ints = Set.Make (Int) in
  let on_path p = Ints.of_list p in
  Ints.cardinal
    (Ints.remove
       (Instance.destination inst)
       (Ints.union (on_path inst.Instance.p_init) (on_path inst.Instance.p_fin)))

let path_of_cohort inst ~flip tau =
  if tau < flip then inst.Instance.p_init else inst.Instance.p_fin

let prefix_delay_on g p v =
  match Path.prefix_to p v with
  | None -> None
  | Some prefix -> Some (Path.delay g prefix)

let congested_links inst ~flip =
  let g = inst.Instance.graph in
  let d = inst.Instance.demand in
  List.filter_map
    (fun (u, v) ->
      if Path.mem_edge u v inst.Instance.p_fin then
        match
          ( prefix_delay_on g inst.Instance.p_init u,
            prefix_delay_on g inst.Instance.p_fin u )
        with
        | Some p_old, Some p_new
          when p_old > p_new && Graph.capacity g u v < 2 * d ->
            (* Witness: the last old-tag cohort meets a new-tag cohort. *)
            Some (u, v, flip - 1 + p_old)
        | _ -> None
      else None)
    (Path.edges inst.Instance.p_init)

let is_per_packet_consistent inst ~flip =
  ignore flip;
  Path.is_valid inst.Instance.graph inst.Instance.p_init
  && Path.is_valid inst.Instance.graph inst.Instance.p_fin
