(** The OR baseline: order replacement updates (Ludwig et al., PODC'15).

    Switches are updated in *rounds*; within a round the data plane is
    asynchronous, so a round [S] is safe only if every interleaving of its
    flips keeps forwarding loop-free. The standard characterisation: the
    graph containing the new edge of every already-updated switch, both
    edges of every switch in [S], and the old edge of everything else must
    be acyclic (any cycle picks one outgoing edge per switch, i.e. a
    realisable intermediate configuration).

    Minimising the number of rounds is NP-hard; we provide the exact
    branch-and-bound search the paper benchmarks (with a node budget) and
    the polynomial greedy that repeatedly commits a maximal safe round.
    OR deliberately ignores link capacities and transmission delays — that
    is exactly why it congests in Figs. 6–8. *)

open Chronus_graph
open Chronus_flow

val round_safe :
  Instance.t -> done_:Graph.node list -> round:Graph.node list -> bool
(** Is this round loop-free under every intra-round interleaving? *)

val replaceable_switches : Instance.t -> Graph.node list
(** The switches OR actually sequences: Modify and Add updates. Stale
    rules (Delete updates) are garbage-collected after the transition and
    are not part of any round. *)

val greedy_rounds : Instance.t -> Graph.node list list option
(** Maximal-safe-set rounds; [None] if some switch can never be updated
    (cannot happen for two simple paths, kept for totality). *)

type exact_result = {
  rounds : Graph.node list list option;
  optimal : bool;  (** false when the node budget was exhausted *)
  nodes_explored : int;
}

val minimum_rounds : ?budget:int -> Instance.t -> exact_result
(** Branch and bound over round compositions, minimising the number of
    rounds. [budget] caps explored search nodes (default 200_000). *)

val schedule_of_rounds :
  ?gap:int ->
  jitter:(round:int -> Graph.node -> int) ->
  Graph.node list list ->
  Schedule.t
(** Interpret rounds as a timed schedule for the oracle: round [i] starts
    at [i * gap] (default gap: 8) and each switch lands at
    [i * gap + jitter] with [0 <= jitter < gap] — the random per-switch
    rule-installation latency that makes the data plane asynchronous. *)

val interleavings_loop_free :
  Instance.t -> done_:Graph.node list -> round:Graph.node list -> bool
(** Test helper: enumerate every subset of the round as "already applied"
    and check the forwarding graph for loops. Exponential; agrees with
    {!round_safe} by construction of the characterisation. *)
