open Chronus_flow
open Chronus_core

type outcome =
  | Optimal of Schedule.t
  | Feasible of Schedule.t
  | Infeasible
  | Unknown

type result = {
  outcome : outcome;
  makespan : int option;
  nodes_explored : int;
  elapsed : float;
}

exception Out_of_budget

let violation_time = function
  | Oracle.Congestion { time; _ }
  | Oracle.Loop { time; _ }
  | Oracle.Blackhole { time; _ } ->
      time

let solve ?(budget = 500_000) ?(timeout = 60.0) ?horizon ?hint inst =
  let start = Sys.time () in
  let explored = ref 0 in
  let finish outcome =
    let makespan =
      match outcome with
      | Optimal s | Feasible s -> Some (Schedule.makespan s)
      | Infeasible | Unknown -> None
    in
    { outcome; makespan; nodes_explored = !explored; elapsed = Sys.time () -. start }
  in
  if Instance.is_trivial inst then finish (Optimal Schedule.empty)
  else begin
    (* The upper bound comes from the caller's [hint] (a known-consistent
       schedule, typically the greedy's) when available; otherwise the
       polynomial greedy supplies it lazily. *)
    let greedy_result =
      lazy
        (match hint with
        | Some s -> Greedy.Scheduled s
        | None -> Greedy.schedule ~mode:Greedy.Analytic inst)
    in
    let upper =
      match (horizon, hint) with
      | Some h, _ -> h
      | None, Some s -> Schedule.makespan s
      | None, None -> (
          match Lazy.force greedy_result with
          | Greedy.Scheduled s -> Schedule.makespan s
          | Greedy.Infeasible _ -> Feasibility.default_horizon inst)
    in
    let tick () =
      incr explored;
      if !explored > budget || Sys.time () -. start > timeout then
        raise Out_of_budget
    in
    (* Any violation at or below the frontier step is definitive: flips
       strictly later cannot influence flow behaviour that early. *)
    let violated_by sched frontier =
      List.exists
        (fun v -> violation_time v <= frontier)
        (Oracle.evaluate inst sched).Oracle.violations
    in
    let all = Instance.switches_to_update inst in
    let rec dfs t sched remaining bound =
      tick ();
      if remaining = [] then
        if Oracle.is_consistent inst sched then Some sched else None
      else if t >= bound then None
      else if t = bound - 1 then begin
        (* Last step inside the bound: everything left must flip now. *)
        let sched' =
          List.fold_left (fun s v -> Schedule.add v t s) sched remaining
        in
        if Oracle.is_consistent inst sched' then Some sched' else None
      end
      else begin
        (* Choose the subset flipping at step [t]: binary DFS over the
           remaining switches. Violations strictly below [t] kill a branch
           during growth; violations at [t] are only final once the subset
           is closed (a same-step flip can still cure them). *)
        let rec choose sched_acc committed rest =
          match rest with
          | [] ->
              if violated_by sched_acc t then None
              else
                dfs (t + 1) sched_acc
                  (List.filter (fun v -> not (List.mem v committed)) remaining)
                  bound
          | v :: tl -> (
              tick ();
              let sched_v = Schedule.add v t sched_acc in
              let included =
                if violated_by sched_v (t - 1) then None
                else choose sched_v (v :: committed) tl
              in
              match included with
              | Some _ as found -> found
              | None -> choose sched_acc committed tl)
        in
        choose sched [] remaining
      end
    in
    let lower = max 1 (Mutp.lower_bound inst) in
    let deepen () =
      let rec at m =
        if m > upper then None
        else
          match dfs 0 Schedule.empty all m with
          | Some sched -> Some sched
          | None -> at (m + 1)
      in
      at lower
    in
    match deepen () with
    | Some sched -> finish (Optimal sched)
    | None -> finish Infeasible
    | exception Out_of_budget -> (
        (* Only fall back on work already done: forcing a fresh greedy run
           here would defeat the budget. *)
        match hint with
        | Some s -> finish (Feasible s)
        | None ->
            if Lazy.is_val greedy_result then
              match Lazy.force greedy_result with
              | Greedy.Scheduled s -> finish (Feasible s)
              | Greedy.Infeasible _ -> finish Unknown
            else finish Unknown)
  end

let makespan_of r = r.makespan
