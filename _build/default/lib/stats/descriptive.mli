(** Descriptive statistics over float samples. All functions raise
    [Invalid_argument] on an empty sample unless stated otherwise. *)

val mean : float list -> float
val variance : float list -> float
(** Population variance. *)

val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val total : float list -> float
(** Sum; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [[0, 100]], linear interpolation between
    order statistics. *)

val median : float list -> float

val of_ints : int list -> float list
