(** Five-number box-plot summaries — the boxes of Fig. 9. *)

type t = {
  low_whisker : float;
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;
  outliers : float list;
}

val of_samples : float list -> t
(** Standard Tukey boxes: whiskers at the most extreme samples within
    1.5 IQR of the quartiles. @raise Invalid_argument on empty input. *)

val of_int_samples : int list -> t

val pp : Format.formatter -> t -> unit
