lib/stats/table.mli:
