lib/stats/boxplot.ml: Descriptive Format List Printf
