lib/stats/boxplot.mli: Format
