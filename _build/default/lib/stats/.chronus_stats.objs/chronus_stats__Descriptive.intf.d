lib/stats/descriptive.mli:
