(** Fixed-width text tables for experiment output, rendered in the same
    row/column layout as the paper's figures report their series. *)

type t

val create : headers:string list -> t
(** @raise Invalid_argument on an empty header list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the headers. *)

val add_float_row : ?decimals:int -> t -> string -> float list -> unit
(** Label column followed by formatted floats (default 2 decimals). *)

val render : t -> string
(** Columns padded to their widest cell, header underlined. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
