type t = { headers : string list; mutable rows : string list list }

let create ~headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_float_row ?(decimals = 2) t label floats =
  add_row t (label :: List.map (fun f -> Printf.sprintf "%.*f" decimals f) floats)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let arity = List.length t.headers in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line cells = String.concat "  " (List.mapi pad cells) in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line t.headers :: rule :: List.map line rows) @ [])

let print t =
  print_string (render t);
  print_newline ()
