let check = function
  | [] -> invalid_arg "Descriptive: empty sample"
  | xs -> xs

let total xs = List.fold_left ( +. ) 0. xs

let mean xs =
  let xs = check xs in
  total xs /. float_of_int (List.length xs)

let variance xs =
  let m = mean xs in
  let sq = List.map (fun x -> (x -. m) ** 2.) xs in
  total sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let minimum xs = List.fold_left min (List.hd (check xs)) xs

let maximum xs = List.fold_left max (List.hd (check xs)) xs

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p out of range";
  let sorted = List.sort compare (check xs) in
  let a = Array.of_list sorted in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let median xs = percentile 50. xs

let of_ints = List.map float_of_int
