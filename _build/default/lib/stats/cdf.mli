(** Empirical cumulative distribution functions — the curves of Fig. 11. *)

type t
(** An ECDF over float samples. *)

val of_samples : float list -> t
(** @raise Invalid_argument on the empty list. *)

val of_int_samples : int list -> t

val eval : t -> float -> float
(** [eval cdf x]: fraction of samples [<= x], in [[0, 1]]. *)

val inverse : t -> float -> float
(** [inverse cdf q] for [q] in [[0, 1]]: smallest sample [x] with
    [eval cdf x >= q]. *)

val points : t -> (float * float) list
(** The step points [(x, F(x))], one per distinct sample value, ascending. *)

val size : t -> int

val pp_series : ?steps:int -> Format.formatter -> t -> unit
(** Render as a fixed number of (x, F) rows for plotting (default 20). *)
