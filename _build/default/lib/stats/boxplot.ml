type t = {
  low_whisker : float;
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;
  outliers : float list;
}

let of_samples xs =
  let q1 = Descriptive.percentile 25. xs in
  let median = Descriptive.median xs in
  let q3 = Descriptive.percentile 75. xs in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let inside = List.filter (fun x -> x >= lo_fence && x <= hi_fence) xs in
  let low_whisker, high_whisker =
    match inside with
    | [] -> (q1, q3)
    | _ -> (Descriptive.minimum inside, Descriptive.maximum inside)
  in
  let outliers =
    List.sort compare (List.filter (fun x -> x < lo_fence || x > hi_fence) xs)
  in
  { low_whisker; q1; median; q3; high_whisker; outliers }

let of_int_samples xs = of_samples (Descriptive.of_ints xs)

let pp ppf b =
  Format.fprintf ppf "[%.1f | %.1f [%.1f] %.1f | %.1f]%s" b.low_whisker b.q1
    b.median b.q3 b.high_whisker
    (match b.outliers with
    | [] -> ""
    | l -> Printf.sprintf " +%d outliers" (List.length l))
