type t = { sorted : float array }

let of_samples = function
  | [] -> invalid_arg "Cdf.of_samples: empty"
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      { sorted = a }

let of_int_samples xs = of_samples (List.map float_of_int xs)

let size t = Array.length t.sorted

(* Number of samples <= x, by binary search for the last such index. *)
let rank t x =
  let a = t.sorted in
  let n = Array.length a in
  let rec bisect lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then bisect (mid + 1) hi else bisect lo mid
    end
  in
  bisect 0 n

let eval t x = float_of_int (rank t x) /. float_of_int (size t)

let inverse t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.inverse: q out of range";
  let n = size t in
  let idx =
    min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1))
  in
  t.sorted.(idx)

let points t =
  let n = size t in
  let rec build i acc =
    if i < 0 then acc
    else begin
      let x = t.sorted.(i) in
      match acc with
      | (x', _) :: _ when x' = x -> build (i - 1) acc
      | _ -> build (i - 1) ((x, float_of_int (i + 1) /. float_of_int n) :: acc)
    end
  in
  build (n - 1) []

let pp_series ?(steps = 20) ppf t =
  let lo = t.sorted.(0) and hi = t.sorted.(size t - 1) in
  Format.fprintf ppf "@[<v>";
  for i = 0 to steps do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
    Format.fprintf ppf "%10.3f  %6.3f@," x (eval t x)
  done;
  Format.fprintf ppf "@]"
