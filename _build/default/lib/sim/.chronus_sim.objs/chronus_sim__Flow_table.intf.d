lib/sim/flow_table.mli: Format
