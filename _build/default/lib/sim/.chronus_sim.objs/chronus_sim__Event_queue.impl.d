lib/sim/event_queue.ml: Array Sim_time
