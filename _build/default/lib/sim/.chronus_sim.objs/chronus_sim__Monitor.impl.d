lib/sim/monitor.ml: Engine Float Hashtbl List Network Option Sim_time
