lib/sim/flow_table.ml: Format List Printf
