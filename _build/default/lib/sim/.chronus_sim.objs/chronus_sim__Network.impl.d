lib/sim/network.ml: Engine Flow_table Hashtbl List Sim_time
