lib/sim/engine.ml: Event_queue Sim_time
