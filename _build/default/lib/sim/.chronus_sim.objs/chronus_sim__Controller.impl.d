lib/sim/controller.ml: Engine Flow_table Hashtbl List Network Option Sim_time
