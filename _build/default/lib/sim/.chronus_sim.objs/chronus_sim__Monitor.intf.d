lib/sim/monitor.mli: Network Sim_time
