lib/sim/network.mli: Engine Flow_table Sim_time
