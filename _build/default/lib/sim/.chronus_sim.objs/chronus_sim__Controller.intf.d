lib/sim/controller.mli: Flow_table Network Sim_time
