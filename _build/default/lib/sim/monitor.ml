type sample = { at : Sim_time.t; mbps : float }

type t = {
  net : Network.t;
  interval : Sim_time.t;
  previous : (int * int, int) Hashtbl.t;
  samples : (int * int, sample list) Hashtbl.t;
  mutable peak_rules : int;
  mutable stop_at : Sim_time.t option;
}

let take_sample t =
  List.iter
    (fun link ->
      let current = Network.link_bytes t.net link in
      let before =
        Option.value ~default:0 (Hashtbl.find_opt t.previous link)
      in
      Hashtbl.replace t.previous link current;
      let bits = float_of_int ((current - before) * 8) in
      let mbps = bits /. Sim_time.to_sec t.interval /. 1e6 in
      let s =
        { at = Engine.now (Network.engine t.net); mbps }
      in
      let history =
        Option.value ~default:[] (Hashtbl.find_opt t.samples link)
      in
      Hashtbl.replace t.samples link (s :: history))
    (Network.links t.net);
  t.peak_rules <- max t.peak_rules (Network.total_rules t.net)

let create ?(interval = Sim_time.sec 1) net =
  let t =
    {
      net;
      interval;
      previous = Hashtbl.create 32;
      samples = Hashtbl.create 32;
      peak_rules = Network.total_rules net;
      stop_at = None;
    }
  in
  let engine = Network.engine net in
  let rec tick at =
    let beyond =
      match t.stop_at with Some stop -> at > stop | None -> false
    in
    if not beyond then
      Engine.at engine at (fun () ->
          take_sample t;
          tick (at + interval))
  in
  tick (Engine.now engine + interval);
  t

let stop_after t time = t.stop_at <- Some time

let series t link =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.samples link))

let peak t link =
  List.fold_left (fun acc s -> Float.max acc s.mbps) 0. (series t link)

let busiest_link t =
  Hashtbl.fold
    (fun link _ acc ->
      let p = peak t link in
      match acc with
      | Some (_, best) when best >= p -> acc
      | _ -> Some (link, p))
    t.samples None

let congested_samples t =
  Hashtbl.fold
    (fun link history acc ->
      let capacity = Network.link_capacity_mbps t.net link in
      List.fold_left
        (fun acc s -> if s.mbps > capacity then (link, s) :: acc else acc)
        acc history)
    t.samples []
  |> List.sort compare

let peak_rules t = t.peak_rules
