(** Simulated wall-clock time in integer microseconds — the resolution of
    Time4-style scheduled updates ("on the order of one microsecond"). *)

type t = int

val usec : int -> t
val msec : int -> t
val sec : int -> t
val of_sec_float : float -> t

val to_sec : t -> float
val to_msec : t -> float

val pp : Format.formatter -> t -> unit
(** Prints seconds with millisecond precision. *)
