(** A binary min-heap of timestamped events. Ties break by insertion
    order, so simulations are deterministic. *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int

val push : t -> time:Sim_time.t -> (unit -> unit) -> unit
(** Enqueue a thunk to fire at the given time. *)

val pop : t -> (Sim_time.t * (unit -> unit)) option
(** Earliest event, [None] when empty. *)

val peek_time : t -> Sim_time.t option
