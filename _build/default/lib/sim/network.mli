(** The simulated data plane: switches with flow tables, links with
    propagation delay and capacity, constant-bit-rate traffic sources, and
    cumulative per-link byte counters (what Floodlight's statistics module
    reads in the paper's Fig. 6 measurement).

    Traffic is fluid: a source emits one *chunk* per emission interval,
    carrying [rate * interval] bytes. A chunk arriving at a switch is
    matched against the flow table at that instant, optionally re-stamped,
    accounted on the chosen link's byte counter, and delivered to the next
    switch one propagation delay later. A chunk that matches no rule is
    dropped (blackhole); a chunk exceeding the hop limit is dropped as a
    loop. *)

type t

type drop_reason = No_rule | Hop_limit

type stats = {
  delivered_bytes : int;
  dropped_no_rule : int;  (** bytes *)
  dropped_loop : int;  (** bytes *)
}

val create : Engine.t -> t
val engine : t -> Engine.t

val add_switch : t -> int -> unit
(** Idempotent. *)

val add_link : t -> capacity_mbps:float -> delay:Sim_time.t -> int -> int -> unit
(** Directed link. Endpoints are added as needed. *)

val table : t -> int -> Flow_table.t
(** The flow table of a switch. @raise Not_found for unknown switches. *)

val switches : t -> int list
val links : t -> (int * int) list
val link_capacity_mbps : t -> int * int -> float
val link_delay : t -> int * int -> Sim_time.t

val link_bytes : t -> int * int -> int
(** Cumulative bytes that have *entered* the link. *)

val inject : t -> at:int -> dst:int -> ?tag:int -> bytes:int -> unit -> unit
(** Hand a chunk to a switch at the current simulation time. *)

val add_source :
  t ->
  attach:int ->
  dst:int ->
  rate_mbps:float ->
  ?chunk:Sim_time.t ->
  start:Sim_time.t ->
  stop:Sim_time.t ->
  unit ->
  unit
(** Emit chunks every [chunk] interval (default 10 ms) from [start]
    (inclusive) to [stop] (exclusive). *)

val stats : t -> stats
val total_rules : t -> int
(** Sum of flow-table sizes over all switches (Fig. 9's quantity). *)

val on_drop : t -> (drop_reason -> switch:int -> bytes:int -> unit) -> unit
(** Register a drop observer (appended; all observers fire). *)
