(** The discrete-event loop: a clock and an event queue. Events scheduled
    in the past fire immediately (at the current clock). *)

type t

val create : unit -> t

val now : t -> Sim_time.t

val at : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule at an absolute time (clamped to [now] if earlier). *)

val after : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule after a relative delay (clamped to 0). *)

val run : ?until:Sim_time.t -> t -> unit
(** Drain the queue in time order; with [until], stop once the next event
    would fire strictly after it (the clock then reads [until]). *)

val pending : t -> int
