type t = int

let usec n = n
let msec n = n * 1_000
let sec n = n * 1_000_000
let of_sec_float s = int_of_float (s *. 1_000_000.)

let to_sec t = float_of_int t /. 1_000_000.
let to_msec t = float_of_int t /. 1_000.

let pp ppf t = Format.fprintf ppf "%.3fs" (to_sec t)
