type colour = White | Grey | Black

let find_cycle g =
  let colour = Hashtbl.create 64 in
  let colour_of v =
    match Hashtbl.find_opt colour v with None -> White | Some c -> c
  in
  (* Iterative DFS keeping the grey stack explicit so that the cycle can be
     reported, not just detected. *)
  let exception Found of Graph.node list in
  let rec visit stack v =
    Hashtbl.replace colour v Grey;
    List.iter
      (fun (w, _) ->
        match colour_of w with
        | White -> visit (w :: stack) w
        | Grey ->
            (* [stack] holds the grey path ending at [v] (head first); the
               cycle is the portion from [w] to [v]. *)
            let rec take acc = function
              | [] -> acc
              | u :: rest -> if u = w then u :: acc else take (u :: acc) rest
            in
            raise (Found (take [] stack))
        | Black -> ())
      (Graph.succ g v);
    Hashtbl.replace colour v Black
  in
  try
    List.iter
      (fun v -> if colour_of v = White then visit [ v ] v)
      (Graph.nodes g);
    None
  with Found cycle -> Some cycle

let has_cycle g = find_cycle g <> None

let topological_sort g =
  let indeg = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace indeg v (Graph.in_degree g v)) (Graph.nodes g);
  let module Ints = Set.Make (Int) in
  let ready =
    Hashtbl.fold
      (fun v d acc -> if d = 0 then Ints.add v acc else acc)
      indeg Ints.empty
  in
  let rec loop ready acc count =
    match Ints.min_elt_opt ready with
    | None ->
        if count = Graph.node_count g then Some (List.rev acc) else None
    | Some v ->
        let ready = Ints.remove v ready in
        let ready =
          List.fold_left
            (fun ready (w, _) ->
              let d = Hashtbl.find indeg w - 1 in
              Hashtbl.replace indeg w d;
              if d = 0 then Ints.add w ready else ready)
            ready (Graph.succ g v)
        in
        loop ready (v :: acc) (count + 1)
  in
  loop ready [] 0
