let to_dot ?(name = "chronus") ?(initial_path = []) ?(final_path = []) g =
  let buf = Buffer.create 1024 in
  let init_edges = Path.edges initial_path in
  let fin_edges = Path.edges final_path in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  v%d [label=\"v%d\"];\n" v v))
    (Graph.nodes g);
  List.iter
    (fun (u, v, (e : Graph.edge)) ->
      let style =
        if List.mem (u, v) init_edges then "color=red, style=solid"
        else if List.mem (u, v) fin_edges then "color=red, style=dashed"
        else "color=black, style=solid"
      in
      Buffer.add_string buf
        (Printf.sprintf "  v%d -> v%d [%s, label=\"C=%d,s=%d\"];\n" u v style
           e.capacity e.delay))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?initial_path ?final_path path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?initial_path ?final_path g))
