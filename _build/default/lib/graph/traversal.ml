let bfs_order g root =
  if not (Graph.mem_node g root) then []
  else begin
    let seen = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.add seen root ();
    Queue.add root queue;
    let rec loop acc =
      if Queue.is_empty queue then List.rev acc
      else begin
        let v = Queue.pop queue in
        List.iter
          (fun (w, _) ->
            if not (Hashtbl.mem seen w) then begin
              Hashtbl.add seen w ();
              Queue.add w queue
            end)
          (Graph.succ g v);
        loop (v :: acc)
      end
    in
    loop []
  end

let dfs_order g root =
  if not (Graph.mem_node g root) then []
  else begin
    let seen = Hashtbl.create 64 in
    let rec visit acc v =
      if Hashtbl.mem seen v then acc
      else begin
        Hashtbl.add seen v ();
        List.fold_left
          (fun acc (w, _) -> visit acc w)
          (v :: acc) (Graph.succ g v)
      end
    in
    List.rev (visit [] root)
  end

let reachable g root =
  let seen = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace seen v ()) (bfs_order g root);
  seen

let is_reachable g u v =
  if u = v then Graph.mem_node g u else Hashtbl.mem (reachable g u) v
