(** Directed graphs with per-edge capacity and transmission delay.

    This is the network substrate of the Chronus reproduction: switches are
    integer nodes, links are directed edges annotated with an integer
    capacity [C(u,v)] and an integer transmission delay [sigma(u,v)]
    (Table I of the paper). The structure is mutable and hash-based so that
    the scheduling algorithms scale to the thousands of switches used in
    Fig. 10. *)

type node = int
(** Switches are identified by non-negative integers. *)

type edge = {
  capacity : int;  (** link capacity [C(u,v)], in flow units per step *)
  delay : int;  (** transmission delay [sigma(u,v)], in time steps *)
}

type t
(** A mutable directed graph. *)

val create : ?size:int -> unit -> t
(** [create ()] is an empty graph. [size] is a capacity hint. *)

val copy : t -> t
(** [copy g] is an independent deep copy of [g]. *)

val add_node : t -> node -> unit
(** [add_node g v] adds isolated node [v]; no-op if already present. *)

val mem_node : t -> node -> bool

val nodes : t -> node list
(** All nodes in increasing order. *)

val node_count : t -> int

val add_edge : ?capacity:int -> ?delay:int -> t -> node -> node -> unit
(** [add_edge g u v] adds (or replaces) edge [u -> v]. Defaults:
    [capacity = 1], [delay = 1]. Endpoints are added as needed.
    @raise Invalid_argument on self-loops, non-positive capacity, or
    negative delay. *)

val remove_edge : t -> node -> node -> unit
(** No-op if the edge is absent. *)

val mem_edge : t -> node -> node -> bool

val find_edge : t -> node -> node -> edge option

val capacity : t -> node -> node -> int
(** @raise Not_found if the edge is absent. *)

val delay : t -> node -> node -> int
(** @raise Not_found if the edge is absent. *)

val succ : t -> node -> (node * edge) list
(** Out-neighbours with their edge attributes, in increasing node order. *)

val pred : t -> node -> (node * edge) list
(** In-neighbours with their edge attributes, in increasing node order. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val edges : t -> (node * node * edge) list
(** All edges sorted lexicographically by endpoints. *)

val edge_count : t -> int

val of_edges : ?default_capacity:int -> ?default_delay:int ->
  (node * node) list -> t
(** Build a graph from endpoint pairs with uniform attributes. *)

val of_labelled_edges : (node * node * edge) list -> t

val max_delay : t -> int
(** Largest edge delay, 0 for an edgeless graph. *)

val total_delay : t -> int
(** Sum of all edge delays. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line dump. *)

val equal : t -> t -> bool
(** Structural equality on node and edge sets (attributes included). *)
