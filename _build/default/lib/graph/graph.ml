type node = int

type edge = { capacity : int; delay : int }

(* Adjacency is kept in both directions so that the scheduling algorithms
   can walk old paths backwards (Alg. 4) without scanning every edge. *)
type t = {
  node_set : (node, unit) Hashtbl.t;
  out_adj : (node, (node * edge) list) Hashtbl.t;
  in_adj : (node, (node * edge) list) Hashtbl.t;
}

let create ?(size = 16) () =
  {
    node_set = Hashtbl.create size;
    out_adj = Hashtbl.create size;
    in_adj = Hashtbl.create size;
  }

let mem_node g v = Hashtbl.mem g.node_set v

let add_node g v = if not (mem_node g v) then Hashtbl.replace g.node_set v ()

let nodes g =
  Hashtbl.fold (fun v () acc -> v :: acc) g.node_set []
  |> List.sort compare

let node_count g = Hashtbl.length g.node_set

let adj_find tbl v = match Hashtbl.find_opt tbl v with None -> [] | Some l -> l

let remove_assoc_node v l = List.filter (fun (w, _) -> w <> v) l

let add_edge ?(capacity = 1) ?(delay = 1) g u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if capacity <= 0 then invalid_arg "Graph.add_edge: non-positive capacity";
  if delay < 0 then invalid_arg "Graph.add_edge: negative delay";
  add_node g u;
  add_node g v;
  let e = { capacity; delay } in
  Hashtbl.replace g.out_adj u ((v, e) :: remove_assoc_node v (adj_find g.out_adj u));
  Hashtbl.replace g.in_adj v ((u, e) :: remove_assoc_node u (adj_find g.in_adj v))

let remove_edge g u v =
  Hashtbl.replace g.out_adj u (remove_assoc_node v (adj_find g.out_adj u));
  Hashtbl.replace g.in_adj v (remove_assoc_node u (adj_find g.in_adj v))

let find_edge g u v = List.assoc_opt v (adj_find g.out_adj u)

let mem_edge g u v = find_edge g u v <> None

let capacity g u v =
  match find_edge g u v with Some e -> e.capacity | None -> raise Not_found

let delay g u v =
  match find_edge g u v with Some e -> e.delay | None -> raise Not_found

let sorted_adj l = List.sort (fun (a, _) (b, _) -> compare a b) l

let succ g v = sorted_adj (adj_find g.out_adj v)

let pred g v = sorted_adj (adj_find g.in_adj v)

let out_degree g v = List.length (adj_find g.out_adj v)

let in_degree g v = List.length (adj_find g.in_adj v)

let edges g =
  Hashtbl.fold
    (fun u l acc -> List.fold_left (fun acc (v, e) -> (u, v, e) :: acc) acc l)
    g.out_adj []
  |> List.sort compare

let edge_count g =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) g.out_adj 0

let copy g =
  {
    node_set = Hashtbl.copy g.node_set;
    out_adj = Hashtbl.copy g.out_adj;
    in_adj = Hashtbl.copy g.in_adj;
  }

let of_labelled_edges l =
  let g = create ~size:(List.length l) () in
  List.iter
    (fun (u, v, e) -> add_edge ~capacity:e.capacity ~delay:e.delay g u v)
    l;
  g

let of_edges ?(default_capacity = 1) ?(default_delay = 1) l =
  let g = create ~size:(List.length l) () in
  List.iter
    (fun (u, v) -> add_edge ~capacity:default_capacity ~delay:default_delay g u v)
    l;
  g

let max_delay g =
  List.fold_left (fun acc (_, _, e) -> max acc e.delay) 0 (edges g)

let total_delay g =
  List.fold_left (fun acc (_, _, e) -> acc + e.delay) 0 (edges g)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d edges" (node_count g)
    (edge_count g);
  List.iter
    (fun (u, v, e) ->
      Format.fprintf ppf "@,  %d -> %d (cap %d, delay %d)" u v e.capacity
        e.delay)
    (edges g);
  Format.fprintf ppf "@]"

let equal g1 g2 = nodes g1 = nodes g2 && edges g1 = edges g2
