(** Graphviz DOT export, with optional highlighting of the initial (solid)
    and final (dashed) routing paths, mirroring Fig. 1 of the paper. *)

val to_dot :
  ?name:string ->
  ?initial_path:Path.t ->
  ?final_path:Path.t ->
  Graph.t ->
  string
(** [to_dot g] renders [g] as a DOT digraph. Edges on [initial_path] are
    drawn solid red, edges on [final_path] dashed red, others solid black.
    Every edge is labelled with its capacity and delay. *)

val write_file :
  ?name:string ->
  ?initial_path:Path.t ->
  ?final_path:Path.t ->
  string ->
  Graph.t ->
  unit
(** [write_file path g] writes [to_dot g] to [path]. *)
