type t = Graph.node list

let source = function
  | [] -> invalid_arg "Path.source: empty path"
  | v :: _ -> v

let rec destination = function
  | [] -> invalid_arg "Path.destination: empty path"
  | [ v ] -> v
  | _ :: rest -> destination rest

let hops p = max 0 (List.length p - 1)

let rec edges = function
  | [] | [ _ ] -> []
  | u :: (v :: _ as rest) -> (u, v) :: edges rest

let mem v p = List.mem v p

let mem_edge u v p = List.mem (u, v) (edges p)

let rec next_hop p v =
  match p with
  | [] | [ _ ] -> None
  | u :: (w :: _ as rest) -> if u = v then Some w else next_hop rest v

let rec prev_hop p v =
  match p with
  | [] | [ _ ] -> None
  | u :: (w :: _ as rest) -> if w = v then Some u else prev_hop rest v

let is_simple p =
  let seen = Hashtbl.create (List.length p) in
  List.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    p

let is_valid g p =
  p <> [] && is_simple p
  && List.for_all (fun v -> Graph.mem_node g v) p
  && List.for_all (fun (u, v) -> Graph.mem_edge g u v) (edges p)

let delay g p =
  List.fold_left (fun acc (u, v) -> acc + Graph.delay g u v) 0 (edges p)

let bottleneck_capacity g p =
  List.fold_left
    (fun acc (u, v) -> min acc (Graph.capacity g u v))
    max_int (edges p)

let suffix_from p v =
  let rec drop = function
    | [] -> None
    | u :: _ as rest when u = v -> Some rest
    | _ :: rest -> drop rest
  in
  drop p

let prefix_to p v =
  let rec take acc = function
    | [] -> None
    | u :: rest -> if u = v then Some (List.rev (u :: acc)) else take (u :: acc) rest
  in
  take [] p

let equal (p : t) (q : t) = p = q

let pp ppf p =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
       Format.pp_print_int)
    p

let to_string p = Format.asprintf "%a" pp p
