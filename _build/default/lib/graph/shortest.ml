(* A tiny pairing-free priority queue backed by a sorted module would be
   overkill; we reuse a binary heap on (distance, node) pairs. Stale
   entries are skipped on pop, the standard lazy-deletion Dijkstra. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0, 0); size = 0 }

  let grow h =
    if h.size = Array.length h.data then begin
      let data = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end

  let push h x =
    grow h;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

let dijkstra g src =
  let dist = Hashtbl.create 64 in
  if Graph.mem_node g src then begin
    let heap = Heap.create () in
    Hashtbl.replace dist src (0, src);
    Heap.push heap (0, src);
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, v) ->
          let current = fst (Hashtbl.find dist v) in
          if d = current then
            List.iter
              (fun (w, (e : Graph.edge)) ->
                let candidate = d + e.delay in
                let better =
                  match Hashtbl.find_opt dist w with
                  | None -> true
                  | Some (old, _) -> candidate < old
                in
                if better then begin
                  Hashtbl.replace dist w (candidate, v);
                  Heap.push heap (candidate, w)
                end)
              (Graph.succ g v);
          loop ()
    in
    loop ()
  end;
  dist

let reconstruct dist src dst =
  let rec walk acc v =
    if v = src then Some (src :: acc)
    else
      match Hashtbl.find_opt dist v with
      | None -> None
      | Some (_, prev) -> walk (v :: acc) prev
  in
  if Hashtbl.mem dist dst then walk [] dst else None

let shortest_path g src dst =
  let dist = dijkstra g src in
  reconstruct dist src dst

let distance g src dst =
  match Hashtbl.find_opt (dijkstra g src) dst with
  | None -> None
  | Some (d, _) -> Some d

let hop_path g src dst =
  if not (Graph.mem_node g src && Graph.mem_node g dst) then None
  else begin
    let prev = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace prev src src;
    Queue.add src queue;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun (w, _) ->
          if not (Hashtbl.mem prev w) then begin
            Hashtbl.replace prev w v;
            if w = dst then found := true;
            Queue.add w queue
          end)
        (Graph.succ g v)
    done;
    if not (Hashtbl.mem prev dst) then None
    else begin
      let rec walk acc v =
        if v = src then src :: acc else walk (v :: acc) (Hashtbl.find prev v)
      in
      Some (walk [] dst)
    end
  end
