(** Routing paths: sequences of switches from a source to a destination.

    Both [p_init] and [p_fin] of a Chronus update instance are values of
    this type. The delay of a path is the function [phi] used throughout
    Algorithm 1 of the paper. *)

type t = Graph.node list
(** A path is its node sequence, source first. Valid paths are non-empty. *)

val source : t -> Graph.node
(** @raise Invalid_argument on the empty path. *)

val destination : t -> Graph.node
(** @raise Invalid_argument on the empty path. *)

val hops : t -> int
(** Number of edges, i.e. [List.length p - 1]. *)

val edges : t -> (Graph.node * Graph.node) list
(** Consecutive node pairs. *)

val mem : Graph.node -> t -> bool

val mem_edge : Graph.node -> Graph.node -> t -> bool
(** [mem_edge u v p] is [true] iff [u -> v] is a hop of [p]. *)

val next_hop : t -> Graph.node -> Graph.node option
(** [next_hop p v] is the successor of the first occurrence of [v] on [p],
    [None] if [v] is absent or the destination. *)

val prev_hop : t -> Graph.node -> Graph.node option

val is_simple : t -> bool
(** No repeated node. *)

val is_valid : Graph.t -> t -> bool
(** Non-empty, simple, and every hop is an edge of the graph. *)

val delay : Graph.t -> t -> int
(** [phi p]: sum of the transmission delays along [p].
    @raise Not_found if a hop is not an edge of the graph. *)

val bottleneck_capacity : Graph.t -> t -> int
(** Minimum edge capacity along the path; [max_int] for single-node paths.
    @raise Not_found if a hop is not an edge of the graph. *)

val suffix_from : t -> Graph.node -> t option
(** [suffix_from p v] is the sub-path of [p] starting at [v]. *)

val prefix_to : t -> Graph.node -> t option
(** [prefix_to p v] is the sub-path of [p] ending at [v]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
