(** Graph traversals: breadth-first and depth-first orders, reachability. *)

val bfs_order : Graph.t -> Graph.node -> Graph.node list
(** Nodes reachable from the root in BFS order (root first). Neighbours
    are visited in increasing node order, so the result is deterministic. *)

val dfs_order : Graph.t -> Graph.node -> Graph.node list
(** Nodes reachable from the root in DFS preorder (root first),
    deterministic as above. *)

val reachable : Graph.t -> Graph.node -> (Graph.node, unit) Hashtbl.t
(** The set of nodes reachable from the root (root included). *)

val is_reachable : Graph.t -> Graph.node -> Graph.node -> bool
(** [is_reachable g u v] holds iff there is a directed path [u ~> v]. *)
