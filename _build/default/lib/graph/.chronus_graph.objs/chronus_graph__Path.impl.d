lib/graph/path.ml: Format Graph Hashtbl List
