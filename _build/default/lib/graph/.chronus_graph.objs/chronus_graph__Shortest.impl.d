lib/graph/shortest.ml: Array Graph Hashtbl List Queue
