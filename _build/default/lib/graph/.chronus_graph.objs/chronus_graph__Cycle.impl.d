lib/graph/cycle.ml: Graph Hashtbl Int List Set
