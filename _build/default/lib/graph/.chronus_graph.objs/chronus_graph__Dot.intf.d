lib/graph/dot.mli: Graph Path
