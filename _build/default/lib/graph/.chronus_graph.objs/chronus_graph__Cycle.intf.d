lib/graph/cycle.mli: Graph
