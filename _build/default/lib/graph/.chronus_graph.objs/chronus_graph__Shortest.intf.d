lib/graph/shortest.mli: Graph Hashtbl Path
