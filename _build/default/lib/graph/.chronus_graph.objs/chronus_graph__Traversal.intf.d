lib/graph/traversal.mli: Graph Hashtbl
