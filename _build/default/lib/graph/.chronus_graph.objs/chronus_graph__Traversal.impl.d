lib/graph/traversal.ml: Graph Hashtbl List Queue
