lib/graph/graph.ml: Format Hashtbl List
