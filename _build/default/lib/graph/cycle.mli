(** Cycle detection and topological ordering.

    Loop-freedom checks — both the per-round safety condition of the
    order-replacement baseline and several test oracles — reduce to cycle
    detection on forwarding graphs. *)

val find_cycle : Graph.t -> Graph.node list option
(** [find_cycle g] is [Some [v1; ...; vk]] such that [v1 -> ... -> vk -> v1]
    are edges of [g], or [None] if [g] is acyclic. Deterministic. *)

val has_cycle : Graph.t -> bool

val topological_sort : Graph.t -> Graph.node list option
(** Kahn's algorithm. [None] when the graph is cyclic; ties broken by
    increasing node id, so the result is deterministic. *)
