(** Shortest paths. Dijkstra over transmission delays (the path metric
    [phi] of the paper) and BFS over hop counts. *)

val dijkstra : Graph.t -> Graph.node -> (Graph.node, int * Graph.node) Hashtbl.t
(** [dijkstra g src] maps every reachable node [v] to
    [(distance, predecessor)] where distance is the minimum total delay
    of a path [src ~> v]. The source maps to [(0, src)]. *)

val shortest_path : Graph.t -> Graph.node -> Graph.node -> Path.t option
(** Minimum-delay path, [None] when unreachable. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int option
(** Minimum total delay, [None] when unreachable. *)

val hop_path : Graph.t -> Graph.node -> Graph.node -> Path.t option
(** Minimum-hop path via BFS, [None] when unreachable. *)
