(** Algorithm 1: polynomial-time feasibility of a congestion- and
    loop-free timed update sequence.

    The paper's tree algorithm hangs the two paths under the destination
    and repeatedly updates the switch whose dashed link crosses from the
    branch currently carrying flow to the other one, each crossing being
    admissible when the new segment's delay is no smaller than the old
    segment's ([phi(p) >= phi(q)]) or the bottleneck capacity [cons] can
    carry both streams ([cons >= 2d]); by the monotonicity argument of
    Theorem 2, a crossing that fails both tests fails at every time step.

    We expose the structural crossing analysis directly ({!crossings} and
    the per-crossing admissibility test) and decide feasibility
    constructively by driving the polynomial greedy scheduler, which
    performs exactly those tests step by step with drain accounting; on
    uniform-delay instances this decision is validated against exhaustive
    search in the test suite. *)

open Chronus_graph
open Chronus_flow

type crossing = {
  switch : Graph.node;  (** the updated switch [v] *)
  new_hop : Graph.node;  (** its dashed next hop [w] *)
  merge : Graph.node option;
      (** first switch of the final-path suffix from [w] that also lies on
          the initial path — where the redirected stream can meet old
          flow; [None] when the suffix only meets the destination *)
  backward : bool;
      (** the merge point lies upstream of [v] on the initial path: a
          transient-loop configuration that ordering must resolve *)
  phi_new : int;  (** delay of the dashed segment [v -> w ~> merge] *)
  phi_old : int option;
      (** delay of the solid segment [v ~> merge], when [merge] is
          downstream of [v] *)
  bottleneck : int;
      (** [cons]: minimum capacity on the initial path from the merge
          point to the destination *)
  admissible : bool;
      (** [phi_new >= phi_old] or [bottleneck >= 2d] — the crossing can be
          performed against live old flow; inadmissible crossings must
          wait for drain *)
}

val crossings : Instance.t -> crossing list
(** One entry per Modify/Add update, sorted by switch id. *)

val first_divergence : Instance.t -> Graph.node option
(** The first switch along the initial path whose rule must change — the
    switch that can never become inert because injected traffic always
    reaches it. *)

val check : Instance.t -> bool
(** Polynomial feasibility decision. [true] means a consistent schedule
    exists (constructive: the greedy scheduler produced one). *)

val pp_crossing : Format.formatter -> crossing -> unit
