open Chronus_graph
open Chronus_flow

type t = {
  inst : Instance.t;
  order : Graph.node array;
  prefix : int array;
  index : (Graph.node, int) Hashtbl.t;
}

let make inst =
  let path = inst.Instance.p_init in
  let order = Array.of_list path in
  let n = Array.length order in
  let prefix = Array.make n 0 in
  for k = 1 to n - 1 do
    prefix.(k) <-
      prefix.(k - 1)
      + Graph.delay inst.Instance.graph order.(k - 1) order.(k)
  done;
  let index = Hashtbl.create n in
  Array.iteri (fun k v -> Hashtbl.replace index v k) order;
  { inst; order; prefix; index }

type view = { base : t; arrival : Horizon.t array; exit : Horizon.t array }

(* A diversion threshold is expressed on *injection* times: cohorts
   injected at [threshold] or later never reach past the diverting
   switch. *)
let view base sched =
  let n = Array.length base.order in
  let arrival = Array.make n Horizon.Forever in
  let exit = Array.make n Horizon.Forever in
  let divert_tau = ref Horizon.Forever in
  for k = 0 to n - 1 do
    (* Arrivals at v_k stop with the strictest threshold strictly
       upstream; they continue one step past it. *)
    arrival.(k) <-
      (match !divert_tau with
      | Horizon.Forever -> Horizon.Forever
      | Horizon.Never -> Horizon.Never
      | Horizon.Until tau -> Horizon.Until (tau - 1 + base.prefix.(k)));
    let own_threshold =
      match Schedule.find base.order.(k) sched with
      | None -> Horizon.Forever
      | Some s -> Horizon.Until (s - base.prefix.(k))
    in
    (* Entries on the old outgoing link of v_k additionally stop when v_k's
       own rule flips. *)
    let exit_threshold = Horizon.min !divert_tau own_threshold in
    exit.(k) <-
      (match exit_threshold with
      | Horizon.Forever -> Horizon.Forever
      | Horizon.Never -> Horizon.Never
      | Horizon.Until tau -> Horizon.Until (tau - 1 + base.prefix.(k)));
    divert_tau := exit_threshold
  done;
  (* The destination has no outgoing old link. *)
  if n > 0 then exit.(n - 1) <- Horizon.Never;
  { base; arrival; exit }

let on_old_path base v = Hashtbl.mem base.index v

let prefix_delay base v =
  match Hashtbl.find_opt base.index v with
  | None -> None
  | Some k -> Some base.prefix.(k)

let last_arrival view v =
  match Hashtbl.find_opt view.base.index v with
  | None -> Horizon.Never
  | Some k -> view.arrival.(k)

let last_old_exit view v =
  match Hashtbl.find_opt view.base.index v with
  | None -> Horizon.Never
  | Some k -> view.exit.(k)

let expiries view =
  let collect acc = function Horizon.Until x -> x :: acc | _ -> acc in
  let acc = Array.fold_left collect [] view.arrival in
  let acc = Array.fold_left collect acc view.exit in
  List.sort_uniq compare acc

let all_drained_by view =
  let base = view.base in
  let g = base.inst.Instance.graph in
  let n = Array.length base.order in
  let acc = ref Horizon.Never in
  for k = 0 to n - 2 do
    let link_delay = Graph.delay g base.order.(k) base.order.(k + 1) in
    acc := Horizon.max !acc (Horizon.add view.exit.(k) link_delay)
  done;
  !acc
