(** Algorithm 3: the dependency relation set [O_t].

    Updating switch [v_i] at step [t] redirects its arriving traffic onto
    its new next hop [w]; that traffic then leaves [w] on the link [w]
    still uses for the old flow. If that link cannot carry both the old
    and the new stream ([C < 2d]) while old flow is still crossing it, some
    old-path switch upstream of [w] must flip first to divert the old
    stream — a dependency [x -> v_i]. Relations sharing switches are merged
    into chains (Fig. 5 of the paper); only chain heads are update
    candidates at step [t].

    Two refinements over the paper's pseudocode, both derived from the
    drain horizons of {!Drain}: a switch at which no traffic will ever
    arrive again is *inert* and gets no dependency (this is how Fig. 5's
    [t_1] state drops [v_3]'s incoming dependency), and a dependency is
    only emitted while the protected link actually still carries old flow
    at the redirected stream's arrival step. *)

open Chronus_graph
open Chronus_flow

type t = {
  chains : Graph.node list list;
      (** one topologically ordered chain per weakly-connected component of
          the dependency relation, singletons included; sorted by head *)
  cyclic : Graph.node list list;
      (** components whose relation is cyclic: no safe head exists there
          until drain dissolves a dependency (Algorithm 2 line 7) *)
}

val at :
  Instance.t ->
  Drain.t ->
  Schedule.t ->
  remaining:Graph.node list ->
  time:int ->
  t
(** The dependency relation set among the not-yet-updated switches at a
    time step, given the already committed partial schedule. *)

val heads : t -> Graph.node list
(** First element of every acyclic chain, sorted: the candidates that
    Algorithm 2 submits to the loop check. *)

val pp : Format.formatter -> t -> unit
