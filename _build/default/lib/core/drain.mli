(** Drain bookkeeping: when does old flow stop crossing each switch?

    One cohort is injected at the source per time step and follows the
    initial path until the first switch whose rule has already flipped.
    Scheduling switch [v_j] (at old-path prefix delay [P_j]) at time [s]
    therefore stops pure-old-path *arrivals* at every strictly downstream
    switch [v_k] for cohorts injected at [s - P_j] or later, i.e. arrivals
    at [v_k] from step [s - P_j + P_k] on. These closed-form horizons are
    what Algorithm 3's dependency test and the greedy scheduler's safety
    check consult, keeping each candidate test linear in the path length
    instead of requiring a full oracle simulation. *)

open Chronus_graph
open Chronus_flow

type t
(** Immutable per-instance precomputation (old-path order and prefix
    delays). *)

val make : Instance.t -> t

type view
(** Drain horizons under one concrete (partial) schedule. *)

val view : t -> Schedule.t -> view
(** O(|p_init|). Queries on the view are O(1). *)

val on_old_path : t -> Graph.node -> bool

val prefix_delay : t -> Graph.node -> int option
(** Delay from the source to the switch along [p_init]. *)

val last_arrival : view -> Graph.node -> Horizon.t
(** Until when do pure-old-path cohorts keep *arriving* at the switch?
    [Never] for switches off the initial path. The source receives
    injections forever. *)

val last_old_exit : view -> Graph.node -> Horizon.t
(** Until when do cohorts keep *entering* the link from this switch to its
    old next hop? Stops both when upstream diverts and when the switch's
    own rule flips. [Never] off the initial path and at the destination. *)

val all_drained_by : view -> Horizon.t
(** A step from which no old-path link carries flow anymore: the latest
    [last_old_exit] plus the final link delay. [Forever] while some
    old-path switch has no scheduled diverter upstream. *)

val expiries : view -> int list
(** The sorted finite horizon values of the view (arrival and exit
    horizons over all old-path switches). The scheduler's state can only
    change when one of these passes, so waiting can jump between them. *)
