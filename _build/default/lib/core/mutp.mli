(** The Minimum Update Time Problem (optimization program (3)).

    The exact solvers live in [chronus_baselines.Opt] (branch and bound)
    and {!Feasibility} (enumeration); this module states the problem:
    objective, solution admissibility, bounds, and a textual rendering of
    the integer program over the time-extended network for inspection. *)

open Chronus_flow

val objective : Schedule.t -> int
(** [|T|]: the number of time steps spanned by the schedule. *)

val is_solution : Instance.t -> Schedule.t -> bool
(** Complete and oracle-consistent. *)

val lower_bound : Instance.t -> int
(** A makespan every solution must reach: 0 for trivial instances, else 1;
    refined to 2 when the dependency relation at [t_0] chains two
    non-inert switches (they can provably not share the first step). *)

val upper_bound_hint : Instance.t -> int
(** The sequential-with-drain bound used as the default search horizon. *)

val render_ilp : ?horizon:int -> ?max_paths_per_flow:int -> Instance.t -> string
(** Program (3) spelled out for this instance: the objective, one
    capacity row (3a) per time-extended link in the window, the
    single-path rows (3b) and the integrality rows (3c). Cohort paths
    [P(f)] are enumerated (old/new rule choice per switch) and capped at
    [max_paths_per_flow] (default 16) per cohort, as the full set is
    exponential. *)
