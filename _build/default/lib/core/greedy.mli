(** Algorithm 2: the greedy timed-update scheduler.

    Time advances step by step (jumping over provably uneventful waits);
    at every step the dependency relation set (Algorithm 3) nominates the
    chain heads, each head is vetted by a safety check (the timed loop
    check of Algorithm 4 plus the congestion test), and every safe head is
    committed at the current step — updating as many switches as possible
    per step so as to minimise the total update time [|T|].

    If at some step nothing can be committed, the scheduler waits: old
    traffic keeps draining and previously unsafe flips become safe. Once
    the network state can provably no longer change (every drain horizon
    has passed and all committed transients have settled) and switches
    remain, the instance is declared infeasible — this is the monotonicity
    argument behind Theorem 2: a flip that is unsafe in a static state
    stays unsafe forever. *)

open Chronus_graph
open Chronus_flow

type mode =
  | Exact  (** oracle-gated candidate checks; guaranteed-consistent output *)
  | Analytic
      (** the paper's polynomial checks via {!Safety.analytic}; scales to
          thousands of switches (Fig. 10). The finished schedule is
          validated once against the oracle; in the rare case the
          polynomial approximation missed an interaction, the scheduler
          transparently redoes the work in [Exact] mode — so [Scheduled]
          results are always oracle-consistent in both modes. *)

type outcome =
  | Scheduled of Schedule.t
  | Infeasible of { partial : Schedule.t; remaining : Graph.node list }

type stats = {
  steps_examined : int;  (** time steps actually visited *)
  candidates_checked : int;
  waits : int;  (** steps at which nothing could be committed *)
}

val schedule : ?mode:mode -> ?relax_congestion:bool -> Instance.t -> outcome
(** Compute a timed update schedule. [mode] defaults to [Exact]. In
    [Exact] mode a [Scheduled] result is always oracle-consistent.

    With [relax_congestion] (default false) capacity violations no longer
    gate a flip — only transient loops and blackholes do. This is the
    best-effort engine behind {!Fallback}: on an instance with no
    congestion-free schedule it still sequences every switch while
    guaranteeing (in [Exact] mode) that no traffic is ever misrouted. *)

val schedule_with_stats :
  ?mode:mode -> ?relax_congestion:bool -> Instance.t -> outcome * stats

val makespan : outcome -> int option
(** Number of time steps of a successful schedule. *)
