(** Per-candidate safety checks used by the greedy scheduler (Algorithm 2
    lines 9–14): may switch [v] flip at step [t] given the schedule
    committed so far?

    Two engines with the same verdict type:

    - {!analytic} is the paper's polynomial-time check, refined: the first
      redirected cohort is traced through the tentative rules (a timed
      Algorithm 4, including the backward-walk condition that the onward
      route must not revisit the candidate's old-path prefix), and at
      every switch it crosses the scheduler counts how many live streams
      would share the outgoing link — the pure old stream (drain
      horizons) plus the redirected streams of earlier flips
      ({!stream_walk}s, recomputed by the greedy each step) — and requires
      the link to carry them all (the generalisation of Algorithm 3's
      [2d] test). A walk that itself passes through the candidate before
      the probed switch is being rerouted by the very flip under test and
      is not counted. Cost O(path length x live walks).
    - {!exact} validates the whole tentative partial schedule with the
      dynamic-flow oracle. Exhaustive, cost proportional to the simulated
      window; the decider for the instance sizes of Figs. 6–9 and 11. *)

open Chronus_graph
open Chronus_flow

type verdict =
  | Safe
  | Would_loop of Graph.node
  | Would_congest of Graph.node * Graph.node * int
      (** link and entry step that would exceed capacity *)
  | Would_blackhole of Graph.node
  | Not_drained
      (** the switch's rule may only be deleted (or its stream merged) once
          traffic through it has drained; wait *)

val is_safe : verdict -> bool

type stream_walk
(** The route of the traffic redirected by one already-committed flip,
    traced under the rules currently in force. *)

val make_walk :
  feed:Horizon.t -> base:int -> (Graph.node * int) list -> stream_walk
(** [feed]: until when cohorts keep entering the stream at its origin;
    [base]: the step the visit times were traced at; visits list the
    route, origin first, with absolute steps. *)

val walk_feed : stream_walk -> Horizon.t
val walk_base : stream_walk -> int
val walk_visits : stream_walk -> (Graph.node * int) list
val with_feed : Horizon.t -> stream_walk -> stream_walk
val walk_crosses : stream_walk -> Graph.node -> bool
(** Does the walk visit this switch (other than as its origin)? *)

type stream_view
(** A set of stream walks indexed by the switches they cross, so that the
    per-candidate checks touch only the walks that matter. *)

val no_streams : stream_view
val view_of_walks : stream_walk list -> stream_view

val analytic :
  ?streams:stream_view ->
  Instance.t ->
  Drain.t ->
  Schedule.t ->
  time:int ->
  Graph.node ->
  verdict
(** [streams] defaults to {!no_streams}. *)

val exact : Instance.t -> Schedule.t -> time:int -> Graph.node -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
