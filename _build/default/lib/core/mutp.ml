open Chronus_graph
open Chronus_flow

let objective = Schedule.makespan

let is_solution inst sched = Oracle.is_consistent inst sched

let all_at_zero inst =
  List.fold_left
    (fun s v -> Schedule.add v 0 s)
    Schedule.empty
    (Instance.switches_to_update inst)

let lower_bound inst =
  if Instance.is_trivial inst then 0
  else if Oracle.is_consistent inst (all_at_zero inst) then 1
  else 2

let upper_bound_hint = Feasibility.default_horizon

(* Loop-free cohort paths through the mixed old/new rule space, with the
   time-extended links they occupy. *)
let cohort_paths inst ~cap tau =
  let g = inst.Instance.graph in
  let dst = Instance.destination inst in
  let found = ref [] and count = ref 0 in
  let rec extend v t visited links =
    if !count >= cap then ()
    else if v = dst then begin
      incr count;
      found := List.rev links :: !found
    end
    else begin
      let hops =
        List.sort_uniq compare
          (List.filter_map Fun.id
             [ Instance.old_next inst v; Instance.new_next inst v ])
      in
      List.iter
        (fun w ->
          if not (List.mem w visited) then
            extend w
              (t + Graph.delay g v w)
              (w :: visited)
              ((v, w, t) :: links))
        hops
    end
  in
  extend (Instance.source inst) tau [ Instance.source inst ] [];
  List.rev !found

let render_ilp ?horizon ?(max_paths_per_flow = 16) inst =
  let b = Buffer.create 4096 in
  let g = inst.Instance.graph in
  let d = inst.Instance.demand in
  let bound =
    match horizon with
    | Some h -> h
    | None -> min 4 (Feasibility.default_horizon inst)
  in
  let taus =
    List.init (Instance.init_delay inst + bound + 1) (fun i ->
        i - Instance.init_delay inst)
  in
  let flows =
    List.map (fun tau -> (tau, cohort_paths inst ~cap:max_paths_per_flow tau)) taus
  in
  Buffer.add_string b "minimize |T|\nsubject to\n";
  (* (3a): one capacity row per time-extended link used by any path. *)
  let rows = Hashtbl.create 64 in
  List.iter
    (fun (tau, paths) ->
      List.iteri
        (fun pi links ->
          List.iter
            (fun (u, v, t) ->
              let var = Printf.sprintf "x[f%d,p%d]" tau pi in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt rows (u, v, t))
              in
              Hashtbl.replace rows (u, v, t) (var :: prev))
            links)
        paths)
    flows;
  Hashtbl.fold (fun key vars acc -> (key, vars) :: acc) rows []
  |> List.sort compare
  |> List.iter (fun ((u, v, t), vars) ->
         Buffer.add_string b
           (Printf.sprintf "  (3a) %d * (%s) <= %d    # link v%d(t%d) -> v%d(t%d)\n"
              d
              (String.concat " + " (List.rev vars))
              (Graph.capacity g u v) u t v
              (t + Graph.delay g u v)));
  (* (3b): each cohort picks exactly one path. *)
  List.iter
    (fun (tau, paths) ->
      let vars =
        List.mapi (fun pi _ -> Printf.sprintf "x[f%d,p%d]" tau pi) paths
      in
      if vars <> [] then
        Buffer.add_string b
          (Printf.sprintf "  (3b) %s = 1\n" (String.concat " + " vars)))
    flows;
  (* (3c): integrality. *)
  Buffer.add_string b "  (3c) x[f,p] in {0, 1} for all f, p\n";
  Buffer.contents b
