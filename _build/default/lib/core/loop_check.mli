(** Algorithm 4: checking for forwarding loops before updating a switch.

    The paper's check walks backwards along the *solid* (initial-path)
    links from the candidate's new next hop: if the candidate itself is
    encountered, the redirected flow would re-enter a switch it already
    crossed. We provide both that structural test and a timed variant that
    follows the first redirected cohort through the actual rules in force
    (which is what the time-extended formulation of the paper evaluates:
    an old segment that has already flipped can no longer close a loop). *)

open Chronus_graph
open Chronus_flow

val structural : Instance.t -> candidate:Graph.node -> bool
(** [true] iff the candidate's new next hop lies strictly upstream of the
    candidate on the initial path — the configuration in which a transient
    loop is possible at all. Pure structure, ignores update times. *)

val timed :
  Instance.t -> Schedule.t -> candidate:Graph.node -> time:int -> bool
(** [true] iff updating the candidate at [time] would send the first
    redirected cohort around a loop, given the rules implied by [sched]
    plus the tentative update. Exact for that cohort. *)
