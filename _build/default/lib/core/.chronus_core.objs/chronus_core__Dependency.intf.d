lib/core/dependency.mli: Chronus_flow Chronus_graph Drain Format Graph Instance Schedule
