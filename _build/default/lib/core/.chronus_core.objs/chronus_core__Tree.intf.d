lib/core/tree.mli: Chronus_flow Chronus_graph Format Graph Instance
