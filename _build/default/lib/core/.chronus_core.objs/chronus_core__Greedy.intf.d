lib/core/greedy.mli: Chronus_flow Chronus_graph Graph Instance Schedule
