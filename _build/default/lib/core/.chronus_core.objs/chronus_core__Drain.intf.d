lib/core/drain.mli: Chronus_flow Chronus_graph Graph Horizon Instance Schedule
