lib/core/loop_check.mli: Chronus_flow Chronus_graph Graph Instance Schedule
