lib/core/tree.ml: Chronus_flow Chronus_graph Format Graph Greedy Instance List Option Path Printf
