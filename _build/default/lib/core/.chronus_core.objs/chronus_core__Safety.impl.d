lib/core/safety.ml: Chronus_flow Chronus_graph Drain Format Graph Hashtbl Horizon Instance List Option Oracle Schedule
