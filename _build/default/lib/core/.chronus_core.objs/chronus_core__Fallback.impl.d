lib/core/fallback.ml: Chronus_flow Drain Greedy Instance List Schedule
