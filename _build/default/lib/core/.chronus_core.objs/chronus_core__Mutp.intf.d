lib/core/mutp.mli: Chronus_flow Instance Schedule
