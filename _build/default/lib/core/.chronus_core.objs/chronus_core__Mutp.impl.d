lib/core/mutp.ml: Buffer Chronus_flow Chronus_graph Feasibility Fun Graph Hashtbl Instance List Option Oracle Printf Schedule String
