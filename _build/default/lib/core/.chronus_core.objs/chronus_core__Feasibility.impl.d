lib/core/feasibility.ml: Chronus_flow Instance Oracle Schedule
