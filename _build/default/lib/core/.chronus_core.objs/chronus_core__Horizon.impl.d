lib/core/horizon.ml: Format Int
