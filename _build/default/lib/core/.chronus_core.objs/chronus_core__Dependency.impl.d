lib/core/dependency.ml: Chronus_flow Chronus_graph Cycle Drain Format Graph Hashtbl Horizon Instance List Traversal
