lib/core/greedy.ml: Chronus_flow Chronus_graph Dependency Drain Graph Hashtbl Horizon Instance List Oracle Safety Schedule
