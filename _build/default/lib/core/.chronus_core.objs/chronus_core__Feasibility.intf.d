lib/core/feasibility.mli: Chronus_flow Instance Schedule
