lib/core/fallback.mli: Chronus_flow Greedy Instance Schedule
