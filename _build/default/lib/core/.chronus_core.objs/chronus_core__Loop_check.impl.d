lib/core/loop_check.ml: Chronus_flow Instance Oracle Schedule
