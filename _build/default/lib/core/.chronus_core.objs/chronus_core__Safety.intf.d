lib/core/safety.mli: Chronus_flow Chronus_graph Drain Format Graph Horizon Instance Schedule
