lib/core/drain.ml: Array Chronus_flow Chronus_graph Graph Hashtbl Horizon Instance List Schedule
