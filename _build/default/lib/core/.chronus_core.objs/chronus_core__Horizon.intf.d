lib/core/horizon.mli: Format
