type t = Never | Until of int | Forever

let before h t =
  match h with Never -> true | Until last -> last < t | Forever -> false

let at_or_after h t = not (before h t)

let compare a b =
  match (a, b) with
  | Never, Never | Forever, Forever -> 0
  | Never, _ -> -1
  | _, Never -> 1
  | Forever, _ -> 1
  | _, Forever -> -1
  | Until x, Until y -> Int.compare x y

let equal a b = compare a b = 0

let min a b = if compare a b <= 0 then a else b

let max a b = if compare a b >= 0 then a else b

let add h delta =
  match h with
  | Never -> Never
  | Forever -> Forever
  | Until last -> Until (last + delta)

let pp ppf = function
  | Never -> Format.pp_print_string ppf "never"
  | Forever -> Format.pp_print_string ppf "forever"
  | Until t -> Format.fprintf ppf "until t=%d" t
