open Chronus_flow

let default_horizon inst =
  let drain_pause = Instance.init_delay inst + Instance.fin_delay inst + 2 in
  ((Instance.update_count inst + 1) * drain_pause) + 2

(* Enumerate time assignments for the update switches with all times in
   [0, bound); stop at the first oracle-consistent one. *)
let search inst bound =
  let switches = Instance.switches_to_update inst in
  let rec assign sched = function
    | [] -> if Oracle.is_consistent inst sched then Some sched else None
    | v :: rest ->
        let rec try_time t =
          if t >= bound then None
          else
            match assign (Schedule.add v t sched) rest with
            | Some _ as found -> found
            | None -> try_time (t + 1)
        in
        try_time 0
  in
  assign Schedule.empty switches

let find ?horizon inst =
  let bound =
    match horizon with Some h -> h | None -> default_horizon inst
  in
  if Instance.is_trivial inst then Some Schedule.empty else search inst bound

let exists ?horizon inst = find ?horizon inst <> None

let min_makespan ?horizon inst =
  if Instance.is_trivial inst then Some (0, Schedule.empty)
  else begin
    let bound =
      match horizon with Some h -> h | None -> default_horizon inst
    in
    let rec widen makespan =
      if makespan > bound then None
      else
        match search inst makespan with
        | Some sched -> Some (makespan, sched)
        | None -> widen (makespan + 1)
    in
    widen 1
  end
