open Chronus_graph
open Chronus_flow

type crossing = {
  switch : Graph.node;
  new_hop : Graph.node;
  merge : Graph.node option;
  backward : bool;
  phi_new : int;
  phi_old : int option;
  bottleneck : int;
  admissible : bool;
}

let position_on path v =
  let rec scan i = function
    | [] -> None
    | x :: rest -> if x = v then Some i else scan (i + 1) rest
  in
  scan 0 path

let crossing_of inst v w =
  let g = inst.Instance.graph in
  let p_init = inst.Instance.p_init and p_fin = inst.Instance.p_fin in
  let dst = Instance.destination inst in
  let suffix =
    match Path.suffix_from p_fin w with
    | Some s -> s
    | None -> [ w ] (* w is always on p_fin, but stay defensive *)
  in
  (* First final-suffix switch (other than the destination) on the initial
     path: where the redirected stream meets the old stream's route. *)
  let merge =
    List.find_opt (fun z -> z <> dst && Path.mem z p_init) suffix
  in
  let segment_to target =
    match Path.prefix_to suffix target with
    | Some seg -> Graph.delay g v w + Path.delay g seg
    | None -> Graph.delay g v w
  in
  match merge with
  | None ->
      {
        switch = v;
        new_hop = w;
        merge = None;
        backward = false;
        phi_new = segment_to dst;
        phi_old = None;
        bottleneck = Path.bottleneck_capacity g p_init;
        admissible = true;
      }
  | Some z ->
      let pos_v = position_on p_init v and pos_z = position_on p_init z in
      let backward =
        match (pos_v, pos_z) with
        | Some pv, Some pz -> pz <= pv
        | _ -> false
      in
      let phi_new = segment_to z in
      let phi_old =
        if backward then None
        else
          match Path.suffix_from p_init v with
          | None -> None
          | Some s -> Option.map (Path.delay g) (Path.prefix_to s z)
      in
      let bottleneck =
        match Path.suffix_from p_init z with
        | Some s -> Path.bottleneck_capacity g s
        | None -> Path.bottleneck_capacity g p_init
      in
      let admissible =
        match phi_old with
        | None -> true (* backward crossings are ordering-only *)
        | Some po ->
            phi_new >= po || bottleneck >= 2 * inst.Instance.demand
      in
      {
        switch = v;
        new_hop = w;
        merge = Some z;
        backward;
        phi_new;
        phi_old;
        bottleneck;
        admissible;
      }

let crossings inst =
  List.filter_map
    (fun (u : Instance.update) ->
      match u.Instance.new_next with
      | None -> None
      | Some w -> Some (crossing_of inst u.Instance.switch w))
    (Instance.updates inst)

let first_divergence inst =
  List.find_opt
    (fun v -> Instance.old_next inst v <> Instance.new_next inst v)
    inst.Instance.p_init

let check inst =
  Instance.is_trivial inst
  ||
  match Greedy.schedule ~mode:Greedy.Analytic inst with
  | Greedy.Scheduled _ -> true
  | Greedy.Infeasible _ -> false

let pp_crossing ppf c =
  Format.fprintf ppf
    "v%d --> v%d (merge %s%s, phi_new %d, phi_old %s, cons %d): %s" c.switch
    c.new_hop
    (match c.merge with None -> "-" | Some z -> Printf.sprintf "v%d" z)
    (if c.backward then ", backward" else "")
    c.phi_new
    (match c.phi_old with None -> "-" | Some p -> string_of_int p)
    c.bottleneck
    (if c.admissible then "admissible" else "must wait for drain")
