(** Time horizons: "until when does some traffic keep arriving?". Used by
    the drain bookkeeping to describe how long old flow keeps crossing a
    switch or link. *)

type t =
  | Never  (** no such traffic at all *)
  | Until of int  (** last occurrence at this step (inclusive) *)
  | Forever  (** never stops under the current schedule *)

val before : t -> int -> bool
(** [before h t] holds iff the traffic has stopped strictly before step
    [t] — i.e. no occurrence at step [t] or later. *)

val at_or_after : t -> int -> bool
(** Negation of {!before}: some occurrence at step [t] or later. *)

val min : t -> t -> t
(** Earlier of two horizons ([Never] is smallest, [Forever] largest). *)

val max : t -> t -> t

val add : t -> int -> t
(** Shift a finite horizon by a delay; [Never]/[Forever] are absorbing. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
