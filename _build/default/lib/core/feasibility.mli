(** Bounded exhaustive search over timed schedules — the ground truth that
    the polynomial algorithms are tested against, and the reference
    implementation of "solve the integer program by enumeration".

    MUTP is NP-complete (Theorem 1), so this only scales to a handful of
    updates; the branch-and-bound solver in [chronus_baselines.Opt] is the
    one used at evaluation sizes. *)

open Chronus_flow

val default_horizon : Instance.t -> int
(** A makespan bound within which a feasible instance always has a
    solution: enough steps to update one switch at a time with a full
    drain pause in between. *)

val find : ?horizon:int -> Instance.t -> Schedule.t option
(** Some oracle-consistent complete schedule with all times below the
    horizon, found by exhaustive enumeration; [None] if none exists. *)

val exists : ?horizon:int -> Instance.t -> bool

val min_makespan : ?horizon:int -> Instance.t -> (int * Schedule.t) option
(** The smallest number of time steps of any consistent schedule, with a
    witness. Exhaustive; use only on small instances. *)
