open Chronus_flow

let structural inst ~candidate =
  match Instance.new_next inst candidate with
  | None -> false
  | Some w ->
      (* Walk the initial path backwards from the candidate; meeting [w]
         means the dashed link jumps back onto the candidate's own old
         upstream, so old-configured switches would forward the flow
         straight back. *)
      let rec upstream v =
        match Instance.old_prev inst v with
        | None -> false
        | Some x -> x = w || upstream x
      in
      upstream candidate

let timed inst sched ~candidate ~time =
  match Instance.new_next inst candidate with
  | None -> false
  | Some _ ->
      let tentative = Schedule.add candidate time sched in
      let cohort = Oracle.trace_from inst tentative candidate time in
      (match cohort.Oracle.outcome with
      | Oracle.Looped _ -> true
      | Oracle.Delivered | Oracle.Dropped _ -> false)
