open Chronus_graph
open Chronus_flow

type verdict =
  | Safe
  | Would_loop of Graph.node
  | Would_congest of Graph.node * Graph.node * int
  | Would_blackhole of Graph.node
  | Not_drained

let is_safe = function Safe -> true | _ -> false

type stream_walk = {
  feed : Horizon.t;
  base : int;
  visits : (Graph.node * int) list;
  index : (Graph.node, int * int) Hashtbl.t;
      (* switch -> (absolute visit step, position); origin has position 0 *)
}

let make_walk ~feed ~base visits =
  let index = Hashtbl.create (List.length visits) in
  List.iteri
    (fun pos (y, t) ->
      if not (Hashtbl.mem index y) then Hashtbl.replace index y (t, pos))
    visits;
  { feed; base; visits; index }

let walk_feed w = w.feed
let walk_base w = w.base
let walk_visits w = w.visits
let with_feed feed w = { w with feed }

let walk_crosses w y =
  match Hashtbl.find_opt w.index y with
  | Some (_, pos) -> pos > 0
  | None -> false

(* Until when does walk [w] keep delivering cohorts to [y]? [Never] if the
   walk does not pass [y]. The walk's origin is excluded: traffic entering
   the origin is the feed itself, accounted separately. *)
let walk_horizon_at w y =
  match Hashtbl.find_opt w.index y with
  | Some (t_y, pos) when pos > 0 -> Horizon.add w.feed (t_y - w.base)
  | Some _ | None -> Horizon.Never

(* Does the walk cross [blocker] strictly before [y]? Such a walk is being
   rerouted at [blocker] by the flip under test, so its recorded suffix
   beyond [blocker] is stale. *)
let passes_before w ~blocker y =
  match (Hashtbl.find_opt w.index blocker, Hashtbl.find_opt w.index y) with
  | Some (_, pb), Some (_, py) -> pb < py
  | _ -> false

type stream_view = {
  all : stream_walk list;
  by_node : (Graph.node, stream_walk list) Hashtbl.t;
      (* walks crossing each switch (other than as their origin) *)
}

let no_streams = { all = []; by_node = Hashtbl.create 1 }

let view_of_walks walks =
  let by_node = Hashtbl.create 64 in
  List.iter
    (fun w ->
      match w.visits with
      | [] -> ()
      | _origin :: rest ->
          List.iter
            (fun (y, _) ->
              let existing =
                Option.value ~default:[] (Hashtbl.find_opt by_node y)
              in
              Hashtbl.replace by_node y (w :: existing))
            rest)
    walks;
  { all = walks; by_node }

let walks_through view y =
  Option.value ~default:[] (Hashtbl.find_opt view.by_node y)

(* Streams that may still deliver traffic to the candidate itself. *)
let stream_arrivals_until view v =
  List.fold_left
    (fun acc w -> Horizon.max acc (walk_horizon_at w v))
    Horizon.Never (walks_through view v)

(* Multiplicity test along the traced walk. Everything that still arrives
   at the candidate — the pure old stream and every live earlier walk —
   merges onto its new outgoing link and travels together ([carried]
   units of demand). At every crossed link the merged stream additionally
   meets the local old stream (while live) and every live earlier walk,
   except walks that reached this switch through the candidate: those are
   part of the merged stream already (their recorded suffix is the route
   being rerouted). The link must have room for the total. *)
let congestion_along_walk inst dview' view ~candidate visits =
  let g = inst.Instance.graph in
  let d = inst.Instance.demand in
  let old_live y s =
    if Horizon.at_or_after (Drain.last_arrival dview' y) s then 1 else 0
  in
  let walks_at ?blocker y s =
    List.length
      (List.filter
         (fun w ->
           Horizon.at_or_after (walk_horizon_at w y) s
           &&
           match blocker with
           | None -> true
           | Some b -> not (passes_before w ~blocker:b y))
         (walks_through view y))
  in
  match visits with
  | [] -> Safe
  | (v0, t0) :: _ ->
      let carried = max 1 (old_live v0 t0 + walks_at v0 t0) in
      let rec scan = function
        | (y, s) :: ((z, _) :: _ as tl) ->
            let extra =
              if y = v0 then 0
              else old_live y s + walks_at ~blocker:candidate y s
            in
            if (carried + extra) * d > Graph.capacity g y z then
              Would_congest (y, z, s)
            else scan tl
        | [ _ ] | [] -> Safe
      in
      scan visits

let analytic ?(streams = no_streams) inst drain sched ~time v =
  match Instance.new_next inst v with
  | None ->
      (* Deleting the rule: safe only once no traffic — old stream or
         redirected stream — arrives anymore, otherwise in-flight cohorts
         would be blackholed. *)
      let dview = Drain.view drain sched in
      let until =
        Horizon.max
          (Drain.last_arrival dview v)
          (stream_arrivals_until streams v)
      in
      if Horizon.before until time then Safe else Not_drained
  | Some _ ->
      let tentative = Schedule.add v time sched in
      let dview' = Drain.view drain tentative in
      let until =
        Horizon.max
          (Drain.last_arrival dview' v)
          (stream_arrivals_until streams v)
      in
      if Horizon.before until time then
        (* Inert: no cohort will ever be redirected by this flip; traffic
           arriving later (once upstream flips) wants the new rule in
           place. *)
        Safe
      else begin
        let cohort = Oracle.trace_from inst tentative v time in
        match cohort.Oracle.outcome with
        | Oracle.Looped w -> Would_loop w
        | Oracle.Dropped w -> Would_blackhole w
        | Oracle.Delivered -> (
            (* While pure-old cohorts still arrive at [v], they have
               visited its whole old-path prefix: if the onward walk
               touches any prefix switch, they revisit it — a Definition 2
               loop the fresh trace alone cannot see (this is the very
               situation Algorithm 4's backward walk detects). Cohorts fed
               by a redirected stream took a different route, so the
               check only applies while old arrivals are live. *)
            let old_live =
              Horizon.at_or_after (Drain.last_arrival dview' v) time
            in
            let prefix = Hashtbl.create 8 in
            if old_live then begin
              let rec collect x =
                match Instance.old_prev inst x with
                | None -> ()
                | Some p ->
                    Hashtbl.replace prefix p ();
                    collect p
              in
              collect v
            end;
            let revisited =
              List.find_opt
                (fun (z, _) -> Hashtbl.mem prefix z)
                cohort.Oracle.visits
            in
            match revisited with
            | Some (z, _) -> Would_loop z
            | None ->
                congestion_along_walk inst dview' streams ~candidate:v
                  cohort.Oracle.visits)
      end

let exact inst sched ~time v =
  let tentative = Schedule.add v time sched in
  let report = Oracle.evaluate inst tentative in
  match report.Oracle.violations with
  | [] -> Safe
  | Oracle.Congestion { u; v = v'; time = s; _ } :: _ ->
      Would_congest (u, v', s)
  | Oracle.Loop { switch; _ } :: _ -> Would_loop switch
  | Oracle.Blackhole { switch; _ } :: _ -> Would_blackhole switch

let pp_verdict ppf = function
  | Safe -> Format.pp_print_string ppf "safe"
  | Would_loop v -> Format.fprintf ppf "would loop through v%d" v
  | Would_congest (u, v, t) ->
      Format.fprintf ppf "would congest v%d -> v%d at t=%d" u v t
  | Would_blackhole v -> Format.fprintf ppf "would blackhole at v%d" v
  | Not_drained -> Format.pp_print_string ppf "traffic not yet drained"
