(* Fault injection: what happens to each update mechanism when the
   timed-SDN assumptions break — skewed clocks, a lossy control channel,
   switches that reject, straggle or crash. The example replays the
   paper's worked example under every fault preset and prints what each
   executor reported: Chronus's hardened timed executor retries un-acked
   commands and falls back to a two-phase update on deadline miss, while
   OR has no recovery at all (a lost command simply leaves a stale rule).

   Every fault draw comes from the seeded, coordinate-addressed RNG, so
   the table below is bit-identical on every run — the property the
   golden tests in test/suite_faults.ml pin.

   Run with: dune exec examples/fault_injection.exe *)

open Chronus_sim
open Chronus_exec
module Faults = Chronus_faults.Faults

let config =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    delay_unit = Sim_time.msec 20;
  }

let total (v : Monitor.violations) =
  v.Monitor.transient_loops + v.Monitor.blackholes + v.Monitor.overload_samples

let () =
  let inst = Chronus_topo.Scenario.fig1_example () in
  Printf.printf "%-8s %-9s %-22s %-18s %-18s\n" "preset" "seed"
    "Chronus (path)" "OR" "TP";
  List.iter
    (fun preset ->
      let faults = Faults.of_preset preset in
      List.iter
        (fun seed ->
          let c = Timed_exec.run ~config ~seed ~faults inst in
          let o = Order_exec.run ~config ~seed ~faults inst in
          let tp = Two_phase_exec.run ~config ~seed ~faults inst in
          Printf.printf
            "%-8s %-9d viol=%d retry=%d %-10s viol=%d cmd=%d       viol=%d \
             cmd=%d\n"
            preset seed
            (total c.Timed_exec.result.Exec_env.violations)
            c.Timed_exec.retries
            (Format.asprintf "(%a)" Timed_exec.pp_path c.Timed_exec.path)
            (total o.Order_exec.result.Exec_env.violations)
            o.Order_exec.result.Exec_env.commands
            (total tp.Two_phase_exec.result.Exec_env.violations)
            tp.Two_phase_exec.result.Exec_env.commands)
        [ 11; 12 ])
    Faults.preset_names
