(* Concurrent updates: two flows sharing a diamond each request the
   other's arm. Their transaction footprints overlap, so the update
   service serializes the second request behind the first and both
   commit — the swap succeeds with no transient congestion. This is
   the worked example of SERVICE.md.

   Run with: dune exec examples/concurrent_updates.exe *)

open Chronus_graph
open Chronus_flow
module Service = Chronus_service.Service

let () =
  (* Four switches; both arms of the diamond have capacity 2, so either
     arm can briefly carry both unit-demand flows mid-transition. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:2 ~delay:1 g u v)
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];

  (* Flow 0 routes over the upper arm, flow 1 over the lower. The joint
     steady state is validated here: each link carries the sum of the
     demands routed over it. *)
  let flow fid path =
    { Instance.fid; f_demand = 1; f_init = path; f_fin = path }
  in
  let multi =
    Instance.create_multi ~graph:g [ flow 0 [ 0; 1; 3 ]; flow 1 [ 0; 2; 3 ] ]
  in
  let t = Service.create multi in

  (* Each flow requests the other's arm. Both submissions pass door
     validation and are queued. *)
  let rid0 = Service.submit t ~fid:0 ~target:[ 0; 2; 3 ] in
  let rid1 = Service.submit t ~fid:1 ~target:[ 0; 1; 3 ] in
  (match (rid0, rid1) with
  | Ok 0, Ok 1 -> ()
  | _ -> failwith "expected rids 0 and 1");

  (* The footprints share links, so the requests cannot run in one
     batch: rid 0 wins the race, commits in batch 1; rid 1 is retried
     against the committed state in batch 2 and commits too. *)
  let outcomes = Service.process t in
  List.iter (Format.printf "%a@." Service.pp_outcome) outcomes;

  Format.printf "@.final routes:@.";
  List.iter
    (fun (fid, p) -> Format.printf "  flow %d: %a@." fid Path.pp p)
    (Service.routes t);
  assert (Service.current_path t 0 = Some [ 0; 2; 3 ]);
  assert (Service.current_path t 1 = Some [ 0; 1; 3 ])
