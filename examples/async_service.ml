(* The long-running accept loop: the same two conflicting diamond
   requests as concurrent_updates.ml, but delivered as *arrivals* on
   virtual time and served by `Service.run_async` — one client fiber
   per request, a single accept fiber batching same-instant arrivals,
   and verdicts delivered on per-transaction mailboxes. A third,
   late-arriving request shows that a new instant opens a new batch.
   This is the worked example of SERVICE.md's accept-loop section.

   Run with: dune exec examples/async_service.exe *)

open Chronus_graph
open Chronus_flow
module Service = Chronus_service.Service
module Sim_time = Chronus_sim.Sim_time

let () =
  (* The diamond from SERVICE.md: both arms have capacity 2, so either
     can briefly carry both unit-demand flows mid-transition. *)
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:2 ~delay:1 g u v)
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  let flow fid path =
    { Instance.fid; f_demand = 1; f_init = path; f_fin = path }
  in
  let multi =
    Instance.create_multi ~graph:g [ flow 0 [ 0; 1; 3 ]; flow 1 [ 0; 2; 3 ] ]
  in
  let t = Service.create multi in

  (* Two requests arrive at the same instant (t = 0): each flow asks
     for the other's arm. A third arrives 5 ms later, asking flow 0
     back onto its original arm. *)
  let arrivals =
    [
      { Service.at = 0; a_fid = 0; a_target = [ 0; 2; 3 ] };
      { Service.at = 0; a_fid = 1; a_target = [ 0; 1; 3 ] };
      { Service.at = Sim_time.msec 5; a_fid = 0; a_target = [ 0; 1; 3 ] };
    ]
  in

  (* run_async spawns a client fiber per arrival and one accept fiber,
     then drives the engine until the calendar drains. The two t = 0
     clients register in the same batch round — identical admission,
     serialization and commits to submit+submit+process — while the
     late client lands alone in a later round. *)
  let outcomes = Service.run_async t arrivals in
  List.iter
    (fun (o : Service.async_outcome) ->
      match o.a_result with
      | Ok oc ->
          Format.printf "t=%dms -> t=%dms  %a@."
            (o.submitted_at / Sim_time.msec 1)
            (o.decided_at / Sim_time.msec 1)
            Service.pp_outcome oc
      | Error d ->
          Format.printf "t=%dms -> t=%dms  denied: %a@."
            (o.submitted_at / Sim_time.msec 1)
            (o.decided_at / Sim_time.msec 1)
            Service.pp_denial d)
    outcomes;

  (* The same-instant pair swapped arms (rid 1 serialized behind rid 0,
     both committed); the late request then moved flow 0 back. *)
  Format.printf "@.final routes:@.";
  List.iter
    (fun (fid, p) -> Format.printf "  flow %d: %a@." fid Path.pp p)
    (Service.routes t);
  assert (Service.current_path t 0 = Some [ 0; 1; 3 ]);
  assert (Service.current_path t 1 = Some [ 0; 1; 3 ])
