module Obs = Chronus_obs.Obs

type sample = { at : Sim_time.t; mbps : float }

type violations = {
  transient_loops : int;
  blackholes : int;
  overload_samples : int;
}

type t = {
  net : Network.t;
  interval : Sim_time.t;
  previous : (int * int, int) Hashtbl.t;
  samples : (int * int, sample list) Hashtbl.t;
  (* Running per-link peak, so [peak]/[busiest_link] don't refold the
     whole sample history on every call. *)
  peaks : (int * int, float) Hashtbl.t;
  mutable peak_rules : int;
  mutable stop_at : Sim_time.t option;
  mutable transient_loops : int;
  mutable blackholes : int;
  mutable overload_samples : int;
}

let c_loops = Obs.Counter.v "monitor.transient_loops"
let c_blackholes = Obs.Counter.v "monitor.blackhole_drops"
let c_overloads = Obs.Counter.v "monitor.overload_samples"

let take_sample t =
  List.iter
    (fun link ->
      let current = Network.link_bytes t.net link in
      let before =
        Option.value ~default:0 (Hashtbl.find_opt t.previous link)
      in
      Hashtbl.replace t.previous link current;
      let bits = float_of_int ((current - before) * 8) in
      let mbps = bits /. Sim_time.to_sec t.interval /. 1e6 in
      let s =
        { at = Engine.now (Network.engine t.net); mbps }
      in
      let history =
        Option.value ~default:[] (Hashtbl.find_opt t.samples link)
      in
      Hashtbl.replace t.samples link (s :: history);
      let best =
        Option.value ~default:0. (Hashtbl.find_opt t.peaks link)
      in
      if mbps > best then Hashtbl.replace t.peaks link mbps;
      if mbps > Network.link_capacity_mbps t.net link then begin
        t.overload_samples <- t.overload_samples + 1;
        Obs.Counter.incr c_overloads
      end)
    (Network.links t.net);
  t.peak_rules <- max t.peak_rules (Network.total_rules t.net)

let create ?(interval = Sim_time.sec 1) net =
  let t =
    {
      net;
      interval;
      previous = Hashtbl.create 32;
      samples = Hashtbl.create 32;
      peaks = Hashtbl.create 32;
      peak_rules = Network.total_rules net;
      stop_at = None;
      transient_loops = 0;
      blackholes = 0;
      overload_samples = 0;
    }
  in
  Network.on_drop net (fun reason ~switch:_ ~bytes:_ ->
      match reason with
      | Network.Hop_limit ->
          t.transient_loops <- t.transient_loops + 1;
          Obs.Counter.incr c_loops
      | Network.No_rule ->
          t.blackholes <- t.blackholes + 1;
          Obs.Counter.incr c_blackholes);
  let engine = Network.engine net in
  let rec tick at =
    let beyond =
      match t.stop_at with Some stop -> at > stop | None -> false
    in
    if not beyond then
      Engine.at engine at (fun () ->
          take_sample t;
          tick (at + interval))
  in
  tick (Engine.now engine + interval);
  t

let stop_after t time = t.stop_at <- Some time

let series t link =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.samples link))

let peak t link =
  Option.value ~default:0. (Hashtbl.find_opt t.peaks link)

let busiest_link t =
  Hashtbl.fold
    (fun link _ acc ->
      let p = peak t link in
      match acc with
      | Some (_, best) when best >= p -> acc
      | _ -> Some (link, p))
    t.samples None

let congested_samples t =
  Hashtbl.fold
    (fun link history acc ->
      let capacity = Network.link_capacity_mbps t.net link in
      List.fold_left
        (fun acc s -> if s.mbps > capacity then (link, s) :: acc else acc)
        acc history)
    t.samples []
  |> List.sort compare

let violations t =
  {
    transient_loops = t.transient_loops;
    blackholes = t.blackholes;
    overload_samples = t.overload_samples;
  }

let no_violations (v : violations) =
  v.transient_loops = 0 && v.blackholes = 0 && v.overload_samples = 0

let peak_rules t = t.peak_rules
