type tag_match = Any_tag | Tag of int

type forward = Out of int | To_host | Drop

type action = { set_tag : int option; forward : forward }

type rule = {
  id : int;
  priority : int;
  dst : int;
  tag_match : tag_match;
  action : action;
}

type t = { mutable rules : rule list; mutable next_id : int }

let create () = { rules = []; next_id = 0 }

let install t ~priority ~dst ~tag_match action =
  let rule = { id = t.next_id; priority; dst; tag_match; action } in
  t.next_id <- t.next_id + 1;
  t.rules <- rule :: t.rules;
  rule

let same_match rule ~dst ~tag_match = rule.dst = dst && rule.tag_match = tag_match

let modify_actions t ~dst ~tag_match action =
  let changed = ref 0 in
  t.rules <-
    List.map
      (fun r ->
        if same_match r ~dst ~tag_match then begin
          incr changed;
          { r with action }
        end
        else r)
      t.rules;
  !changed

let remove t ~dst ~tag_match =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> not (same_match r ~dst ~tag_match)) t.rules;
  before - List.length t.rules

let tag_ok tag_match tag =
  match (tag_match, tag) with
  | Any_tag, _ -> true
  | Tag v, Some v' -> v = v'
  | Tag _, None -> false

let lookup t ~dst ~tag =
  let candidates =
    List.filter (fun r -> r.dst = dst && tag_ok r.tag_match tag) t.rules
  in
  let better a b =
    a.priority > b.priority || (a.priority = b.priority && a.id < b.id)
  in
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some b -> if better r b then Some r else best)
    None candidates

type snapshot = rule list

let snapshot t = t.rules

let restore t s =
  (* next_id stays monotone: rules installed after a restore are younger
     than every surviving snapshot rule, so tie-breaks stay stable. *)
  t.rules <- s

let size t = List.length t.rules

let rules t =
  List.sort
    (fun a b ->
      match compare b.priority a.priority with
      | 0 -> compare a.id b.id
      | c -> c)
    t.rules

let pp_forward ppf = function
  | Out v -> Format.fprintf ppf "output:v%d" v
  | To_host -> Format.pp_print_string ppf "output:host"
  | Drop -> Format.pp_print_string ppf "drop"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "prio %d  dst v%d  tag %s  ->  %s%a@," r.priority
        r.dst
        (match r.tag_match with Any_tag -> "*" | Tag v -> string_of_int v)
        (match r.action.set_tag with
        | None -> ""
        | Some v -> Printf.sprintf "set_tag:%d, " v)
        pp_forward r.action.forward)
    (rules t);
  Format.fprintf ppf "@]"
