module Obs = Chronus_obs.Obs

(* Volume counters only: how many lookups a run performs — and how many
   of them fall through to the longest-prefix trie — is a pure function
   of the workload, so observing them never influences the simulation. *)
let c_lookups = Obs.Counter.v "sim.flow_lookups"
let c_prefix_lookups = Obs.Counter.v "sim.prefix_lookups"
let g_prefix_high_water = Obs.Gauge.v "sim.prefix_rules_high_water"

type tag_match = Any_tag | Tag of int

type forward = Out of int | To_host | Drop

type action = { set_tag : int option; forward : forward }

(* Destinations are fixed-width bitstrings: [addr_bits] wide, matched
   either exactly (len = addr_bits) or on a leading prefix. *)
let addr_bits = 16

type rule = {
  id : int;
  priority : int;
  dst : int;
  len : int;  (** prefix length; [addr_bits] for an exact rule *)
  tag_match : tag_match;
  action : action;
}

(* [better a b]: does [a] win a tie against [b]?  Highest priority,
   then oldest id — the exact order the legacy list implementation
   resolved with a fold. *)
let better a b =
  a.priority > b.priority || (a.priority = b.priority && a.id < b.id)

let rec insert_sorted rule = function
  | [] -> [ rule ]
  | r :: rest as l ->
      if better r rule then r :: insert_sorted rule rest else rule :: l

let tag_ok tag_match tag =
  match (tag_match, tag) with
  | Any_tag, _ -> true
  | Tag v, Some v' -> v = v'
  | Tag _, None -> false

(* The first rule of a (priority desc, id asc)-sorted bucket whose tag
   constraint is satisfied is the bucket's best match. *)
let rec first_tag_ok tag = function
  | [] -> None
  | r :: rest -> if tag_ok r.tag_match tag then Some r else first_tag_ok tag rest

let sort_rules all =
  List.sort
    (fun a b ->
      match compare b.priority a.priority with
      | 0 -> compare a.id b.id
      | c -> c)
    all

(* ------------------------------------------------------------------ *)
(* Prefix machinery: addresses are the low [addr_bits] bits of an int; a
   prefix of length [l] covers the addresses sharing its top [l] bits.
   Prefix values are kept normalised (low [addr_bits - l] bits zero).   *)

(* lsl/lsr are right-associative in OCaml: the grouping parens matter. *)
let truncate p l =
  if l >= addr_bits then p else (p lsr (addr_bits - l)) lsl (addr_bits - l)
let covers ~pfx ~len addr = truncate addr len = pfx

(* The [i]-th bit counted from the top of the address, 0-based. *)
let bit addr i = (addr lsr (addr_bits - 1 - i)) land 1

let common_len p1 l1 p2 l2 =
  let lim = min l1 l2 in
  let rec go i = if i >= lim || bit p1 i <> bit p2 i then i else go (i + 1) in
  go 0

(* A path-compressed binary trie over prefixes. Nodes are persistent:
   installs and removals rebuild the (≤ addr_bits deep) spine, so
   {!snapshot} shares the whole structure with the live table. *)
type node = {
  n_pfx : int;  (* normalised prefix value *)
  n_len : int;  (* 0 .. addr_bits - 1 *)
  n_rules : rule list;  (* rules at exactly (n_pfx, n_len), sorted *)
  n_zero : node option;  (* subtree where bit [n_len] = 0 *)
  n_one : node option;
}

let leaf pfx len rule =
  { n_pfx = pfx; n_len = len; n_rules = [ rule ]; n_zero = None; n_one = None }

let rec trie_insert node pfx len rule =
  match node with
  | None -> leaf pfx len rule
  | Some n ->
      let cl = common_len n.n_pfx n.n_len pfx len in
      if cl = n.n_len && cl = len then
        { n with n_rules = insert_sorted rule n.n_rules }
      else if cl = n.n_len then
        (* The new prefix extends this node: descend. *)
        if bit pfx n.n_len = 0 then
          { n with n_zero = Some (trie_insert n.n_zero pfx len rule) }
        else { n with n_one = Some (trie_insert n.n_one pfx len rule) }
      else if cl = len then
        (* The new prefix is a proper ancestor of this node. *)
        if bit n.n_pfx len = 0 then
          { n_pfx = pfx; n_len = len; n_rules = [ rule ];
            n_zero = Some n; n_one = None }
        else
          { n_pfx = pfx; n_len = len; n_rules = [ rule ];
            n_zero = None; n_one = Some n }
      else
        (* Diverging prefixes: split at the common length. *)
        let fresh = leaf pfx len rule in
        let z, o = if bit n.n_pfx cl = 0 then (n, fresh) else (fresh, n) in
        { n_pfx = truncate pfx cl; n_len = cl; n_rules = [];
          n_zero = Some z; n_one = Some o }

(* Drop empty nodes and re-compress pass-through nodes so removal never
   degrades the trie's depth bound. *)
let prune n =
  match (n.n_rules, n.n_zero, n.n_one) with
  | [], None, None -> None
  | [], Some c, None | [], None, Some c -> Some c
  | _ -> Some n

let rec trie_remove node pfx len tag_match removed =
  match node with
  | None -> None
  | Some n ->
      if n.n_len = len && n.n_pfx = pfx then begin
        let kept =
          List.filter
            (fun r ->
              if r.tag_match = tag_match then begin
                incr removed;
                false
              end
              else true)
            n.n_rules
        in
        prune { n with n_rules = kept }
      end
      else if n.n_len < len && covers ~pfx:n.n_pfx ~len:n.n_len pfx then
        let child =
          if bit pfx n.n_len = 0 then
            { n with n_zero = trie_remove n.n_zero pfx len tag_match removed }
          else { n with n_one = trie_remove n.n_one pfx len tag_match removed }
        in
        prune child
      else node

let rec trie_fold f acc = function
  | None -> acc
  | Some n ->
      let acc = List.fold_left f acc n.n_rules in
      let acc = trie_fold f acc n.n_zero in
      trie_fold f acc n.n_one

let rec trie_nodes = function
  | None -> 0
  | Some n -> 1 + trie_nodes n.n_zero + trie_nodes n.n_one

(* ------------------------------------------------------------------ *)
(* The live table: exact rules bucketed by [dst] (each bucket a
   persistent list sorted better-first), aggregated prefix rules in the
   trie. Exact rules are full-width prefixes, so "exact bucket first,
   trie only on miss" is longest-prefix-match semantics. *)

type t = {
  mutable buckets : (int, rule list) Hashtbl.t;
  mutable root : node option;
  mutable next_id : int;
  mutable total : int;  (* exact + prefix rules *)
  mutable prefix_total : int;
  mutable on_size_change : int -> unit;
}

let create () =
  {
    buckets = Hashtbl.create 16;
    root = None;
    next_id = 0;
    total = 0;
    prefix_total = 0;
    on_size_change = ignore;
  }

let on_size_change t f = t.on_size_change <- f

let bucket t dst = match Hashtbl.find_opt t.buckets dst with
  | Some b -> b
  | None -> []

let set_bucket t dst = function
  | [] -> Hashtbl.remove t.buckets dst
  | b -> Hashtbl.replace t.buckets dst b

let install t ~priority ~dst ~tag_match action =
  let rule = { id = t.next_id; priority; dst; len = addr_bits; tag_match; action } in
  t.next_id <- t.next_id + 1;
  set_bucket t dst (insert_sorted rule (bucket t dst));
  t.total <- t.total + 1;
  t.on_size_change 1;
  rule

let install_prefix t ~priority ~prefix ~len ~tag_match action =
  if len < 0 || len > addr_bits then
    invalid_arg
      (Printf.sprintf "Flow_table.install_prefix: len %d outside [0, %d]" len
         addr_bits);
  if len = addr_bits then install t ~priority ~dst:prefix ~tag_match action
  else begin
    let pfx = truncate prefix len in
    let rule = { id = t.next_id; priority; dst = pfx; len; tag_match; action } in
    t.next_id <- t.next_id + 1;
    t.root <- Some (trie_insert t.root pfx len rule);
    t.prefix_total <- t.prefix_total + 1;
    Obs.Gauge.observe g_prefix_high_water t.prefix_total;
    t.total <- t.total + 1;
    t.on_size_change 1;
    rule
  end

let modify_actions t ~dst ~tag_match action =
  let changed = ref 0 in
  let b =
    List.map
      (fun r ->
        if r.tag_match = tag_match then begin
          incr changed;
          { r with action }
        end
        else r)
      (bucket t dst)
  in
  if !changed > 0 then set_bucket t dst b;
  !changed

let remove t ~dst ~tag_match =
  let removed = ref 0 in
  let b =
    List.filter
      (fun r ->
        if r.tag_match = tag_match then begin
          incr removed;
          false
        end
        else true)
      (bucket t dst)
  in
  if !removed > 0 then begin
    set_bucket t dst b;
    t.total <- t.total - !removed;
    t.on_size_change (- !removed)
  end;
  !removed

let remove_prefix t ~prefix ~len ~tag_match =
  if len = addr_bits then remove t ~dst:prefix ~tag_match
  else begin
    let removed = ref 0 in
    t.root <- trie_remove t.root (truncate prefix len) len tag_match removed;
    if !removed > 0 then begin
      t.prefix_total <- t.prefix_total - !removed;
      t.total <- t.total - !removed;
      t.on_size_change (- !removed)
    end;
    !removed
  end

(* Longest-prefix walk: every node on the root-to-[dst] path whose prefix
   covers [dst] may hold a match; the deepest one wins, ties within a
   node resolve by the bucket order (priority desc, id asc). *)
let lpm root dst tag =
  let rec walk best = function
    | None -> best
    | Some n ->
        if covers ~pfx:n.n_pfx ~len:n.n_len dst then
          let best =
            match first_tag_ok tag n.n_rules with
            | Some r -> Some r
            | None -> best
          in
          walk best (if bit dst n.n_len = 0 then n.n_zero else n.n_one)
        else best
  in
  walk None root

let lookup t ~dst ~tag =
  Obs.Counter.incr c_lookups;
  match first_tag_ok tag (bucket t dst) with
  | Some r -> Some r
  | None -> (
      match t.root with
      | None -> None
      | Some _ as root ->
          Obs.Counter.incr c_prefix_lookups;
          lpm root dst tag)

type snapshot = {
  s_buckets : (int, rule list) Hashtbl.t;
  s_root : node option;
  s_total : int;
  s_prefix_total : int;
}

let snapshot t =
  {
    s_buckets = Hashtbl.copy t.buckets;
    s_root = t.root;
    s_total = t.total;
    s_prefix_total = t.prefix_total;
  }

let restore t s =
  (* next_id stays monotone: rules installed after a restore are younger
     than every surviving snapshot rule, so tie-breaks stay stable. The
     observer sees exactly one signed delta — the net change. *)
  let delta = s.s_total - t.total in
  t.buckets <- Hashtbl.copy s.s_buckets;
  t.root <- s.s_root;
  t.total <- s.s_total;
  t.prefix_total <- s.s_prefix_total;
  if delta <> 0 then t.on_size_change delta

let size t = t.total

let prefix_size t = t.prefix_total

(* A live-heap estimate in machine words, deterministic (no wall clock)
   so it can sit in digested experiment rows: a rule record plus its
   bucket/trie cons ≈ 10 words, a bucket slot ≈ 5, a trie node ≈ 8. *)
let memory_words t =
  let exact = t.total - t.prefix_total in
  let buckets = Hashtbl.length t.buckets in
  (10 * exact) + (5 * buckets) + (8 * trie_nodes t.root)
  + (10 * t.prefix_total)

let rules t =
  let all = Hashtbl.fold (fun _ b acc -> List.rev_append b acc) t.buckets [] in
  let all = trie_fold (fun acc r -> r :: acc) all t.root in
  sort_rules all

let pp_forward ppf = function
  | Out v -> Format.fprintf ppf "output:v%d" v
  | To_host -> Format.pp_print_string ppf "output:host"
  | Drop -> Format.pp_print_string ppf "drop"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      let dst =
        if r.len = addr_bits then Printf.sprintf "v%d" r.dst
        else Printf.sprintf "0x%x/%d" r.dst r.len
      in
      Format.fprintf ppf "prio %d  dst %s  tag %s  ->  %s%a@," r.priority dst
        (match r.tag_match with Any_tag -> "*" | Tag v -> string_of_int v)
        (match r.action.set_tag with
        | None -> ""
        | Some v -> Printf.sprintf "set_tag:%d, " v)
        pp_forward r.action.forward)
    (rules t);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Baseline implementations, kept behind the same seam as differential
   references and microbenchmark baselines.                             *)

module type S = sig
  type t

  val create : unit -> t
  val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
  val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
  val remove : t -> dst:int -> tag_match:tag_match -> int
  val lookup : t -> dst:int -> tag:int option -> rule option

  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
  val size : t -> int
  val rules : t -> rule list
end

(* The PR-5 dst-indexed table, verbatim (minus the trie): hashtable of
   persistent priority buckets, exact match only. *)
module Exact : sig
  include S

  val on_size_change : t -> (int -> unit) -> unit
end = struct
  type table = {
    mutable e_buckets : (int, rule list) Hashtbl.t;
    mutable e_next_id : int;
    mutable e_total : int;
    mutable e_on_size_change : int -> unit;
  }

  type t = table

  let create () =
    {
      e_buckets = Hashtbl.create 16;
      e_next_id = 0;
      e_total = 0;
      e_on_size_change = ignore;
    }

  let on_size_change t f = t.e_on_size_change <- f

  let bucket t dst = match Hashtbl.find_opt t.e_buckets dst with
    | Some b -> b
    | None -> []

  let set_bucket t dst = function
    | [] -> Hashtbl.remove t.e_buckets dst
    | b -> Hashtbl.replace t.e_buckets dst b

  let install t ~priority ~dst ~tag_match action =
    let rule =
      { id = t.e_next_id; priority; dst; len = addr_bits; tag_match; action }
    in
    t.e_next_id <- t.e_next_id + 1;
    set_bucket t dst (insert_sorted rule (bucket t dst));
    t.e_total <- t.e_total + 1;
    t.e_on_size_change 1;
    rule

  let modify_actions t ~dst ~tag_match action =
    let changed = ref 0 in
    let b =
      List.map
        (fun r ->
          if r.tag_match = tag_match then begin
            incr changed;
            { r with action }
          end
          else r)
        (bucket t dst)
    in
    if !changed > 0 then set_bucket t dst b;
    !changed

  let remove t ~dst ~tag_match =
    let removed = ref 0 in
    let b =
      List.filter
        (fun r ->
          if r.tag_match = tag_match then begin
            incr removed;
            false
          end
          else true)
        (bucket t dst)
    in
    if !removed > 0 then begin
      set_bucket t dst b;
      t.e_total <- t.e_total - !removed;
      t.e_on_size_change (- !removed)
    end;
    !removed

  let lookup t ~dst ~tag = first_tag_ok tag (bucket t dst)

  type snapshot = { s_buckets : (int, rule list) Hashtbl.t; s_total : int }

  let snapshot t = { s_buckets = Hashtbl.copy t.e_buckets; s_total = t.e_total }

  let restore t s =
    let delta = s.s_total - t.e_total in
    t.e_buckets <- Hashtbl.copy s.s_buckets;
    t.e_total <- s.s_total;
    if delta <> 0 then t.e_on_size_change delta

  let size t = t.e_total

  let rules t =
    sort_rules
      (Hashtbl.fold (fun _ b acc -> List.rev_append b acc) t.e_buckets [])
end

let same_match rule ~dst ~tag_match = rule.dst = dst && rule.tag_match = tag_match

(* The seed list implementation, kept verbatim (modulo the single-pass
   [remove]) as the reference model for the QCheck differential suite
   and the microbenchmark baseline. *)
module Legacy : S = struct
  type table = { mutable l_rules : rule list; mutable l_next_id : int }
  type t = table

  let create () = { l_rules = []; l_next_id = 0 }

  let install t ~priority ~dst ~tag_match action =
    let rule =
      { id = t.l_next_id; priority; dst; len = addr_bits; tag_match; action }
    in
    t.l_next_id <- t.l_next_id + 1;
    t.l_rules <- rule :: t.l_rules;
    rule

  let modify_actions t ~dst ~tag_match action =
    let changed = ref 0 in
    t.l_rules <-
      List.map
        (fun r ->
          if same_match r ~dst ~tag_match then begin
            incr changed;
            { r with action }
          end
          else r)
        t.l_rules;
    !changed

  let remove t ~dst ~tag_match =
    let removed = ref 0 in
    t.l_rules <-
      List.filter
        (fun r ->
          if same_match r ~dst ~tag_match then begin
            incr removed;
            false
          end
          else true)
        t.l_rules;
    !removed

  let lookup t ~dst ~tag =
    let candidates =
      List.filter (fun r -> r.dst = dst && tag_ok r.tag_match tag) t.l_rules
    in
    List.fold_left
      (fun best r ->
        match best with
        | None -> Some r
        | Some b -> if better r b then Some r else best)
      None candidates

  type snapshot = rule list

  let snapshot t = t.l_rules

  let restore t s = t.l_rules <- s

  let size t = List.length t.l_rules

  let rules t = sort_rules t.l_rules
end
