module Obs = Chronus_obs.Obs

(* Volume counter only: the number of lookups a run performs is a pure
   function of the workload, so observing it never influences the
   simulation. *)
let c_lookups = Obs.Counter.v "sim.flow_lookups"

type tag_match = Any_tag | Tag of int

type forward = Out of int | To_host | Drop

type action = { set_tag : int option; forward : forward }

type rule = {
  id : int;
  priority : int;
  dst : int;
  tag_match : tag_match;
  action : action;
}

(* [better a b]: does [a] win a tie against [b]?  Highest priority,
   then oldest id — the exact order the legacy list implementation
   resolved with a fold. *)
let better a b =
  a.priority > b.priority || (a.priority = b.priority && a.id < b.id)

(* Rules are bucketed by [dst]; each bucket is a persistent list kept
   sorted by (priority desc, id asc).  [lookup] therefore returns the
   first matching rule of a bucket, [snapshot] shares buckets with the
   live table, and a bucket is never mutated in place — installs and
   removals rebuild the (short) list. *)
type t = {
  mutable buckets : (int, rule list) Hashtbl.t;
  mutable next_id : int;
  mutable total : int;
  mutable on_size_change : int -> unit;
}

let create () =
  {
    buckets = Hashtbl.create 16;
    next_id = 0;
    total = 0;
    on_size_change = ignore;
  }

let on_size_change t f = t.on_size_change <- f

let bucket t dst = match Hashtbl.find_opt t.buckets dst with
  | Some b -> b
  | None -> []

let set_bucket t dst = function
  | [] -> Hashtbl.remove t.buckets dst
  | b -> Hashtbl.replace t.buckets dst b

let rec insert_sorted rule = function
  | [] -> [ rule ]
  | r :: rest as l ->
      if better r rule then r :: insert_sorted rule rest else rule :: l

let install t ~priority ~dst ~tag_match action =
  let rule = { id = t.next_id; priority; dst; tag_match; action } in
  t.next_id <- t.next_id + 1;
  set_bucket t dst (insert_sorted rule (bucket t dst));
  t.total <- t.total + 1;
  t.on_size_change 1;
  rule

let same_match rule ~dst ~tag_match = rule.dst = dst && rule.tag_match = tag_match

let modify_actions t ~dst ~tag_match action =
  let changed = ref 0 in
  let b =
    List.map
      (fun r ->
        if r.tag_match = tag_match then begin
          incr changed;
          { r with action }
        end
        else r)
      (bucket t dst)
  in
  if !changed > 0 then set_bucket t dst b;
  !changed

let remove t ~dst ~tag_match =
  let removed = ref 0 in
  let b =
    List.filter
      (fun r ->
        if r.tag_match = tag_match then begin
          incr removed;
          false
        end
        else true)
      (bucket t dst)
  in
  if !removed > 0 then begin
    set_bucket t dst b;
    t.total <- t.total - !removed;
    t.on_size_change (- !removed)
  end;
  !removed

let tag_ok tag_match tag =
  match (tag_match, tag) with
  | Any_tag, _ -> true
  | Tag v, Some v' -> v = v'
  | Tag _, None -> false

let lookup t ~dst ~tag =
  Obs.Counter.incr c_lookups;
  (* The bucket is sorted by (priority desc, id asc), so the first rule
     whose tag constraint is satisfied is the best match. *)
  let rec first = function
    | [] -> None
    | r :: rest -> if tag_ok r.tag_match tag then Some r else first rest
  in
  first (bucket t dst)

type snapshot = { s_buckets : (int, rule list) Hashtbl.t; s_total : int }

let snapshot t = { s_buckets = Hashtbl.copy t.buckets; s_total = t.total }

let restore t s =
  (* next_id stays monotone: rules installed after a restore are younger
     than every surviving snapshot rule, so tie-breaks stay stable. *)
  let delta = s.s_total - t.total in
  t.buckets <- Hashtbl.copy s.s_buckets;
  t.total <- s.s_total;
  if delta <> 0 then t.on_size_change delta

let size t = t.total

let rules t =
  let all = Hashtbl.fold (fun _ b acc -> List.rev_append b acc) t.buckets [] in
  List.sort
    (fun a b ->
      match compare b.priority a.priority with
      | 0 -> compare a.id b.id
      | c -> c)
    all

let pp_forward ppf = function
  | Out v -> Format.fprintf ppf "output:v%d" v
  | To_host -> Format.pp_print_string ppf "output:host"
  | Drop -> Format.pp_print_string ppf "drop"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "prio %d  dst v%d  tag %s  ->  %s%a@," r.priority
        r.dst
        (match r.tag_match with Any_tag -> "*" | Tag v -> string_of_int v)
        (match r.action.set_tag with
        | None -> ""
        | Some v -> Printf.sprintf "set_tag:%d, " v)
        pp_forward r.action.forward)
    (rules t);
  Format.fprintf ppf "@]"

(* The seed list implementation, kept verbatim (modulo the single-pass
   [remove]) as the reference model for the QCheck differential suite
   and the microbenchmark baseline. *)
module Legacy = struct
  type table = { mutable l_rules : rule list; mutable l_next_id : int }
  type t = table

  let create () = { l_rules = []; l_next_id = 0 }

  let install t ~priority ~dst ~tag_match action =
    let rule = { id = t.l_next_id; priority; dst; tag_match; action } in
    t.l_next_id <- t.l_next_id + 1;
    t.l_rules <- rule :: t.l_rules;
    rule

  let modify_actions t ~dst ~tag_match action =
    let changed = ref 0 in
    t.l_rules <-
      List.map
        (fun r ->
          if same_match r ~dst ~tag_match then begin
            incr changed;
            { r with action }
          end
          else r)
        t.l_rules;
    !changed

  let remove t ~dst ~tag_match =
    let removed = ref 0 in
    t.l_rules <-
      List.filter
        (fun r ->
          if same_match r ~dst ~tag_match then begin
            incr removed;
            false
          end
          else true)
        t.l_rules;
    !removed

  let lookup t ~dst ~tag =
    let candidates =
      List.filter (fun r -> r.dst = dst && tag_ok r.tag_match tag) t.l_rules
    in
    List.fold_left
      (fun best r ->
        match best with
        | None -> Some r
        | Some b -> if better r b then Some r else best)
      None candidates

  type snapshot = rule list

  let snapshot t = t.l_rules

  let restore t s = t.l_rules <- s

  let size t = List.length t.l_rules

  let rules t =
    List.sort
      (fun a b ->
        match compare b.priority a.priority with
        | 0 -> compare a.id b.id
        | c -> c)
      t.l_rules
end
