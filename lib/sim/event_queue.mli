(** Timestamped event queues. Ties break by insertion order, so
    simulations are deterministic.

    Two interchangeable implementations live behind {!S}: the default
    {!Calendar} — a bucketed calendar queue with O(1) amortized
    push/pop, keyed on the integer microsecond clock — and the seed
    binary {!Heap}, retained as the reference model for differential
    testing. The top-level module is {!Calendar}. *)

module type S = sig
  type t
  (** A mutable event queue; grows on demand. *)

  val create : unit -> t
  (** An empty queue. *)

  val is_empty : t -> bool
  (** [true] iff no event is pending. *)

  val size : t -> int
  (** Number of pending events. *)

  val push : t -> time:Sim_time.t -> (unit -> unit) -> unit
  (** Enqueue a thunk to fire at the given time. *)

  val pop : t -> (Sim_time.t * (unit -> unit)) option
  (** Earliest event, [None] when empty. *)

  val peek_time : t -> Sim_time.t option
  (** Timestamp of the earliest event without removing it. *)

  val next_time : t -> Sim_time.t
  (** Like {!peek_time} but allocation-free: raises [Not_found] when
      empty. Pair with {!is_empty} in hot loops. *)

  val run_next : t -> bool
  (** Dequeue and run the earliest event; [false] when the queue was
      empty. Avoids the [Some (time, thunk)] allocation of {!pop}. *)
end

module Heap : S
(** Seed binary min-heap with explicit (time, seq) ordering. *)

module Calendar : S
(** Bucketed calendar queue (Brown 1988): a ring of day-width buckets
    over the integer clock, FIFO within each timestamp — the same total
    order as {!Heap}, at O(1) amortized per operation. The ring resizes
    itself (counted by the [sim.queue_resizes] counter) to track event
    density. *)

include S with type t = Calendar.t
