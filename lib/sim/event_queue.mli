(** A binary min-heap of timestamped events. Ties break by insertion
    order, so simulations are deterministic. *)

type t
(** A mutable event queue; grows on demand. *)

val create : unit -> t
(** An empty queue. *)

val is_empty : t -> bool
(** [true] iff no event is pending. *)

val size : t -> int
(** Number of pending events. *)

val push : t -> time:Sim_time.t -> (unit -> unit) -> unit
(** Enqueue a thunk to fire at the given time. *)

val pop : t -> (Sim_time.t * (unit -> unit)) option
(** Earliest event, [None] when empty. *)

val peek_time : t -> Sim_time.t option
(** Timestamp of the earliest event without removing it. *)
