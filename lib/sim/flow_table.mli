(** OpenFlow-style match/action flow tables, reduced to what the paper's
    experiments use: exact destination match with an optional VLAN-tag
    match (Table II). Highest priority wins; ties break towards the
    oldest rule, as OpenFlow leaves this unspecified and determinism
    matters for tests. *)

type tag_match =
  | Any_tag
  | Tag of int  (** the LAN-ID versioning used by two-phase updates *)

type forward =
  | Out of int  (** output towards the given neighbouring switch *)
  | To_host  (** deliver: this switch is the destination *)
  | Drop

type action = {
  set_tag : int option;  (** stamp before forwarding (TP ingress) *)
  forward : forward;
}

type rule = {
  id : int;  (** unique per table, install order *)
  priority : int;
  dst : int;  (** destination switch (stands in for the dst IP prefix) *)
  tag_match : tag_match;
  action : action;
}

type t

val create : unit -> t

val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
(** Add a rule; returns it (with its fresh id). *)

val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
(** Rewrite the action of every rule with exactly these match fields —
    Chronus's in-place action update. Returns how many rules changed. *)

val remove : t -> dst:int -> tag_match:tag_match -> int
(** Delete all rules with exactly these match fields; returns the count. *)

type snapshot
(** An immutable copy of a table's rule set. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Replace the table's rules with the snapshot's — the crash-restart
    model of [Chronus_faults]: a rebooting switch comes back with the
    configuration it had persisted. The id counter is {e not} rewound, so
    rules installed after a restore remain younger than every snapshot
    rule and tie-breaking stays deterministic. *)

val lookup : t -> dst:int -> tag:int option -> rule option
(** Best-match semantics: the rule matches when [dst] equals and the tag
    constraint is satisfied ([Any_tag] always; [Tag v] only when the
    packet carries tag [v]). *)

val size : t -> int
val rules : t -> rule list
(** Sorted by (priority desc, id asc). *)

val pp : Format.formatter -> t -> unit
