(** OpenFlow-style match/action flow tables, reduced to what the paper's
    experiments use: destination match (exact or longest-prefix) with an
    optional VLAN-tag match (Table II). Longest prefix wins first; among
    rules of equal length, highest priority wins and ties break towards
    the oldest rule, as OpenFlow leaves this unspecified and determinism
    matters for tests.

    Exact rules live in a hashtable keyed by [dst] holding small
    priority-sorted buckets, so [lookup], [modify_actions] and [remove]
    are O(1) amortized in the number of destinations. Aggregated prefix
    rules — the output of {!Table_compiler} — live in a path-compressed
    binary trie walked only when the exact bucket misses; an exact rule
    is a full-width prefix, so this order {e is} longest-prefix match
    and update rules always shadow the compiled base. Buckets and trie
    are persistent, which makes {!snapshot}/{!restore} an O(buckets)
    hashtable copy with full structural sharing — cheap enough for the
    crash-restart model of [Chronus_faults] even at 10k rules per
    network. *)

type tag_match =
  | Any_tag
  | Tag of int  (** the LAN-ID versioning used by two-phase updates *)

type forward =
  | Out of int  (** output towards the given neighbouring switch *)
  | To_host  (** deliver: this switch is the destination *)
  | Drop

type action = {
  set_tag : int option;  (** stamp before forwarding (TP ingress) *)
  forward : forward;
}

val addr_bits : int
(** Width of the destination address space: every [dst] is interpreted
    as a bitstring this wide. [Chronus_topo.Addressing] lays out its
    hierarchical host addresses inside the same width. *)

type rule = {
  id : int;  (** unique per table, install order *)
  priority : int;
  dst : int;  (** destination address, normalised to [len] leading bits *)
  len : int;  (** prefix length; [addr_bits] for an exact rule *)
  tag_match : tag_match;
  action : action;
}

type t

val create : unit -> t

val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
(** Add an exact rule ([len = addr_bits]); returns it (with its fresh id). *)

val install_prefix :
  t -> priority:int -> prefix:int -> len:int -> tag_match:tag_match -> action -> rule
(** Add a rule matching every destination whose top [len] bits equal
    those of [prefix] (the low bits of [prefix] are ignored).
    [len = addr_bits] is exactly {!install}. Raises [Invalid_argument]
    when [len] is outside [0..addr_bits]. *)

val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
(** Rewrite the action of every exact rule with exactly these match
    fields — Chronus's in-place action update. Returns how many rules
    changed. *)

val remove : t -> dst:int -> tag_match:tag_match -> int
(** Delete all exact rules with exactly these match fields; returns the
    count. *)

val remove_prefix : t -> prefix:int -> len:int -> tag_match:tag_match -> int
(** Delete all rules at exactly this [(prefix, len, tag_match)];
    returns the count. [len = addr_bits] is exactly {!remove}. *)

type snapshot
(** An immutable copy of a table's rule set (exact and prefix). *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Replace the table's rules with the snapshot's — the crash-restart
    model of [Chronus_faults]: a rebooting switch comes back with the
    configuration it had persisted. The id counter is {e not} rewound, so
    rules installed after a restore remain younger than every snapshot
    rule and tie-breaking stays deterministic. The size observer is
    called exactly once, with the signed net change (or not at all when
    the sizes already agree). *)

val lookup : t -> dst:int -> tag:int option -> rule option
(** Longest-prefix-match semantics: among rules whose prefix covers
    [dst] and whose tag constraint is satisfied ([Any_tag] always;
    [Tag v] only when the packet carries tag [v]), the longest prefix
    wins; within a length, highest priority then oldest id. *)

val size : t -> int
(** O(1): the table maintains a running rule count (exact + prefix). *)

val prefix_size : t -> int
(** How many of {!size}'s rules are aggregated prefix rules. *)

val memory_words : t -> int
(** Deterministic estimate of the table's live heap in machine words
    (rules, buckets, trie nodes) — comparable across table shapes, used
    by the scale figure to report table memory. *)

val rules : t -> rule list
(** Sorted by (priority desc, id asc); includes prefix rules. *)

val on_size_change : t -> (int -> unit) -> unit
(** Register a single observer called with the signed rule-count delta
    after every {!install}, {!install_prefix}, {!remove},
    {!remove_prefix} and {!restore} that changes the table's size.
    [Chronus_sim.Network] uses this to keep a network-wide rule total
    without rescanning every switch. *)

val pp : Format.formatter -> t -> unit

(** The operations shared by all three implementations — the seam the
    differential suites test across. *)
module type S = sig
  type t

  val create : unit -> t
  val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
  val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
  val remove : t -> dst:int -> tag_match:tag_match -> int
  val lookup : t -> dst:int -> tag:int option -> rule option

  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
  val size : t -> int
  val rules : t -> rule list
end

(** The PR-5 dst-indexed exact-match table, retained behind the seam as
    a differential baseline: identical semantics to the main table when
    no prefix rules are installed. *)
module Exact : sig
  include S

  val on_size_change : t -> (int -> unit) -> unit
end

(** The seed list-based implementation, retained as the reference model
    for differential tests and as the microbenchmark baseline. Semantics
    are identical to the indexed table (same tie-breaks, same monotone
    ids); complexity is O(rules) per operation. *)
module Legacy : S
