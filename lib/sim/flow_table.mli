(** OpenFlow-style match/action flow tables, reduced to what the paper's
    experiments use: exact destination match with an optional VLAN-tag
    match (Table II). Highest priority wins; ties break towards the
    oldest rule, as OpenFlow leaves this unspecified and determinism
    matters for tests.

    The table is indexed in the spirit of compiled flow tables: a
    hashtable keyed by [dst] holds small priority-sorted buckets, so
    [lookup], [modify_actions] and [remove] are O(1) amortized in the
    number of destinations. Buckets are persistent lists, which makes
    {!snapshot}/{!restore} an O(buckets) hashtable copy with full
    structural sharing — cheap enough for the crash-restart model of
    [Chronus_faults] even at 10k rules per network. *)

type tag_match =
  | Any_tag
  | Tag of int  (** the LAN-ID versioning used by two-phase updates *)

type forward =
  | Out of int  (** output towards the given neighbouring switch *)
  | To_host  (** deliver: this switch is the destination *)
  | Drop

type action = {
  set_tag : int option;  (** stamp before forwarding (TP ingress) *)
  forward : forward;
}

type rule = {
  id : int;  (** unique per table, install order *)
  priority : int;
  dst : int;  (** destination switch (stands in for the dst IP prefix) *)
  tag_match : tag_match;
  action : action;
}

type t

val create : unit -> t

val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
(** Add a rule; returns it (with its fresh id). *)

val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
(** Rewrite the action of every rule with exactly these match fields —
    Chronus's in-place action update. Returns how many rules changed. *)

val remove : t -> dst:int -> tag_match:tag_match -> int
(** Delete all rules with exactly these match fields; returns the count. *)

type snapshot
(** An immutable copy of a table's rule set. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Replace the table's rules with the snapshot's — the crash-restart
    model of [Chronus_faults]: a rebooting switch comes back with the
    configuration it had persisted. The id counter is {e not} rewound, so
    rules installed after a restore remain younger than every snapshot
    rule and tie-breaking stays deterministic. *)

val lookup : t -> dst:int -> tag:int option -> rule option
(** Best-match semantics: the rule matches when [dst] equals and the tag
    constraint is satisfied ([Any_tag] always; [Tag v] only when the
    packet carries tag [v]). *)

val size : t -> int
(** O(1): the table maintains a running rule count. *)

val rules : t -> rule list
(** Sorted by (priority desc, id asc). *)

val on_size_change : t -> (int -> unit) -> unit
(** Register a single observer called with the signed rule-count delta
    after every {!install}, {!remove} and {!restore} that changes the
    table's size. [Chronus_sim.Network] uses this to keep a network-wide
    rule total without rescanning every switch. *)

val pp : Format.formatter -> t -> unit

(** The seed list-based implementation, retained as the reference model
    for differential tests and as the microbenchmark baseline. Semantics
    are identical to the indexed table (same tie-breaks, same monotone
    ids); complexity is O(rules) per operation. *)
module Legacy : sig
  type t

  val create : unit -> t
  val install : t -> priority:int -> dst:int -> tag_match:tag_match -> action -> rule
  val modify_actions : t -> dst:int -> tag_match:tag_match -> action -> int
  val remove : t -> dst:int -> tag_match:tag_match -> int
  val lookup : t -> dst:int -> tag:int option -> rule option

  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
  val size : t -> int
  val rules : t -> rule list
end
