module Obs = Chronus_obs.Obs

let c_dispatched = Obs.Counter.v "sim.events_dispatched"
let s_run = Obs.Span.v "sim.run"

module Fiber = Chronus_fiber.Fiber

type t = {
  queue : Event_queue.t;
  mutable clock : Sim_time.t;
  mutable dispatched : int;
  mutable fibers : Fiber.runtime option;
}

let create () =
  { queue = Event_queue.create (); clock = 0; dispatched = 0; fibers = None }

let now t = t.clock

let at t time thunk = Event_queue.push t.queue ~time:(max time t.clock) thunk

let after t delay thunk = at t (t.clock + max 0 delay) thunk

let fiber_runtime t =
  match t.fibers with
  | Some rt -> rt
  | None ->
      let rt =
        Fiber.runtime
          ~now:(fun () -> t.clock)
          ~schedule:(fun time thunk -> at t time thunk)
      in
      t.fibers <- Some rt;
      rt

(* Fibers woken by an event run at the same virtual instant, before the
   next event — the microtask discipline that keeps the fiber-based
   control channel digest-identical to the old callback one. *)
let tick t = match t.fibers with Some rt -> Fiber.drain rt | None -> ()

(* The hot loop is allocation-free per event: [next_time]/[run_next]
   avoid the [Some time] / [Some (time, thunk)] boxes [peek_time]/[pop]
   would build for every dispatch. *)
let run ?until t =
  Obs.Span.with_h s_run @@ fun () ->
  tick t;
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty t.queue then begin
      (match until with Some u when u > t.clock -> t.clock <- u | _ -> ());
      continue := false
    end
    else begin
      let time = Event_queue.next_time t.queue in
      match until with
      | Some u when time > u ->
          t.clock <- u;
          continue := false
      | _ ->
          t.clock <- time;
          Obs.Counter.incr c_dispatched;
          t.dispatched <- t.dispatched + 1;
          ignore (Event_queue.run_next t.queue : bool);
          tick t
    end
  done

let step t =
  tick t;
  if Event_queue.is_empty t.queue then false
  else begin
    t.clock <- Event_queue.next_time t.queue;
    Obs.Counter.incr c_dispatched;
    t.dispatched <- t.dispatched + 1;
    ignore (Event_queue.run_next t.queue : bool);
    tick t;
    true
  end

let pending t = Event_queue.size t.queue

let dispatched t = t.dispatched
