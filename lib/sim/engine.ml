module Obs = Chronus_obs.Obs

let c_dispatched = Obs.Counter.v "sim.events_dispatched"
let s_run = Obs.Span.v "sim.run"

type t = { queue : Event_queue.t; mutable clock : Sim_time.t }

let create () = { queue = Event_queue.create (); clock = 0 }

let now t = t.clock

let at t time thunk = Event_queue.push t.queue ~time:(max time t.clock) thunk

let after t delay thunk = at t (t.clock + max 0 delay) thunk

let run ?until t =
  Obs.Span.with_h s_run @@ fun () ->
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None ->
        (match until with Some u when u > t.clock -> t.clock <- u | _ -> ());
        continue := false
    | Some time -> (
        match until with
        | Some u when time > u ->
            t.clock <- u;
            continue := false
        | _ -> (
            match Event_queue.pop t.queue with
            | None -> continue := false
            | Some (time, thunk) ->
                t.clock <- time;
                Obs.Counter.incr c_dispatched;
                thunk ()))
  done

let pending t = Event_queue.size t.queue
