module Obs = Chronus_obs.Obs

let c_compiles = Obs.Counter.v "sim.prefix_compiles"

(* Compile a switch's complete dst -> action function into a minimal
   aggregated prefix table, in the spirit of ORTC (Draves et al.) and
   the frenetic NetKAT compiler: bottom-up candidate-action sets over a
   binary trie of the address space, top-down emission only where the
   inherited action stops being viable.

   Addresses the caller never binds are don't-care: an emitted ancestor
   rule may cover them with any action, which is what lets one rule per
   pod replace thousands of per-host rules on a fat-tree core switch. *)

type binding = { b_addr : int; b_action : Flow_table.action }

(* Candidate sets are small sorted-unique lists; OCaml's structural
   compare on [action] gives a deterministic order, so [List.hd] is the
   canonical choice when a set must be narrowed to one action. *)
let rec union a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c = 0 then x :: union xs ys
      else if c < 0 then x :: union xs b
      else y :: union a ys

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c = 0 then x :: inter xs ys
      else if c < 0 then inter xs b
      else inter a ys

(* The bottom-up pass, fused with trie construction: [bindings] is
   sorted by address, [depth] bits of every address agree with [pfx].
   Returns the annotated tree, or [None] for a fully don't-care
   subtree. *)
type tree = {
  t_set : Flow_table.action list;  (* candidate set, sorted unique *)
  t_zero : tree option;
  t_one : tree option;
}

let bit width addr i = (addr lsr (width - 1 - i)) land 1

let rec build width depth bindings =
  match bindings with
  | [] -> None
  | [ b ] when depth = width -> Some { t_set = [ b.b_action ]; t_zero = None; t_one = None }
  | _ when depth = width ->
      (* Duplicate addresses: the last binding wins, matching the
         "complete forwarding function" reading of the input. *)
      let last = List.nth bindings (List.length bindings - 1) in
      Some { t_set = [ last.b_action ]; t_zero = None; t_one = None }
  | _ ->
      let zs, os = List.partition (fun b -> bit width b.b_addr depth = 0) bindings in
      let z = build width (depth + 1) zs and o = build width (depth + 1) os in
      let set =
        match (z, o) with
        | None, None -> assert false
        | Some t, None | None, Some t -> t.t_set
        | Some a, Some b -> (
            match inter a.t_set b.t_set with [] -> union a.t_set b.t_set | i -> i)
      in
      Some { t_set = set; t_zero = z; t_one = o }

let rec emit width depth pfx inherited tree acc =
  match tree with
  | None -> acc
  | Some t ->
      let covered =
        match inherited with Some a -> List.mem a t.t_set | None -> false
      in
      let inherited, acc =
        if covered then (inherited, acc)
        else
          let chosen = List.hd t.t_set in
          (Some chosen, (pfx, depth, chosen) :: acc)
      in
      if depth = width then acc
      else
        let acc = emit width (depth + 1) pfx inherited t.t_zero acc in
        emit width (depth + 1) (pfx lor (1 lsl (width - 1 - depth))) inherited t.t_one acc

let compile ?(width = Flow_table.addr_bits) bindings =
  if width < 1 || width > Flow_table.addr_bits then
    invalid_arg
      (Printf.sprintf "Table_compiler.compile: width %d outside [1, %d]" width
         Flow_table.addr_bits);
  match bindings with
  | [] -> []
  | _ ->
      Obs.Counter.incr c_compiles;
      let bindings =
        List.stable_sort
          (fun a b -> compare (fst a) (fst b))
          bindings
        |> List.map (fun (addr, action) ->
               if addr < 0 || addr lsr width <> 0 then
                 invalid_arg
                   (Printf.sprintf
                      "Table_compiler.compile: address %d outside %d bits" addr
                      width)
               else { b_addr = addr; b_action = action })
      in
      let tree = build width 0 bindings in
      List.rev (emit width 0 0 None tree [])
