(** The control plane: a logically centralised controller connected to
    every switch over an asynchronous channel with per-switch command
    latency — the source of the reordering that makes consistent updates
    hard. Supports plain flow-mods (applied on arrival), *timed* flow-mods
    carrying an execution timestamp (Time4 semantics: the switch applies
    the change at that exact instant, however early the command arrived),
    and OpenFlow barriers (the reply is sent once every command received
    before the barrier has been applied — Algorithm 5's synchronisation). *)

type t

type flow_mod =
  | Install of {
      priority : int;
      dst : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }
  | Modify of {
      dst : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }
  | Remove of { dst : int; tag_match : Flow_table.tag_match }
  | Install_prefix of {
      priority : int;
      prefix : int;
      len : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }
      (** An aggregated base-forwarding rule — the output of
          [Table_compiler], installed by [Exec_env] preinstall. Update
          commands stay exact-match, so they always shadow these. *)

val create :
  ?latency:(switch:int -> Sim_time.t) -> Network.t -> t
(** [latency] models the control channel's per-command delay (default:
    constant 1 ms). Called once per command and per barrier leg, so a
    randomised function yields the asynchrony of the paper's OR runs. *)

(** What the channel/switch pair does with a command — the hook
    [Chronus_faults] drives. [Deliver] is the normal path; [Lose] drops
    the command in the channel (it still counts as sent, but never
    arrives and never blocks a barrier); [Reject] means the switch
    processes but does not apply it (and never acks); [Crash f] means the
    switch reboots on receipt: instead of applying, it runs [f] (which
    restores the persisted table) and never acks. *)
type handling = Deliver | Lose | Reject | Crash of (unit -> unit)

val send :
  t ->
  ?execute_at:Sim_time.t ->
  ?latency:Sim_time.t ->
  ?process_delay:Sim_time.t ->
  ?handling:handling ->
  ?counted:bool ->
  ?ack:(Sim_time.t -> unit) ->
  switch:int ->
  flow_mod ->
  unit
(** Issue a command now. Without [execute_at] it is applied when it
    reaches the switch; with it, at [max arrival execute_at]. [latency]
    overrides this command's forward-leg delay (the default draws from
    the constructor's latency function); [process_delay] adds switch-side
    processing time after the execution stamp (a straggler);
    [handling] defaults to [Deliver]; [counted] (default true) controls
    whether the command increments {!commands_sent} — duplicates
    injected by the fault layer pass [false]; [ack], if given and the
    command is delivered, is called when the switch's acknowledgement
    reaches the controller (one reverse latency leg after application). *)

val barrier : t -> switch:int -> (Sim_time.t -> unit) -> unit
(** Issue an OFBarrierRequest now; the callback receives the time at
    which the OFBarrierReply reaches the controller. *)

val barrier_all : t -> switches:int list -> (Sim_time.t -> unit) -> unit
(** Barrier every listed switch; the callback fires once after the last
    reply. *)

val commands_sent : t -> int

val peak_rules : t -> int
(** Largest total rule count across all switches observed right after any
    command application — the transition footprint of Fig. 9. *)

(** {1 Fiber-context synchronisation}

    The channel itself runs on [Chronus_fiber]: each switch is a fiber
    looping on an inbox, [send] is a timed mailbox delivery, and acks
    are scheduled by the switch fiber. The waiting variants below are
    the straight-line counterparts of {!barrier}/{!barrier_all} for
    callers that are themselves fibers. *)

val barrier_wait : t -> switch:int -> Sim_time.t
(** {!barrier}, suspending the calling fiber until the reply arrives;
    returns the reply's arrival time. The caller resumes at that
    virtual instant, exactly where the callback would have run. *)

val barrier_all_wait : t -> switches:int list -> Sim_time.t
(** {!barrier_all}, suspending the calling fiber; returns the latest
    reply time. *)
