(** Simulated wall-clock time in integer microseconds — the resolution of
    Time4-style scheduled updates ("on the order of one microsecond"). *)

type t = int

val usec : int -> t
(** [usec n] is [n] microseconds. *)

val msec : int -> t
(** [msec n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_float : float -> t
(** Fractional seconds, truncated to whole microseconds. *)

val to_sec : t -> float
(** Microseconds to fractional seconds. *)

val to_msec : t -> float
(** Microseconds to fractional milliseconds. *)

val pp : Format.formatter -> t -> unit
(** Prints seconds with millisecond precision. *)
