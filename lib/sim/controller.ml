module Fiber = Chronus_fiber.Fiber

type flow_mod =
  | Install of {
      priority : int;
      dst : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }
  | Modify of {
      dst : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }
  | Remove of { dst : int; tag_match : Flow_table.tag_match }
  | Install_prefix of {
      priority : int;
      prefix : int;
      len : int;
      tag_match : Flow_table.tag_match;
      action : Flow_table.action;
    }

type handling = Deliver | Lose | Reject | Crash of (unit -> unit)

(* What the control channel delivers into a switch's inbox: the command
   itself plus what the fault layer decided about it and when the switch
   (its clock error already folded in) applies it. *)
type message = {
  m_mod : flow_mod;
  m_handling : handling;
  m_ack : (Sim_time.t -> unit) option;
  m_applied_at : Sim_time.t;
}

type t = {
  net : Network.t;
  rt : Fiber.runtime;
  latency : switch:int -> Sim_time.t;
  (* Completion time of every command still outstanding, per switch; a
     barrier must wait for the ones issued before it. *)
  outstanding : (int, Sim_time.t list) Hashtbl.t;
  (* One fiber per switch, spawned on first contact, looping on its
     inbox. *)
  inboxes : (int, message Fiber.Mailbox.t) Hashtbl.t;
  mutable sent : int;
  mutable peak_rules : int;
}

let create ?(latency = fun ~switch:_ -> Sim_time.msec 1) net =
  {
    net;
    rt = Engine.fiber_runtime (Network.engine net);
    latency;
    outstanding = Hashtbl.create 16;
    inboxes = Hashtbl.create 16;
    sent = 0;
    peak_rules = Network.total_rules net;
  }

let apply t ~switch mod_ =
  let table = Network.table t.net switch in
  (match mod_ with
  | Install { priority; dst; tag_match; action } ->
      ignore (Flow_table.install table ~priority ~dst ~tag_match action)
  | Modify { dst; tag_match; action } ->
      ignore (Flow_table.modify_actions table ~dst ~tag_match action)
  | Remove { dst; tag_match } ->
      ignore (Flow_table.remove table ~dst ~tag_match)
  | Install_prefix { priority; prefix; len; tag_match; action } ->
      ignore (Flow_table.install_prefix table ~priority ~prefix ~len ~tag_match action));
  t.peak_rules <- max t.peak_rules (Network.total_rules t.net)

let record_outstanding t switch time =
  let current =
    Option.value ~default:[] (Hashtbl.find_opt t.outstanding switch)
  in
  (* Prune completions that are already in the past: a future barrier's
     request arrives no earlier than [now], so entries at or before it
     can never win the max and would otherwise accumulate for the whole
     run on large update batches. *)
  let now = Engine.now (Network.engine t.net) in
  let current = List.filter (fun at -> at > now) current in
  Hashtbl.replace t.outstanding switch (time :: current)

(* The switch: one fiber looping on its inbox. Each message is already
   stamped with its application time — the channel delivers it exactly
   then, so the fiber applies it at the virtual instant it wakes. *)
let rec serve t ~switch inbox : unit =
  let m = Fiber.Mailbox.recv inbox in
  (match m.m_handling with
  | Deliver -> apply t ~switch m.m_mod
  | Reject -> ()
  | Crash restore -> restore ()
  | Lose -> ());
  (match (m.m_handling, m.m_ack) with
  | Deliver, Some f ->
      (* The ack rides the reverse control-channel leg. *)
      let reply = m.m_applied_at + t.latency ~switch in
      Engine.at (Network.engine t.net) reply (fun () -> f reply)
  | _ -> ());
  serve t ~switch inbox

let inbox_for t switch =
  match Hashtbl.find_opt t.inboxes switch with
  | Some box -> box
  | None ->
      let box = Fiber.Mailbox.create t.rt in
      Hashtbl.replace t.inboxes switch box;
      ignore
        (Fiber.spawn_root t.rt (fun () -> serve t ~switch box) : unit Fiber.t);
      box

let send t ?execute_at ?latency ?(process_delay = 0) ?(handling = Deliver)
    ?(counted = true) ?ack ~switch mod_ =
  if counted then t.sent <- t.sent + 1;
  match handling with
  | Lose -> ()
  | _ ->
      let engine = Network.engine t.net in
      let forward =
        match latency with Some l -> l | None -> t.latency ~switch
      in
      let arrival = Engine.now engine + forward in
      let applied_at =
        match execute_at with
        | None -> arrival
        | Some stamp -> max arrival stamp
      in
      let applied_at = applied_at + process_delay in
      record_outstanding t switch applied_at;
      let inbox = inbox_for t switch in
      Engine.at engine applied_at (fun () ->
          Fiber.Mailbox.send inbox
            { m_mod = mod_; m_handling = handling; m_ack = ack; m_applied_at = applied_at })

let barrier t ~switch callback =
  let engine = Network.engine t.net in
  let request_arrival = Engine.now engine + t.latency ~switch in
  let waiting_for =
    Option.value ~default:[] (Hashtbl.find_opt t.outstanding switch)
  in
  let processed = List.fold_left max request_arrival waiting_for in
  let reply_arrival = processed + t.latency ~switch in
  Engine.at engine reply_arrival (fun () -> callback reply_arrival)

let barrier_all t ~switches callback =
  match switches with
  | [] ->
      let engine = Network.engine t.net in
      Engine.after engine 0 (fun () -> callback (Engine.now engine))
  | _ ->
      let pending = ref (List.length switches) in
      let latest = ref 0 in
      List.iter
        (fun switch ->
          barrier t ~switch (fun at ->
              latest := max !latest at;
              decr pending;
              if !pending = 0 then callback !latest))
        switches

let barrier_wait t ~switch =
  let box = Fiber.Mailbox.create t.rt in
  barrier t ~switch (fun at -> Fiber.Mailbox.send box at);
  Fiber.Mailbox.recv box

let barrier_all_wait t ~switches =
  let box = Fiber.Mailbox.create t.rt in
  barrier_all t ~switches (fun at -> Fiber.Mailbox.send box at);
  Fiber.Mailbox.recv box

let commands_sent t = t.sent

let peak_rules t = t.peak_rules
