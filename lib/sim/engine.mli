(** The discrete-event loop: a clock and an event queue. Events scheduled
    in the past fire immediately (at the current clock). *)

type t
(** One simulation engine: a monotone clock plus a pending-event queue. *)

val create : unit -> t
(** A fresh engine with the clock at time 0 and nothing pending. *)

val now : t -> Sim_time.t
(** The current simulated time: the timestamp of the last dispatched
    event (0 before the first). *)

val at : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule at an absolute time (clamped to [now] if earlier). *)

val after : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule after a relative delay (clamped to 0). *)

val run : ?until:Sim_time.t -> t -> unit
(** Drain the queue in time order; with [until], stop once the next event
    would fire strictly after it (the clock then reads [until]). *)

val pending : t -> int
(** Number of events still queued. *)

val dispatched : t -> int
(** Events dispatched by this engine since creation. Unlike the global
    [sim.events_dispatched] counter this is per-engine, so experiment
    rows built from it stay deterministic under parallel trials. *)

val step : t -> bool
(** Dispatch the single next event (draining ready fibers before and
    after it), or return [false] if nothing is pending. The
    fine-grained alternative to {!run} for callers that interleave the
    loop with outside work. *)

val fiber_runtime : t -> Chronus_fiber.Fiber.runtime
(** The cooperative fiber runtime driven by this engine's clock and
    queue, created on first use. {!run}/{!step} drain it after every
    dispatched event, so fibers woken by an event run at the same
    virtual instant — see [Chronus_fiber.Fiber]. *)
