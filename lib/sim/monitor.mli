(** Bandwidth measurement, Floodlight-style: the controller periodically
    reads every link's cumulative byte counter; the difference between two
    reads divided by the interval is the bandwidth consumption plotted in
    Fig. 6. Also keeps a running count of rule-table occupancy so that
    Fig. 9 can report the peak footprint over a run. *)

type t

type sample = {
  at : Sim_time.t;  (** end of the interval *)
  mbps : float;
}

(** Consistency violations observed online during a run: forwarding
    loops (chunks dropped at the hop limit), blackholes (chunks matching
    no rule), and link-overload sampling intervals. The first two arrive
    through a {!Network.on_drop} observer the moment they happen; the
    third is counted at each sampling tick. Chronus's correctness claim
    is exactly that a consistent update keeps all three at zero. *)
type violations = {
  transient_loops : int;  (** hop-limit drops (loop evidence) *)
  blackholes : int;  (** no-rule drops *)
  overload_samples : int;  (** samples where a link exceeded capacity *)
}

val create : ?interval:Sim_time.t -> Network.t -> t
(** Start sampling every [interval] (default 1 s) from the current time;
    runs for as long as the engine does. Also registers a drop observer
    on the network, so violation counting starts immediately. *)

val violations : t -> violations

val no_violations : violations -> bool

val stop_after : t -> Sim_time.t -> unit
(** Do not schedule samples beyond this absolute time (the engine would
    otherwise never drain). *)

val series : t -> int * int -> sample list
(** Chronological bandwidth series of a link. Empty when never sampled. *)

val peak : t -> int * int -> float
(** Highest observed consumption on a link, in Mbit/s; 0 when unknown. *)

val busiest_link : t -> ((int * int) * float) option
(** Link with the highest peak consumption. *)

val congested_samples : t -> ((int * int) * sample) list
(** Samples whose consumption exceeded the link capacity. *)

val peak_rules : t -> int
(** Largest total rule count observed at any sampling instant. *)
