(** Compile a switch's complete destination → action function into a
    minimal aggregated prefix rule set, in the ORTC / frenetic
    NetKAT-compiler spirit: a bottom-up pass annotates every trie node
    with its candidate-action set (children's intersection when
    nonempty, else their union; an absent subtree is don't-care), and a
    top-down pass emits a rule only where the inherited action leaves
    the node's set. The result, installed with
    {!Flow_table.install_prefix} at a single priority, forwards every
    bound address exactly as the input function does — one rule per pod
    instead of one per host on a fat-tree core switch. *)

val compile :
  ?width:int ->
  (int * Flow_table.action) list ->
  (int * int * Flow_table.action) list
(** [compile bindings] takes [(addr, action)] bindings — a switch's
    forwarding function over the addresses that matter — and returns
    [(prefix, len, action)] rules such that a longest-prefix-match
    lookup of any bound address yields its bound action. Unbound
    addresses may fall under an aggregated rule (they are don't-care).
    Duplicate addresses resolve to the last binding. [width] defaults
    to {!Flow_table.addr_bits}; raises [Invalid_argument] on addresses
    outside the width. Output is deterministic: ties between equally
    viable actions break by structural order. An empty input compiles
    to the empty table. *)
