module Obs = Chronus_obs.Obs

(* High-water mark of a network's total installed rules; fed by the
   per-table size observers so it costs O(1) per flow-mod. *)
let g_rules_high_water = Obs.Gauge.v "sim.rules_high_water"

type drop_reason = No_rule | Hop_limit

type stats = {
  delivered_bytes : int;
  dropped_no_rule : int;
  dropped_loop : int;
}

type link_state = {
  capacity_mbps : float;
  delay : Sim_time.t;
  mutable bytes_in : int;
}

type t = {
  engine : Engine.t;
  tables : (int, Flow_table.t) Hashtbl.t;
  link_map : (int * int, link_state) Hashtbl.t;
  mutable rules_total : int;
  mutable delivered_bytes : int;
  mutable dropped_no_rule : int;
  mutable dropped_loop : int;
  mutable drop_observers : (drop_reason -> switch:int -> bytes:int -> unit) list;
}

let hop_limit = 64

let create engine =
  {
    engine;
    tables = Hashtbl.create 64;
    link_map = Hashtbl.create 64;
    rules_total = 0;
    delivered_bytes = 0;
    dropped_no_rule = 0;
    dropped_loop = 0;
    drop_observers = [];
  }

let engine t = t.engine

let add_switch t v =
  if not (Hashtbl.mem t.tables v) then begin
    let table = Flow_table.create () in
    Flow_table.on_size_change table (fun delta ->
        t.rules_total <- t.rules_total + delta;
        Obs.Gauge.observe g_rules_high_water t.rules_total);
    Hashtbl.replace t.tables v table
  end

let add_link t ~capacity_mbps ~delay u v =
  add_switch t u;
  add_switch t v;
  Hashtbl.replace t.link_map (u, v) { capacity_mbps; delay; bytes_in = 0 }

let table t v = Hashtbl.find t.tables v

let switches t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.tables [] |> List.sort compare

let links t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.link_map [] |> List.sort compare

let link_state t key =
  match Hashtbl.find_opt t.link_map key with
  | Some l -> l
  | None -> raise Not_found

let link_capacity_mbps t key = (link_state t key).capacity_mbps
let link_delay t key = (link_state t key).delay
let link_bytes t key = (link_state t key).bytes_in

let drop t reason ~switch ~bytes =
  (match reason with
  | No_rule -> t.dropped_no_rule <- t.dropped_no_rule + bytes
  | Hop_limit -> t.dropped_loop <- t.dropped_loop + bytes);
  List.iter (fun f -> f reason ~switch ~bytes) t.drop_observers

(* Process a chunk arriving at switch [v] now. *)
let rec arrive t v ~dst ~tag ~bytes ~hops =
  if hops > hop_limit then drop t Hop_limit ~switch:v ~bytes
  else
    match Flow_table.lookup (table t v) ~dst ~tag with
    | None -> drop t No_rule ~switch:v ~bytes
    | Some rule -> (
        let tag =
          match rule.Flow_table.action.Flow_table.set_tag with
          | None -> tag
          | Some stamp -> Some stamp
        in
        match rule.Flow_table.action.Flow_table.forward with
        | Flow_table.Drop -> drop t No_rule ~switch:v ~bytes
        | Flow_table.To_host -> t.delivered_bytes <- t.delivered_bytes + bytes
        | Flow_table.Out w -> (
            match Hashtbl.find_opt t.link_map (v, w) with
            | None -> drop t No_rule ~switch:v ~bytes
            | Some link ->
                link.bytes_in <- link.bytes_in + bytes;
                Engine.after t.engine link.delay (fun () ->
                    arrive t w ~dst ~tag ~bytes ~hops:(hops + 1))))

let inject t ~at ~dst ?tag ~bytes () = arrive t at ~dst ~tag ~bytes ~hops:0

let add_source t ~attach ~dst ~rate_mbps ?(chunk = Sim_time.msec 10) ~start
    ~stop () =
  let bytes_per_chunk =
    int_of_float (rate_mbps *. 1e6 /. 8. *. Sim_time.to_sec chunk)
  in
  let rec emit at =
    if at < stop then
      Engine.at t.engine at (fun () ->
          inject t ~at:attach ~dst ~bytes:bytes_per_chunk ();
          emit (at + chunk))
  in
  emit start

let stats t =
  {
    delivered_bytes = t.delivered_bytes;
    dropped_no_rule = t.dropped_no_rule;
    dropped_loop = t.dropped_loop;
  }

(* O(1): maintained incrementally by the per-table size observers, so
   callers polling it after every command (Controller.apply, Monitor)
   no longer rescan every switch. *)
let total_rules t = t.rules_total

let on_drop t f = t.drop_observers <- t.drop_observers @ [ f ]
