module Obs = Chronus_obs.Obs

(* High-water mark of the queue size: how deep a simulation's event
   backlog gets. Observed on every push; reading the gauge never
   influences the simulation. *)
let g_high_water = Obs.Gauge.v "sim.queue_high_water"

(* How often the calendar queue rebuilt its bucket ring to track the
   event-density of the workload. *)
let c_resizes = Obs.Counter.v "sim.queue_resizes"

module type S = sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int
  val push : t -> time:Sim_time.t -> (unit -> unit) -> unit
  val pop : t -> (Sim_time.t * (unit -> unit)) option
  val peek_time : t -> Sim_time.t option
  val next_time : t -> Sim_time.t
  val run_next : t -> bool
end

(* The seed binary min-heap, retained as the reference implementation
   for the differential QCheck suite. Ties break by insertion order via
   an explicit sequence number. *)
module Heap : S = struct
  type entry = { time : Sim_time.t; seq : int; thunk : unit -> unit }

  type t = {
    mutable data : entry array;
    mutable size : int;
    mutable next_seq : int;
  }

  let dummy = { time = 0; seq = 0; thunk = ignore }

  let create () = { data = Array.make 256 dummy; size = 0; next_seq = 0 }

  let is_empty h = h.size = 0

  let size h = h.size

  let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h ~time thunk =
    if h.size = Array.length h.data then begin
      let data = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- { time; seq = h.next_seq; thunk };
    h.next_seq <- h.next_seq + 1;
    h.size <- h.size + 1;
    Obs.Gauge.observe g_high_water h.size;
    let i = ref (h.size - 1) in
    while !i > 0 && earlier h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let take h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- dummy;
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.size && earlier h.data.(l) h.data.(!best) then best := l;
      if r < h.size && earlier h.data.(r) h.data.(!best) then best := r;
      if !best = !i then continue := false
      else begin
        swap h !i !best;
        i := !best
      end
    done;
    top

  let pop h =
    if h.size = 0 then None
    else
      let top = take h in
      Some (top.time, top.thunk)

  let peek_time h = if h.size = 0 then None else Some h.data.(0).time

  let next_time h = if h.size = 0 then raise Not_found else h.data.(0).time

  let run_next h =
    if h.size = 0 then false
    else begin
      let top = take h in
      top.thunk ();
      true
    end
end

(* A calendar queue (Brown 1988): a ring of buckets, each covering one
   "day" of [width] microseconds; bucket = day mod ring size. Buckets
   hold ascending-sorted cells, one per distinct timestamp, and each
   cell queues its thunks FIFO — which reproduces the heap's
   (time, seq) order exactly: two events at the same instant land in
   the same cell and pop in insertion order, and distinct instants pop
   in time order. Push and pop are O(1) amortized when the ring tracks
   the event density; [rebuild] re-derives [width] from the live spread
   whenever the cell count outgrows (or far undershoots) the ring. *)
module Calendar : S = struct
  type cell = { c_time : int; q : (unit -> unit) Queue.t }

  type t = {
    mutable buckets : cell list array;
    mutable mask : int;  (** ring size - 1; ring size is a power of two *)
    mutable width : int;  (** day width in microseconds, >= 1 *)
    mutable size : int;  (** pending thunks *)
    mutable ncells : int;  (** distinct (bucket, timestamp) cells *)
    mutable cur_day : int;  (** scan position; no cell lies earlier *)
  }

  let initial_buckets = 256
  let max_buckets = 65536
  let initial_width = 1_000 (* 1 ms *)

  let create () =
    {
      buckets = Array.make initial_buckets [];
      mask = initial_buckets - 1;
      width = initial_width;
      size = 0;
      ncells = 0;
      cur_day = 0;
    }

  let is_empty t = t.size = 0

  let size t = t.size

  (* Re-bucket every cell into a ring of [nbuckets'], re-deriving the
     day width from the live spread so that cells stay roughly one per
     bucket-day. Deterministic: depends only on queue contents. *)
  let rebuild t nbuckets' =
    Obs.Counter.incr c_resizes;
    let cells = ref [] in
    Array.iter (List.iter (fun c -> cells := c :: !cells)) t.buckets;
    let asc = List.sort (fun a b -> compare a.c_time b.c_time) !cells in
    match asc with
    | [] ->
        t.buckets <- Array.make nbuckets' [];
        t.mask <- nbuckets' - 1;
        t.cur_day <- 0
    | first :: _ ->
        let tmin = first.c_time in
        let tmax = List.fold_left (fun _ c -> c.c_time) tmin asc in
        let n = List.length asc in
        let width = max 1 (((tmax - tmin) / n) + 1) in
        let buckets = Array.make nbuckets' [] in
        let mask = nbuckets' - 1 in
        (* Iterate descending so each bucket list ends up ascending. *)
        List.iter
          (fun c ->
            let i = c.c_time / width land mask in
            buckets.(i) <- c :: buckets.(i))
          (List.rev asc);
        t.buckets <- buckets;
        t.mask <- mask;
        t.width <- width;
        t.cur_day <- tmin / width

  let push t ~time thunk =
    let idx = time / t.width land t.mask in
    let rec add = function
      | [] ->
          t.ncells <- t.ncells + 1;
          let q = Queue.create () in
          Queue.add thunk q;
          [ { c_time = time; q } ]
      | c :: rest as l ->
          if c.c_time = time then begin
            Queue.add thunk c.q;
            l
          end
          else if c.c_time < time then c :: add rest
          else begin
            t.ncells <- t.ncells + 1;
            let q = Queue.create () in
            Queue.add thunk q;
            { c_time = time; q } :: l
          end
    in
    t.buckets.(idx) <- add t.buckets.(idx);
    t.size <- t.size + 1;
    Obs.Gauge.observe g_high_water t.size;
    let day = time / t.width in
    if day < t.cur_day then t.cur_day <- day;
    let nbuckets = t.mask + 1 in
    if t.ncells > 2 * nbuckets && nbuckets < max_buckets then
      rebuild t (2 * nbuckets)

  (* Advance the scan to the day holding the earliest cell and return
     its bucket index; -1 when empty. Invariant: no cell lies before
     day [t.cur_day] (pushes into the past rewind it). *)
  let locate t =
    if t.size = 0 then -1
    else begin
      let nbuckets = t.mask + 1 in
      let found = ref (-1) in
      let steps = ref 0 in
      while !found < 0 do
        if !steps >= nbuckets then begin
          (* Full cycle without a hit: every cell lies a year or more
             ahead. Jump straight to the globally earliest head — heads
             are bucket minima, and two buckets can never share a head
             timestamp, so the minimum is unique. *)
          let best = ref max_int and best_idx = ref (-1) in
          Array.iteri
            (fun i b ->
              match b with
              | c :: _ when c.c_time < !best ->
                  best := c.c_time;
                  best_idx := i
              | _ -> ())
            t.buckets;
          t.cur_day <- !best / t.width;
          found := !best_idx
        end
        else begin
          let idx = t.cur_day land t.mask in
          match t.buckets.(idx) with
          | c :: _ when c.c_time / t.width = t.cur_day -> found := idx
          | _ ->
              t.cur_day <- t.cur_day + 1;
              incr steps
        end
      done;
      !found
    end

  (* Dequeue the head thunk of the earliest cell at [idx]; the caller
     has already located it. Allocation-free on the fast path. *)
  let take_thunk t idx =
    match t.buckets.(idx) with
    | [] -> assert false
    | c :: rest ->
        let thunk = Queue.pop c.q in
        if Queue.is_empty c.q then begin
          t.buckets.(idx) <- rest;
          t.ncells <- t.ncells - 1
        end;
        t.size <- t.size - 1;
        let nbuckets = t.mask + 1 in
        if nbuckets > initial_buckets && t.ncells * 8 < nbuckets then
          rebuild t (nbuckets / 2);
        thunk

  let head_time t idx =
    match t.buckets.(idx) with c :: _ -> c.c_time | [] -> assert false

  let pop t =
    match locate t with
    | -1 -> None
    | idx ->
        let time = head_time t idx in
        Some (time, take_thunk t idx)

  let peek_time t =
    match locate t with -1 -> None | idx -> Some (head_time t idx)

  let next_time t =
    match locate t with -1 -> raise Not_found | idx -> head_time t idx

  let run_next t =
    match locate t with
    | -1 -> false
    | idx ->
        let thunk = take_thunk t idx in
        thunk ();
        true
end

(* The simulator runs on the calendar queue. *)
include Calendar
