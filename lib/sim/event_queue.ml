module Obs = Chronus_obs.Obs

(* High-water mark of the heap size: how deep a simulation's event
   backlog gets. Observed on every push; reading the gauge never
   influences the simulation. *)
let g_high_water = Obs.Gauge.v "sim.queue_high_water"

type entry = { time : Sim_time.t; seq : int; thunk : unit -> unit }

type t = {
  mutable data : entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { time = 0; seq = 0; thunk = ignore }

let create () = { data = Array.make 256 dummy; size = 0; next_seq = 0 }

let is_empty h = h.size = 0

let size h = h.size

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let push h ~time thunk =
  if h.size = Array.length h.data then begin
    let data = Array.make (2 * h.size) dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- { time; seq = h.next_seq; thunk };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  Obs.Gauge.observe g_high_water h.size;
  let i = ref (h.size - 1) in
  while !i > 0 && earlier h.data.(!i) h.data.((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- dummy;
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.size && earlier h.data.(l) h.data.(!best) then best := l;
      if r < h.size && earlier h.data.(r) h.data.(!best) then best := r;
      if !best = !i then continue := false
      else begin
        swap h !i !best;
        i := !best
      end
    done;
    Some (top.time, top.thunk)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time
