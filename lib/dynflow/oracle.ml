open Chronus_graph

type outcome = Delivered | Looped of Graph.node | Dropped of Graph.node

type cohort = {
  injected : int;
  visits : (Graph.node * int) list;
  outcome : outcome;
}

type violation =
  | Congestion of {
      u : Graph.node;
      v : Graph.node;
      time : int;
      load : int;
      capacity : int;
    }
  | Loop of { switch : Graph.node; injected : int; time : int }
  | Blackhole of { switch : Graph.node; injected : int; time : int }

type report = {
  ok : bool;
  violations : violation list;
  congested : (Graph.node * Graph.node * int) list;
  peak_load : int;
  window : int * int;
}

let rule_at inst sched v t =
  match Schedule.find v sched with
  | Some update_time when t >= update_time -> Instance.new_next inst v
  | Some _ | None -> Instance.old_next inst v

(* Follow one cohort. [record] is called with [(u, v, entry_time)] for every
   link the cohort enters, including the entry on which a loop is detected
   (the flow is physically on that link when it closes the loop). *)
let trace_from_with inst sched ~record start injected =
  let dst = Instance.destination inst in
  let visited = Hashtbl.create 16 in
  let rec step v t visits =
    Hashtbl.replace visited v ();
    if v = dst then { injected; visits = List.rev visits; outcome = Delivered }
    else
      match rule_at inst sched v t with
      | None -> { injected; visits = List.rev visits; outcome = Dropped v }
      | Some w ->
          record v w t;
          let t' = t + Graph.delay inst.Instance.graph v w in
          if Hashtbl.mem visited w then
            {
              injected;
              visits = List.rev ((w, t') :: visits);
              outcome = Looped w;
            }
          else step w t' ((w, t') :: visits)
  in
  step start injected [ (start, injected) ]

let trace_with inst sched ~record injected =
  trace_from_with inst sched ~record (Instance.source inst) injected

let trace inst sched injected =
  trace_with inst sched ~record:(fun _ _ _ -> ()) injected

let trace_from inst sched start time =
  trace_from_with inst sched ~record:(fun _ _ _ -> ()) start time

let rec last_visit = function
  | [] -> assert false
  | [ (w, t) ] -> (w, t)
  | _ :: rest -> last_visit rest

(* The violation time of a loop is the revisit time (the last entry of the
   visit list is the repeated switch); a blackhole happens where and when
   the cohort last arrived. *)
let cohort_violation c =
  match c.outcome with
  | Delivered -> None
  | Looped _ ->
      let w, t = last_visit c.visits in
      Some (Loop { switch = w; injected = c.injected; time = t })
  | Dropped v ->
      let _, t = last_visit c.visits in
      Some (Blackhole { switch = v; injected = c.injected; time = t })

(* Old-path prefix delays: time from the source to each switch along the
   initial path. *)
let prefix_delays inst =
  let tbl = Hashtbl.create 32 in
  let g = inst.Instance.graph in
  let rec walk acc = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        if not (Hashtbl.mem tbl u) then Hashtbl.replace tbl u acc;
        let acc = acc + Graph.delay g u v in
        if not (Hashtbl.mem tbl v) then Hashtbl.replace tbl v acc;
        walk acc rest
  in
  (match inst.Instance.p_init with
  | [ only ] -> Hashtbl.replace tbl only 0
  | p -> walk 0 p);
  tbl

(* Shared simulation core: returns the per-step entering loads, the flow
   violations (loops, blackholes), the simulated injection window, and the
   description of the *pure* cohorts — those provably passing every
   scheduled switch before its flip. Pure cohorts follow the initial path
   verbatim and contribute a closed-form steady load, so they need not be
   simulated one by one; this keeps the oracle's cost proportional to the
   transition window rather than to the network diameter. *)
let simulate ?(exhaustive = false) inst sched =
  let demand = inst.Instance.demand in
  let loads : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let last_entry = ref min_int in
  let record u v t =
    let key = (u, v, t) in
    let current = Option.value ~default:0 (Hashtbl.find_opt loads key) in
    Hashtbl.replace loads key (current + demand);
    if t > !last_entry then last_entry := t
  in
  let tmax = max 0 (Schedule.max_time sched) in
  let tau_min = -Instance.init_delay inst in
  let prefixes = prefix_delays inst in
  (* A cohort injected at tau is pure iff tau + P_x < s_x for every
     scheduled old-path switch x. *)
  let tau_pure_max =
    Schedule.fold
      (fun x s_x acc ->
        match Hashtbl.find_opt prefixes x with
        | Some p -> min acc (s_x - p - 1)
        | None -> acc)
      sched max_int
  in
  let tau_start =
    if tau_pure_max = max_int then tmax + 1
    else max tau_min (tau_pure_max + 1)
  in
  (* Does the pure steady stream enter link (u, v) at step t? Exactly the
     cohorts injected strictly before [tau_start] are accounted here; the
     rest are simulated, so no cohort is counted twice. *)
  let pure_entry u v t =
    Instance.old_next inst u = Some v
    &&
    match Hashtbl.find_opt prefixes u with
    | Some p -> t - p < tau_start
    | None -> false
  in
  let flow_violations = ref [] in
  let run tau =
    let c = trace_with inst sched ~record tau in
    match cohort_violation c with
    | None -> ()
    | Some v -> flow_violations := v :: !flow_violations
  in
  (* Symmetrically, a cohort that meets every scheduled switch at or after
     its flip is *stable*: it follows the post-transition route (the final
     path for a complete schedule, the mixed steady route of a partial
     one), a time-shifted copy of every other stable cohort. One far-future
     representative provides the route — and detects a defective steady
     configuration — and the rest are accounted in closed form. *)
  let rep_tau = tmax + 1 + Instance.init_delay inst + Instance.fin_delay inst in
  let rep = trace_with inst sched ~record:(fun _ _ _ -> ()) rep_tau in
  (match cohort_violation rep with
  | None -> ()
  | Some v -> flow_violations := v :: !flow_violations);
  let stable_offsets = Hashtbl.create 32 in
  let rec note_offsets = function
    | [] | [ _ ] -> ()
    | (u, t_u) :: (((v, _) :: _) as rest) ->
        if not (Hashtbl.mem stable_offsets u) then
          Hashtbl.replace stable_offsets u (t_u - rep_tau, v);
        note_offsets rest
  in
  note_offsets rep.visits;
  let tau_settled =
    Schedule.fold
      (fun x s_x acc ->
        match Hashtbl.find_opt stable_offsets x with
        | Some (offset, _) -> max acc (s_x - offset)
        | None -> acc)
      sched min_int
  in
  let stable_from = max tau_settled tau_start in
  (* Does the stable stream enter link (u, v) at step t? Exactly the
     cohorts injected at [stable_from] or later are accounted here. *)
  let stable_entry u v t =
    match Hashtbl.find_opt stable_offsets u with
    | Some (offset, next) -> next = v && t - offset >= stable_from
    | None -> false
  in
  if exhaustive then begin
    (* Materialise everything: every cohort from the steady-state window
       up to the point where transitional tails have passed, as consumers
       of the full load table (the time-extended views) expect. *)
    for tau = tau_min to stable_from - 1 do
      run tau
    done;
    let fin = max stable_from !last_entry in
    let tau = ref stable_from in
    while !tau <= fin do
      run !tau;
      incr tau
    done;
    (loads, (fun _ _ _ -> 0), [], !flow_violations, (tau_min, fin))
  end
  else begin
    (* Simulate only the transitional cohorts in between; the pure and
       stable streams are accounted in closed form. *)
    for tau = tau_start to stable_from - 1 do
      run tau
    done;
    let extra_load u v t =
      (if pure_entry u v t then demand else 0)
      + if stable_entry u v t then demand else 0
    in
    (* The two closed-form streams can share a link over a window that no
       simulated cohort touches: on every link of the stable route that is
       also an old-path link, the stable head overlaps the pure tail for
       the steps where both deliver. Materialise those keys so the
       capacity scan sees them. *)
    let clash_keys =
      Hashtbl.fold
        (fun u (offset, next) acc ->
          if Instance.old_next inst u = Some next then
            match Hashtbl.find_opt prefixes u with
            | None -> acc
            | Some p ->
                let first = offset + stable_from in
                let last = p + tau_start - 1 in
                let rec span t acc =
                  if t > last then acc else span (t + 1) ((u, next, t) :: acc)
                in
                span first acc
          else acc)
        stable_offsets []
    in
    (loads, extra_load, clash_keys, !flow_violations, (tau_start, stable_from))
  end

let evaluate inst sched =
  let g = inst.Instance.graph in
  let loads, extra_load, clash_keys, flow_violations, window =
    simulate inst sched
  in
  List.iter
    (fun (u, v, t) ->
      if not (Hashtbl.mem loads (u, v, t)) then
        Hashtbl.replace loads (u, v, t) 0)
    clash_keys;
  let congested = ref [] in
  let peak = ref 0 in
  let congestion_violations = ref [] in
  Hashtbl.iter
    (fun (u, v, t) load ->
      let load = load + extra_load u v t in
      if load > !peak then peak := load;
      let capacity = Graph.capacity g u v in
      if load > capacity then begin
        congested := (u, v, t) :: !congested;
        congestion_violations :=
          Congestion { u; v; time = t; load; capacity }
          :: !congestion_violations
      end)
    loads;
  let violations =
    List.sort_uniq compare (!congestion_violations @ flow_violations)
  in
  {
    ok = violations = [];
    violations;
    congested = List.sort compare !congested;
    peak_load = !peak;
    window;
  }

let link_loads inst sched =
  let loads, extra_load, _, _, _ = simulate ~exhaustive:true inst sched in
  Hashtbl.fold
    (fun ((u, v, t) as key) load acc -> (key, load + extra_load u v t) :: acc)
    loads []
  |> List.sort compare

let is_consistent inst sched =
  Schedule.covers inst sched && (evaluate inst sched).ok

let congested_link_count inst sched =
  List.length (evaluate inst sched).congested

let pp_violation ppf = function
  | Congestion { u; v; time; load; capacity } ->
      Format.fprintf ppf "congestion on v%d -> v%d at t=%d (load %d > cap %d)"
        u v time load capacity
  | Loop { switch; injected; time } ->
      Format.fprintf ppf
        "loop through v%d at t=%d (cohort injected at t=%d)" switch time
        injected
  | Blackhole { switch; injected; time } ->
      Format.fprintf ppf
        "blackhole at v%d at t=%d (cohort injected at t=%d)" switch time
        injected

let pp_report ppf r =
  if r.ok then Format.fprintf ppf "consistent (peak load %d)" r.peak_load
  else
    Format.fprintf ppf "@[<v>%d violation(s):@,%a@]"
      (List.length r.violations)
      (Format.pp_print_list pp_violation)
      r.violations
