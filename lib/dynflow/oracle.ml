open Chronus_graph
module Obs = Chronus_obs.Obs

(* Observability (see OBSERVABILITY.md): the cache counters let the bench
   report prove the incremental engine is actually short-circuiting work.
   They only observe — no oracle decision ever reads them. *)
let c_hits = Obs.Counter.v "oracle.cache_hits"
let c_retraced = Obs.Counter.v "oracle.cohorts_retraced"
let c_full = Obs.Counter.v "oracle.full_evals"
let c_retargets = Obs.Counter.v "oracle.retargets"

(* All oracle keys are small ints (switch ids, time steps); monomorphic
   hashing avoids the polymorphic-hash walk on every hot-path lookup. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type outcome = Delivered | Looped of Graph.node | Dropped of Graph.node

type cohort = {
  injected : int;
  visits : (Graph.node * int) list;
  outcome : outcome;
}

type violation =
  | Congestion of {
      u : Graph.node;
      v : Graph.node;
      time : int;
      load : int;
      capacity : int;
    }
  | Loop of { switch : Graph.node; injected : int; time : int }
  | Blackhole of { switch : Graph.node; injected : int; time : int }

type report = {
  ok : bool;
  violations : violation list;
  congested : (Graph.node * Graph.node * int) list;
  peak_load : int;
  window : int * int;
}

(* Monomorphic stand-ins for polymorphic [compare] on the report types;
   both orders match the generic structural order (constructors in
   declaration order, fields in declaration order) so reports sorted here
   are indistinguishable from ones sorted with [compare]. *)
let compare_key3 (u1, v1, t1) (u2, v2, t2) =
  match Int.compare u1 u2 with
  | 0 -> ( match Int.compare v1 v2 with 0 -> Int.compare t1 t2 | c -> c)
  | c -> c

let compare_violation a b =
  match (a, b) with
  | ( Congestion { u = u1; v = v1; time = t1; load = l1; capacity = c1 },
      Congestion { u = u2; v = v2; time = t2; load = l2; capacity = c2 } ) -> (
      match compare_key3 (u1, v1, t1) (u2, v2, t2) with
      | 0 -> (
          match Int.compare l1 l2 with 0 -> Int.compare c1 c2 | c -> c)
      | c -> c)
  | Congestion _, _ -> -1
  | _, Congestion _ -> 1
  | ( Loop { switch = s1; injected = i1; time = t1 },
      Loop { switch = s2; injected = i2; time = t2 } )
  | ( Blackhole { switch = s1; injected = i1; time = t1 },
      Blackhole { switch = s2; injected = i2; time = t2 } ) ->
      compare_key3 (s1, i1, t1) (s2, i2, t2)
  | Loop _, Blackhole _ -> -1
  | Blackhole _, Loop _ -> 1

let rule_at inst sched v t =
  match Schedule.find v sched with
  | Some update_time when t >= update_time -> Instance.new_next inst v
  | Some _ | None -> Instance.old_next inst v

(* Time-extended link keys packed into one immediate int: 21 bits each for
   the endpoints and the (biased, so mildly negative steps fit) entry
   step. One packed key replaces the [(int * int * int)] tuple the load
   table used to allocate and polymorphically hash per entry. *)
let t_bias = 1 lsl 20

let field_mask = (1 lsl 21) - 1

let pack u v t =
  let tb = t + t_bias in
  assert (u land lnot field_mask = 0 && v land lnot field_mask = 0);
  assert (tb land lnot field_mask = 0);
  (u lsl 42) lor (v lsl 21) lor tb

let unpack key =
  ( (key lsr 42) land field_mask,
    (key lsr 21) land field_mask,
    (key land field_mask) - t_bias )

(* Follow one cohort. [record] is called with [(u, v, entry_time)] for every
   link the cohort enters, including the entry on which a loop is detected
   (the flow is physically on that link when it closes the loop). *)
let trace_from_with inst sched ~record start injected =
  let dst = Instance.destination inst in
  let visited = Itbl.create 16 in
  let rec step v t visits =
    Itbl.replace visited v ();
    if v = dst then { injected; visits = List.rev visits; outcome = Delivered }
    else
      match rule_at inst sched v t with
      | None -> { injected; visits = List.rev visits; outcome = Dropped v }
      | Some w ->
          record v w t;
          let t' = t + Graph.delay inst.Instance.graph v w in
          if Itbl.mem visited w then
            {
              injected;
              visits = List.rev ((w, t') :: visits);
              outcome = Looped w;
            }
          else step w t' ((w, t') :: visits)
  in
  step start injected [ (start, injected) ]

let trace_with inst sched ~record injected =
  trace_from_with inst sched ~record (Instance.source inst) injected

let trace inst sched injected =
  trace_with inst sched ~record:(fun _ _ _ -> ()) injected

let trace_from inst sched start time =
  trace_from_with inst sched ~record:(fun _ _ _ -> ()) start time

let rec last_visit = function
  | [] -> assert false
  | [ (w, t) ] -> (w, t)
  | _ :: rest -> last_visit rest

(* The violation time of a loop is the revisit time (the last entry of the
   visit list is the repeated switch); a blackhole happens where and when
   the cohort last arrived. *)
let cohort_violation c =
  match c.outcome with
  | Delivered -> None
  | Looped _ ->
      let w, t = last_visit c.visits in
      Some (Loop { switch = w; injected = c.injected; time = t })
  | Dropped v ->
      let _, t = last_visit c.visits in
      Some (Blackhole { switch = v; injected = c.injected; time = t })

(* The switches at which a cohort *consulted* a forwarding rule: every
   visit except the last for delivered and looped cohorts (the
   destination's rule is never read; the loop-closing re-entry is recorded
   but not consulted), every visit for dropped ones (the last consult is
   the one that found no rule). A cached trace stays valid under any
   schedule change that cannot alter one of these consults. *)
let consults c =
  match c.outcome with
  | Dropped _ -> c.visits
  | Delivered | Looped _ ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: rest -> x :: drop_last rest
      in
      drop_last c.visits

(* Per-instance lookup context for the simulation hot paths, held as
   direct-address arrays over the (small, dense) switch ids: the old and
   new forwarding rules with the delay of the edge each rule follows,
   the old-path prefix delays, and per-trace scratch (a flip-time array
   mirroring the schedule under evaluation and a generation-stamped
   visited set). A trace hop thus costs a few array reads instead of a
   map lookup plus two hash lookups. The context is single-domain state:
   [set_flips]/[clear_flips] bracket every batch of traces. *)
type ctx = {
  nn : int;  (** node id bound: every switch id is < [nn] *)
  mutable src : int;
  mutable dst : int;
  a_old : int array;  (** old rule next hop; -1 = none *)
  a_new : int array;  (** new rule next hop; -1 = none *)
  a_old_dl : int array;  (** delay of v -> a_old.(v) *)
  a_new_dl : int array;  (** delay of v -> a_new.(v) *)
  a_prefix : int array;  (** old-path prefix delay; [min_int] = off-path *)
  caps : int Itbl.t;  (** packed (u, v) -> capacity, for the load scan *)
  mutable bg : Graph.node -> Graph.node -> int;
      (** steady cross-flow load per link, added in the capacity scan *)
  flip : int array;  (** scratch: flip time of the schedule being traced *)
  stamp : int array;  (** scratch: visited marks, valid when = [gen] *)
  mutable gen : int;
}

let pack2 u v = (u lsl 21) lor v

let no_background _ _ = 0

let make_ctx ?(background = no_background) inst =
  let g = inst.Instance.graph in
  let nodes = Graph.nodes g in
  let nn = 1 + List.fold_left max 0 nodes in
  let a_old = Array.make nn (-1) and a_new = Array.make nn (-1) in
  let a_old_dl = Array.make nn 0 and a_new_dl = Array.make nn 0 in
  List.iter
    (fun v ->
      (match Instance.old_next inst v with
      | Some w ->
          a_old.(v) <- w;
          a_old_dl.(v) <- Graph.delay g v w
      | None -> ());
      match Instance.new_next inst v with
      | Some w ->
          a_new.(v) <- w;
          a_new_dl.(v) <- Graph.delay g v w
      | None -> ())
    nodes;
  let a_prefix = Array.make nn min_int in
  let rec walk acc = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        if a_prefix.(u) = min_int then a_prefix.(u) <- acc;
        let acc = acc + Graph.delay g u v in
        if a_prefix.(v) = min_int then a_prefix.(v) <- acc;
        walk acc rest
  in
  (match inst.Instance.p_init with
  | [ only ] -> a_prefix.(only) <- 0
  | p -> walk 0 p);
  let caps = Itbl.create 64 in
  List.iter
    (fun (u, v, e) -> Itbl.replace caps (pack2 u v) e.Graph.capacity)
    (Graph.edges g);
  {
    nn;
    src = Instance.source inst;
    dst = Instance.destination inst;
    a_old;
    a_new;
    a_old_dl;
    a_new_dl;
    a_prefix;
    caps;
    bg = background;
    flip = Array.make nn max_int;
    stamp = Array.make nn 0;
    gen = 0;
  }

(* Re-point a context at another instance over the *same* graph: the
   direct-address arrays are sized by the graph's node bound and the
   capacity table is keyed by its edges, so both survive; only the rule,
   delay and prefix entries — populated on path switches alone — need a
   reset and a refill. O(nn + path length) instead of the O(nodes + edges)
   of [make_ctx], which is what makes pooling checker sessions across
   transactions worthwhile. *)
let retarget_ctx ctx ?background inst =
  let g = inst.Instance.graph in
  Array.fill ctx.a_old 0 ctx.nn (-1);
  Array.fill ctx.a_new 0 ctx.nn (-1);
  Array.fill ctx.a_old_dl 0 ctx.nn 0;
  Array.fill ctx.a_new_dl 0 ctx.nn 0;
  Array.fill ctx.a_prefix 0 ctx.nn min_int;
  List.iter
    (fun v ->
      (match Instance.old_next inst v with
      | Some w ->
          ctx.a_old.(v) <- w;
          ctx.a_old_dl.(v) <- Graph.delay g v w
      | None -> ());
      match Instance.new_next inst v with
      | Some w ->
          ctx.a_new.(v) <- w;
          ctx.a_new_dl.(v) <- Graph.delay g v w
      | None -> ())
    (inst.Instance.p_init @ inst.Instance.p_fin);
  let rec walk acc = function
    | [] | [ _ ] -> ()
    | u :: (v :: _ as rest) ->
        if ctx.a_prefix.(u) = min_int then ctx.a_prefix.(u) <- acc;
        let acc = acc + Graph.delay g u v in
        if ctx.a_prefix.(v) = min_int then ctx.a_prefix.(v) <- acc;
        walk acc rest
  in
  (match inst.Instance.p_init with
  | [ only ] -> ctx.a_prefix.(only) <- 0
  | p -> walk 0 p);
  ctx.src <- Instance.source inst;
  ctx.dst <- Instance.destination inst;
  match background with Some bg -> ctx.bg <- bg | None -> ()

let edge_cap ctx u v = Itbl.find ctx.caps (pack2 u v)

(* Load the schedule's flip times into the context's scratch array (and
   restore the "never flips" sentinel afterwards). Every call to
   [trace_ctx]/[trace_sim]/[trace_window]/[compute_params] must run
   between a matching set/clear pair for the schedule being evaluated. *)
let set_flips ctx sched =
  Schedule.fold (fun v t () -> ctx.flip.(v) <- t) sched ()

let clear_flips ctx sched =
  Schedule.fold (fun v _ () -> ctx.flip.(v) <- max_int) sched ()

(* The internal tracer: [trace_from_with] specialised to the context
   arrays. Behaviourally identical (same visits, outcome, record calls);
   the rule consulted at step [t] is the new one iff [t >= flip.(v)],
   exactly [rule_at]. *)
let trace_ctx ctx ~record tau =
  ctx.gen <- ctx.gen + 1;
  let gen = ctx.gen in
  let dst = ctx.dst and flip = ctx.flip and stamp = ctx.stamp in
  let rec step v t visits =
    stamp.(v) <- gen;
    if v = dst then
      { injected = tau; visits = List.rev visits; outcome = Delivered }
    else begin
      let flipped = t >= flip.(v) in
      let w = if flipped then ctx.a_new.(v) else ctx.a_old.(v) in
      if w < 0 then
        { injected = tau; visits = List.rev visits; outcome = Dropped v }
      else begin
        record v w t;
        let t' =
          t + if flipped then ctx.a_new_dl.(v) else ctx.a_old_dl.(v)
        in
        if stamp.(w) = gen then
          {
            injected = tau;
            visits = List.rev ((w, t') :: visits);
            outcome = Looped w;
          }
        else step w t' ((w, t') :: visits)
      end
    end
  in
  step ctx.src tau [ (ctx.src, tau) ]

(* Everything about a schedule's transition that is *not* a per-cohort
   trace: the simulated injection window, the closed-form pure/stable
   stream descriptions, and the representative's steady-state verdict.
   Cheap to recompute per probe (one route walk plus two schedule folds);
   the per-cohort traces, which dominate, are what the checker caches. *)
type params = {
  tau_min : int;
  tau_start : int;  (** first simulated cohort; pure stream before this *)
  stable_from : int;  (** first closed-form stable cohort *)
  s_off : int array;
      (** steady-route arrival offset per switch; [min_int] = off-route *)
  s_nxt : int array;  (** steady-route next hop per switch; -1 = none *)
  rep_viol : violation option;
      (** the far-future representative's loop/blackhole, if any *)
}

let compute_params inst ctx sched =
  let tmax = max 0 (Schedule.max_time sched) in
  let tau_min = -Instance.init_delay inst in
  (* A cohort injected at tau is pure iff tau + P_x < s_x for every
     scheduled old-path switch x. *)
  let tau_pure_max =
    Schedule.fold
      (fun x s_x acc ->
        let p = ctx.a_prefix.(x) in
        if p = min_int then acc else min acc (s_x - p - 1))
      sched max_int
  in
  let tau_start =
    if tau_pure_max = max_int then tmax + 1 else max tau_min (tau_pure_max + 1)
  in
  (* A cohort that meets every scheduled switch at or after its flip is
     *stable*: it follows the post-transition route, a time-shifted copy
     of every other stable cohort. One far-future representative provides
     the route — and detects a defective steady configuration — and the
     rest are accounted in closed form. *)
  let rep_tau = tmax + 1 + Instance.init_delay inst + Instance.fin_delay inst in
  let rep = trace_ctx ctx ~record:(fun _ _ _ -> ()) rep_tau in
  let s_off = Array.make ctx.nn min_int in
  let s_nxt = Array.make ctx.nn (-1) in
  let rec note_offsets = function
    | [] | [ _ ] -> ()
    | (u, t_u) :: (((v, _) :: _) as rest) ->
        if s_off.(u) = min_int then begin
          s_off.(u) <- t_u - rep_tau;
          s_nxt.(u) <- v
        end;
        note_offsets rest
  in
  note_offsets rep.visits;
  let tau_settled =
    Schedule.fold
      (fun x s_x acc ->
        let off = s_off.(x) in
        if off = min_int then acc else max acc (s_x - off))
      sched min_int
  in
  let stable_from = max tau_settled tau_start in
  { tau_min; tau_start; stable_from; s_off; s_nxt; rep_viol = cohort_violation rep }

(* One simulated transitional cohort, with its recorded link entries kept
   as packed keys so a cached trace can be replayed into a load table
   without re-walking the network. *)
type sim = {
  s_tau : int;
  s_cohort : cohort;
  s_viol : violation option;
  s_entries : int array;
}

let trace_sim ctx tau =
  let entries = ref [] in
  let count = ref 0 in
  let record u v t =
    entries := pack u v t :: !entries;
    incr count
  in
  let c = trace_ctx ctx ~record tau in
  let arr = Array.make !count 0 in
  let rec fill i = function
    | [] -> ()
    | k :: rest ->
        arr.(i) <- k;
        fill (i - 1) rest
  in
  fill (!count - 1) !entries;
  { s_tau = tau; s_cohort = c; s_viol = cohort_violation c; s_entries = arr }

let trace_window ctx params =
  let sims = ref [] in
  for tau = params.tau_start to params.stable_from - 1 do
    sims := trace_sim ctx tau :: !sims
  done;
  !sims

(* Turn the window cohorts plus the closed-form streams into a report.
   Every field is order-canonical (sorted violation and congestion sets, a
   max, a window tuple), so the result is independent of both hash
   iteration order and the order of [sims] — which is what lets the
   incremental checker guarantee reports *identical* to a from-scratch
   evaluation. *)
let assemble inst ctx params sims =
  let demand = inst.Instance.demand in
  let { tau_start; stable_from; s_off; s_nxt; rep_viol; _ } = params in
  let loads = Itbl.create 256 in
  let flow_violations =
    ref (match rep_viol with None -> [] | Some v -> [ v ])
  in
  List.iter
    (fun s ->
      (match s.s_viol with
      | None -> ()
      | Some v -> flow_violations := v :: !flow_violations);
      Array.iter
        (fun key ->
          let current = Option.value ~default:0 (Itbl.find_opt loads key) in
          Itbl.replace loads key (current + demand))
        s.s_entries)
    sims;
  (* Does the pure steady stream enter link (u, v) at step t? Exactly the
     cohorts injected strictly before [tau_start] are accounted here; the
     rest are simulated, so no cohort is counted twice. *)
  let pure_entry u v t =
    ctx.a_old.(u) = v
    && ctx.a_prefix.(u) <> min_int
    && t - ctx.a_prefix.(u) < tau_start
  in
  (* Does the stable stream enter link (u, v) at step t? Exactly the
     cohorts injected at [stable_from] or later are accounted here. *)
  let stable_entry u v t = s_nxt.(u) = v && t - s_off.(u) >= stable_from in
  let extra_load u v t =
    (if pure_entry u v t then demand else 0)
    + if stable_entry u v t then demand else 0
  in
  (* The two closed-form streams can share a link over a window that no
     simulated cohort touches: on every link of the stable route that is
     also an old-path link, the stable head overlaps the pure tail for the
     steps where both deliver. Materialise those keys so the capacity scan
     sees them. *)
  for u = 0 to ctx.nn - 1 do
    let next = s_nxt.(u) in
    if next >= 0 && ctx.a_old.(u) = next && ctx.a_prefix.(u) <> min_int then
      for t = s_off.(u) + stable_from to ctx.a_prefix.(u) + tau_start - 1 do
        let key = pack u next t in
        if not (Itbl.mem loads key) then Itbl.replace loads key 0
      done
  done;
  let congested = ref [] in
  let peak = ref 0 in
  let congestion_violations = ref [] in
  Itbl.iter
    (fun key load ->
      let u, v, t = unpack key in
      (* Steady cross-flow load shares the link at every step the dynamic
         flow enters it; see the [?background] contract in the .mli. *)
      let load = load + extra_load u v t + ctx.bg u v in
      if load > !peak then peak := load;
      let capacity = edge_cap ctx u v in
      if load > capacity then begin
        congested := (u, v, t) :: !congested;
        congestion_violations :=
          Congestion { u; v; time = t; load; capacity }
          :: !congestion_violations
      end)
    loads;
  let violations =
    List.sort_uniq compare_violation
      (!congestion_violations @ !flow_violations)
  in
  {
    ok = (match violations with [] -> true | _ -> false);
    violations;
    congested = List.sort compare_key3 !congested;
    peak_load = !peak;
    window = (tau_start, stable_from);
  }

let evaluate ?background inst sched =
  Obs.Counter.incr c_full;
  let ctx = make_ctx ?background inst in
  set_flips ctx sched;
  let params = compute_params inst ctx sched in
  let sims = trace_window ctx params in
  clear_flips ctx sched;
  assemble inst ctx params sims

(* The exhaustive variant backing {!link_loads}: materialise every cohort
   from the steady-state window up to the point where transitional tails
   have passed, as consumers of the full load table (the time-extended
   views) expect. *)
let link_loads inst sched =
  let demand = inst.Instance.demand in
  let ctx = make_ctx inst in
  set_flips ctx sched;
  let params = compute_params inst ctx sched in
  let loads = Itbl.create 256 in
  let last_entry = ref min_int in
  let record u v t =
    let key = pack u v t in
    let current = Option.value ~default:0 (Itbl.find_opt loads key) in
    Itbl.replace loads key (current + demand);
    if t > !last_entry then last_entry := t
  in
  let run tau = ignore (trace_ctx ctx ~record tau) in
  for tau = params.tau_min to params.stable_from - 1 do
    run tau
  done;
  let fin = max params.stable_from !last_entry in
  let tau = ref params.stable_from in
  while !tau <= fin do
    run !tau;
    incr tau
  done;
  clear_flips ctx sched;
  Itbl.fold (fun key load acc -> (unpack key, load) :: acc) loads []
  |> List.sort (fun (k1, _) (k2, _) -> compare_key3 k1 k2)

let is_consistent ?background inst sched =
  Schedule.covers inst sched && (evaluate ?background inst sched).ok

let congested_link_count ?background inst sched =
  List.length (evaluate ?background inst sched).congested

(* ------------------------------------------------------------------ *)
(* The incremental engine. A checker is a session over one instance: it
   holds a *base* schedule together with everything [evaluate] computed
   for it — the window cohorts, their packed link entries, the
   closed-form stream parameters — plus an index from each switch to the
   cohorts that consulted its rule. Probing [add v t base] then re-traces
   only the cohorts that can observe the flip: those that consulted [v]
   at arrival step >= t (their recorded route would change) and those
   newly inside the probed schedule's window. Everything else is replayed
   from cache into a fresh load table, which costs an array walk per
   cohort instead of a network walk.

   Cache-invalidation contract (the equivalence obligation): a cached
   trace for injection time tau is valid under [add v t base] iff the
   cohort never consulted [v]'s rule at an arrival step >= t. [v] is
   never in [base] (adding it would raise), so under the base it held the
   old rule at every step; the probe changes its rule exactly on steps
   >= t, and no other switch's rule changes. The consult index makes this
   test O(index entries of v). Every report field is order-canonical, so
   a probe's report is structurally identical to [evaluate] on the probed
   schedule — the differential property suite asserts exactly that. *)
module Checker = struct
  type probe_state = {
    p_sched : Schedule.t;
    p_params : params;
    p_sims : sim list;
    p_report : report;
  }

  type frame = {
    f_base : Schedule.t;
    f_params : params;
    f_cache : sim Itbl.t;
    f_index : (int * int) list Itbl.t;
    f_report : report;
  }

  type t = {
    mutable inst : Instance.t;
    ctx : ctx;
    mutable base : Schedule.t;
    mutable params : params;
    mutable cache : sim Itbl.t;  (** injection time -> cached trace *)
    mutable index : (int * int) list Itbl.t;
        (** switch -> [(injection time, consult step)] over the cache *)
    mutable report : report;
    mutable memo : (Graph.node * int * probe_state) option;
        (** the last single-flip probe, for the probe-then-commit and
            probe-then-push patterns of the greedy and the B&B *)
    mutable frames : frame list;
  }

  let build_index sims =
    let index = Itbl.create 32 in
    List.iter
      (fun s ->
        List.iter
          (fun (u, t) ->
            let prior = Option.value ~default:[] (Itbl.find_opt index u) in
            Itbl.replace index u ((s.s_tau, t) :: prior))
          (consults s.s_cohort))
      sims;
    index

  let cache_of sims =
    let cache = Itbl.create 64 in
    List.iter (fun s -> Itbl.replace cache s.s_tau s) sims;
    cache

  let create ?background inst sched =
    Obs.Counter.incr c_full;
    let ctx = make_ctx ?background inst in
    set_flips ctx sched;
    let params = compute_params inst ctx sched in
    let sims = trace_window ctx params in
    clear_flips ctx sched;
    {
      inst;
      ctx;
      base = sched;
      params;
      cache = cache_of sims;
      index = build_index sims;
      report = assemble inst ctx params sims;
      memo = None;
      frames = [];
    }

  let base ck = ck.base

  let base_report ck = ck.report

  let instance ck = ck.inst

  (* Re-point the session at a new instance over the same graph, with the
     empty schedule as base. An empty base simulates *zero* window cohorts
     (the pure stream covers every injection before [tmax + 1 = 1] and the
     stable stream everything from [stable_from = 1]), so the whole
     operation costs one representative trace plus an O(nn) array reset —
     not a from-scratch evaluation, hence its own counter. *)
  let retarget ?background ck inst =
    if not (inst.Instance.graph == ck.inst.Instance.graph) then
      invalid_arg "Oracle.Checker.retarget: instance is over a different graph";
    if ck.frames <> [] then
      invalid_arg "Oracle.Checker.retarget: outstanding push frames";
    Obs.Counter.incr c_retargets;
    retarget_ctx ck.ctx ?background inst;
    ck.inst <- inst;
    ck.base <- Schedule.empty;
    let params = compute_params inst ck.ctx Schedule.empty in
    ck.params <- params;
    ck.cache <- Itbl.create 64;
    ck.index <- Itbl.create 32;
    ck.report <- assemble inst ck.ctx params [];
    ck.memo <- None

  (* Swap the cross-flow background load. Cached cohort traces are routing
     state and never depend on the background, so only the capacity scan
     needs a rerun: reassemble the base report from the cached window. *)
  let set_background ck bg =
    if ck.frames <> [] then
      invalid_arg "Oracle.Checker.set_background: outstanding push frames";
    ck.ctx.bg <- bg;
    let sims = Itbl.fold (fun _ s acc -> s :: acc) ck.cache [] in
    ck.report <- assemble ck.inst ck.ctx ck.params sims;
    ck.memo <- None

  let rebase ck sched =
    Obs.Counter.incr c_full;
    set_flips ck.ctx sched;
    let params = compute_params ck.inst ck.ctx sched in
    let sims = trace_window ck.ctx params in
    clear_flips ck.ctx sched;
    ck.base <- sched;
    ck.params <- params;
    ck.cache <- cache_of sims;
    ck.index <- build_index sims;
    ck.report <- assemble ck.inst ck.ctx params sims;
    ck.memo <- None;
    ck.frames <- []

  let compute_probe ck adds =
    let sched' =
      List.fold_left (fun s (v, t) -> Schedule.add v t s) ck.base adds
    in
    set_flips ck.ctx sched';
    let params' = compute_params ck.inst ck.ctx sched' in
    let affected = Itbl.create 8 in
    List.iter
      (fun (v, t) ->
        match Itbl.find_opt ck.index v with
        | None -> ()
        | Some l ->
            List.iter
              (fun (tau, at) -> if at >= t then Itbl.replace affected tau ())
              l)
      adds;
    let sims = ref [] in
    let hits = ref 0 and retraced = ref 0 in
    for tau = params'.tau_start to params'.stable_from - 1 do
      let cached =
        if Itbl.mem affected tau then None else Itbl.find_opt ck.cache tau
      in
      match cached with
      | Some s ->
          incr hits;
          sims := s :: !sims
      | None ->
          incr retraced;
          sims := trace_sim ck.ctx tau :: !sims
    done;
    clear_flips ck.ctx sched';
    Obs.Counter.incr ~by:!hits c_hits;
    Obs.Counter.incr ~by:!retraced c_retraced;
    {
      p_sched = sched';
      p_params = params';
      p_sims = !sims;
      p_report = assemble ck.inst ck.ctx params' !sims;
    }

  let probe_list ck adds = (compute_probe ck adds).p_report

  let probe ck v t =
    match ck.memo with
    | Some (mv, mt, st) when mv = v && mt = t -> st.p_report
    | _ ->
        let st = compute_probe ck [ (v, t) ] in
        ck.memo <- Some (v, t, st);
        st.p_report

  let promote ck st =
    ck.base <- st.p_sched;
    ck.params <- st.p_params;
    ck.cache <- cache_of st.p_sims;
    ck.index <- build_index st.p_sims;
    ck.report <- st.p_report;
    ck.memo <- None

  let commit ck v t =
    let st =
      match ck.memo with
      | Some (mv, mt, st) when mv = v && mt = t -> st
      | _ -> compute_probe ck [ (v, t) ]
    in
    promote ck st;
    st.p_report

  let push ck v t =
    let saved =
      {
        f_base = ck.base;
        f_params = ck.params;
        f_cache = ck.cache;
        f_index = ck.index;
        f_report = ck.report;
      }
    in
    let report = commit ck v t in
    ck.frames <- saved :: ck.frames;
    report

  let pop ck =
    match ck.frames with
    | [] -> invalid_arg "Oracle.Checker.pop: no pushed frame"
    | f :: rest ->
        ck.frames <- rest;
        ck.base <- f.f_base;
        ck.params <- f.f_params;
        ck.cache <- f.f_cache;
        ck.index <- f.f_index;
        ck.report <- f.f_report;
        ck.memo <- None
end

let pp_violation ppf = function
  | Congestion { u; v; time; load; capacity } ->
      Format.fprintf ppf "congestion on v%d -> v%d at t=%d (load %d > cap %d)"
        u v time load capacity
  | Loop { switch; injected; time } ->
      Format.fprintf ppf
        "loop through v%d at t=%d (cohort injected at t=%d)" switch time
        injected
  | Blackhole { switch; injected; time } ->
      Format.fprintf ppf
        "blackhole at v%d at t=%d (cohort injected at t=%d)" switch time
        injected

let pp_report ppf r =
  if r.ok then Format.fprintf ppf "consistent (peak load %d)" r.peak_load
  else
    Format.fprintf ppf "@[<v>%d violation(s):@,%a@]"
      (List.length r.violations)
      (Format.pp_print_list pp_violation)
      r.violations
