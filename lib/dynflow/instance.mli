(** A network update instance: one dynamic flow of demand [d] must move
    from an initial routing path [p_init] to a final routing path [p_fin]
    with common source and destination (Section II-B of the paper). *)

open Chronus_graph

type memo
(** Precomputed next/previous-hop tables; an implementation detail that
    keeps the per-hop operations of the oracle O(1) on long paths. *)

type t = private {
  graph : Graph.t;
  demand : int;
  p_init : Path.t;  (** the solid line of Fig. 1 *)
  p_fin : Path.t;  (** the dashed line of Fig. 1 *)
  memo : memo;
}

(** How a switch's forwarding state changes during the update. *)
type update_kind =
  | Modify  (** on both paths with different next hops: action rewritten *)
  | Add  (** only on the final path: a rule is installed *)
  | Delete  (** only on the initial path: the rule is removed *)

type update = {
  switch : Graph.node;
  old_next : Graph.node option;
  new_next : Graph.node option;
  kind : update_kind;
}

exception Ill_formed of string

val create : graph:Graph.t -> demand:int -> p_init:Path.t -> p_fin:Path.t -> t
(** Validates the instance: both paths are simple and valid in [graph],
    share source and destination, [demand >= 1], and every link of either
    path has capacity at least [demand] (otherwise even the steady states
    are congested).
    @raise Ill_formed with an explanatory message otherwise. *)

val source : t -> Graph.node
val destination : t -> Graph.node

val old_next : t -> Graph.node -> Graph.node option
(** Next hop on [p_init]; [None] off the path or at the destination. *)

val new_next : t -> Graph.node -> Graph.node option
(** Next hop on [p_fin]; [None] off the path or at the destination. *)

val old_prev : t -> Graph.node -> Graph.node option
(** Predecessor on [p_init]. *)

val new_prev : t -> Graph.node -> Graph.node option

val updates : t -> update list
(** Switches whose forwarding state differs between the two paths, sorted
    by switch id. The destination never appears. *)

val switches_to_update : t -> Graph.node list
(** [List.map (fun u -> u.switch) (updates l)]. *)

val update_count : t -> int

val is_trivial : t -> bool
(** [true] when [p_init = p_fin] (nothing to update). *)

val init_delay : t -> int
(** [phi p_init]: total transmission delay of the initial path. *)

val fin_delay : t -> int

val pp : Format.formatter -> t -> unit

(** {1 Multi-flow instances}

    A production controller routes many flows over one network; the
    update service ({!Chronus_service.Service}) moves them one
    transaction at a time. A {!multi} captures that shared state: N
    flows, each with its own demand and (initial, final) path pair,
    interacting only through the capacity of shared links. Every flow
    projects onto the single-flow machinery via {!flow_instance}; the
    cross-flow capacity interaction is expressed as a {!background} load
    function that {!Oracle.evaluate} charges on shared links. *)

type flow = {
  fid : int;  (** caller-chosen identifier, unique and non-negative *)
  f_demand : int;  (** the flow's rate, in the same units as capacities *)
  f_init : Path.t;  (** the flow's current routing path *)
  f_fin : Path.t;  (** where the update wants to move it *)
}
(** One dynamic flow of a multi-flow instance. A flow whose [f_init]
    equals [f_fin] is a steady flow that merely occupies capacity. *)

type multi = private {
  m_graph : Graph.t;  (** the shared network *)
  m_flows : flow list;  (** sorted by [fid] *)
}
(** N flows over one graph. Only {!create_multi} builds values of this
    type, so every [multi] in flight satisfies its validation. *)

val create_multi : graph:Graph.t -> flow list -> multi
(** Validates every flow exactly as {!create} does (simple valid paths,
    shared endpoints, positive demand, per-link capacity at least the
    flow's own demand), requires the [fid]s to be distinct, and checks
    both {e joint} steady states: summed over all flows, neither the
    initial nor the final configuration may load any link beyond its
    capacity. Flows are re-sorted by [fid].
    @raise Ill_formed with an explanatory message otherwise. *)

val flows : multi -> flow list
(** The flow set, sorted by [fid]. *)

val find_flow : multi -> int -> flow option
(** Look a flow up by [fid]. *)

val flow_instance : multi -> flow -> t
(** Project one flow onto a single-flow instance over the full-capacity
    shared graph — the form the schedulers and the oracle consume. Never
    raises for a flow of the [multi] (its validation already ran). *)

val background : (int * Path.t) list -> Graph.node -> Graph.node -> int
(** [background loads] is the steady load function of a set of routed
    flows, given as [(demand, path)] pairs: [background loads u v] sums
    the demands of every path that uses the directed link [u -> v].
    This is the closure to pass as [?background] to {!Oracle.evaluate}
    when validating one flow's schedule against the others' routes, and
    the load that {!residual_graph} subtracts. Cost: one table build at
    closure creation, O(1) per query. *)

val residual_graph : Graph.t -> (Graph.node -> Graph.node -> int) -> Graph.t
(** [residual_graph g bg] is a fresh graph with every link's capacity
    reduced by [bg]: the network as seen by one flow when everyone
    else's routes are pinned. Links with no residual capacity are
    dropped entirely (a capacity-0 edge is not representable, and no
    schedule may use such a link anyway); delays and the node set are
    preserved. Scheduling a flow on its residual graph and validating
    with [?background] on the full graph agree — the differential
    property [test/suite_service.ml] asserts. *)
