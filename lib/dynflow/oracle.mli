(** The dynamic-flow oracle: exact validation of a timed update schedule.

    The oracle simulates the dynamic flow of the paper at cohort
    granularity: one cohort of [demand] units is injected at the source at
    every discrete time step, from far enough in the past that the initial
    steady state is captured, to far enough in the future that every
    transient interaction has played out. A cohort arriving at switch [v]
    at time [t] is forwarded along [v]'s rule *active at time [t]* (old
    next hop before the switch's scheduled update time, new next hop
    after), contributing [demand] to the load of the chosen link at step
    [t] and arriving at the other end [sigma] steps later.

    A schedule is consistent iff no step overloads a link (Definition 3),
    no cohort revisits a switch (Definition 2), and no cohort is dropped at
    a switch without an applicable rule (our blackhole extension, relevant
    when a path-only switch's rule is added late or deleted early).

    Partial schedules are meaningful: unscheduled switches simply keep
    their old rule forever, which is exactly the prefix semantics the
    greedy scheduler needs. *)

open Chronus_graph

type outcome =
  | Delivered  (** reached the destination *)
  | Looped of Graph.node  (** revisited this switch: transient loop *)
  | Dropped of Graph.node  (** no applicable rule at this switch *)

type cohort = {
  injected : int;  (** injection time step *)
  visits : (Graph.node * int) list;  (** arrival times, source first *)
  outcome : outcome;
}

type violation =
  | Congestion of {
      u : Graph.node;
      v : Graph.node;
      time : int;  (** step at which the aggregate entering load exceeds *)
      load : int;
      capacity : int;
    }
  | Loop of { switch : Graph.node; injected : int; time : int }
  | Blackhole of { switch : Graph.node; injected : int; time : int }

type report = {
  ok : bool;
  violations : violation list;  (** sorted, deduplicated *)
  congested : (Graph.node * Graph.node * int) list;
      (** distinct overloaded time-extended links [(u, v, entry step)] —
          the quantity plotted in Fig. 8 *)
  peak_load : int;  (** maximum load observed on any link at any step *)
  window : int * int;  (** simulated injection window (inclusive) *)
}

val rule_at : Instance.t -> Schedule.t -> Graph.node -> int -> Graph.node option
(** Forwarding rule of a switch at a time step under a schedule. *)

val trace : Instance.t -> Schedule.t -> int -> cohort
(** Follow the cohort injected at the given step through the network. *)

val trace_from : Instance.t -> Schedule.t -> Graph.node -> int -> cohort
(** [trace_from inst sched v t] follows a cohort already at switch [v] at
    step [t] (its [injected] field is set to [t]). Used by the loop check
    of Algorithm 4 to examine the first redirected cohort. *)

val compare_violation : violation -> violation -> int
(** Structural order (same as polymorphic [compare], monomorphically). *)

val evaluate :
  ?background:(Graph.node -> Graph.node -> int) -> Instance.t -> Schedule.t ->
  report
(** Full validation of a (possibly partial) schedule.

    [background u v] (default the constant-zero function) is the steady
    load that {e other} flows place on link [u -> v]: the capacity scan
    charges it on every step at which the dynamic flow enters the link,
    so a schedule that is fine in isolation is rejected when shared links
    cannot absorb the combined load. Two contract points callers must
    uphold (both hold by construction for
    {!Chronus_service.Service}-managed updates):

    - [background] is consulted only on links the dynamic flow itself
      enters. Links carrying background traffic alone are never scanned,
      so the background configuration must be valid on its own
      ([background u v <= capacity u v] everywhere, which
      {!Instance.create_multi} checks for joint steady states).
    - The function must be pure and constant for the duration of the
      call: it describes steady routes of flows that are {e not} moving.

    With the default zero background this is byte-identical to the
    single-flow oracle — all golden digests are preserved. *)

(** The incremental engine: a session over one instance caching a base
    schedule's evaluation — per-cohort traces, packed load entries, the
    closed-form stream windows — plus a consult index from switches to
    the cached cohorts whose routes read their rule. Probing
    [Schedule.add v t base] re-traces only cohorts that can observe the
    flip (those consulting [v] at arrival step >= t, plus cohorts newly
    inside the probed schedule's widened window) and replays the rest
    from cache.

    The equivalence obligation: every probe's report is structurally
    identical to [evaluate] on the probed schedule (all report fields are
    order-canonical). [test/suite_oracle_incremental.ml] asserts this
    differentially on randomized scenarios.

    A checker is single-domain state; portfolio workers each build their
    own. [commit] (no undo) and [push]/[pop] (bracketed, for DFS) must
    not be interleaved: commits while frames are outstanding would make
    [pop] restore a stale base. *)
module Checker : sig
  type t

  val create :
    ?background:(Graph.node -> Graph.node -> int) -> Instance.t ->
    Schedule.t -> t
  (** Evaluate [sched] from scratch and cache it as the base.

      [background] has the same meaning and contract as in {!evaluate}
      and is captured by the session: every subsequent [probe], [commit]
      and [rebase] validates against the same cross-flow load. Cached
      cohort traces are routing state and never depend on the background,
      so the incremental replay machinery is unchanged — only the final
      capacity scan reads it. *)

  val base : t -> Schedule.t

  val base_report : t -> report
  (** The cached report of the base schedule; free. *)

  val instance : t -> Instance.t
  (** The instance this session currently validates. *)

  val retarget :
    ?background:(Graph.node -> Graph.node -> int) -> t -> Instance.t -> unit
  (** [retarget ck inst] re-points the session at [inst] with the {e empty}
      schedule as base, reusing the session's per-graph state (the packed
      capacity table and the dense rule arrays). [inst] must be over the
      physically same graph as the session's current instance. An empty
      base simulates zero window cohorts, so the call costs one
      representative trace plus an array reset — counted under the
      [oracle.retargets] label, not [oracle.full_evals]. The resulting
      session state is indistinguishable from
      [create ?background inst Schedule.empty].

      [background] replaces the session's cross-flow load; omitting it
      keeps the current one (contract as in {!evaluate}).
      @raise Invalid_argument on a different graph or with outstanding
      [push] frames. *)

  val set_background : t -> (Graph.node -> Graph.node -> int) -> unit
  (** Swap the session's cross-flow background load and reassemble the
      base report from the cached cohort window (traces are routing state
      and never depend on the background, so nothing is re-traced). The
      session is then indistinguishable from one created with that
      background. @raise Invalid_argument with outstanding [push]
      frames. *)

  val probe : t -> Graph.node -> int -> report
  (** [probe ck v t] is [evaluate inst (Schedule.add v t (base ck))],
      incrementally. Does not change the base. The last single-flip probe
      is memoised, so probe-then-[commit]/[push] of the same flip costs
      one incremental evaluation, and repeating a probe is free.
      @raise Invalid_argument as [Schedule.add] (scheduled switch,
      negative time). *)

  val probe_list : t -> (Graph.node * int) list -> report
  (** Probe several flips added together (the B&B's last-step closure). *)

  val commit : t -> Graph.node -> int -> report
  (** Promote the probe of [(v, t)] into the new base and return its
      report. *)

  val push : t -> Graph.node -> int -> report
  (** Like [commit], remembering the previous base for [pop]. *)

  val pop : t -> unit
  (** Restore the base saved by the matching [push].
      @raise Invalid_argument without an outstanding [push]. *)

  val rebase : t -> Schedule.t -> unit
  (** Replace the base with a fresh from-scratch evaluation of an
      arbitrary schedule, dropping all frames. *)
end

val is_consistent :
  ?background:(Graph.node -> Graph.node -> int) -> Instance.t -> Schedule.t ->
  bool
(** [true] iff the schedule covers every required switch and [evaluate]
    reports no violation. [background] as in {!evaluate}. *)

val congested_link_count :
  ?background:(Graph.node -> Graph.node -> int) -> Instance.t -> Schedule.t ->
  int
(** Number of distinct overloaded time-extended links (Fig. 8 metric).
    [background] as in {!evaluate}. *)

val link_loads :
  Instance.t -> Schedule.t -> ((Graph.node * Graph.node * int) * int) list
(** Every [(u, v, entry step)] on which flow enters a link, with the total
    load entering at that step; sorted. This is the occupancy of the
    time-extended network of Definition 4. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
