open Chronus_graph

(* Node ids are ints; monomorphic hashing keeps the oracle's per-hop
   lookups off the polymorphic-hash path. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type memo = {
  old_next_tbl : Graph.node Itbl.t;
  new_next_tbl : Graph.node Itbl.t;
  old_prev_tbl : Graph.node Itbl.t;
  new_prev_tbl : Graph.node Itbl.t;
}

type t = {
  graph : Graph.t;
  demand : int;
  p_init : Path.t;
  p_fin : Path.t;
  memo : memo;
}

type update_kind = Modify | Add | Delete

type update = {
  switch : Graph.node;
  old_next : Graph.node option;
  new_next : Graph.node option;
  kind : update_kind;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let check_path g demand label p =
  if p = [] then ill_formed "%s is empty" label;
  if not (Path.is_simple p) then ill_formed "%s repeats a switch" label;
  List.iter
    (fun v ->
      if not (Graph.mem_node g v) then
        ill_formed "%s visits unknown switch v%d" label v)
    p;
  List.iter
    (fun (u, v) ->
      match Graph.find_edge g u v with
      | None -> ill_formed "%s uses missing link v%d -> v%d" label u v
      | Some e ->
          if e.capacity < demand then
            ill_formed
              "%s link v%d -> v%d has capacity %d < demand %d (steady state \
               already congested)"
              label u v e.capacity demand)
    (Path.edges p)

let hop_tables p =
  let next = Itbl.create (List.length p) in
  let prev = Itbl.create (List.length p) in
  List.iter
    (fun (u, v) ->
      Itbl.replace next u v;
      Itbl.replace prev v u)
    (Path.edges p);
  (next, prev)

let create ~graph ~demand ~p_init ~p_fin =
  if demand < 1 then ill_formed "demand must be positive, got %d" demand;
  check_path graph demand "initial path" p_init;
  check_path graph demand "final path" p_fin;
  if Path.source p_init <> Path.source p_fin then
    ill_formed "paths have different sources (v%d vs v%d)"
      (Path.source p_init) (Path.source p_fin);
  if Path.destination p_init <> Path.destination p_fin then
    ill_formed "paths have different destinations (v%d vs v%d)"
      (Path.destination p_init)
      (Path.destination p_fin);
  let old_next_tbl, old_prev_tbl = hop_tables p_init in
  let new_next_tbl, new_prev_tbl = hop_tables p_fin in
  {
    graph;
    demand;
    p_init;
    p_fin;
    memo = { old_next_tbl; new_next_tbl; old_prev_tbl; new_prev_tbl };
  }

let source i = Path.source i.p_init

let destination i = Path.destination i.p_init

let old_next i v = Itbl.find_opt i.memo.old_next_tbl v

let new_next i v = Itbl.find_opt i.memo.new_next_tbl v

let old_prev i v = Itbl.find_opt i.memo.old_prev_tbl v

let new_prev i v = Itbl.find_opt i.memo.new_prev_tbl v

let updates i =
  let module Ints = Set.Make (Int) in
  let all =
    Ints.union (Ints.of_list i.p_init) (Ints.of_list i.p_fin)
    |> Ints.remove (destination i)
  in
  Ints.fold
    (fun v acc ->
      let o = old_next i v and n = new_next i v in
      if o = n then acc
      else
        let kind =
          match (o, n) with
          | Some _, Some _ -> Modify
          | None, Some _ -> Add
          | Some _, None -> Delete
          | None, None -> assert false
        in
        { switch = v; old_next = o; new_next = n; kind } :: acc)
    all []
  |> List.rev

let switches_to_update i = List.map (fun u -> u.switch) (updates i)

let update_count i = List.length (updates i)

let is_trivial i = Path.equal i.p_init i.p_fin

let init_delay i = Path.delay i.graph i.p_init

let fin_delay i = Path.delay i.graph i.p_fin

let pp ppf i =
  Format.fprintf ppf
    "@[<v>instance: demand %d@,initial: %a@,final:   %a@,updates: %d@]"
    i.demand Path.pp i.p_init Path.pp i.p_fin (update_count i)

(* ------------------------------------------------------------------ *)
(* Multi-flow instances: N dynamic flows sharing one graph, interacting
   only through link capacities. Each flow projects to a single-flow [t]
   for the schedulers; the cross-flow interaction is carried by the
   [background] closure the oracle's capacity scan consults. *)

type flow = { fid : int; f_demand : int; f_init : Path.t; f_fin : Path.t }

type multi = { m_graph : Graph.t; m_flows : flow list }

(* Same packed directed-link keys as the oracle's capacity table. *)
let pack2 u v = (u lsl 21) lor v

let background loads =
  let tbl = Itbl.create 64 in
  List.iter
    (fun (demand, path) ->
      List.iter
        (fun (u, v) ->
          let key = pack2 u v in
          let prior = Option.value ~default:0 (Itbl.find_opt tbl key) in
          Itbl.replace tbl key (prior + demand))
        (Path.edges path))
    loads;
  fun u v -> Option.value ~default:0 (Itbl.find_opt tbl (pack2 u v))

let check_joint g label loads =
  let bg = background loads in
  List.iter
    (fun (u, v, e) ->
      let load = bg u v in
      if load > e.Graph.capacity then
        ill_formed
          "%s steady state overloads link v%d -> v%d (joint load %d > \
           capacity %d)"
          label u v load e.Graph.capacity)
    (Graph.edges g)

let create_multi ~graph flows =
  let seen = Itbl.create (List.length flows) in
  List.iter
    (fun f ->
      if f.fid < 0 then ill_formed "flow id must be non-negative, got %d" f.fid;
      if Itbl.mem seen f.fid then ill_formed "duplicate flow id %d" f.fid;
      Itbl.replace seen f.fid ();
      (* Per-flow validation is exactly the single-flow contract. *)
      ignore
        (create ~graph ~demand:f.f_demand ~p_init:f.f_init ~p_fin:f.f_fin))
    flows;
  check_joint graph "initial"
    (List.map (fun f -> (f.f_demand, f.f_init)) flows);
  check_joint graph "final" (List.map (fun f -> (f.f_demand, f.f_fin)) flows);
  {
    m_graph = graph;
    m_flows = List.sort (fun a b -> Int.compare a.fid b.fid) flows;
  }

let flows m = m.m_flows

let find_flow m fid = List.find_opt (fun f -> f.fid = fid) m.m_flows

let flow_instance m f =
  create ~graph:m.m_graph ~demand:f.f_demand ~p_init:f.f_init ~p_fin:f.f_fin

let residual_graph g bg =
  let r = Graph.create ~size:(Graph.node_count g) () in
  List.iter (fun v -> Graph.add_node r v) (Graph.nodes g);
  List.iter
    (fun (u, v, e) ->
      let capacity = e.Graph.capacity - bg u v in
      if capacity > 0 then Graph.add_edge ~capacity ~delay:e.Graph.delay r u v)
    (Graph.edges g);
  r
