module Imap = Map.Make (Int)

(* Two synchronised views of the same set of (switch, time) entries:
   [entries] answers the oracle's per-hop [find] in O(log n); [by_time]
   groups switches by time step so that [max_time] (consulted on every
   oracle evaluation) is a max-binding lookup instead of a full fold, and
   [at]/[distinct_times] no longer rescan the whole schedule per call.
   Buckets keep insertion order; [at] sorts on read (it is presentation,
   not a hot path). *)
type t = { entries : int Imap.t; by_time : int list Imap.t }

let empty = { entries = Imap.empty; by_time = Imap.empty }

let add v time s =
  if time < 0 then invalid_arg "Schedule.add: negative time";
  if Imap.mem v s.entries then
    invalid_arg (Printf.sprintf "Schedule.add: v%d already scheduled" v);
  {
    entries = Imap.add v time s.entries;
    by_time =
      Imap.update time
        (function None -> Some [ v ] | Some l -> Some (v :: l))
        s.by_time;
  }

let of_list l = List.fold_left (fun s (v, t) -> add v t s) empty l

let to_list s =
  Imap.bindings s.entries
  |> List.sort (fun (v1, t1) (v2, t2) ->
         match Int.compare t1 t2 with 0 -> Int.compare v1 v2 | c -> c)

let mem v s = Imap.mem v s.entries

let find v s = Imap.find_opt v s.entries

let size s = Imap.cardinal s.entries

let is_empty s = Imap.is_empty s.entries

let switches s = List.map fst (Imap.bindings s.entries)

let max_time s =
  match Imap.max_binding_opt s.by_time with None -> -1 | Some (t, _) -> t

let makespan s = max_time s + 1

let distinct_times s = List.map fst (Imap.bindings s.by_time)

let at time s =
  match Imap.find_opt time s.by_time with
  | None -> []
  | Some l -> List.sort Int.compare l

let covers instance s =
  List.for_all (fun v -> mem v s) (Instance.switches_to_update instance)

let restrict_to instance s =
  let keep = Instance.switches_to_update instance in
  let keep_tbl = Hashtbl.create (List.length keep) in
  List.iter (fun v -> Hashtbl.replace keep_tbl v ()) keep;
  Imap.fold
    (fun v t acc -> if Hashtbl.mem keep_tbl v then add v t acc else acc)
    s.entries empty

let fold f s init = Imap.fold f s.entries init

let shift delta s =
  Imap.fold
    (fun v t acc ->
      let t' = t + delta in
      if t' < 0 then invalid_arg "Schedule.shift: negative time"
      else add v t' acc)
    s.entries empty

let equal a b = Imap.equal Int.equal a.entries b.entries

let pp ppf s =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (v, t) -> Format.fprintf ppf "v%d@@t%d" v t))
    (to_list s)
