module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty

let add v time s =
  if time < 0 then invalid_arg "Schedule.add: negative time";
  if Imap.mem v s then
    invalid_arg (Printf.sprintf "Schedule.add: v%d already scheduled" v);
  Imap.add v time s

let of_list l = List.fold_left (fun s (v, t) -> add v t s) empty l

let to_list s =
  Imap.bindings s
  |> List.sort (fun (v1, t1) (v2, t2) -> compare (t1, v1) (t2, v2))

let mem v s = Imap.mem v s

let find v s = Imap.find_opt v s

let size s = Imap.cardinal s

let is_empty s = Imap.is_empty s

let switches s = List.map fst (Imap.bindings s)

let max_time s = Imap.fold (fun _ t acc -> max t acc) s (-1)

let makespan s = max_time s + 1

let distinct_times s =
  Imap.fold (fun _ t acc -> t :: acc) s []
  |> List.sort_uniq compare

let at time s =
  Imap.fold (fun v t acc -> if t = time then v :: acc else acc) s []
  |> List.sort compare

let covers instance s =
  List.for_all (fun v -> mem v s) (Instance.switches_to_update instance)

let restrict_to instance s =
  let keep = Instance.switches_to_update instance in
  let keep_tbl = Hashtbl.create (List.length keep) in
  List.iter (fun v -> Hashtbl.replace keep_tbl v ()) keep;
  Imap.filter (fun v _ -> Hashtbl.mem keep_tbl v) s

let fold f s init = Imap.fold f s init

let shift delta s =
  Imap.map
    (fun t ->
      let t' = t + delta in
      if t' < 0 then invalid_arg "Schedule.shift: negative time" else t')
    s

let equal = Imap.equal Int.equal

let pp ppf s =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (v, t) -> Format.fprintf ppf "v%d@@t%d" v t))
    (to_list s)
