(** Timed update schedules: a time point for each switch (the solution
    [{v_i, t_j}] of Algorithm 2). Times are non-negative integers measured
    in the discrete steps of the dynamic-flow model; [t = 0] is the current
    time step [t_0]. *)

open Chronus_graph

type t

val empty : t

val of_list : (Graph.node * int) list -> t
(** @raise Invalid_argument on duplicate switches or negative times. *)

val to_list : t -> (Graph.node * int) list
(** Sorted by (time, switch). *)

val add : Graph.node -> int -> t -> t
(** @raise Invalid_argument if the switch is already scheduled or the time
    is negative. *)

val mem : Graph.node -> t -> bool
val find : Graph.node -> t -> int option
val size : t -> int
val is_empty : t -> bool

val switches : t -> Graph.node list

val max_time : t -> int
(** Latest update time; [-1] for the empty schedule. *)

val makespan : t -> int
(** Number of time steps [|T|] spanned by the update: [max_time + 1]
    (the paper's objective counts steps from [t_0]); [0] when empty. *)

val distinct_times : t -> int list
(** The sorted set of time points in use. *)

val at : int -> t -> Graph.node list
(** Switches updated at a given time, sorted. *)

val covers : Instance.t -> t -> bool
(** All switches that the instance requires to update are scheduled. *)

val restrict_to : Instance.t -> t -> t
(** Drop entries for switches the instance does not update. *)

val fold : (Graph.node -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds [f switch time] over the entries in increasing
    switch order, without materialising an intermediate list — the
    oracle folds over every candidate schedule it evaluates. *)

val shift : int -> t -> t
(** Add a constant to every time. @raise Invalid_argument if any time would
    become negative. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
