open Chronus_graph
open Chronus_flow
module Pool = Chronus_parallel.Pool
module Obs = Chronus_obs.Obs
module Fiber = Chronus_fiber.Fiber
module Engine = Chronus_sim.Engine

(* Observability (see OBSERVABILITY.md): the service counters narrate the
   request lifecycle — submitted at the door, admitted/serialized/denied
   by admission control, committed/aborted by the transaction itself.
   They only observe; no service decision ever reads them. *)
let c_submitted = Obs.Counter.v "service.submitted"
let c_admitted = Obs.Counter.v "service.admitted"
let c_serialized = Obs.Counter.v "service.serialized"
let c_denied = Obs.Counter.v "service.denied"
let c_committed = Obs.Counter.v "service.committed"
let c_aborted = Obs.Counter.v "service.aborted"
let c_batches = Obs.Counter.v "service.batches"
let c_fp_reuse = Obs.Counter.v "service.footprint_reuse"
let g_queue = Obs.Gauge.v "service.queue_depth"
let s_txn = Obs.Span.v "service.txn"

type conflict_policy = Serialize | Deny

type denial =
  | Unknown_flow of int
  | Invalid_path of string
  | Queue_full of { limit : int }
  | Conflict of { with_rid : int; reason : Footprint.conflict }
  | Capacity of { u : Graph.node; v : Graph.node; need : int; available : int }
  | Unschedulable of { remaining : int }

type exec_mode =
  | Validate_only
  | Simulate of { seed : int; config : Chronus_exec.Exec_env.config }

type exec_summary = {
  exec_clean : bool;
  exec_events : int;
  exec_commands : int;
}

type verdict =
  | Committed of { schedule : Schedule.t; makespan : int }
  | Denied of denial

type outcome = {
  rid : int;
  fid : int;
  target : Path.t;
  verdict : verdict;
  batch : int;
  serialized_after : int list;
  execution : exec_summary option;
  wall_ns : int;
}

type request = {
  r_rid : int;
  r_fid : int;
  r_target : Path.t;
  r_submitted_ns : int;
  r_after : int list;  (** rids waited for so far, most recent first *)
  mutable r_fp : (Path.t * Footprint.t) option;
      (** footprint cached at submit, witnessed by the current path it
          was derived from; refreshed only if a commit moved the flow *)
}

module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  graph : Graph.t;
  demands : int Itbl.t;  (** fid -> demand, fixed at creation *)
  route_tbl : Path.t Itbl.t;  (** fid -> current path; the shared state *)
  mutable queue : request list;  (** pending, most recent first *)
  mutable next_rid : int;
  mutable batches : int;
  queue_limit : int;
  policy : conflict_policy;
  exec : exec_mode;
  lock : Mutex.t;  (** guards [checkers]; taken only around list ops *)
  mutable checkers : Oracle.Checker.t list;
      (** idle pooled oracle sessions, all over [graph]; workers take one
          per transaction, retarget it, and put it back — so the session
          count is bounded by the pool's concurrency, not the load *)
}

let create ?(queue_limit = 4096) ?(conflict_policy = Serialize)
    ?(exec = Validate_only) multi =
  let demands = Itbl.create 16 and route_tbl = Itbl.create 16 in
  List.iter
    (fun f ->
      Itbl.replace demands f.Instance.fid f.Instance.f_demand;
      Itbl.replace route_tbl f.Instance.fid f.Instance.f_init)
    (Instance.flows multi);
  {
    graph = multi.Instance.m_graph;
    demands;
    route_tbl;
    queue = [];
    next_rid = 0;
    batches = 0;
    queue_limit;
    policy = conflict_policy;
    exec;
    lock = Mutex.create ();
    checkers = [];
  }

let graph t = t.graph

let routes t =
  Itbl.fold (fun fid p acc -> (fid, p) :: acc) t.route_tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let current_path t fid = Itbl.find_opt t.route_tbl fid

let pending t = List.length t.queue

(* Structural target validation at the door, so every queued request is
   well-formed and in-batch denials are about capacity and consistency
   only. *)
let validate_target t fid target =
  match Itbl.find_opt t.route_tbl fid with
  | None -> Some (Unknown_flow fid)
  | Some current ->
      let fail fmt = Format.kasprintf (fun s -> Some (Invalid_path s)) fmt in
      if target = [] then fail "target path is empty"
      else if not (Path.is_simple target) then fail "target repeats a switch"
      else if not (Path.is_valid t.graph target) then
        fail "target uses a link the network does not have"
      else if Path.source target <> Path.source current then
        fail "target source v%d differs from the flow's source v%d"
          (Path.source target) (Path.source current)
      else if Path.destination target <> Path.destination current then
        fail "target destination v%d differs from the flow's destination v%d"
          (Path.destination target)
          (Path.destination current)
      else None

let submit t ~fid ~target =
  Obs.Counter.incr c_submitted;
  let denial =
    if List.length t.queue >= t.queue_limit then
      Some (Queue_full { limit = t.queue_limit })
    else validate_target t fid target
  in
  match denial with
  | Some d ->
      Obs.Counter.incr c_denied;
      Error d
  | None ->
      let rid = t.next_rid in
      t.next_rid <- rid + 1;
      (* Derive the footprint once, at the door: batch selection reuses it
         on every pass for as long as the flow's current path stands. *)
      let current = Itbl.find t.route_tbl fid in
      let fp =
        Footprint.of_flow ~graph:t.graph ~fid
          ~demand:(Itbl.find t.demands fid) ~current ~target
      in
      t.queue <-
        {
          r_rid = rid;
          r_fid = fid;
          r_target = target;
          r_submitted_ns = Obs.clock_ns ();
          r_after = [];
          r_fp = Some (current, fp);
        }
        :: t.queue;
      Obs.Gauge.observe g_queue (List.length t.queue);
      Ok rid

(* The steady load every flow except [fid] places on the network — the
   [?background] the oracle charges and the capacity pre-check subtracts.
   Within a batch the other selected flows sit on their old routes here;
   that is sound because the budget admission bounds every batchmate's
   transient load beyond its steady share on each shared link (and flows
   meeting this transaction nowhere never touch its links at all). *)
let background_for t fid =
  let others =
    Itbl.fold
      (fun ofid p acc ->
        if ofid = fid then acc else (Itbl.find t.demands ofid, p) :: acc)
      t.route_tbl []
  in
  Instance.background others

(* The persistent cross-batch oracle sessions. A transaction takes an
   idle session from the pool (or opens one on a miss — the only
   remaining from-scratch evaluation in the whole pipeline), retargets it
   at its own instance with the batch's steady background, and returns it
   after the verdict. Sessions are single-domain state, but a taken
   session is exclusively held, so only the free-list needs the lock. *)
let acquire_checker t inst bg =
  Mutex.lock t.lock;
  let pooled =
    match t.checkers with
    | [] -> None
    | ck :: rest ->
        t.checkers <- rest;
        Some ck
  in
  Mutex.unlock t.lock;
  match pooled with
  | Some ck ->
      Oracle.Checker.retarget ~background:bg ck inst;
      ck
  | None -> Oracle.Checker.create ~background:bg inst Schedule.empty

let release_checker t ck =
  Mutex.lock t.lock;
  t.checkers <- ck :: t.checkers;
  Mutex.unlock t.lock

(* Solve one admitted transaction: schedule with the exact greedy driving
   a pooled oracle session against the cross-flow background. Every
   candidate check is an incremental probe over cached cohort
   simulations, and a [Scheduled] outcome leaves the session's base
   holding exactly the final schedule — its cached report *is* the
   full-capacity oracle's verdict, so the commit gate is free. *)
let solve t req =
  let fid = req.r_fid and target = req.r_target in
  let demand = Itbl.find t.demands fid in
  let current = Itbl.find t.route_tbl fid in
  if Path.equal current target then
    Ok (Schedule.empty, None)
  else
    let bg = background_for t fid in
    let insufficient =
      List.find_opt
        (fun (u, v) -> Graph.capacity t.graph u v - bg u v < demand)
        (Path.edges target)
    in
    match insufficient with
    | Some (u, v) ->
        Error
          (Capacity
             { u; v; need = demand; available = Graph.capacity t.graph u v - bg u v })
    | None -> (
        match
          try
            Ok
              (Instance.create ~graph:t.graph ~demand ~p_init:current
                 ~p_fin:target)
          with Instance.Ill_formed msg -> Error (Invalid_path msg)
        with
        | Error d -> Error d
        | Ok inst -> (
            let ck = acquire_checker t inst bg in
            match
              Chronus_core.Greedy.schedule ~mode:Chronus_core.Greedy.Exact
                ~oracle:ck inst
            with
            | Chronus_core.Greedy.Infeasible { remaining; _ } ->
                release_checker t ck;
                Error (Unschedulable { remaining = List.length remaining })
            | Chronus_core.Greedy.Scheduled sched ->
                let report = Oracle.Checker.base_report ck in
                let gate_ok =
                  Schedule.covers inst sched && report.Oracle.ok
                in
                release_checker t ck;
                if not gate_ok then Error (Unschedulable { remaining = 0 })
                else
                  let execution =
                    match t.exec with
                    | Validate_only -> None
                    | Simulate { seed; config } ->
                        let run_seed =
                          Chronus_topo.Rng.int
                            (Chronus_topo.Rng.derive seed [ 17; req.r_rid ])
                            0x3FFFFFFF
                        in
                        (* Execution stays on the residual projection so
                           the simulated monitor sees the headroom other
                           flows leave, exactly as the operator's network
                           would. *)
                        let exec_inst =
                          match
                            Instance.create
                              ~graph:(Instance.residual_graph t.graph bg)
                              ~demand ~p_init:current ~p_fin:target
                          with
                          | inst' -> inst'
                          | exception Instance.Ill_formed _ -> inst
                        in
                        let run =
                          Chronus_exec.Timed_exec.run ~config ~seed:run_seed
                            exec_inst
                        in
                        let result = run.Chronus_exec.Timed_exec.result in
                        Some
                          {
                            exec_clean =
                              run.Chronus_exec.Timed_exec.path
                              = Chronus_exec.Timed_exec.Timed
                              && Chronus_sim.Monitor.no_violations
                                   result.Chronus_exec.Exec_env.violations;
                            exec_events = result.Chronus_exec.Exec_env.events;
                            exec_commands =
                              result.Chronus_exec.Exec_env.commands;
                          }
                  in
                  Ok (sched, execution)))

(* The submit-time footprint, reused verbatim for as long as the flow
   still sits on the path it was derived from; only a commit that moved
   the flow (so the request was serialized behind it) forces a
   re-derivation against the new current path. *)
let footprint_of t req =
  let current = Itbl.find t.route_tbl req.r_fid in
  match req.r_fp with
  | Some (witness, fp) when Path.equal witness current ->
      Obs.Counter.incr c_fp_reuse;
      fp
  | _ ->
      let fp =
        Footprint.of_flow ~graph:t.graph ~fid:req.r_fid
          ~demand:(Itbl.find t.demands req.r_fid) ~current ~target:req.r_target
      in
      req.r_fp <- Some (current, fp);
      fp

(* Total steady load of every flow's current route — the [steady] the
   admission budget charges (each candidate's own share is subtracted
   inside the budget, entry by entry). *)
let total_steady t =
  let flows =
    Itbl.fold
      (fun fid p acc -> (Itbl.find t.demands fid, p) :: acc)
      t.route_tbl []
  in
  Instance.background flows

(* One admission round: scan the pending requests in rid order; a request
   joins the batch iff the budget accepts its cached footprint against
   everything already selected, so earlier requests always win admission
   races and the batch composition is independent of the job count. *)
let select_batch t pending =
  let budget =
    Footprint.Budget.create
      ~capacity:(Graph.capacity t.graph)
      ~steady:(total_steady t)
  in
  let selected = ref [] (* (request, footprint), reverse rid order *) in
  let deferred = ref [] and denied = ref [] in
  List.iter
    (fun req ->
      let fp = footprint_of t req in
      match Footprint.Budget.admit budget ~rid:req.r_rid fp with
      | Ok () ->
          Obs.Counter.incr c_admitted;
          selected := (req, fp) :: !selected
      | Error (with_rid, reason) -> (
          match t.policy with
          | Serialize ->
              Obs.Counter.incr c_serialized;
              deferred :=
                { req with r_after = with_rid :: req.r_after } :: !deferred
          | Deny ->
              Obs.Counter.incr c_denied;
              denied := (req, Conflict { with_rid; reason }) :: !denied))
    pending;
  (List.rev !selected, List.rev !deferred, List.rev !denied)

let outcome_of t req verdict execution =
  {
    rid = req.r_rid;
    fid = req.r_fid;
    target = req.r_target;
    verdict;
    batch = t.batches;
    serialized_after = List.rev req.r_after;
    execution;
    wall_ns = Obs.clock_ns () - req.r_submitted_ns;
  }

let process ?jobs t =
  let outcomes = ref [] in
  let rec drain pending =
    match pending with
    | [] -> ()
    | _ ->
        t.batches <- t.batches + 1;
        Obs.Counter.incr c_batches;
        let selected, deferred, denied = select_batch t pending in
        List.iter
          (fun (req, d) -> outcomes := outcome_of t req (Denied d) None :: !outcomes)
          denied;
        let results =
          Pool.parallel_map ?jobs
            (fun (req, _) -> Obs.Span.with_h s_txn (fun () -> solve t req))
            selected
        in
        (* Commit sequentially in rid order: route-table writes happen
           only here, between pool batches, so workers always read a
           frozen route state. *)
        List.iter2
          (fun (req, _) result ->
            match result with
            | Ok (sched, execution) ->
                Obs.Counter.incr c_committed;
                Itbl.replace t.route_tbl req.r_fid req.r_target;
                outcomes :=
                  outcome_of t req
                    (Committed { schedule = sched; makespan = Schedule.makespan sched })
                    execution
                  :: !outcomes
            | Error d ->
                Obs.Counter.incr c_aborted;
                outcomes := outcome_of t req (Denied d) None :: !outcomes)
          selected results;
        Obs.Gauge.observe g_queue (List.length deferred);
        drain deferred
  in
  drain (List.sort (fun a b -> Int.compare a.r_rid b.r_rid) t.queue);
  t.queue <- [];
  List.sort (fun a b -> Int.compare a.rid b.rid) !outcomes

(* ------------------------------------------------------------------ *)
(* The long-running accept loop: submissions arrive on virtual time,
   fibers carry them, and the verdict comes back on a per-transaction
   mailbox. The accept fiber lets the current instant's arrivals settle
   before admitting, so simultaneous submissions form one admission
   round — which is exactly what makes [run_async] outcome-identical to
   a [submit]* + [process] sequence for a same-instant burst. *)

type arrival = { at : Chronus_sim.Sim_time.t; a_fid : int; a_target : Path.t }

type async_outcome = {
  submitted_at : Chronus_sim.Sim_time.t;
  decided_at : Chronus_sim.Sim_time.t;
  a_result : (outcome, denial) result;
      (** [Error] is a door denial (validation, queue limit); everything
          past the door resolves to a full {!outcome} *)
}

let run_async ?jobs t arrivals =
  let engine = Engine.create () in
  let rt = Engine.fiber_runtime engine in
  (* Client fibers announce (rid, reply mailbox) here after the door. *)
  let announce : (int * outcome Fiber.Mailbox.t) Fiber.Mailbox.t =
    Fiber.Mailbox.create rt
  in
  let results = Array.make (List.length arrivals) None in
  let clients =
    List.mapi
      (fun i a ->
        Fiber.spawn_root rt (fun () ->
            Fiber.sleep_until a.at;
            match submit t ~fid:a.a_fid ~target:a.a_target with
            | Error d ->
                results.(i) <-
                  Some
                    {
                      submitted_at = a.at;
                      decided_at = Fiber.now ();
                      a_result = Error d;
                    }
            | Ok rid ->
                let box = Fiber.Mailbox.create rt in
                Fiber.Mailbox.send announce (rid, box);
                let oc = Fiber.Mailbox.recv box in
                results.(i) <-
                  Some
                    {
                      submitted_at = a.at;
                      decided_at = Fiber.now ();
                      a_result = Ok oc;
                    }))
      arrivals
  in
  let accept =
    Fiber.spawn_root rt (fun () ->
        let boxes = Itbl.create 16 in
        let register (rid, box) = Itbl.replace boxes rid box in
        let rec serve () =
          register (Fiber.Mailbox.recv announce);
          (* Step to the end of the current instant so every
             same-instant arrival has submitted, then drain them all
             into this admission round. *)
          Fiber.sleep_until (Fiber.now ());
          let rec drain_announcements () =
            match Fiber.Mailbox.try_recv announce with
            | Some reg ->
                register reg;
                drain_announcements ()
            | None -> ()
          in
          drain_announcements ();
          let outcomes = process ?jobs t in
          List.iter
            (fun oc ->
              match Itbl.find_opt boxes oc.rid with
              | Some box ->
                  Itbl.remove boxes oc.rid;
                  Fiber.Mailbox.send box oc
              | None -> ())
            outcomes;
          serve ()
        in
        serve ())
  in
  Engine.run engine;
  (* All clients are done; the accept loop is parked on its mailbox —
     structured cancellation retires it. *)
  Fiber.cancel accept;
  Fiber.drain rt;
  List.iteri
    (fun i c ->
      match Fiber.poll c with
      | Some (Ok ()) -> ()
      | Some (Error e) -> raise e
      | None ->
          invalid_arg
            (Printf.sprintf
               "Service.run_async: client %d never received a verdict" i))
    clients;
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)

let pp_denial ppf = function
  | Unknown_flow fid -> Format.fprintf ppf "unknown flow %d" fid
  | Invalid_path msg -> Format.fprintf ppf "invalid path: %s" msg
  | Queue_full { limit } -> Format.fprintf ppf "queue full (limit %d)" limit
  | Conflict { with_rid; reason } ->
      Format.fprintf ppf "conflict with request %d (%a)" with_rid
        Footprint.pp_conflict reason
  | Capacity { u; v; need; available } ->
      Format.fprintf ppf
        "insufficient residual capacity on v%d -> v%d (need %d, available %d)"
        u v need available
  | Unschedulable { remaining } ->
      Format.fprintf ppf "no consistent schedule (%d switches unplaced)"
        remaining

let pp_verdict ppf = function
  | Committed { makespan; _ } ->
      Format.fprintf ppf "committed (makespan %d)" makespan
  | Denied d -> Format.fprintf ppf "denied: %a" pp_denial d

let pp_outcome ppf o =
  Format.fprintf ppf "@[<h>request %d (flow %d, batch %d): %a%a@]" o.rid o.fid
    o.batch pp_verdict o.verdict
    (fun ppf -> function
      | [] -> ()
      | after ->
          Format.fprintf ppf " after %a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Format.pp_print_int)
            after)
    o.serialized_after
