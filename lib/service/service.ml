open Chronus_graph
open Chronus_flow
module Pool = Chronus_parallel.Pool
module Obs = Chronus_obs.Obs

(* Observability (see OBSERVABILITY.md): the service counters narrate the
   request lifecycle — submitted at the door, admitted/serialized/denied
   by admission control, committed/aborted by the transaction itself.
   They only observe; no service decision ever reads them. *)
let c_submitted = Obs.Counter.v "service.submitted"
let c_admitted = Obs.Counter.v "service.admitted"
let c_serialized = Obs.Counter.v "service.serialized"
let c_denied = Obs.Counter.v "service.denied"
let c_committed = Obs.Counter.v "service.committed"
let c_aborted = Obs.Counter.v "service.aborted"
let c_batches = Obs.Counter.v "service.batches"
let g_queue = Obs.Gauge.v "service.queue_depth"
let s_txn = Obs.Span.v "service.txn"

type conflict_policy = Serialize | Deny

type denial =
  | Unknown_flow of int
  | Invalid_path of string
  | Queue_full of { limit : int }
  | Conflict of { with_rid : int; reason : Footprint.conflict }
  | Capacity of { u : Graph.node; v : Graph.node; need : int; available : int }
  | Unschedulable of { remaining : int }

type exec_mode =
  | Validate_only
  | Simulate of { seed : int; config : Chronus_exec.Exec_env.config }

type exec_summary = {
  exec_clean : bool;
  exec_events : int;
  exec_commands : int;
}

type verdict =
  | Committed of { schedule : Schedule.t; makespan : int }
  | Denied of denial

type outcome = {
  rid : int;
  fid : int;
  target : Path.t;
  verdict : verdict;
  batch : int;
  serialized_after : int list;
  execution : exec_summary option;
  wall_ns : int;
}

type request = {
  r_rid : int;
  r_fid : int;
  r_target : Path.t;
  r_submitted_ns : int;
  r_after : int list;  (** rids waited for so far, most recent first *)
}

module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  graph : Graph.t;
  demands : int Itbl.t;  (** fid -> demand, fixed at creation *)
  route_tbl : Path.t Itbl.t;  (** fid -> current path; the shared state *)
  mutable queue : request list;  (** pending, most recent first *)
  mutable next_rid : int;
  mutable batches : int;
  queue_limit : int;
  policy : conflict_policy;
  exec : exec_mode;
}

let create ?(queue_limit = 4096) ?(conflict_policy = Serialize)
    ?(exec = Validate_only) multi =
  let demands = Itbl.create 16 and route_tbl = Itbl.create 16 in
  List.iter
    (fun f ->
      Itbl.replace demands f.Instance.fid f.Instance.f_demand;
      Itbl.replace route_tbl f.Instance.fid f.Instance.f_init)
    (Instance.flows multi);
  {
    graph = multi.Instance.m_graph;
    demands;
    route_tbl;
    queue = [];
    next_rid = 0;
    batches = 0;
    queue_limit;
    policy = conflict_policy;
    exec;
  }

let graph t = t.graph

let routes t =
  Itbl.fold (fun fid p acc -> (fid, p) :: acc) t.route_tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let current_path t fid = Itbl.find_opt t.route_tbl fid

let pending t = List.length t.queue

(* Structural target validation at the door, so every queued request is
   well-formed and in-batch denials are about capacity and consistency
   only. *)
let validate_target t fid target =
  match Itbl.find_opt t.route_tbl fid with
  | None -> Some (Unknown_flow fid)
  | Some current ->
      let fail fmt = Format.kasprintf (fun s -> Some (Invalid_path s)) fmt in
      if target = [] then fail "target path is empty"
      else if not (Path.is_simple target) then fail "target repeats a switch"
      else if not (Path.is_valid t.graph target) then
        fail "target uses a link the network does not have"
      else if Path.source target <> Path.source current then
        fail "target source v%d differs from the flow's source v%d"
          (Path.source target) (Path.source current)
      else if Path.destination target <> Path.destination current then
        fail "target destination v%d differs from the flow's destination v%d"
          (Path.destination target)
          (Path.destination current)
      else None

let submit t ~fid ~target =
  Obs.Counter.incr c_submitted;
  let denial =
    if List.length t.queue >= t.queue_limit then
      Some (Queue_full { limit = t.queue_limit })
    else validate_target t fid target
  in
  match denial with
  | Some d ->
      Obs.Counter.incr c_denied;
      Error d
  | None ->
      let rid = t.next_rid in
      t.next_rid <- rid + 1;
      t.queue <-
        {
          r_rid = rid;
          r_fid = fid;
          r_target = target;
          r_submitted_ns = Obs.clock_ns ();
          r_after = [];
        }
        :: t.queue;
      Obs.Gauge.observe g_queue (List.length t.queue);
      Ok rid

(* The steady load every flow except [fid] places on the network — the
   [?background] the oracle charges and the capacity [residual_graph]
   subtracts. Within a batch the other selected flows sit on their old
   routes here; that is sound because footprint disjointness means they
   never touch this transaction's links, before or after their commit. *)
let background_for t fid =
  let others =
    Itbl.fold
      (fun ofid p acc ->
        if ofid = fid then acc else (Itbl.find t.demands ofid, p) :: acc)
      t.route_tbl []
  in
  Instance.background others

(* Solve one admitted transaction: project the flow onto its residual
   network, schedule with the exact greedy, then gate the commit on the
   full-capacity oracle with the cross-flow background — the equivalence
   of the two views is asserted differentially in test/suite_service.ml. *)
let solve t req =
  let fid = req.r_fid and target = req.r_target in
  let demand = Itbl.find t.demands fid in
  let current = Itbl.find t.route_tbl fid in
  if Path.equal current target then
    Ok (Schedule.empty, None)
  else
    let bg = background_for t fid in
    let insufficient =
      List.find_opt
        (fun (u, v) -> Graph.capacity t.graph u v - bg u v < demand)
        (Path.edges target)
    in
    match insufficient with
    | Some (u, v) ->
        Error
          (Capacity
             { u; v; need = demand; available = Graph.capacity t.graph u v - bg u v })
    | None -> (
        let residual = Instance.residual_graph t.graph bg in
        match
          try
            Ok
              (Instance.create ~graph:residual ~demand ~p_init:current
                 ~p_fin:target)
          with Instance.Ill_formed msg -> Error (Invalid_path msg)
        with
        | Error d -> Error d
        | Ok inst -> (
            match Chronus_core.Greedy.schedule ~mode:Chronus_core.Greedy.Exact inst with
            | Chronus_core.Greedy.Infeasible { remaining; _ } ->
                Error (Unschedulable { remaining = List.length remaining })
            | Chronus_core.Greedy.Scheduled sched ->
                let full =
                  Instance.create ~graph:t.graph ~demand ~p_init:current
                    ~p_fin:target
                in
                let report = Oracle.evaluate ~background:bg full sched in
                if not (Schedule.covers full sched && report.Oracle.ok) then
                  Error (Unschedulable { remaining = 0 })
                else
                  let execution =
                    match t.exec with
                    | Validate_only -> None
                    | Simulate { seed; config } ->
                        let run_seed =
                          Chronus_topo.Rng.int
                            (Chronus_topo.Rng.derive seed [ 17; req.r_rid ])
                            0x3FFFFFFF
                        in
                        let run =
                          Chronus_exec.Timed_exec.run ~config ~seed:run_seed
                            inst
                        in
                        let result = run.Chronus_exec.Timed_exec.result in
                        Some
                          {
                            exec_clean =
                              run.Chronus_exec.Timed_exec.path
                              = Chronus_exec.Timed_exec.Timed
                              && Chronus_sim.Monitor.no_violations
                                   result.Chronus_exec.Exec_env.violations;
                            exec_events = result.Chronus_exec.Exec_env.events;
                            exec_commands =
                              result.Chronus_exec.Exec_env.commands;
                          }
                  in
                  Ok (sched, execution)))

(* One admission round: scan the pending requests in rid order; a request
   joins the batch iff its footprint conflicts with no already-selected
   transaction, so earlier requests always win footprint races and the
   batch composition is independent of the job count. *)
let select_batch t pending =
  let selected = ref [] (* (request, footprint), reverse rid order *) in
  let deferred = ref [] and denied = ref [] in
  List.iter
    (fun req ->
      let fp =
        Footprint.of_paths [ Itbl.find t.route_tbl req.r_fid; req.r_target ]
      in
      let clash =
        List.find_opt
          (fun (_, sfp) -> Footprint.conflict fp sfp <> None)
          (List.rev !selected)
      in
      match clash with
      | None ->
          Obs.Counter.incr c_admitted;
          selected := (req, fp) :: !selected
      | Some (winner, wfp) -> (
          let reason = Option.get (Footprint.conflict fp wfp) in
          match t.policy with
          | Serialize ->
              Obs.Counter.incr c_serialized;
              deferred :=
                { req with r_after = winner.r_rid :: req.r_after } :: !deferred
          | Deny ->
              Obs.Counter.incr c_denied;
              denied :=
                (req, Conflict { with_rid = winner.r_rid; reason }) :: !denied))
    pending;
  (List.rev !selected, List.rev !deferred, List.rev !denied)

let outcome_of t req verdict execution =
  {
    rid = req.r_rid;
    fid = req.r_fid;
    target = req.r_target;
    verdict;
    batch = t.batches;
    serialized_after = List.rev req.r_after;
    execution;
    wall_ns = Obs.clock_ns () - req.r_submitted_ns;
  }

let process ?jobs t =
  let outcomes = ref [] in
  let rec drain pending =
    match pending with
    | [] -> ()
    | _ ->
        t.batches <- t.batches + 1;
        Obs.Counter.incr c_batches;
        let selected, deferred, denied = select_batch t pending in
        List.iter
          (fun (req, d) -> outcomes := outcome_of t req (Denied d) None :: !outcomes)
          denied;
        let results =
          Pool.parallel_map ?jobs
            (fun (req, _) -> Obs.Span.with_h s_txn (fun () -> solve t req))
            selected
        in
        (* Commit sequentially in rid order: route-table writes happen
           only here, between pool batches, so workers always read a
           frozen route state. *)
        List.iter2
          (fun (req, _) result ->
            match result with
            | Ok (sched, execution) ->
                Obs.Counter.incr c_committed;
                Itbl.replace t.route_tbl req.r_fid req.r_target;
                outcomes :=
                  outcome_of t req
                    (Committed { schedule = sched; makespan = Schedule.makespan sched })
                    execution
                  :: !outcomes
            | Error d ->
                Obs.Counter.incr c_aborted;
                outcomes := outcome_of t req (Denied d) None :: !outcomes)
          selected results;
        Obs.Gauge.observe g_queue (List.length deferred);
        drain deferred
  in
  drain (List.sort (fun a b -> Int.compare a.r_rid b.r_rid) t.queue);
  t.queue <- [];
  List.sort (fun a b -> Int.compare a.rid b.rid) !outcomes

let pp_denial ppf = function
  | Unknown_flow fid -> Format.fprintf ppf "unknown flow %d" fid
  | Invalid_path msg -> Format.fprintf ppf "invalid path: %s" msg
  | Queue_full { limit } -> Format.fprintf ppf "queue full (limit %d)" limit
  | Conflict { with_rid; reason } ->
      Format.fprintf ppf "conflict with request %d (%a)" with_rid
        Footprint.pp_conflict reason
  | Capacity { u; v; need; available } ->
      Format.fprintf ppf
        "insufficient residual capacity on v%d -> v%d (need %d, available %d)"
        u v need available
  | Unschedulable { remaining } ->
      Format.fprintf ppf "no consistent schedule (%d switches unplaced)"
        remaining

let pp_verdict ppf = function
  | Committed { makespan; _ } ->
      Format.fprintf ppf "committed (makespan %d)" makespan
  | Denied d -> Format.fprintf ppf "denied: %a" pp_denial d

let pp_outcome ppf o =
  Format.fprintf ppf "@[<h>request %d (flow %d, batch %d): %a%a@]" o.rid o.fid
    o.batch pp_verdict o.verdict
    (fun ppf -> function
      | [] -> ()
      | after ->
          Format.fprintf ppf " after %a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Format.pp_print_int)
            after)
    o.serialized_after
