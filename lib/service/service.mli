(** The transactional update service: a stream of flow-reroute requests
    over one shared network, executed as concurrently as consistency
    allows.

    The one-shot Chronus solver moves a single flow; a production
    controller fields many requests for many flows sharing links. The
    service closes that gap with the Software-Transactional-Network
    discipline: each request is a {e transaction}, its {!Footprint}
    records rule-granular write sets and per-link worst-case transient
    loads, and a batch of transactions the {!Footprint.Budget} admits
    together is solved concurrently over [Chronus_parallel.Pool].
    Admitted transactions either touch pairwise disjoint state or share
    links with enough capacity for their combined worst-case transients,
    so any interleaving (and any job count) yields the same final
    routes; merely sharing a link no longer serializes two requests.
    Conflicting requests are serialized into a later batch (default) or
    denied outright, always with a structured reason naming the conflict
    and the transaction that won.

    Each transaction's schedule search and commit gate run through a
    pooled persistent {!Oracle.Checker} session (retargeted per
    transaction, cross-flow steady load folded into its background), so
    admission-to-verdict costs incremental probes over cached cohort
    simulations rather than from-scratch oracle evaluations — the bench's
    [service] object reports [full_evals_per_txn] well below 1.

    Request lifecycle (SERVICE.md is the operator-facing guide):

    - {b submitted} — {!submit} assigned a request id, or turned the
      request away at the door ([Unknown_flow], [Invalid_path],
      [Queue_full]);
    - {b admitted / serialized / denied} — {!process} either selected
      the request into the current batch, deferred it behind a
      conflicting earlier request, or (under the [Deny] policy) refused
      it with [Conflict];
    - {b committed / aborted} — an admitted transaction either found a
      consistent schedule and atomically became the flow's new route, or
      failed validation ([Capacity], [Unschedulable]) leaving the route
      untouched.

    Every step is observable: [service.*] counters, the
    [service.queue_depth] gauge and the [service.txn] span are
    documented in OBSERVABILITY.md. Metrics observe, never branch —
    outcomes are bit-identical with tracing on or off and at any job
    count. *)

open Chronus_graph
open Chronus_flow

(** What to do with a request the admission budget rejects against an
    already-selected transaction of the same batch. *)
type conflict_policy =
  | Serialize  (** defer it to a later batch (the default) *)
  | Deny  (** refuse it with [Conflict], leaving the route unchanged *)

(** Structured reasons a request does not commit. The constructor order
    mirrors the lifecycle: the first three can only arise at {!submit},
    the rest during {!process}. *)
type denial =
  | Unknown_flow of int  (** no flow with this [fid] exists *)
  | Invalid_path of string
      (** the target is not a simple valid path with the flow's
          endpoints; the message pinpoints the defect *)
  | Queue_full of { limit : int }  (** back-pressure: retry after a drain *)
  | Conflict of { with_rid : int; reason : Footprint.conflict }
      (** [Deny] policy only: the named earlier request won the
          admission race this batch (same flow, shared rule slot, or a
          shared link that cannot absorb both worst cases) *)
  | Capacity of {
      u : Graph.node;
      v : Graph.node;
      need : int;  (** the flow's demand *)
      available : int;  (** link capacity minus steady cross-flow load *)
    }
      (** the target path needs more residual capacity on [u -> v] than
          the other flows' routes leave *)
  | Unschedulable of { remaining : int }
      (** no consistent timed schedule exists even though steady-state
          capacities suffice; [remaining] is the number of switches the
          scheduler could not place (0 in the defensive case where a
          complete schedule failed final oracle validation) *)

(** How committed transactions touch the data plane. *)
type exec_mode =
  | Validate_only
      (** oracle-validate only; routes are bookkeeping (the default) *)
  | Simulate of { seed : int; config : Chronus_exec.Exec_env.config }
      (** additionally drive each committed transaction through
          [Chronus_exec.Timed_exec] on the flow's residual network,
          seeded per request id — deterministic, so golden replays can
          pin the summaries *)

type exec_summary = {
  exec_clean : bool;
      (** the simulated run finished with zero monitor violations on the
          timed path (no fallback, no loops/blackholes/overloads) *)
  exec_events : int;  (** simulator events the run dispatched *)
  exec_commands : int;  (** flow-mod commands the executor issued *)
}
(** Measurement of one simulated transaction ([Simulate] mode only). *)

(** Terminal state of a processed request. *)
type verdict =
  | Committed of { schedule : Schedule.t; makespan : int }
      (** the flow now routes over its target path; [schedule] is the
          consistent timed schedule that moved it ([Schedule.empty] for
          a no-op request whose target equals the current path) *)
  | Denied of denial

type outcome = {
  rid : int;  (** request id, assigned by {!submit} in arrival order *)
  fid : int;
  target : Path.t;
  verdict : verdict;
  batch : int;  (** 1-based batch ordinal in which the verdict fell *)
  serialized_after : int list;
      (** rids of the conflicting transactions this request waited for,
          one per batch it sat out, in deferral order *)
  execution : exec_summary option;
      (** [Simulate] mode, committed non-trivial transactions only *)
  wall_ns : int;
      (** submit-to-verdict latency — wall-clock, so excluded from
          determinism digests (every other field is deterministic) *)
}
(** Everything the service decided about one request. *)

type t
(** A service instance: the shared graph, each flow's current route, and
    the queue of pending requests. Single-owner mutable state — submit
    and process from one domain; the internal pool fan-out is the
    service's own concern. *)

val create :
  ?queue_limit:int -> ?conflict_policy:conflict_policy -> ?exec:exec_mode ->
  Instance.multi -> t
(** A service over the multi-flow instance's graph, with every flow
    initially on its [f_init] path (the instance's [f_fin]s are ignored:
    targets arrive as requests). [queue_limit] (default 4096) bounds
    {!pending}; beyond it {!submit} answers [Queue_full]. *)

val graph : t -> Graph.t
(** The shared network (not copied; do not mutate). *)

val routes : t -> (int * Path.t) list
(** Current route per flow, sorted by [fid] — the "final flow tables"
    the commutativity property compares. *)

val current_path : t -> int -> Path.t option
(** Route of one flow, [None] for an unknown [fid]. *)

val pending : t -> int
(** Requests submitted but not yet processed. *)

val submit : t -> fid:int -> target:Path.t -> (int, denial) result
(** Enqueue a request to move flow [fid] onto [target]. [Ok rid]
    acknowledges admission to the queue; [Error] is a door denial
    ([Unknown_flow], [Invalid_path], [Queue_full]) that leaves the
    service unchanged. Structural path validation happens here, against
    the graph and the flow's endpoints, so every queued request is
    well-formed. *)

val process : ?jobs:int -> t -> outcome list
(** Drain the queue: repeatedly select the prefix-priority set of
    requests the admission budget accepts together (scanning cached
    footprints in rid order, so earlier requests always win admission
    races), solve the selected batch concurrently on [jobs] pool workers
    (default [Chronus_parallel.Pool.default_jobs ()]) — each over a
    pooled persistent oracle session — commit the survivors in rid
    order, and carry deferred requests into the next batch. Returns one
    outcome per queued request, sorted by rid. All fields except
    [wall_ns] are independent of [jobs]. *)

(** {1 The long-running accept loop}

    {!run_async} is the service as a daemon: submissions arrive over
    virtual time on client fibers, the accept fiber admits and solves
    them while later submissions are still arriving, and each
    transaction's verdict comes back on its own mailbox. Admission,
    batching, conflict resolution and commit order are {!process}'s —
    the accept loop reuses it verbatim — so a burst of same-instant
    submissions yields outcomes bit-identical (minus [wall_ns]) to the
    synchronous [submit]* + [process] sequence, at any job count. *)

type arrival = { at : Chronus_sim.Sim_time.t; a_fid : int; a_target : Path.t }
(** One client submission: at virtual time [at], ask to move flow
    [a_fid] onto [a_target]. *)

type async_outcome = {
  submitted_at : Chronus_sim.Sim_time.t;  (** the arrival's [at] *)
  decided_at : Chronus_sim.Sim_time.t;
      (** virtual time the verdict landed on the client's mailbox *)
  a_result : (outcome, denial) result;
      (** [Error] is a door denial (validation, queue limit); everything
          past the door resolves to a full {!outcome} *)
}

val run_async : ?jobs:int -> t -> arrival list -> async_outcome list
(** Run the accept loop over the arrival stream on a private
    deterministic engine: one fiber per arrival sleeps until its [at],
    submits, announces its request id, and awaits the verdict; the
    accept fiber gathers every same-instant announcement into one
    admission round, drains it through {!process} [?jobs], and routes
    each outcome to its transaction's mailbox. Returns one
    {!async_outcome} per arrival, in arrival-list order, once every
    client has its verdict. *)

val pp_denial : Format.formatter -> denial -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_outcome : Format.formatter -> outcome -> unit
