(** Transaction footprints: the part of the network one update request
    touches, and the conflict test the service's admission control is
    built on.

    A request to move flow [f] from its current path to a target path
    can, during the transition, place load on exactly the directed links
    of the two paths' union (every transient cohort follows either the
    old or the new rule at each switch, so it never leaves that union)
    and rewrite rules on exactly the union's switches. Two requests
    whose footprints are disjoint therefore commute: neither can observe
    the other through link load or rule space, so committing them in
    either order — or concurrently — yields the same final
    configuration. SERVICE.md states the rule set operators see; this
    module is its implementation. *)

open Chronus_graph
open Chronus_flow

type t = private {
  links : (Graph.node * Graph.node) list;
      (** directed links of the old∪new path union, sorted *)
  switches : Graph.node list;  (** switches of the union, sorted *)
  dst : Graph.node;  (** the flow's destination *)
}
(** The footprint of one transaction. Built only by {!of_paths} /
    {!of_instance}, so the sorted invariants always hold. *)

(** Why two footprints cannot run in the same batch. *)
type conflict =
  | Shared_link of Graph.node * Graph.node
      (** both transitions can load this directed link: capacity
          validated for one is invalidated by the other *)
  | Shared_destination of Graph.node
      (** forwarding rules are destination-keyed, so two updates towards
          the same destination rewrite the same rule space *)

val of_paths : Path.t list -> t
(** Footprint of a transaction whose transient traffic is confined to
    the given paths (for an update request: current path and target
    path). The destination is taken from the first path.
    @raise Invalid_argument on an empty list or an empty first path. *)

val of_instance : Instance.t -> t
(** [of_paths [p_init; p_fin]] of the instance. *)

val conflict : t -> t -> conflict option
(** The first conflict between two footprints in the order of the
    {!conflict} type (links before destinations, links in lexicographic
    order), or [None] when the transactions commute. Symmetric. *)

val pp : Format.formatter -> t -> unit
val pp_conflict : Format.formatter -> conflict -> unit
