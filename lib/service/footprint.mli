(** Rule-granular transaction footprints: what one update request can
    touch, measured precisely enough that merely sharing a link no longer
    serializes two transactions.

    A request moving flow [f] from its current path to a target path
    rewrites forwarding rules on exactly the switches whose next hop for
    [f]'s destination changes (the {e write set}), and its transient
    cohorts place load on exactly the directed links of the two paths'
    union. For every such link the footprint records two numbers: the
    flow's {e steady} share (its demand, on current-path links) and a
    sound {e worst-case} transient bound — demand times the number of
    distinct arrival delays achievable at the link's tail by hybrid
    old/new walks from the source. Simultaneously arriving cohorts must
    have pairwise-distinct delays, so no schedule, however adversarial,
    can exceed that bound on a link; links on the shared prefix of both
    paths have a single achievable delay and the bound collapses to the
    steady share.

    Two transactions then conflict only if they move the same flow, write
    the same [(switch, destination)] rule slot, or their combined
    worst-case transient load can overload a shared link — the test
    {!Budget} applies per batch and {!conflict} exposes pairwise.
    SERVICE.md states the rule set operators see; this module is its
    implementation. *)

open Chronus_graph

type entry = {
  e_u : Graph.node;
  e_v : Graph.node;  (** the directed link [e_u -> e_v] *)
  e_worst : int;  (** worst-case transient load the flow can place on it *)
  e_steady : int;  (** the flow's current steady load on it (demand or 0) *)
}

type t = private {
  fid : int;  (** the flow the transaction moves *)
  demand : int;
  dst : Graph.node;  (** the flow's destination (the rule-table key) *)
  links : entry list;
      (** directed links of the old∪new path union, sorted by (u, v) *)
  writes : Graph.node list;
      (** switches whose rule for [dst] the transition installs, removes
          or rewrites, sorted *)
  switches : Graph.node list;  (** all switches of the union, sorted *)
}
(** Built only by {!of_flow}, so the sorted invariants always hold. *)

(** Why two transactions cannot run in the same batch. *)
type conflict =
  | Same_flow of int
      (** both transactions move this flow: updates of one flow are
          inherently ordered *)
  | Shared_rule of { switch : Graph.node; dst : Graph.node }
      (** both write the rule slot for [dst] at [switch] *)
  | Link_overload of {
      u : Graph.node;
      v : Graph.node;
      combined : int;
          (** total steady load plus the admitted transactions' worst-case
              margins on the link, the candidate included *)
      capacity : int;
    }
      (** the combined worst-case transient load of the link-sharing
          transactions can exceed the link's capacity *)

val of_flow :
  graph:Graph.t ->
  fid:int ->
  demand:int ->
  current:Path.t ->
  target:Path.t ->
  t
(** Footprint of the transaction moving flow [fid] from [current] to
    [target]. @raise Invalid_argument if the paths do not share both
    endpoints. *)

(** Batch admission: a budget accumulates the footprints admitted into
    one concurrent batch and rejects a candidate that conflicts with any
    of them. Per-link accounting is an accumulator, not a pairwise test —
    three transactions sharing one link are admitted only if the link can
    absorb all three worst cases together.

    A candidate whose footprint meets no admitted transaction is always
    admitted: the budget only rules out {e cross-transaction} overload,
    while each transaction's own schedule is still gated by its oracle
    run against the precise steady background. Where at most one admitted
    transaction has transient headroom beyond its steady share on a link,
    that oracle gate already covers the combination, so no budget check
    is charged — this is what lets transactions sharing fully loaded but
    steady links run concurrently. *)
module Budget : sig
  type budget

  val create :
    capacity:(Graph.node -> Graph.node -> int) ->
    steady:(Graph.node -> Graph.node -> int) ->
    budget
  (** [steady u v] must be the total steady load all flows currently
      place on [u -> v] (admitted candidates' own shares included — the
      admission test subtracts each footprint's [e_steady] itself). *)

  val admit : budget -> rid:int -> t -> (unit, int * conflict) result
  (** Admit the footprint into the batch, or report the first conflict
      together with the rid of the earliest-admitted transaction
      responsible for it. [Ok] records the footprint in the budget;
      [Error] leaves the budget unchanged. *)
end

val conflict :
  capacity:(Graph.node -> Graph.node -> int) ->
  steady:(Graph.node -> Graph.node -> int) ->
  t ->
  t ->
  conflict option
(** Pairwise convenience over {!Budget}: the first conflict between two
    footprints ([Same_flow], then shared rule slots in switch order, then
    overloadable links in lexicographic order), or [None] when they can
    share a batch. Symmetric: only links where {e both} footprints have
    worst-case load beyond their steady share are charged. *)

val pp : Format.formatter -> t -> unit
val pp_conflict : Format.formatter -> conflict -> unit
