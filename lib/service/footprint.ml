open Chronus_graph
open Chronus_flow

type t = {
  links : (Graph.node * Graph.node) list;
  switches : Graph.node list;
  dst : Graph.node;
}

type conflict =
  | Shared_link of Graph.node * Graph.node
  | Shared_destination of Graph.node

let compare_link (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let of_paths = function
  | [] -> invalid_arg "Footprint.of_paths: no paths"
  | first :: _ as paths ->
      let links =
        List.concat_map Path.edges paths
        |> List.sort_uniq compare_link
      in
      let switches =
        List.concat paths |> List.sort_uniq Int.compare
      in
      { links; switches; dst = Path.destination first }

let of_instance inst =
  of_paths [ inst.Instance.p_init; inst.Instance.p_fin ]

(* Both link lists are sorted, so the first shared link (in lexicographic
   order, which makes [conflict] deterministic and symmetric) falls out
   of one merge walk. *)
let first_shared_link a b =
  let rec walk xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> None
    | x :: xs', y :: ys' -> (
        match compare_link x y with
        | 0 -> Some x
        | c when c < 0 -> walk xs' ys
        | _ -> walk xs ys')
  in
  walk a b

let conflict a b =
  match first_shared_link a.links b.links with
  | Some (u, v) -> Some (Shared_link (u, v))
  | None -> if a.dst = b.dst then Some (Shared_destination a.dst) else None

let pp ppf fp =
  Format.fprintf ppf "@[<h>footprint: %d links, %d switches, dst v%d@]"
    (List.length fp.links)
    (List.length fp.switches)
    fp.dst

let pp_conflict ppf = function
  | Shared_link (u, v) -> Format.fprintf ppf "shared link v%d -> v%d" u v
  | Shared_destination d -> Format.fprintf ppf "shared destination v%d" d
