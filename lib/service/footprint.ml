open Chronus_graph

module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type entry = {
  e_u : Graph.node;
  e_v : Graph.node;
  e_worst : int;
  e_steady : int;
}

type t = {
  fid : int;
  demand : int;
  dst : Graph.node;
  links : entry list;
  writes : Graph.node list;
  switches : Graph.node list;
}

type conflict =
  | Same_flow of int
  | Shared_rule of { switch : Graph.node; dst : Graph.node }
  | Link_overload of {
      u : Graph.node;
      v : Graph.node;
      combined : int;
      capacity : int;
    }

let compare_link (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

(* The set of arrival delays achievable at each switch of the old∪new
   union by a *hybrid* walk from the source: at every switch the walk may
   follow either the old or the new rule. Every transient cohort's actual
   route is such a walk (it consults exactly one of the two rules per
   switch), and a consistent schedule keeps every cohort loop-free, so
   walks of at most [n - 1] hops (n = union switch count) cover all of
   them. Computed as a hop-bounded BFS over (switch, delay) pairs —
   rediscovering a pair at a later hop has strictly less hop budget left,
   so first-discovery pruning is exact. *)
let delay_spread g current target =
  let succ = Itbl.create 16 in
  let add_edge (u, v) =
    let d = Graph.delay g u v in
    let prior = Option.value ~default:[] (Itbl.find_opt succ u) in
    if not (List.mem (v, d) prior) then Itbl.replace succ u ((v, d) :: prior)
  in
  List.iter add_edge (Path.edges current);
  List.iter add_edge (Path.edges target);
  let switches = List.sort_uniq Int.compare (current @ target) in
  let n = List.length switches in
  let spread = Itbl.create 16 in
  let note v d =
    let prior = Option.value ~default:[] (Itbl.find_opt spread v) in
    if List.mem d prior then false
    else begin
      Itbl.replace spread v (d :: prior);
      true
    end
  in
  let src = Path.source current in
  ignore (note src 0);
  let frontier = ref [ (src, 0) ] in
  for _hop = 1 to n - 1 do
    frontier :=
      List.concat_map
        (fun (u, d) ->
          List.filter_map
            (fun (v, dl) -> if note v (d + dl) then Some (v, d + dl) else None)
            (Option.value ~default:[] (Itbl.find_opt succ u)))
        !frontier
  done;
  fun v -> match Itbl.find_opt spread v with Some l -> List.length l | None -> 0

let of_flow ~graph ~fid ~demand ~current ~target =
  if Path.source current <> Path.source target then
    invalid_arg "Footprint.of_flow: paths share no source";
  let dst = Path.destination current in
  if dst <> Path.destination target then
    invalid_arg "Footprint.of_flow: paths share no destination";
  let spread = delay_spread graph current target in
  let link_set =
    List.sort_uniq compare_link (Path.edges current @ Path.edges target)
  in
  let links =
    List.map
      (fun (u, v) ->
        {
          e_u = u;
          e_v = v;
          e_worst = demand * spread u;
          e_steady = (if Path.mem_edge u v current then demand else 0);
        })
      link_set
  in
  let switches = List.sort_uniq Int.compare (current @ target) in
  let writes =
    List.filter
      (fun v -> Path.next_hop current v <> Path.next_hop target v)
      switches
  in
  { fid; demand; dst; links; writes; switches }

(* ------------------------------------------------------------------ *)
(* Batch admission. The budget accumulates, per directed link, the
   admitted transactions' *margin* — worst-case transient load beyond
   their steady share. Soundness rests on two facts: (1) every admitted
   transaction's schedule is still gated by its own oracle run against
   the precise steady background, so a link where at most one admitted
   transaction has positive margin needs no joint check at all (the
   others contribute at most their steady share, which that gate already
   charges); (2) where two or more margins meet, the joint transient
   load is at most the total steady load plus the sum of their margins —
   the inequality [admit] enforces. A transaction alone on all its links
   is therefore always admitted: precision is the oracle's job, the
   budget only rules out cross-transaction overload. *)
module Budget = struct
  type budget = {
    capacity : Graph.node -> Graph.node -> int;
    steady : Graph.node -> Graph.node -> int;
    fids : int Itbl.t;  (** flow id -> rid of the admitted txn moving it *)
    slots : int Itbl.t;  (** packed (switch, dst) rule slot -> writer rid *)
    reserve : (int * int) Itbl.t;
        (** packed link -> (sum of admitted margins, first rid with
            positive margin) *)
  }

  let pack2 u v = (u lsl 21) lor v

  let create ~capacity ~steady =
    {
      capacity;
      steady;
      fids = Itbl.create 16;
      slots = Itbl.create 32;
      reserve = Itbl.create 64;
    }

  let record b ~rid fp =
    Itbl.replace b.fids fp.fid rid;
    List.iter
      (fun w ->
        let key = pack2 w fp.dst in
        if not (Itbl.mem b.slots key) then Itbl.replace b.slots key rid)
      fp.writes;
    List.iter
      (fun e ->
        let margin = e.e_worst - e.e_steady in
        if margin > 0 then
          let key = pack2 e.e_u e.e_v in
          match Itbl.find_opt b.reserve key with
          | Some (r, first) -> Itbl.replace b.reserve key (r + margin, first)
          | None -> Itbl.replace b.reserve key (margin, rid))
      fp.links

  let admit b ~rid fp =
    let clash =
      match Itbl.find_opt b.fids fp.fid with
      | Some other -> Some (other, Same_flow fp.fid)
      | None -> (
          let rec slot_clash = function
            | [] -> None
            | w :: rest -> (
                match Itbl.find_opt b.slots (pack2 w fp.dst) with
                | Some other ->
                    Some (other, Shared_rule { switch = w; dst = fp.dst })
                | None -> slot_clash rest)
          in
          match slot_clash fp.writes with
          | Some _ as c -> c
          | None ->
              let rec link_clash = function
                | [] -> None
                | e :: rest -> (
                    let margin = e.e_worst - e.e_steady in
                    if margin = 0 then link_clash rest
                    else
                      match Itbl.find_opt b.reserve (pack2 e.e_u e.e_v) with
                      | Some (r, first) when r > 0 ->
                          let combined =
                            b.steady e.e_u e.e_v + r + margin
                          in
                          let capacity = b.capacity e.e_u e.e_v in
                          if combined > capacity then
                            Some
                              ( first,
                                Link_overload
                                  { u = e.e_u; v = e.e_v; combined; capacity }
                              )
                          else link_clash rest
                      | _ -> link_clash rest)
              in
              link_clash fp.links)
    in
    match clash with
    | Some (other, c) -> Error (other, c)
    | None ->
        record b ~rid fp;
        Ok ()
end

let conflict ~capacity ~steady a b =
  let budget = Budget.create ~capacity ~steady in
  match Budget.admit budget ~rid:0 a with
  | Error (_, c) -> Some c
  | Ok () -> (
      match Budget.admit budget ~rid:1 b with
      | Ok () -> None
      | Error (_, c) -> Some c)

let pp ppf fp =
  Format.fprintf ppf
    "@[<h>footprint: flow %d, %d links, %d writes, dst v%d@]" fp.fid
    (List.length fp.links)
    (List.length fp.writes)
    fp.dst

let pp_conflict ppf = function
  | Same_flow fid -> Format.fprintf ppf "same flow %d" fid
  | Shared_rule { switch; dst } ->
      Format.fprintf ppf "shared rule slot (v%d, dst v%d)" switch dst
  | Link_overload { u; v; combined; capacity } ->
      Format.fprintf ppf
        "possible overload of v%d -> v%d (worst-case %d > cap %d)" u v
        combined capacity
