(** Hierarchical destination addressing for the generated topologies.

    Hosts get fixed-width bitstring addresses laid out so that
    aggregation is a prefix: every host address sets the top bit (the
    marker, which keeps host addresses disjoint from raw switch ids),
    then packs the holder switch's position, then the host index. On a
    fat-tree the holder field is [pod ++ edge], so "everything in pod p"
    and "everything under edge switch e" are both single prefixes — the
    shapes [Chronus_sim.Table_compiler] compresses to. *)

type t

val width : int
(** Address width in bits; equal to [Chronus_sim.Flow_table.addr_bits]
    (asserted by the test suite — the libraries cannot depend on each
    other). *)

val fat_tree : ?hosts_per_holder:int -> int -> t
(** Addressing for [Topology.fat_tree k]: holders are the edge
    switches, addresses pack [marker | pod | edge | host].
    [hosts_per_holder] defaults to 4. *)

val flat : ?hosts_per_holder:int -> holders:int list -> unit -> t
(** Addressing for flat topologies (B4, random WANs): holders are the
    given switch ids, addresses pack [marker | holder-id | host]. *)

val holders : t -> int list
(** The switches that host endpoints, in address order. *)

val hosts_per_holder : t -> int

val host_bits : t -> int

val addr_of : t -> holder:int -> host:int -> int
(** The address of [host] (in [0 .. hosts_per_holder - 1]) attached to
    holder switch [holder]. *)

val holder_prefix : t -> int -> int * int
(** [(prefix, len)] covering exactly the host addresses of a holder. *)

val all_addrs : t -> int list
(** Every host address, grouped by holder in {!holders} order. *)
