let width = 16
let marker = 1 lsl (width - 1)

(* Bits needed to address values 0 .. n-1. *)
let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  if n <= 1 then 0 else go 1

type t = {
  a_holders : int list;
  a_hosts_per_holder : int;
  a_host_bits : int;
  a_encode : int -> int;  (* holder switch id -> packed holder field *)
}

let holders t = t.a_holders
let hosts_per_holder t = t.a_hosts_per_holder
let host_bits t = t.a_host_bits

let addr_of t ~holder ~host =
  if host < 0 || host >= t.a_hosts_per_holder then
    invalid_arg "Addressing.addr_of: host out of range";
  marker lor (t.a_encode holder lsl t.a_host_bits) lor host

let holder_prefix t holder =
  (marker lor (t.a_encode holder lsl t.a_host_bits), width - t.a_host_bits)

let all_addrs t =
  List.concat_map
    (fun h -> List.init t.a_hosts_per_holder (fun i -> addr_of t ~holder:h ~host:i))
    t.a_holders

let check_width ~what used =
  if used > width then
    invalid_arg
      (Printf.sprintf "Addressing.%s: layout needs %d bits, width is %d" what
         used width)

let fat_tree ?(hosts_per_holder = 4) k =
  if k mod 2 <> 0 || k <= 0 then
    invalid_arg "Addressing.fat_tree: k must be even";
  let half = k / 2 in
  let core_count = half * half in
  let pod_bits = bits_for k in
  let edge_bits = bits_for half in
  let host_bits = bits_for hosts_per_holder in
  check_width ~what:"fat_tree" (1 + pod_bits + edge_bits + host_bits);
  (* Edge-switch ids follow Topology.fat_tree: per pod, a block of k
     switches, aggregation first. The address packs pod then edge index,
     so one prefix covers a pod and a longer one covers an edge switch's
     hosts. *)
  let encode id =
    let t = id - core_count in
    let pod = t / k and r = t mod k in
    if t < 0 || pod >= k || r < half then
      invalid_arg "Addressing.fat_tree: not an edge-switch id";
    (pod lsl edge_bits) lor (r - half)
  in
  let edges =
    List.concat_map
      (fun pod -> List.init half (fun e -> core_count + (pod * k) + half + e))
      (List.init k Fun.id)
  in
  {
    a_holders = edges;
    a_hosts_per_holder = hosts_per_holder;
    a_host_bits = host_bits;
    a_encode = encode;
  }

let flat ?(hosts_per_holder = 4) ~holders () =
  if holders = [] then invalid_arg "Addressing.flat: no holders";
  let host_bits = bits_for hosts_per_holder in
  let max_id = List.fold_left max 0 holders in
  check_width ~what:"flat" (1 + bits_for (max_id + 1) + host_bits);
  {
    a_holders = holders;
    a_hosts_per_holder = hosts_per_holder;
    a_host_bits = host_bits;
    a_encode = Fun.id;
  }
