open Chronus_graph
open Chronus_flow

type spec = {
  n : int;
  demand : int;
  capacity_choices : int list;
  delay_lo : int;
  delay_hi : int;
}

let spec ?(demand = 1) ?(capacity_choices = [ 1; 2; 2 ]) ?(delay_lo = 1)
    ?(delay_hi = 3) n =
  if n < 3 then invalid_arg "Scenario.spec: need at least 3 switches";
  if List.exists (fun c -> c < demand) capacity_choices then
    invalid_arg "Scenario.spec: capacity below demand";
  if capacity_choices = [] then
    invalid_arg "Scenario.spec: no capacity choices";
  { n; demand; capacity_choices; delay_lo; delay_hi }

let fig1_example () =
  let g = Graph.create () in
  List.iter
    (fun (u, v) -> Graph.add_edge ~capacity:1 ~delay:1 g u v)
    [
      (1, 2); (2, 3); (3, 4); (4, 5); (5, 6);
      (1, 4); (4, 3); (3, 5); (5, 2); (2, 6);
    ];
  Instance.create ~graph:g ~demand:1 ~p_init:[ 1; 2; 3; 4; 5; 6 ]
    ~p_fin:[ 1; 4; 3; 5; 2; 6 ]

(* Materialise the union graph of the given paths; links already present
   keep their first-drawn delay so shared hops stay shared. *)
let materialize ~rng s paths =
  let g = Graph.create ~size:s.n () in
  for v = 0 to s.n - 1 do
    Graph.add_node g v
  done;
  List.iter
    (fun p ->
      List.iter
        (fun (u, v) ->
          if not (Graph.mem_edge g u v) then
            Graph.add_edge
              ~capacity:(Rng.pick rng s.capacity_choices)
              ~delay:(Rng.in_range rng s.delay_lo s.delay_hi)
              g u v)
        (Path.edges p))
    paths;
  g

let chain s = List.init s.n Fun.id

let build ~rng s p_init p_fin =
  let g = materialize ~rng s [ p_init; p_fin ] in
  Instance.create ~graph:g ~demand:s.demand ~p_init ~p_fin

let random_final ~rng s =
  let p_init = chain s in
  let middle = List.init (s.n - 2) (fun i -> i + 1) in
  let k = Rng.in_range rng 1 (s.n - 2) in
  let via = Rng.sample rng k middle in
  let p_fin = (0 :: via) @ [ s.n - 1 ] in
  build ~rng s p_init p_fin

let segment_reversal ?(max_len = 8) ~rng s =
  let p_init = chain s in
  if s.n < 4 then build ~rng s p_init p_init
  else begin
    let i = Rng.in_range rng 1 (s.n - 3) in
    let j = Rng.in_range rng (i + 1) (min (s.n - 2) (i + max_len - 1)) in
    let arr = Array.of_list p_init in
    let lo = ref i and hi = ref j in
    while !lo < !hi do
      let tmp = arr.(!lo) in
      arr.(!lo) <- arr.(!hi);
      arr.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    build ~rng s p_init (Array.to_list arr)
  end

let shortcut ~rng s =
  let p_init = chain s in
  let keep =
    List.filter (fun v -> v = 0 || v = s.n - 1 || Rng.bool rng) p_init
  in
  build ~rng s p_init keep

let random_pair ~rng s =
  let middle = List.init (s.n - 2) (fun i -> i + 1) in
  let draw ~ordered =
    let k = Rng.in_range rng 1 (s.n - 2) in
    let via = Rng.sample rng k middle in
    let via = if ordered then List.sort compare via else via in
    (0 :: via) @ [ s.n - 1 ]
  in
  build ~rng s (draw ~ordered:true) (draw ~ordered:false)

let mixed ~rng s =
  match Rng.int rng 3 with
  | 0 -> random_final ~rng s
  | 1 -> segment_reversal ~rng s
  | _ -> shortcut ~rng s

let fat_tree_reroute ?(params = Topology.default) ~rng k =
  if k < 4 || k mod 2 <> 0 then
    invalid_arg "Scenario.fat_tree_reroute: k must be even and >= 4";
  let g = Topology.fat_tree ~params k in
  let half = k / 2 in
  let core_count = half * half in
  let agg pod i = core_count + (pod * k) + i in
  let edge pod i = core_count + (pod * k) + half + i in
  (* A pod-to-pod flow rerouted between two node-disjoint 4-hop routes:
     distinct aggregation indices reach distinct core groups, so the two
     paths share only their endpoints and the update never congests. *)
  let pod_a = Rng.int rng k in
  let pod_b = (pod_a + 1 + Rng.int rng (k - 1)) mod k in
  let src = edge pod_a (Rng.int rng half) in
  let dst = edge pod_b (Rng.int rng half) in
  let a1 = Rng.int rng half in
  let a2 = (a1 + 1 + Rng.int rng (half - 1)) mod half in
  let core_of a = (a * half) + Rng.int rng half in
  let p_init = [ src; agg pod_a a1; core_of a1; agg pod_b a1; dst ] in
  let p_fin = [ src; agg pod_a a2; core_of a2; agg pod_b a2; dst ] in
  Instance.create ~graph:g ~demand:1 ~p_init ~p_fin

let without_edge g (a, b) =
  let g' = Graph.create ~size:(Graph.node_count g) () in
  List.iter (fun v -> Graph.add_node g' v) (Graph.nodes g);
  List.iter
    (fun (u, v, (e : Graph.edge)) ->
      if not (u = a && v = b) then
        Graph.add_edge ~capacity:e.Graph.capacity ~delay:e.Graph.delay g' u v)
    (Graph.edges g);
  g'

let detour ~rng g =
  (* A WAN-style reroute on an arbitrary topology: route a random
     distant pair along its min-hop path, then fail that path's first
     link and reroute along the min-hop detour. On 2-edge-connected
     graphs (ring-based WANs, B4) the detour always exists. *)
  let nodes = Graph.nodes g in
  let n = List.length nodes in
  if n < 4 then invalid_arg "Scenario.detour: need at least 4 nodes";
  let node i = List.nth nodes i in
  let rec draw attempts =
    if attempts = 0 then invalid_arg "Scenario.detour: no distant pair"
    else
      let src = node (Rng.int rng n) in
      let dst = node (Rng.int rng n) in
      if src = dst then draw (attempts - 1)
      else
        match Shortest.hop_path g src dst with
        | Some p_init when List.length p_init >= 3 -> (src, dst, p_init)
        | _ -> draw (attempts - 1)
  in
  let src, dst, p_init = draw 64 in
  let second = List.nth p_init 1 in
  let p_fin =
    match Shortest.hop_path (without_edge g (src, second)) src dst with
    | Some p -> p
    | None -> p_init
  in
  Instance.create ~graph:g ~demand:1 ~p_init ~p_fin

let long_chain ~rng s =
  (* One reversed segment of bounded length at a random position in an
     n-switch chain: the flow's path — and hence every drain horizon,
     trace, and oracle window — scales with n, while the update region
     itself stays local, which is what keeps giant instances schedulable
     at all (Fig. 10 times the algorithms, not infeasibility proofs). *)
  let p_init = chain s in
  if s.n < 6 then build ~rng s p_init p_init
  else begin
    let seg = min 8 ((s.n - 2) / 2) in
    let i = Rng.in_range rng 1 (s.n - 1 - seg) in
    let j = i + seg - 1 in
    let arr = Array.of_list p_init in
    let lo = ref i and hi = ref j in
    while !lo < !hi do
      let tmp = arr.(!lo) in
      arr.(!lo) <- arr.(!hi);
      arr.(!hi) <- tmp;
      incr lo;
      decr hi
    done;
    build ~rng s p_init (Array.to_list arr)
  end
