(** Update-instance generators: the workloads of the paper's evaluation.

    The paper fixes the initial routing path and draws the final path at
    random with the same source and destination ("the final path is based
    on random routing"). We materialise exactly the links the two paths
    need — the union graph, as in Fig. 1 — with the link capacity of the
    experiment and transmission delays drawn from a range. *)

open Chronus_flow

type spec = {
  n : int;  (** number of switches; the x-axis of Figs. 7–10 *)
  demand : int;
  capacity_choices : int list;
      (** per-link capacity drawn uniformly from these values; a link of
          capacity [>= 2 * demand] can absorb a transient merge, one of
          capacity [demand] cannot *)
  delay_lo : int;
  delay_hi : int;  (** per-link delay drawn uniformly from the range *)
}

val spec :
  ?demand:int -> ?capacity_choices:int list -> ?delay_lo:int ->
  ?delay_hi:int -> int -> spec
(** Defaults: demand 1, capacities drawn from [[1; 2; 2]] (two thirds of links can
    absorb a transient merge, half cannot — the paper's unit-capacity
    example is the [[1]] special case), delays in [1, 3]. *)

val fig1_example : unit -> Instance.t
(** The worked example of Figs. 1–3 and 5: six switches, unit capacities
    and delays, old path [v1..v6], new path [v1 v4 v3 v5 v2 v6]. *)

val random_final : rng:Rng.t -> spec -> Instance.t
(** The paper's generator: [p_init] visits switches [0..n-1] in order;
    [p_fin] goes from the source through a uniformly drawn, uniformly
    ordered subset of the middle switches to the destination. *)

val segment_reversal : ?max_len:int -> rng:Rng.t -> spec -> Instance.t
(** [p_fin] is [p_init] with one random contiguous middle segment
    reversed — the generalisation of the paper's Fig. 1 scenario. *)

val shortcut : rng:Rng.t -> spec -> Instance.t
(** [p_fin] keeps a random subsequence of [p_init] (same order), skipping
    the rest: produces Delete updates and delay-shortening merges, the
    configurations in which no congestion-free schedule may exist. *)

val random_pair : rng:Rng.t -> spec -> Instance.t
(** Both paths random: the initial path goes through an ordered random
    subset of the middle switches, the final path through an unordered
    one. Used where per-instance variance matters (Fig. 9's box plot). *)

val mixed : rng:Rng.t -> spec -> Instance.t
(** Uniformly one of {!random_final}, {!segment_reversal}, {!shortcut}. *)

val fat_tree_reroute :
  ?params:Topology.params -> rng:Rng.t -> int -> Instance.t
(** [fat_tree_reroute ~rng k]: a pod-to-pod flow in a k-ary fat-tree
    rerouted between two node-disjoint 4-hop routes (distinct
    aggregation/core pairs). The instance's graph is the {e full}
    fat-tree, so executors drive the whole topology, not just the path
    union. @raise Invalid_argument on odd or small [k]. *)

val detour : rng:Rng.t -> Chronus_graph.Graph.t -> Instance.t
(** WAN-style reroute on an arbitrary topology: a random distant pair is
    routed along its min-hop path, then that path's first link fails and
    the flow moves to the min-hop detour. The graph should be
    2-edge-connected ({!Topology.wan}, {!Topology.b4}); with no detour
    the instance degenerates to an empty update. *)

val long_chain : rng:Rng.t -> spec -> Instance.t
(** Scale generator for Fig. 10: a path through all [n] switches with one
    reversed segment of bounded length at a random position. Path lengths
    — and with them every horizon computation, trace, and oracle window —
    grow with [n] while the update region stays local, so the instances
    remain schedulable at thousands of switches. *)
