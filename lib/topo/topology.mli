(** Standard topology constructions. Capacities and delays default to 1
    and can be overridden uniformly or drawn per-link via [delay_of]. *)

open Chronus_graph

type params = {
  capacity : int;
  delay : int;
}

val default : params

val line : ?params:params -> int -> Graph.t
(** [line n]: nodes [0..n-1], bidirectional edges between neighbours. *)

val ring : ?params:params -> int -> Graph.t

val grid : ?params:params -> int -> int -> Graph.t
(** [grid w h]: node [y*w + x]; bidirectional mesh edges. *)

val torus : ?params:params -> int -> int -> Graph.t
(** Grid with wrap-around links. *)

val complete : ?params:params -> int -> Graph.t

val star : ?params:params -> int -> Graph.t
(** Node 0 is the hub; bidirectional spokes to [1..n-1]. *)

val erdos_renyi : ?params:params -> rng:Rng.t -> p:float -> int -> Graph.t
(** Each ordered pair gets an edge independently with probability [p];
    all nodes present even when isolated. *)

val random_regular : ?params:params -> rng:Rng.t -> k:int -> int -> Graph.t
(** Jellyfish-style: repeatedly wire random node pairs until every node
    has (close to) [k] bidirectional links; no multi-edges, no self-loops.
    Best-effort for odd leftovers. *)

val waxman :
  ?params:params -> rng:Rng.t -> alpha:float -> beta:float -> int -> Graph.t
(** Waxman random graph: nodes placed uniformly in the unit square, a
    bidirectional link with probability
    [alpha * exp (-dist / (beta * sqrt 2.))]. *)

val fat_tree : ?params:params -> int -> Graph.t
(** Canonical k-ary fat-tree (k even): [k^2/4] core, [k/2] aggregation and
    [k/2] edge switches per pod, [k] pods; bidirectional links. Hosts are
    not modelled. @raise Invalid_argument on odd [k]. *)

val b4 : ?params:params -> unit -> Graph.t
(** Google's B4 inter-datacenter WAN (Jain et al., SIGCOMM'13): twelve
    sites, nineteen bidirectional links. *)

val wan : ?params:params -> rng:Rng.t -> int -> Graph.t
(** [wan ~rng n]: a B4-like inter-datacenter WAN with [n] sites — a
    resilience ring plus [n/2] random chords (average degree ~3). The
    ring keeps the graph 2-edge-connected, so every link has a detour.
    @raise Invalid_argument when [n < 4]. *)

val randomize_delays :
  rng:Rng.t -> lo:int -> hi:int -> Graph.t -> Graph.t
(** Fresh graph with every delay redrawn uniformly from [[lo, hi]]. *)

val randomize_capacities :
  rng:Rng.t -> choices:int list -> Graph.t -> Graph.t
