(** Seeded deterministic randomness for workload generation. Every
    experiment takes an explicit seed so that runs are reproducible. *)

type t

val make : int -> t
(** Independent generator from a seed. *)

val derive : int -> int list -> t
(** [derive seed lane] is an independent generator addressed by the
    coordinate path [lane] under [seed] — e.g. [derive seed [7; n; i]]
    for trial [i] of the [n]-switch cell of Fig. 7. Derivation reads no
    shared state, so parallel workers can each rebuild exactly the
    stream their trial would have seen sequentially. *)

val split : t -> t
(** A fresh generator derived from (and advancing) this one — use to give
    sub-experiments independent streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val float : t -> float -> float
val bool : t -> bool

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] draws [k] elements without replacement (all of [l] if
    [k >= List.length l]); order is random. *)
