type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let derive seed lane =
  (* A coordinate-addressed stream: the full (seed :: lane) path feeds
     [Random.full_init]'s digest, so [derive s [7; n; i]] for nearby
     [n]/[i] still yields uncorrelated generators. Unlike {!split}, no
     parent state is consumed — any worker can rebuild trial [i]'s
     stream from coordinates alone, in any order. *)
  Random.State.make
    (Array.of_list (seed :: 0x5eed :: (seed lxor 0x9e3779b9) :: lane))

let split t =
  Random.State.make
    [| Random.State.bits t; Random.State.bits t; Random.State.bits t |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int t bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k l =
  let shuffled = shuffle t l in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take k shuffled
