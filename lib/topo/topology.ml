open Chronus_graph

type params = { capacity : int; delay : int }

let default = { capacity = 1; delay = 1 }

let bidir ~params g u v =
  Graph.add_edge ~capacity:params.capacity ~delay:params.delay g u v;
  Graph.add_edge ~capacity:params.capacity ~delay:params.delay g v u

let with_nodes n =
  let g = Graph.create ~size:n () in
  for v = 0 to n - 1 do
    Graph.add_node g v
  done;
  g

let line ?(params = default) n =
  let g = with_nodes n in
  for v = 0 to n - 2 do
    bidir ~params g v (v + 1)
  done;
  g

let ring ?(params = default) n =
  let g = line ~params n in
  if n > 2 then bidir ~params g (n - 1) 0;
  g

let grid ?(params = default) w h =
  let g = with_nodes (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = (y * w) + x in
      if x < w - 1 then bidir ~params g v (v + 1);
      if y < h - 1 then bidir ~params g v (v + w)
    done
  done;
  g

let torus ?(params = default) w h =
  let g = grid ~params w h in
  if w > 2 then
    for y = 0 to h - 1 do
      bidir ~params g ((y * w) + w - 1) (y * w)
    done;
  if h > 2 then
    for x = 0 to w - 1 do
      bidir ~params g (((h - 1) * w) + x) x
    done;
  g

let complete ?(params = default) n =
  let g = with_nodes n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        Graph.add_edge ~capacity:params.capacity ~delay:params.delay g u v
    done
  done;
  g

let star ?(params = default) n =
  let g = with_nodes n in
  for v = 1 to n - 1 do
    bidir ~params g 0 v
  done;
  g

let erdos_renyi ?(params = default) ~rng ~p n =
  let g = with_nodes n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.float rng 1.0 < p then
        Graph.add_edge ~capacity:params.capacity ~delay:params.delay g u v
    done
  done;
  g

let random_regular ?(params = default) ~rng ~k n =
  let g = with_nodes n in
  let degree = Array.make n 0 in
  let attempts = ref (20 * n * k) in
  let open_nodes () =
    List.filter (fun v -> degree.(v) < k) (List.init n Fun.id)
  in
  let rec wire () =
    decr attempts;
    if !attempts <= 0 then ()
    else
      match open_nodes () with
      | [] | [ _ ] -> ()
      | candidates ->
          let u = Rng.pick rng candidates in
          let others = List.filter (fun v -> v <> u) candidates in
          let unlinked =
            List.filter (fun v -> not (Graph.mem_edge g u v)) others
          in
          (match unlinked with
          | [] -> ()
          | _ ->
              let v = Rng.pick rng unlinked in
              bidir ~params g u v;
              degree.(u) <- degree.(u) + 1;
              degree.(v) <- degree.(v) + 1);
          wire ()
  in
  wire ();
  g

let waxman ?(params = default) ~rng ~alpha ~beta n =
  let g = with_nodes n in
  let coords =
    Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0))
  in
  let dist u v =
    let x1, y1 = coords.(u) and x2, y2 = coords.(v) in
    sqrt (((x1 -. x2) ** 2.) +. ((y1 -. y2) ** 2.))
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = alpha *. exp (-.dist u v /. (beta *. sqrt 2.)) in
      if Rng.float rng 1.0 < p then bidir ~params g u v
    done
  done;
  g

let fat_tree ?(params = default) k =
  if k mod 2 <> 0 || k <= 0 then invalid_arg "Topology.fat_tree: k must be even";
  let half = k / 2 in
  let core_count = half * half in
  let agg_per_pod = half and edge_per_pod = half in
  (* Ids: cores first, then per pod: aggregation then edge switches. *)
  let core i = i in
  let agg pod i = core_count + (pod * (agg_per_pod + edge_per_pod)) + i in
  let edge pod i =
    core_count + (pod * (agg_per_pod + edge_per_pod)) + agg_per_pod + i
  in
  let total = core_count + (k * (agg_per_pod + edge_per_pod)) in
  let g = with_nodes total in
  for pod = 0 to k - 1 do
    for a = 0 to agg_per_pod - 1 do
      (* Each aggregation switch reaches k/2 cores. *)
      for c = 0 to half - 1 do
        bidir ~params g (agg pod a) (core ((a * half) + c))
      done;
      for e = 0 to edge_per_pod - 1 do
        bidir ~params g (agg pod a) (edge pod e)
      done
    done
  done;
  g

(* Google's B4 inter-datacenter WAN (Jain et al., SIGCOMM'13, Fig. 1):
   twelve sites, nineteen bidirectional inter-site links. *)
let b4_links =
  [
    (0, 1); (0, 2); (1, 2); (1, 4); (2, 4); (3, 4); (3, 5); (4, 5); (4, 6);
    (5, 7); (6, 7); (6, 8); (7, 8); (7, 9); (8, 9); (8, 10); (9, 10);
    (9, 11); (10, 11);
  ]

let b4 ?(params = default) () =
  let g = with_nodes 12 in
  List.iter (fun (u, v) -> bidir ~params g u v) b4_links;
  g

let wan ?(params = default) ~rng n =
  if n < 4 then invalid_arg "Topology.wan: need at least 4 sites";
  (* A resilience ring plus ~n/2 random chords: average degree ~3, the
     shape of real inter-datacenter WANs (B4 averages 3.2). The ring
     keeps the graph 2-edge-connected, so any single link always has a
     detour. *)
  let g = ring ~params n in
  let chords = ref (n / 2) in
  let attempts = ref (20 * n) in
  while !chords > 0 && !attempts > 0 do
    decr attempts;
    let u = Rng.int rng n in
    let v = Rng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      bidir ~params g u v;
      decr chords
    end
  done;
  g

let remap_edges f g =
  let g' = Graph.create ~size:(Graph.node_count g) () in
  List.iter (fun v -> Graph.add_node g' v) (Graph.nodes g);
  List.iter
    (fun (u, v, e) ->
      let e' = f (u, v, e) in
      Graph.add_edge ~capacity:e'.Graph.capacity ~delay:e'.Graph.delay g' u v)
    (Graph.edges g);
  g'

let randomize_delays ~rng ~lo ~hi g =
  remap_edges
    (fun (_, _, (e : Graph.edge)) -> { e with Graph.delay = Rng.in_range rng lo hi })
    g

let randomize_capacities ~rng ~choices g =
  remap_edges
    (fun (_, _, (e : Graph.edge)) ->
      { e with Graph.capacity = Rng.pick rng choices })
    g
