open Chronus_flow

type result = { schedule : Schedule.t; clean : bool }

(* Reverse final-path position first, then ascending id: downstream rules
   flip before the traffic that needs them can arrive. Used as the last
   resort when even the relaxed greedy cannot place a switch. *)
let leftover_order inst remaining =
  let p_fin = inst.Instance.p_fin in
  let pos v =
    let rec scan i = function
      | [] -> -1
      | x :: rest -> if x = v then i else scan (i + 1) rest
    in
    scan 0 p_fin
  in
  List.sort
    (fun a b ->
      match compare (pos b) (pos a) with 0 -> compare a b | c -> c)
    remaining

let complete inst partial remaining =
  let drain = Drain.make inst in
  let dview = Drain.view drain partial in
  let horizon_max = List.fold_left max 0 (Drain.expiries dview) in
  let start = max (Schedule.max_time partial + 1) (horizon_max + 1) in
  (* Extra headroom so that deletes land after any conceivable drain. *)
  let start = start + Instance.init_delay inst + 1 in
  (* Place the leftovers through one incremental oracle session on the
     partial base: each placement is probed at its spaced slot and pushed
     later only if it would strand traffic. The headroom above makes that
     bump unreachable in practice (deletes land after any conceivable
     drain), so this normally costs [remaining] probe/commit pairs —
     congestion is accepted here, loops and blackholes never are. *)
  let ck = Oracle.Checker.create inst partial in
  let flow_broken report =
    List.exists
      (function
        | Oracle.Loop _ | Oracle.Blackhole _ -> true
        | Oracle.Congestion _ -> false)
      report.Oracle.violations
  in
  let place (s, t) v =
    (* Bump only flips that *introduce* a loop or blackhole over a sound
       base, and give up after a bounded number of slots (a delete whose
       old rule the residual steady route still needs is broken at every
       slot): placement must stay total and deterministic. *)
    let base_broken = flow_broken (Oracle.Checker.base_report ck) in
    let rec at t budget =
      if
        budget > 0 && (not base_broken)
        && flow_broken (Oracle.Checker.probe ck v t)
      then at (t + 1) (budget - 1)
      else begin
        ignore (Oracle.Checker.commit ck v t);
        (Schedule.add v t s, t + 1)
      end
    in
    at t 64
  in
  fst (List.fold_left place (partial, start) (leftover_order inst remaining))

let schedule ?mode ?oracle inst =
  match Greedy.schedule ?mode ?oracle inst with
  | Greedy.Scheduled s -> { schedule = s; clean = true }
  | Greedy.Infeasible _ -> (
      (* Re-run with capacity constraints relaxed: congestion is now
         accepted, loops and blackholes still are not. The pooled session
         (if any) is handed through — the greedy retargets it back to the
         empty base itself. *)
      match Greedy.schedule ?mode ?oracle ~relax_congestion:true inst with
      | Greedy.Scheduled s -> { schedule = s; clean = false }
      | Greedy.Infeasible { partial; remaining } ->
          { schedule = complete inst partial remaining; clean = false })
