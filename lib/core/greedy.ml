open Chronus_graph
open Chronus_flow
module Obs = Chronus_obs.Obs

(* Observability (see OBSERVABILITY.md): candidate evaluations count
   every safety check of a (switch, step) pair; feasibility checks count
   full dynamic-flow oracle evaluations, the expensive subset. Both only
   observe — the scheduler's decisions never read them. *)
let c_rounds = Obs.Counter.v "greedy.rounds"
let c_cands = Obs.Counter.v "greedy.candidate_evals"
let c_oracle = Obs.Counter.v "greedy.feasibility_checks"
let s_schedule = Obs.Span.v "greedy.schedule"
let s_round = Obs.Span.v "greedy.round"

type mode = Exact | Analytic

type outcome =
  | Scheduled of Schedule.t
  | Infeasible of { partial : Schedule.t; remaining : Graph.node list }

type stats = { steps_examined : int; candidates_checked : int; waits : int }

let run_scheduler ~mode ~relax_congestion ?oracle inst =
  Obs.Span.with_h s_schedule @@ fun () ->
  let drain = Drain.make inst in
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun u -> Hashtbl.replace remaining u.Instance.switch ())
    (Instance.updates inst);
  let sched = ref Schedule.empty in
  let time = ref 0 in
  (* In Exact mode every feasibility question goes through one incremental
     oracle session whose base tracks [!sched]: candidate checks are probes
     and commits promote the already-probed state, so consecutive checks
     re-trace only the cohorts the candidate flip can affect. The final
     [Scheduled !sched] is thereby validated for free — the checker's base
     report is the oracle's verdict on exactly that schedule, and every
     commit required it to be violation-free. Analytic mode never pays for
     the session (its decisions are closed-form). *)
  let checker =
    match mode with
    | Exact -> (
        match oracle with
        | Some ck ->
            (* An externally pooled session (the update service's
               cross-batch reuse): normalise it to the empty base so the
               run starts from the same state a fresh [create] would. *)
            if not (Oracle.Checker.instance ck == inst) then
              invalid_arg
                "Greedy.schedule: ?oracle session targets a different instance";
            if not (Schedule.is_empty (Oracle.Checker.base ck)) then
              Oracle.Checker.retarget ck inst;
            Some ck
        | None -> Some (Oracle.Checker.create inst Schedule.empty))
    | Analytic -> None
  in
  let steps = ref 0 and cands = ref 0 and waits = ref 0 in
  (* The sorted remaining set is consulted on every fixpoint round;
     re-sorting the hashtable fold each time made the scheduler quadratic
     in the update count. Cache it and edit the cache on commit. *)
  let remaining_cache = ref None in
  let remaining_list () =
    match !remaining_cache with
    | Some l -> l
    | None ->
        let l =
          Hashtbl.fold (fun v () acc -> v :: acc) remaining []
          |> List.sort compare
        in
        remaining_cache := Some l;
        l
  in
  let commit_remove v =
    Hashtbl.remove remaining v;
    remaining_cache :=
      Option.map (List.filter (fun x -> x <> v)) !remaining_cache
  in
  (* Position of each switch on the final path, computed once: [p_fin] is
     a simple path, so the table is a bijection. *)
  let fin_pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace fin_pos v i) inst.Instance.p_fin;
  (* The redirected streams of the already-committed flips, traced under
     the rules currently in force, maintained incrementally: a fresh walk
     is added at each commit, walks whose recorded route crosses a newly
     committed switch are retraced (their suffix would be stale), and
     walks whose feed has drained shed no traffic and are dropped. Feed
     horizons only shrink as commits accumulate, so refreshing them keeps
     the registry a sound over-approximation at all times. *)
  let walk_tbl : (Graph.node, Safety.stream_walk) Hashtbl.t =
    Hashtbl.create 16
  in
  let trace_walk dview x =
    let feed = Drain.last_arrival dview x in
    if Horizon.at_or_after feed !time then begin
      let cohort = Oracle.trace_from inst !sched x !time in
      Hashtbl.replace walk_tbl x
        (Safety.make_walk ~feed ~base:!time cohort.Oracle.visits)
    end
    else Hashtbl.remove walk_tbl x
  in
  let refresh_walks () =
    let dview = Drain.view drain !sched in
    let origins = Hashtbl.fold (fun x _ acc -> x :: acc) walk_tbl [] in
    List.iter
      (fun x ->
        let feed = Drain.last_arrival dview x in
        if Horizon.before feed !time then Hashtbl.remove walk_tbl x
        else
          match Hashtbl.find_opt walk_tbl x with
          | Some w -> Hashtbl.replace walk_tbl x (Safety.with_feed feed w)
          | None -> ())
      origins
  in
  let walks_crossing v =
    Hashtbl.fold
      (fun x w acc -> if Safety.walk_crosses w v then x :: acc else acc)
      walk_tbl []
  in
  let note_commit v =
    let dview = Drain.view drain !sched in
    List.iter (fun x -> trace_walk dview x) (walks_crossing v);
    if Instance.new_next inst v <> None then trace_walk dview v
  in
  let live_walks () =
    Hashtbl.fold (fun _ w acc -> w :: acc) walk_tbl []
  in
  (* The analytic verdict is exact for the checks it performs, so in Exact
     mode it serves as a cheap pre-filter and only its Safe answers are
     confirmed against the oracle. *)
  let exact_check ck v =
    Obs.Counter.incr c_oracle;
    let report = Oracle.Checker.probe ck v !time in
    match report.Oracle.violations with
    | [] -> Safety.Safe
    | Oracle.Congestion { u; v = v'; time = s; _ } :: _ ->
        Safety.Would_congest (u, v', s)
    | Oracle.Loop { switch; _ } :: _ -> Safety.Would_loop switch
    | Oracle.Blackhole { switch; _ } :: _ -> Safety.Would_blackhole switch
  in
  (* In Exact mode the oracle is the sole decider: the analytic verdict is
     conservative (its stream horizons are upper bounds) and must not veto
     a flip the oracle proves safe. In Analytic mode it is the decider. *)
  let check ~streams v =
    incr cands;
    Obs.Counter.incr c_cands;
    match checker with
    | Some ck -> exact_check ck v
    | None -> Safety.analytic ~streams inst drain !sched ~time:!time v
  in
  let commit_flip v =
    sched := Schedule.add v !time !sched;
    (* The commit promotes the candidate's own probe (memoised) into the
       checker's new base — no extra oracle work. *)
    Option.iter (fun ck -> ignore (Oracle.Checker.commit ck v !time)) checker;
    commit_remove v
  in
  (* Best-effort mode ([relax_congestion], backing {!Fallback}): stay
     congestion-free for as long as possible; only once provably stuck,
     force the flip that overloads the fewest time-extended links, still
     refusing loops and blackholes. *)
  let forced_commit () =
    (* Analytic mode has no long-lived session; a stuck step assesses a
       dozen same-base candidates, which is exactly the probe pattern, so
       open a throwaway session on the current partial schedule. *)
    let ck =
      match checker with
      | Some ck -> ck
      | None -> Oracle.Checker.create inst !sched
    in
    let assess v =
      Obs.Counter.incr c_oracle;
      let report = Oracle.Checker.probe ck v !time in
      if
        List.for_all
          (function Oracle.Congestion _ -> true | _ -> false)
          report.Oracle.violations
      then Some (List.length report.Oracle.congested, v)
      else None
    in
    (* Downstream final-path switches first — flipping them cannot strand
       traffic — and only a bounded sample is assessed: the oracle call per
       candidate is what makes unbridled best-effort scheduling quadratic. *)
    let pos v =
      match Hashtbl.find_opt fin_pos v with Some i -> i | None -> -1
    in
    let ordered =
      List.sort
        (fun a b ->
          match compare (pos b) (pos a) with 0 -> compare a b | c -> c)
        (remaining_list ())
    in
    let rec shortlist k = function
      | [] -> []
      | _ when k = 0 -> []
      | v :: rest -> v :: shortlist (k - 1) rest
    in
    let best =
      List.fold_left
        (fun acc v ->
          match (assess v, acc) with
          | Some cand, Some best -> Some (min cand best)
          | Some cand, None -> Some cand
          | None, _ -> acc)
        None
        (shortlist 12 ordered)
    in
    match best with
    | Some (_, v) ->
        commit_flip v;
        true
    | None -> false
  in
  let try_candidates candidates =
    (match mode with Exact -> () | Analytic -> refresh_walks ());
    let streams = ref (Safety.view_of_walks (live_walks ())) in
    List.fold_left
      (fun acc v ->
        if
          Hashtbl.mem remaining v
          && Safety.is_safe (check ~streams:!streams v)
        then begin
          commit_flip v;
          (match mode with
          | Exact -> ()
          | Analytic ->
              note_commit v;
              streams := Safety.view_of_walks (live_walks ()));
          true
        end
        else acc)
      false candidates
  in
  (* Commit every safe chain head at the current step, re-deriving the
     dependency relation after each round of commits until it stabilises:
     this is how v_1 and v_4 end up sharing step t_2 in the paper's
     walkthrough. When no head commits, sweep the full remaining set once —
     a dependency can point at a switch that is itself drain-gated while a
     non-head is perfectly safe (this matters mostly under
     [relax_congestion]). *)
  let rec heads_fixpoint progressed =
    let rem = remaining_list () in
    let dep = Dependency.at inst drain !sched ~remaining:rem ~time:!time in
    if try_candidates (Dependency.heads dep) then heads_fixpoint true
    else progressed
  in
  let commit_fixpoint () =
    let progressed = heads_fixpoint false in
    if progressed then true
    else if try_candidates (remaining_list ()) then begin
      ignore (heads_fixpoint true);
      true
    end
    else false
  in
  let result =
    let rec run () =
      if Hashtbl.length remaining = 0 then Scheduled !sched
      else begin
        incr steps;
        Obs.Counter.incr c_rounds;
        let progressed = Obs.Span.with_h s_round commit_fixpoint in
        if Hashtbl.length remaining = 0 then Scheduled !sched
        else begin
          if not progressed then incr waits;
          if progressed then begin
            time := !time + 1;
            run ()
          end
          else begin
            (* Nothing changed at this step. The network state only evolves
               when a drain horizon passes, so jump to the next such event;
               if none lies ahead the state is static forever and the
               remaining switches can never flip (Theorem 2). *)
            let dview = Drain.view drain !sched in
            let horizon_values =
              List.fold_left
                (fun acc w ->
                  match Safety.walk_feed w with
                  | Horizon.Until x ->
                      (* The walk keeps feeding each visited switch until
                         the feed plus that switch's route offset. *)
                      let base = Safety.walk_base w in
                      List.fold_left
                        (fun acc (_, t_y) -> (x + (t_y - base)) :: acc)
                        (x :: acc) (Safety.walk_visits w)
                  | _ -> acc)
                (Drain.expiries dview)
                (match mode with
                | Exact -> []
                | Analytic ->
                    refresh_walks ();
                    live_walks ())
            in
            let events =
              List.filter_map
                (fun x -> if x + 1 > !time then Some (x + 1) else None)
                horizon_values
              |> List.sort_uniq compare
            in
            match events with
            | [] ->
                if relax_congestion && forced_commit () then begin
                  time := !time + 1;
                  run ()
                end
                else
                  Infeasible
                    { partial = !sched; remaining = remaining_list () }
            | next :: _ ->
                time := next;
                run ()
          end
        end
      end
    in
    run ()
  in
  ( result,
    {
      steps_examined = !steps;
      candidates_checked = !cands;
      waits = !waits;
    } )

let rec schedule_with_stats ?(mode = Exact) ?(relax_congestion = false) ?oracle
    inst =
  let result, stats = run_scheduler ~mode ~relax_congestion ?oracle inst in
  let validated sched =
    Obs.Counter.incr c_oracle;
    Oracle.is_consistent inst sched
  in
  match (result, mode) with
  | Scheduled sched, Analytic
    when (not relax_congestion) && not (validated sched) ->
      (* The analytic checks approximate in-flight traffic on routes that
         flipped mid-journey; when the final validation catches such a
         miss, the oracle-gated engine redoes the work. Rare in practice
         (the analytic engine is exact for single-clash instances). *)
      let exact_result, exact_stats =
        schedule_with_stats ~mode:Exact ~relax_congestion ?oracle inst
      in
      ( exact_result,
        {
          steps_examined = stats.steps_examined + exact_stats.steps_examined;
          candidates_checked =
            stats.candidates_checked + exact_stats.candidates_checked;
          waits = stats.waits + exact_stats.waits;
        } )
  | _ -> (result, stats)

let schedule ?mode ?relax_congestion ?oracle inst =
  fst (schedule_with_stats ?mode ?relax_congestion ?oracle inst)

let makespan = function
  | Scheduled s -> Some (Schedule.makespan s)
  | Infeasible _ -> None
