(** Algorithm 2: the greedy timed-update scheduler.

    Time advances step by step (jumping over provably uneventful waits);
    at every step the dependency relation set (Algorithm 3) nominates the
    chain heads, each head is vetted by a safety check (the timed loop
    check of Algorithm 4 plus the congestion test), and every safe head is
    committed at the current step — updating as many switches as possible
    per step so as to minimise the total update time [|T|].

    If at some step nothing can be committed, the scheduler waits: old
    traffic keeps draining and previously unsafe flips become safe. Once
    the network state can provably no longer change (every drain horizon
    has passed and all committed transients have settled) and switches
    remain, the instance is declared infeasible — this is the monotonicity
    argument behind Theorem 2: a flip that is unsafe in a static state
    stays unsafe forever. *)

open Chronus_graph
open Chronus_flow

type mode =
  | Exact  (** oracle-gated candidate checks; guaranteed-consistent output *)
  | Analytic
      (** the paper's polynomial checks via {!Safety.analytic}; scales to
          thousands of switches (Fig. 10). The finished schedule is
          validated once against the oracle; in the rare case the
          polynomial approximation missed an interaction, the scheduler
          transparently redoes the work in [Exact] mode — so [Scheduled]
          results are always oracle-consistent in both modes. *)

type outcome =
  | Scheduled of Schedule.t
  | Infeasible of { partial : Schedule.t; remaining : Graph.node list }

type stats = {
  steps_examined : int;  (** time steps actually visited *)
  candidates_checked : int;
  waits : int;  (** steps at which nothing could be committed *)
}

val schedule :
  ?mode:mode ->
  ?relax_congestion:bool ->
  ?oracle:Oracle.Checker.t ->
  Instance.t ->
  outcome
(** Compute a timed update schedule. [mode] defaults to [Exact]. In
    [Exact] mode a [Scheduled] result is always oracle-consistent.

    With [relax_congestion] (default false) capacity violations no longer
    gate a flip — only transient loops and blackholes do. This is the
    best-effort engine behind {!Fallback}: on an instance with no
    congestion-free schedule it still sequences every switch while
    guaranteeing (in [Exact] mode) that no traffic is ever misrouted.

    [oracle] (Exact mode) supplies an externally owned incremental
    {!Oracle.Checker} session to use instead of creating one per run —
    the update service pools such sessions across transactions. The
    session must already target [inst] (physically, see
    {!Oracle.Checker.instance}); it is normalised to the empty base with
    {!Oracle.Checker.retarget} if needed, and is left holding the run's
    final schedule as its base on a [Scheduled] outcome — so the caller's
    schedule gate is the session's free {!Oracle.Checker.base_report}.
    Scheduling decisions and outputs are bit-identical with and without
    it. @raise Invalid_argument if the session targets another
    instance. *)

val schedule_with_stats :
  ?mode:mode ->
  ?relax_congestion:bool ->
  ?oracle:Oracle.Checker.t ->
  Instance.t ->
  outcome * stats

val makespan : outcome -> int option
(** Number of time steps of a successful schedule. *)
