open Chronus_graph
open Chronus_flow

type t = {
  chains : Graph.node list list;
  cyclic : Graph.node list list;
}

(* Nearest not-yet-updated switch strictly upstream of [w] on the initial
   path: the switch whose flip can divert the old stream away from [w]. *)
let nearest_remaining_ancestor inst remaining w =
  let rec walk v =
    match Instance.old_prev inst v with
    | None -> None
    | Some x -> if Hashtbl.mem remaining x then Some x else walk x
  in
  walk w

let relations inst drain sched ~remaining ~time =
  let g = inst.Instance.graph in
  let d = inst.Instance.demand in
  let dview = Drain.view drain sched in
  Hashtbl.fold
    (fun v_i () acc ->
      match Instance.new_next inst v_i with
      | None -> acc (* a Delete redirects nothing; only drain gates it *)
      | Some w ->
          if Horizon.before (Drain.last_arrival dview v_i) time then
            (* Inert: no traffic will reach v_i again, flipping it cannot
               congest anything. *)
            acc
          else begin
            let arrival = time + Graph.delay g v_i w in
            match Instance.old_next inst w with
            | None -> acc (* w is the destination or off the old path *)
            | Some w_next ->
                let live =
                  Horizon.at_or_after (Drain.last_old_exit dview w) arrival
                in
                if live && Graph.capacity g w w_next < 2 * d then
                  match nearest_remaining_ancestor inst remaining w with
                  | Some x when x <> v_i -> (x, v_i) :: acc
                  | Some _ | None -> acc
                else acc
          end)
    remaining []

let at inst drain sched ~remaining ~time =
  let members = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace members v ()) remaining;
  let deps = relations inst drain sched ~remaining:members ~time in
  match deps with
  | [] ->
      (* No relations at all: every switch is its own singleton chain. *)
      {
        chains = List.map (fun v -> [ v ]) (List.sort compare remaining);
        cyclic = [];
      }
  | _ ->
      (* Chains are the weakly-connected components of the dependency
         digraph, listed in topological order; a cyclic component has no
         head. Nodes no relation touches are singleton chains; only the
         touched subgraph needs the component/topo machinery. *)
      let touched = Hashtbl.create 16 in
      List.iter
        (fun (x, y) ->
          Hashtbl.replace touched x ();
          Hashtbl.replace touched y ())
        deps;
      let undirected = Graph.create () in
      Hashtbl.iter (fun v () -> Graph.add_node undirected v) touched;
      List.iter
        (fun (x, y) ->
          Graph.add_edge undirected x y;
          Graph.add_edge undirected y x)
        deps;
      let seen = Hashtbl.create 16 in
      let chains = ref [] and cyclic = ref [] in
      List.iter
        (fun v ->
          if not (Hashtbl.mem touched v) then chains := [ v ] :: !chains
          else if not (Hashtbl.mem seen v) then begin
            let component = Traversal.bfs_order undirected v in
            List.iter (fun u -> Hashtbl.replace seen u ()) component;
            let sub = Graph.create () in
            List.iter (fun u -> Graph.add_node sub u) component;
            List.iter
              (fun (x, y) ->
                if List.mem x component then Graph.add_edge sub x y)
              deps;
            match Cycle.topological_sort sub with
            | Some order -> chains := order :: !chains
            | None -> cyclic := List.sort compare component :: !cyclic
          end)
        (List.sort compare remaining);
      {
        chains = List.sort compare !chains;
        cyclic = List.sort compare !cyclic;
      }

let heads t =
  List.filter_map (function [] -> None | v :: _ -> Some v) t.chains
  |> List.sort compare

let pp ppf t =
  let pp_chain ppf chain =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
         (fun ppf v -> Format.fprintf ppf "v%d" v))
      chain
  in
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_chain)
    (t.chains @ t.cyclic)
