(** Best-effort scheduling for infeasible instances.

    When no congestion- and loop-free schedule exists, the experiments
    (Figs. 7 and 8 count exactly these cases) still need *some* timed
    schedule to execute and measure. The fallback re-runs the greedy with
    the capacity constraints relaxed ({!Greedy.schedule} with
    [relax_congestion]): the result covers every switch, may overload
    links, but still never misroutes traffic. Should even that leave
    switches unplaced, they are appended after a full drain pause in
    reverse final-path order. *)

open Chronus_flow

type result = {
  schedule : Schedule.t;  (** complete; may violate capacity *)
  clean : bool;  (** [true] when the greedy succeeded outright *)
}

val schedule :
  ?mode:Greedy.mode -> ?oracle:Oracle.Checker.t -> Instance.t -> result
(** Greedy first; on infeasibility, extend as described. The result always
    covers every switch the instance updates. [oracle] is handed to both
    greedy runs (contract as in {!Greedy.schedule}); the drain-pause
    completion pass opens its own session on the partial base either
    way. *)
