external clock_ns : unit -> int = "chronus_obs_clock_ns" [@@noalloc]

let start_ns = clock_ns ()

(* ------------------------------------------------------------------ *)
(* Registry: one process-global immutable map behind an Atomic. Reads
   (the hot path: every [Counter.v]-by-label or [Span.with_]) are a load
   plus a balanced-tree lookup; inserts CAS-loop, which only ever races
   during module initialisation. *)

type span_cell = {
  s_count : int Atomic.t;
  s_total : int Atomic.t;
  s_max : int Atomic.t;
}

type cell =
  | Ccounter of int Atomic.t
  | Cgauge of int Atomic.t
  | Cspan of span_cell
  | Cpoint

module M = Map.Make (String)

let registry : cell M.t Atomic.t = Atomic.make M.empty

let kind_name = function
  | Ccounter _ -> "counter"
  | Cgauge _ -> "gauge"
  | Cspan _ -> "span"
  | Cpoint -> "point"

let rec register label fresh same =
  let m = Atomic.get registry in
  match M.find_opt label m with
  | Some cell -> (
      match same cell with
      | Some c -> c
      | None ->
          invalid_arg
            (Printf.sprintf "Obs: label %S already registered as a %s" label
               (kind_name cell)))
  | None ->
      let cell = fresh () in
      if Atomic.compare_and_set registry m (M.add label cell m) then
        match same cell with Some c -> c | None -> assert false
      else register label fresh same

let rec atomic_max a x =
  let cur = Atomic.get a in
  if x > cur && not (Atomic.compare_and_set a cur x) then atomic_max a x

(* ------------------------------------------------------------------ *)
(* The trace sink. *)

type sink = { oc : out_channel; mutex : Mutex.t; file : string }

let sink : sink option Atomic.t = Atomic.make None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type field = Int of int | Float of float | String of string | Bool of bool

let emit_record s ~kind ~label fields =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\": %d, \"domain\": %d, \"kind\": \"%s\", \"label\": \"%s\", \"fields\": {"
       (clock_ns () - start_ns)
       (Domain.self () :> int)
       kind (json_escape label));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " (json_escape k));
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f ->
          if Float.is_nan f || Float.abs f = Float.infinity then
            Buffer.add_string b "null"
          else Buffer.add_string b (Printf.sprintf "%.6g" f)
      | String s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s))
      | Bool v -> Buffer.add_string b (string_of_bool v))
    fields;
  Buffer.add_string b "}}\n";
  Mutex.lock s.mutex;
  Buffer.output_buffer s.oc b;
  Mutex.unlock s.mutex

let trace_enabled () = Atomic.get sink <> None

let trace ~kind ~label fields =
  match Atomic.get sink with
  | None -> ()
  | Some s -> emit_record s ~kind ~label fields

(* ------------------------------------------------------------------ *)
(* Metric cells. *)

module Counter = struct
  type t = int Atomic.t

  let v label =
    register label
      (fun () -> Ccounter (Atomic.make 0))
      (function Ccounter a -> Some a | _ -> None)

  let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t by)
  let value = Atomic.get
end

module Gauge = struct
  type t = int Atomic.t

  let v label =
    register label
      (fun () -> Cgauge (Atomic.make 0))
      (function Cgauge a -> Some a | _ -> None)

  let observe t x = atomic_max t x
  let value = Atomic.get
end

module Span = struct
  type t = { label : string; cell : span_cell }

  type stat = { count : int; total_ns : int; max_ns : int }

  let v label =
    let cell =
      register label
        (fun () ->
          Cspan
            {
              s_count = Atomic.make 0;
              s_total = Atomic.make 0;
              s_max = Atomic.make 0;
            })
        (function Cspan c -> Some c | _ -> None)
    in
    { label; cell }

  let record t dur_ns =
    ignore (Atomic.fetch_and_add t.cell.s_count 1);
    ignore (Atomic.fetch_and_add t.cell.s_total dur_ns);
    atomic_max t.cell.s_max dur_ns;
    if trace_enabled () then
      trace ~kind:"span" ~label:t.label [ ("dur_ns", Int dur_ns) ]

  let with_h t f =
    let t0 = clock_ns () in
    match f () with
    | y ->
        record t (clock_ns () - t0);
        y
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record t (clock_ns () - t0);
        Printexc.raise_with_backtrace e bt

  let with_ label f = with_h (v label) f

  let stat t =
    {
      count = Atomic.get t.cell.s_count;
      total_ns = Atomic.get t.cell.s_total;
      max_ns = Atomic.get t.cell.s_max;
    }
end

module Point = struct
  type t = string

  type nonrec field = field = Int of int | Float of float | String of string | Bool of bool

  let v label =
    register label (fun () -> Cpoint) (function Cpoint -> Some label | _ -> None)

  let emit t fields = trace ~kind:"point" ~label:t fields
end

(* ------------------------------------------------------------------ *)
(* The sink's lifecycle — after [Point], so the meta record's label is a
   registered point and the documentation test covers it. *)

let p_trace_start = Point.v "trace.start"

module Trace = struct
  let enabled = trace_enabled

  let close_current () =
    match Atomic.exchange sink None with
    | None -> ()
    | Some s ->
        Mutex.lock s.mutex;
        close_out s.oc;
        Mutex.unlock s.mutex

  let set_path p =
    close_current ();
    match p with
    | None -> ()
    | Some file ->
        let s = { oc = open_out file; mutex = Mutex.create (); file } in
        Atomic.set sink (Some s);
        emit_record s ~kind:"meta" ~label:p_trace_start
          [ ("schema", String "chronus-trace/1"); ("clock", String "monotonic") ]

  let path () =
    match Atomic.get sink with None -> None | Some s -> Some s.file
end

let () =
  (match Sys.getenv_opt "CHRONUS_TRACE" with
  | Some file when file <> "" -> Trace.set_path (Some file)
  | _ -> ());
  at_exit (fun () ->
      match Atomic.get sink with
      | None -> ()
      | Some s ->
          Mutex.lock s.mutex;
          flush s.oc;
          Mutex.unlock s.mutex)

(* ------------------------------------------------------------------ *)
(* Registry-wide operations. *)

type value =
  | Counter of int
  | Gauge of int
  | Span of Span.stat

type snapshot = (string * value) list

let snapshot () =
  M.fold
    (fun label cell acc ->
      match cell with
      | Ccounter a -> (label, Counter (Atomic.get a)) :: acc
      | Cgauge a -> (label, Gauge (Atomic.get a)) :: acc
      | Cspan c ->
          ( label,
            Span
              {
                Span.count = Atomic.get c.s_count;
                total_ns = Atomic.get c.s_total;
                max_ns = Atomic.get c.s_max;
              } )
          :: acc
      | Cpoint -> acc)
    (Atomic.get registry) []
  |> List.sort compare

let diff before after =
  List.filter_map
    (fun (label, v_after) ->
      let v_before = List.assoc_opt label before in
      match (v_before, v_after) with
      | None, v -> Some (label, v)
      | Some (Counter b), Counter a ->
          if a > b then Some (label, Counter (a - b)) else None
      | Some (Gauge b), Gauge a -> if a > b then Some (label, Gauge a) else None
      | Some (Span b), Span a ->
          if a.Span.count > b.Span.count then
            Some
              ( label,
                Span
                  {
                    Span.count = a.Span.count - b.Span.count;
                    total_ns = a.Span.total_ns - b.Span.total_ns;
                    max_ns = a.Span.max_ns;
                  } )
          else None
      | Some _, v ->
          (* A label cannot change kind; keep the after value defensively. *)
          Some (label, v))
    after

let all_labels () =
  M.fold
    (fun label cell acc ->
      let kind =
        match cell with
        | Ccounter _ -> `Counter
        | Cgauge _ -> `Gauge
        | Cspan _ -> `Span
        | Cpoint -> `Point
      in
      (label, kind) :: acc)
    (Atomic.get registry) []
  |> List.sort compare

let reset () =
  M.iter
    (fun _ cell ->
      match cell with
      | Ccounter a | Cgauge a -> Atomic.set a 0
      | Cspan c ->
          Atomic.set c.s_count 0;
          Atomic.set c.s_total 0;
          Atomic.set c.s_max 0
      | Cpoint -> ())
    (Atomic.get registry)

let human_ns ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.3f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.3f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.3f us" (f /. 1e3)
  else Printf.sprintf "%d ns" ns

let print_table snap =
  if snap = [] then print_endline "(no metrics recorded)"
  else begin
    Printf.printf "%-32s %-8s %s\n" "label" "kind" "value";
    Printf.printf "%s\n" (String.make 72 '-');
    List.iter
      (fun (label, v) ->
        match v with
        | Counter n -> Printf.printf "%-32s %-8s %d\n" label "counter" n
        | Gauge n -> Printf.printf "%-32s %-8s %d\n" label "gauge" n
        | Span s ->
            Printf.printf "%-32s %-8s count=%d total=%s max=%s\n" label "span"
              s.Span.count (human_ns s.Span.total_ns) (human_ns s.Span.max_ns))
      snap
  end
