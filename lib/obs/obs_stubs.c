/* Monotonic clock for the observability layer.
 *
 * Returns CLOCK_MONOTONIC in nanoseconds as an unboxed OCaml int
 * (63 bits holds ~292 years of nanoseconds), so the hot path of a span
 * timer performs no allocation at all.
 */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value chronus_obs_clock_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
