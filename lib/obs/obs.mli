(** Process-global, Domain-safe observability: counters, gauges, span
    timers and an optional JSONL trace sink.

    Every metric is identified by a dotted label ([greedy.rounds],
    [sim.queue_high_water], …) registered in one process-global registry,
    so values accumulated on the task-pool workers of
    [Chronus_parallel.Pool] aggregate into the same cells as the calling
    domain's. The full label vocabulary emitted by this repository is
    documented in [OBSERVABILITY.md] (and [test/suite_obs.ml] fails if
    code and document drift apart).

    Two invariants the rest of the system relies on:

    - {b Metrics observe, never branch.} Nothing in this module returns
      information that instrumented code uses to make a decision, so
      enabling or disabling any part of it cannot change experiment
      results. The bench binary and the test suite assert byte-identical
      experiment rows with tracing on and off.
    - {b Domain safety.} All cells are [Atomic]s (the trace sink
      serialises writes with a [Mutex]), so concurrent updates from task
      pool workers or portfolio search domains never tear.

    Timestamps come from [CLOCK_MONOTONIC] via a local C stub
    ({!clock_ns}) — no third-party dependency, no allocation per
    reading. *)

val clock_ns : unit -> int
(** Monotonic clock in nanoseconds (arbitrary epoch). Allocation-free. *)

(** {1 Metric cells} *)

(** Monotonically increasing event counts ([greedy.candidate_evals],
    [opt.nodes_expanded], …). *)
module Counter : sig
  type t

  val v : string -> t
  (** [v label] returns the process-global counter registered under
      [label], creating it on first use. Idempotent: every call with the
      same label yields the same cell.
      @raise Invalid_argument if [label] is already registered as a
      different metric kind. *)

  val incr : ?by:int -> t -> unit
  (** Add [by] (default 1). Lock-free; safe from any domain. *)

  val value : t -> int
end

(** High-water marks ([sim.queue_high_water]): [observe] keeps the
    maximum of all values seen since the last {!reset}. *)
module Gauge : sig
  type t

  val v : string -> t
  (** Same registration contract as {!Counter.v}. *)

  val observe : t -> int -> unit
  (** Record [x]; the cell retains [max x previous]. *)

  val value : t -> int
end

(** Accumulating wall-clock timers. Each completed span adds one
    observation — count, total and max duration are kept per label. When
    the trace sink is enabled, each completion additionally emits one
    [span] trace record carrying its [dur_ns]. *)
module Span : sig
  type t

  type stat = { count : int; total_ns : int; max_ns : int }

  val v : string -> t
  (** Same registration contract as {!Counter.v}. *)

  val with_h : t -> (unit -> 'a) -> 'a
  (** [with_h span f] times [f ()] against {!clock_ns} and records the
      duration, also when [f] raises (the exception is re-raised with
      its backtrace preserved). Spans nest freely: each [with_h] is an
      independent observation, so an enclosing span's total includes its
      inner spans' time. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ label f] is [with_h (v label) f] — the convenient form for
      cool paths, e.g. [Obs.Span.with_ "greedy.round" f]. Hot paths
      should hoist {!v} to a top-level handle. *)

  val stat : t -> stat
end

(** Named instant events that only exist on the trace ([opt.worker_done],
    [exec.two_phase.phase]). Registration makes the label visible to
    {!all_labels} so the documentation test covers trace-only labels
    too. *)
module Point : sig
  type t

  type field = Int of int | Float of float | String of string | Bool of bool

  val v : string -> t
  (** Same registration contract as {!Counter.v}. *)

  val emit : t -> (string * field) list -> unit
  (** Emit one [point] trace record with the given fields. A no-op
      (beyond one atomic load) when the trace sink is disabled. *)
end

(** {1 The JSONL trace sink}

    When enabled, every span completion and every {!Point.emit} appends
    one JSON object per line to the sink file. The record schema
    ([chronus-trace/1]) is documented in [OBSERVABILITY.md]; every
    record carries at least [ts] (ns since trace start, monotonic),
    [domain] (the emitting domain's id), [kind] ([meta], [span] or
    [point]), [label], and a [fields] object. *)
module Trace : sig
  val enabled : unit -> bool
  (** One atomic load — this is the only cost instrumented code pays per
      potential event while the sink is off. *)

  val set_path : string option -> unit
  (** Programmatically open (truncating) or close the sink. The
      environment variable [CHRONUS_TRACE=file.jsonl] performs
      [set_path (Some file)] at program start; [set_path None] closes
      and flushes the current sink. Opening writes one [meta] record
      with the schema version. *)

  val path : unit -> string option
end

(** {1 Registry-wide operations} *)

type value =
  | Counter of int
  | Gauge of int
  | Span of Span.stat

type snapshot = (string * value) list
(** Sorted by label. {!Point}s carry no value and do not appear. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff before after] subtracts counter/gauge-as-max/span values
    label-wise and drops labels that saw no activity — the per-figure
    tables of [bench/main.exe --metrics] are produced this way. Gauges
    are high-water marks, not rates: a gauge appears in the diff with
    [after]'s value whenever it grew. *)

val all_labels : unit -> (string * [ `Counter | `Gauge | `Span | `Point ]) list
(** Every label registered so far (including trace-only points),
    sorted. *)

val reset : unit -> unit
(** Zero all cells. Registrations (and the trace sink) survive. Used by
    tests to isolate assertions; production code never calls it. *)

val print_table : snapshot -> unit
(** Render a snapshot as the aligned per-label table shown by
    [--metrics]. *)
