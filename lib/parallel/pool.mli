(** A dependency-free task pool over OCaml 5 domains.

    The experiment harness fans independent seeded trials out across
    domains; every function here preserves input order in its output, so
    a parallel run is bit-identical to a sequential one as long as the
    tasks themselves are independent (which per-trial RNG derivation
    guarantees — see [Chronus_topo.Rng.derive]).

    Work is distributed dynamically: inputs are cut into chunks and
    workers claim the next chunk from a shared atomic cursor, so a few
    slow tasks (an [Opt.solve] hitting its timeout, say) do not idle the
    other workers. If any task raises, no further chunks are started and
    the first exception is re-raised in the calling domain.

    With [jobs = 1] (or a single-element input) everything runs in the
    calling domain with no spawns at all, so stack traces, printf
    debugging and determinism-sensitive tests behave exactly as in
    pre-multicore code.

    Worker domains persist across bursts of batches: the first
    multi-job call spawns them, and after each batch they linger
    briefly for the next one, so a harness fanning out batch after
    batch pays the domain-spawn cost once per burst rather than per
    call. A worker idle past its grace window retires — an idle domain
    still joins every stop-the-world rendezvous and would otherwise
    tax all subsequent single-domain phases of the process. The pool
    never grows past the largest [jobs] ever requested, never services
    a batch with more domains than it asked for, and is joined at
    exit. A nested call (a task that itself calls into the pool) falls
    back to spawn-per-call execution instead of deadlocking. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [CHRONUS_JOBS]
    environment variable when set (must be a positive integer, else
    [Invalid_argument]), otherwise [Domain.recommended_domain_count ()]. *)

val parallel_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed on [jobs] domains.
    Output order matches input order regardless of completion order.
    [chunk] is the number of consecutive inputs a worker claims at a
    time (default 1 — right for expensive tasks like experiment trials;
    raise it for many cheap tasks). *)

val parallel_mapi :
  ?jobs:int -> ?chunk:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!parallel_map}, passing each element's input position. *)

val parallel_iter : ?jobs:int -> ?chunk:int -> ('a -> unit) -> 'a list -> unit
(** [parallel_iter f xs] runs [f] on every element for its effects.
    Unlike [List.iter] there is no ordering guarantee between elements,
    so [f] must only perform independent (or internally synchronised)
    effects. *)

val parallel_init : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a list
(** [parallel_init n f] is [List.init n f] computed on [jobs] domains;
    the idiom for fanning out [n] seeded trials. *)

val spawned_domains : unit -> int
(** Cumulative number of domains this module has ever spawned — pool
    workers plus spawn-per-call fallbacks. Monotone over the process
    lifetime; two equal readings around a batch prove the batch reused
    lingering workers. Exposed for tests and diagnostics. *)
