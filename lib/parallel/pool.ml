let default_jobs () =
  match Sys.getenv_opt "CHRONUS_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf
               "CHRONUS_JOBS must be a positive integer, got %S" s))

(* The first failure, with the position it occurred at: re-raising the
   lowest-indexed exception keeps parallel failure reports deterministic
   when several tasks die in the same run. *)
type failure = { index : int; error : exn; trace : Printexc.raw_backtrace }

let spawn_count = Atomic.make 0

let spawned_domains () = Atomic.get spawn_count

let spawn f =
  Atomic.incr spawn_count;
  Domain.spawn f

(* One batch of work: a shared cursor hands out chunks, a stop flag cuts
   the batch short on failure, and the lowest-indexed exception wins.
   [claim] never raises — failures are recorded and re-raised by
   [finish] in the submitting domain. *)
let make_claim ~chunk ~n (body : int -> unit) =
  let cursor = Atomic.make 0 in
  let stop = Atomic.make false in
  let failed : failure option Atomic.t = Atomic.make None in
  let note_failure index error trace =
    Atomic.set stop true;
    let rec record () =
      let seen = Atomic.get failed in
      let better =
        match seen with None -> true | Some f -> index < f.index
      in
      if
        better
        && not (Atomic.compare_and_set failed seen (Some { index; error; trace }))
      then record ()
    in
    record ()
  in
  let claim () =
    let continue = ref true in
    while !continue do
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= n || Atomic.get stop then continue := false
      else
        let hi = min n (lo + chunk) - 1 in
        let i = ref lo in
        while !i <= hi && not (Atomic.get stop) do
          (try body !i
           with e -> note_failure !i e (Printexc.get_raw_backtrace ()));
          incr i
        done
    done
  in
  let finish () =
    match Atomic.get failed with
    | Some { error; trace; _ } -> Printexc.raise_with_backtrace error trace
    | None -> ()
  in
  (claim, finish)

(* Spawn-per-call execution: the fallback when the persistent pool is
   already executing a batch (a nested [parallel_map] from inside a
   task) and the shutdown path for anything launched after [at_exit]. *)
let run_spawned ~jobs ~chunk ~n body =
  let claim, finish = make_claim ~chunk ~n body in
  let spawned = List.init (jobs - 1) (fun _ -> spawn claim) in
  claim ();
  List.iter Domain.join spawned;
  finish ()

(* The persistent pool. Workers are spawned on demand; after a batch a
   worker lingers for a short grace window polling for the next batch,
   then retires (the domain exits). A harness fanning out batch after
   batch therefore pays the domain-spawn cost once per burst instead of
   once per call, while a process that goes back to single-domain work
   sheds its workers within the grace window.

   Retiring matters as much as reuse: an idle domain is not free. Every
   minor collection is a stop-the-world rendezvous of *all* live
   domains, and a domain blocked in a condition wait (or a sleep) joins
   it through its backup thread — a scheduling round-trip that on a
   busy single-core host can multiply the cost of purely sequential
   phases. Parking workers indefinitely on a condition variable would
   tax every allocation the main domain makes for the rest of the
   process; bounding the idle window bounds that tax.

   Only [jobs - 1] of the live workers actually claim chunks (the
   [slots] gate below): the pool never grows past the largest request,
   but a smaller request must not be serviced by more domains than it
   asked for. *)
type worker = { w_id : int; w_handle : unit Domain.t }

type pool = {
  m : Mutex.t;
  work_done : Condition.t;  (* submitter: [active] hit zero *)
  mutable gen : int;
  mutable run : unit -> unit;  (* the batch closure for [gen] *)
  mutable active : int;  (* workers still inside the current batch *)
  mutable size : int;  (* workers running a batch or in their grace *)
  mutable busy : bool;  (* a submission is in flight *)
  mutable shutdown : bool;
  mutable members : worker list;
  mutable retired : int list;  (* ids whose handles await a join *)
}

let pool =
  {
    m = Mutex.create ();
    work_done = Condition.create ();
    gen = 0;
    run = ignore;
    active = 0;
    size = 0;
    busy = false;
    shutdown = false;
    members = [];
    retired = [];
  }

let grace = 0.025 (* seconds a worker lingers for the next batch *)

let slice = 0.001 (* polling interval within the grace window *)

(* Runs in a worker domain. [my_gen] is the generation the worker last
   serviced (or was spawned at): a different [pool.gen] is a new batch.
   All state decisions happen under [pool.m], so a worker either
   observes a submission and participates, or retires and is excluded
   from [size] before the submitter counts participants. *)
let rec worker_loop my_gen =
  let rec idle slept =
    Mutex.lock pool.m;
    if pool.gen <> my_gen then begin
      let gen = pool.gen and run = pool.run in
      Mutex.unlock pool.m;
      run ();
      Mutex.lock pool.m;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.signal pool.work_done;
      Mutex.unlock pool.m;
      worker_loop gen
    end
    else if pool.shutdown || slept >= grace then begin
      pool.size <- pool.size - 1;
      pool.retired <- (Domain.self () :> int) :: pool.retired;
      Mutex.unlock pool.m
    end
    else begin
      Mutex.unlock pool.m;
      Unix.sleepf slice;
      idle (slept +. slice)
    end
  in
  idle 0.

(* Join the handles of workers that have retired; their loops have
   already returned (or are about to), so the joins are prompt. Called
   with [pool.m] held; the joins themselves happen after release. *)
let reap_locked () =
  match pool.retired with
  | [] -> fun () -> ()
  | ids ->
      let gone, kept =
        List.partition (fun w -> List.mem w.w_id ids) pool.members
      in
      pool.members <- kept;
      pool.retired <- [];
      fun () -> List.iter (fun w -> Domain.join w.w_handle) gone

let () =
  at_exit (fun () ->
      Mutex.lock pool.m;
      pool.shutdown <- true;
      let members = pool.members in
      pool.members <- [];
      pool.retired <- [];
      Mutex.unlock pool.m;
      (* Lingering workers notice [shutdown] within one polling slice;
         batch participants finish their batch first. *)
      List.iter (fun w -> Domain.join w.w_handle) members)

let run_pooled ~jobs ~chunk ~n body =
  let claim, finish = make_claim ~chunk ~n body in
  Mutex.lock pool.m;
  if pool.busy || pool.shutdown then begin
    (* Nested submission (a task itself called into the pool) or a call
       during interpreter teardown: fall back to spawn-per-call rather
       than deadlock on the busy pool. *)
    Mutex.unlock pool.m;
    run_spawned ~jobs ~chunk ~n body
  end
  else begin
    pool.busy <- true;
    let join_retired = reap_locked () in
    let g0 = pool.gen in
    while pool.size < jobs - 1 do
      let handle = spawn (fun () -> worker_loop g0) in
      pool.members <-
        { w_id = (Domain.get_id handle :> int); w_handle = handle }
        :: pool.members;
      pool.size <- pool.size + 1
    done;
    let slots = Atomic.make (jobs - 1) in
    pool.run <- (fun () -> if Atomic.fetch_and_add slots (-1) > 0 then claim ());
    pool.gen <- pool.gen + 1;
    pool.active <- pool.size;
    Mutex.unlock pool.m;
    join_retired ();
    claim ();
    Mutex.lock pool.m;
    while pool.active > 0 do
      Condition.wait pool.work_done pool.m
    done;
    pool.run <- ignore;
    pool.busy <- false;
    Mutex.unlock pool.m;
    finish ()
  end

let parallel_init ?jobs ?(chunk = 1) n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if chunk < 1 then invalid_arg "Pool: chunk must be positive";
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ -> 1 | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 then List.init n f
  else begin
    let out = Array.make n None in
    run_pooled ~jobs ~chunk ~n (fun i -> out.(i) <- Some (f i));
    List.init n (fun i ->
        match out.(i) with
        | Some y -> y
        | None -> assert false (* every index ran, or we re-raised above *))
  end

let parallel_mapi ?jobs ?chunk f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ ->
      let inp = Array.of_list xs in
      parallel_init ?jobs ?chunk (Array.length inp) (fun i -> f i inp.(i))

let parallel_map ?jobs ?chunk f xs = parallel_mapi ?jobs ?chunk (fun _ x -> f x) xs

let parallel_iter ?jobs ?chunk f xs =
  ignore (parallel_map ?jobs ?chunk f xs)
