let default_jobs () =
  match Sys.getenv_opt "CHRONUS_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf
               "CHRONUS_JOBS must be a positive integer, got %S" s))

(* The first failure, with the position it occurred at: re-raising the
   lowest-indexed exception keeps parallel failure reports deterministic
   when several tasks die in the same run. *)
type failure = { index : int; error : exn; trace : Printexc.raw_backtrace }

let run_workers ~jobs ~chunk ~n (body : int -> unit) =
  let cursor = Atomic.make 0 in
  let stop = Atomic.make false in
  let failed : failure option Atomic.t = Atomic.make None in
  let note_failure index error trace =
    Atomic.set stop true;
    let rec record () =
      let seen = Atomic.get failed in
      let better =
        match seen with None -> true | Some f -> index < f.index
      in
      if better && not (Atomic.compare_and_set failed seen (Some { index; error; trace }))
      then record ()
    in
    record ()
  in
  let worker () =
    let continue = ref true in
    while !continue do
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= n || Atomic.get stop then continue := false
      else
        let hi = min n (lo + chunk) - 1 in
        let i = ref lo in
        while !i <= hi && not (Atomic.get stop) do
          (try body !i
           with e -> note_failure !i e (Printexc.get_raw_backtrace ()));
          incr i
        done
    done
  in
  let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  match Atomic.get failed with
  | Some { error; trace; _ } -> Printexc.raise_with_backtrace error trace
  | None -> ()

let parallel_init ?jobs ?(chunk = 1) n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if chunk < 1 then invalid_arg "Pool: chunk must be positive";
  let jobs =
    match jobs with Some j when j >= 1 -> j | Some _ -> 1 | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 then List.init n f
  else begin
    let out = Array.make n None in
    run_workers ~jobs ~chunk ~n (fun i -> out.(i) <- Some (f i));
    List.init n (fun i ->
        match out.(i) with
        | Some y -> y
        | None -> assert false (* every index ran, or we re-raised above *))
  end

let parallel_mapi ?jobs ?chunk f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ ->
      let inp = Array.of_list xs in
      parallel_init ?jobs ?chunk (Array.length inp) (fun i -> f i inp.(i))

let parallel_map ?jobs ?chunk f xs = parallel_mapi ?jobs ?chunk (fun _ x -> f x) xs

let parallel_iter ?jobs ?chunk f xs =
  ignore (parallel_map ?jobs ?chunk f xs)
