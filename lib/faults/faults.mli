(** Deterministic, seed-driven fault injection for the executor stack.

    Chronus's premise is that switches flip rules at exact synchronised
    times; the timed-SDN literature (Time4, "Timed Consistent Network
    Updates") evaluates precisely what happens when they do not. This
    module models the three failure axes those papers measure:

    - {b clock error} per switch — a constant offset, a bounded drift
      rate, and per-flip jitter — applied to the execution timestamp of
      every timed flow-mod;
    - {b control-channel faults} — extra delay, loss, duplication and
      reordering of controller→switch commands;
    - {b switch faults} — update rejection, straggling (slow rule
      installation), and crash-restart reverting the switch to its
      installed table.

    Every draw comes from the repository's splittable, coordinate-
    addressed {!Chronus_topo.Rng} — no wall clock, no global state — so
    a (seed, config) pair replays bit-identically, on any domain, in
    any trial order. A configuration with all magnitudes zero is a
    provable no-op: the engine still draws, but every answer is "no
    fault", so instrumented executors behave exactly as if the engine
    were absent (property-tested in [test/suite_faults.ml]).

    The single injection point is [Chronus_exec.Exec_env.dispatch]:
    each command asks the engine for one {!fate} and, when carrying an
    execution timestamp, one {!Engine.clock_error}. Nothing else in the
    system consults this module. *)

open Chronus_sim

(** Per-switch clock model. Magnitudes, not values: each switch draws
    its own offset in [[-offset_us, offset_us]] and drift rate in
    [[-drift_ppm, drift_ppm]] once (stable for the run), plus a fresh
    jitter draw in [[-jitter_us, jitter_us]] per scheduled flip. *)
type clock = {
  offset_us : Sim_time.t;  (** constant per-switch clock offset bound *)
  drift_ppm : int;
      (** bounded drift: error grows by up to this many microseconds per
          second of scheduled time *)
  jitter_us : Sim_time.t;  (** independent per-flip scheduling jitter *)
}

(** Control-channel fault rates. Probabilities are per command. *)
type channel = {
  delay_p : float;  (** chance of an extra forward-leg delay *)
  extra_delay_us : Sim_time.t;  (** its magnitude bound, drawn uniform *)
  loss_p : float;  (** command silently dropped by the channel *)
  duplicate_p : float;  (** a second copy arrives independently later *)
  reorder_p : float;
      (** command pushed behind later traffic: it additionally waits a
          full [extra_delay_us] window, so commands sent after it can
          overtake *)
}

(** Switch misbehaviour rates. Probabilities are per received command. *)
type switch_f = {
  reject_p : float;  (** command processed but not applied, never acked *)
  straggle_p : float;  (** switch applies late *)
  straggle_us : Sim_time.t;  (** processing delay bound of a straggler *)
  crash_p : float;
      (** switch crashes on receipt: the command is not applied and the
          flow table reverts to the snapshot taken at network build time
          (the installed table); no ack is sent *)
}

type config = { clock : clock; channel : channel; switches : switch_f }

val zero : config
(** All magnitudes and probabilities zero — the provable no-op. *)

val is_zero : config -> bool

val drift : config
(** Clock error only: 10 ms offsets, 200 ppm drift, 5 ms jitter. *)

val lossy : config
(** Faulty control channel: extra delay, loss, duplication, reordering;
    perfect clocks and well-behaved switches. *)

val chaos : config
(** Everything at once: drifting clocks, the lossy channel, and switches
    that reject, straggle and crash-restart. *)

val of_preset : string -> config
(** [of_preset name] for [name] one of ["none"], ["drift"], ["lossy"],
    ["chaos"] (the CLI's [--faults] vocabulary).
    @raise Invalid_argument on anything else. *)

val preset_names : string list

val with_clock_error : Sim_time.t -> config -> config
(** [with_clock_error e c] sets both the per-switch offset bound and the
    per-flip jitter bound to [e] (the CLI's [--clock-error], and the
    x-axis of the robustness experiment). [e = 0] clears them. *)

val pp : Format.formatter -> config -> unit

(** What the channel and the receiving switch do with one command. All
    fields are independent draws; a zero-magnitude config always yields
    {!no_fault}. *)
type fate = {
  lost : bool;
  duplicated : bool;
  extra_delay_us : Sim_time.t;  (** channel-level extra forward delay *)
  rejected : bool;
  straggle_us : Sim_time.t;  (** switch-side processing delay *)
  crashed : bool;
}

val no_fault : fate

(** A fault engine: one per executor run, seeded from the run's seed so
    that fault draws are reproducible by construction. *)
module Engine : sig
  type t

  val create : ?seed:int -> ?lane:int list -> config -> t
  (** [create ~seed ~lane config] addresses this engine's streams at the
      coordinate path [lane] under [seed] (see
      {!Chronus_topo.Rng.derive}); per-switch clock parameters get their
      own sub-coordinates, so switch [v]'s offset does not depend on
      which commands were sent before. Defaults: [seed = 1],
      [lane = []]. *)

  val config : t -> config

  val clock_error : t -> switch:int -> at:Sim_time.t -> Sim_time.t
  (** The signed scheduling error switch [switch] commits on a flip
      scheduled at absolute simulated time [at]: its constant offset,
      plus drift proportional to [at], plus fresh jitter. Zero for a
      zero-magnitude clock config. *)

  val command_fate : t -> switch:int -> fate
  (** Draw the channel and switch behaviour for one command. Consumes
      the engine's command stream (deterministic given the creation
      coordinates and the call sequence). *)
end
