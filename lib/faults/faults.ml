open Chronus_sim
module Rng = Chronus_topo.Rng
module Obs = Chronus_obs.Obs

type clock = {
  offset_us : Sim_time.t;
  drift_ppm : int;
  jitter_us : Sim_time.t;
}

type channel = {
  delay_p : float;
  extra_delay_us : Sim_time.t;
  loss_p : float;
  duplicate_p : float;
  reorder_p : float;
}

type switch_f = {
  reject_p : float;
  straggle_p : float;
  straggle_us : Sim_time.t;
  crash_p : float;
}

type config = { clock : clock; channel : channel; switches : switch_f }

let zero =
  {
    clock = { offset_us = 0; drift_ppm = 0; jitter_us = 0 };
    channel =
      {
        delay_p = 0.;
        extra_delay_us = 0;
        loss_p = 0.;
        duplicate_p = 0.;
        reorder_p = 0.;
      };
    switches = { reject_p = 0.; straggle_p = 0.; straggle_us = 0; crash_p = 0. };
  }

let is_zero c = c = zero

let drift =
  {
    zero with
    clock =
      {
        offset_us = Sim_time.msec 10;
        drift_ppm = 200;
        jitter_us = Sim_time.msec 5;
      };
  }

let lossy =
  {
    zero with
    channel =
      {
        delay_p = 0.3;
        extra_delay_us = Sim_time.msec 80;
        loss_p = 0.15;
        duplicate_p = 0.1;
        reorder_p = 0.1;
      };
  }

let chaos =
  {
    clock = drift.clock;
    channel = lossy.channel;
    switches =
      {
        reject_p = 0.1;
        straggle_p = 0.15;
        straggle_us = Sim_time.msec 150;
        crash_p = 0.05;
      };
  }

let preset_names = [ "none"; "drift"; "lossy"; "chaos" ]

let of_preset = function
  | "none" -> zero
  | "drift" -> drift
  | "lossy" -> lossy
  | "chaos" -> chaos
  | s -> invalid_arg (Printf.sprintf "Faults.of_preset: unknown preset %S" s)

let with_clock_error e c =
  { c with clock = { c.clock with offset_us = e; jitter_us = e } }

let pp ppf c =
  if is_zero c then Format.fprintf ppf "faults:none"
  else
    Format.fprintf ppf
      "faults{clock(off=%a drift=%dppm jit=%a) chan(delay=%g/%a loss=%g \
       dup=%g reord=%g) sw(rej=%g strag=%g/%a crash=%g)}"
      Sim_time.pp c.clock.offset_us c.clock.drift_ppm Sim_time.pp
      c.clock.jitter_us c.channel.delay_p Sim_time.pp c.channel.extra_delay_us
      c.channel.loss_p c.channel.duplicate_p c.channel.reorder_p
      c.switches.reject_p c.switches.straggle_p Sim_time.pp
      c.switches.straggle_us c.switches.crash_p

type fate = {
  lost : bool;
  duplicated : bool;
  extra_delay_us : Sim_time.t;
  rejected : bool;
  straggle_us : Sim_time.t;
  crashed : bool;
}

let no_fault =
  {
    lost = false;
    duplicated = false;
    extra_delay_us = 0;
    rejected = false;
    straggle_us = 0;
    crashed = false;
  }

(* Fault sites observed. Counters fire only when a fault actually
   happens, so a zero config leaves them untouched. *)
let c_lost = Obs.Counter.v "faults.chan.lost"
let c_duplicated = Obs.Counter.v "faults.chan.duplicated"
let c_delayed = Obs.Counter.v "faults.chan.delayed"
let c_reordered = Obs.Counter.v "faults.chan.reordered"
let c_rejected = Obs.Counter.v "faults.switch.rejected"
let c_straggled = Obs.Counter.v "faults.switch.straggled"
let c_crashed = Obs.Counter.v "faults.switch.crashed"
let c_skewed = Obs.Counter.v "faults.clock.skewed_flips"

module Engine = struct
  type sw_clock = { offset : Sim_time.t; drift : int; jitter_rng : Rng.t }

  type t = {
    config : config;
    seed : int;
    lane : int list;
    commands : Rng.t;  (** one shared stream for per-command fate draws *)
    clocks : (int, sw_clock) Hashtbl.t;
  }

  (* Coordinate tags keeping the engine's streams disjoint from every
     experiment lane (which all start with small figure numbers). *)
  let fate_tag = 0xFA7E
  let clock_tag = 0xC10C

  let create ?(seed = 1) ?(lane = []) config =
    {
      config;
      seed;
      lane;
      commands = Rng.derive seed ((fate_tag :: lane) @ [ 0 ]);
      clocks = Hashtbl.create 16;
    }

  let config t = t.config

  (* Symmetric draw in [-bound, bound]; zero bound consumes no draw so
     that enabling one fault axis never shifts another axis' stream. *)
  let sym rng bound = if bound = 0 then 0 else Rng.in_range rng (-bound) bound

  let sw_clock t switch =
    match Hashtbl.find_opt t.clocks switch with
    | Some c -> c
    | None ->
        let rng = Rng.derive t.seed ((clock_tag :: t.lane) @ [ switch ]) in
        let c =
          {
            offset = sym rng t.config.clock.offset_us;
            drift = sym rng t.config.clock.drift_ppm;
            jitter_rng = rng;
          }
        in
        Hashtbl.add t.clocks switch c;
        c

  let clock_error t ~switch ~at =
    let cl = t.config.clock in
    if cl.offset_us = 0 && cl.drift_ppm = 0 && cl.jitter_us = 0 then 0
    else
      let c = sw_clock t switch in
      (* drift is µs of error per second of elapsed schedule time *)
      let drifted = c.drift * at / 1_000_000 in
      let err = c.offset + drifted + sym c.jitter_rng cl.jitter_us in
      if err <> 0 then Obs.Counter.incr c_skewed;
      err

  (* Bernoulli that consumes no draw at p = 0, so fault axes stay
     stream-independent of each other. *)
  let flip rng p = p > 0. && Rng.float rng 1.0 < p

  let command_fate t ~switch =
    let ch = t.config.channel and sw = t.config.switches in
    let rng = t.commands in
    ignore switch;
    let lost = flip rng ch.loss_p in
    let duplicated = (not lost) && flip rng ch.duplicate_p in
    let delayed = flip rng ch.delay_p in
    let delay =
      if delayed && ch.extra_delay_us > 0 then
        1 + Rng.int rng ch.extra_delay_us
      else 0
    in
    let reordered = flip rng ch.reorder_p in
    let extra_delay_us =
      (* A reordered command waits out a full extra-delay window on top
         of any ordinary delay, letting later commands overtake it. *)
      delay + if reordered then ch.extra_delay_us else 0
    in
    let rejected = (not lost) && flip rng sw.reject_p in
    let straggle_us =
      if (not lost) && flip rng sw.straggle_p && sw.straggle_us > 0 then
        1 + Rng.int rng sw.straggle_us
      else 0
    in
    let crashed = (not lost) && (not rejected) && flip rng sw.crash_p in
    if lost then Obs.Counter.incr c_lost;
    if duplicated then Obs.Counter.incr c_duplicated;
    if delay > 0 then Obs.Counter.incr c_delayed;
    if reordered then Obs.Counter.incr c_reordered;
    if rejected then Obs.Counter.incr c_rejected;
    if straggle_us > 0 then Obs.Counter.incr c_straggled;
    if crashed then Obs.Counter.incr c_crashed;
    { lost; duplicated; extra_delay_us; rejected; straggle_us; crashed }
end
