module Obs = Chronus_obs.Obs

let c_spawns = Obs.Counter.v "fiber.spawns"
let c_switches = Obs.Counter.v "fiber.context_switches"
let c_cancels = Obs.Counter.v "fiber.cancellations"
let g_mailbox_depth = Obs.Gauge.v "fiber.mailbox_depth"

type time = int

exception Cancelled

type runtime = {
  rt_now : unit -> time;
  rt_schedule : time -> (unit -> unit) -> unit;
  mutable next_id : int;
  (* The two-batch ready queue: [current] is being drained (already
     sorted by fiber id), [batch] collects wakeups in reverse push
     order until [current] empties. *)
  mutable current : (int * (unit -> unit)) list;
  mutable batch : (int * (unit -> unit)) list;
  mutable draining : bool;
  mutable live : int;
  mutable peak_live : int;
  mutable spawned_total : int;
}

let runtime ~now ~schedule =
  {
    rt_now = now;
    rt_schedule = schedule;
    next_id = 0;
    current = [];
    batch = [];
    draining = false;
    live = 0;
    peak_live = 0;
    spawned_total = 0;
  }

type stats = { spawned : int; live : int; peak_live : int }

let stats rt =
  { spawned = rt.spawned_total; live = rt.live; peak_live = rt.peak_live }

let enqueue rt id thunk = rt.batch <- (id, thunk) :: rt.batch

let drain rt =
  if not rt.draining then begin
    rt.draining <- true;
    Fun.protect ~finally:(fun () -> rt.draining <- false) @@ fun () ->
    let rec loop () =
      match rt.current with
      | (_, thunk) :: rest ->
          rt.current <- rest;
          Obs.Counter.incr c_switches;
          thunk ();
          loop ()
      | [] ->
          if rt.batch <> [] then begin
            (* Stable, so several wakeups of one fiber (they cannot all
               resume it, only the first live one does) keep push order. *)
            rt.current <-
              List.stable_sort
                (fun (a, _) (b, _) -> Int.compare a b)
                (List.rev rt.batch);
            rt.batch <- [];
            loop ()
          end
    in
    loop ()
  end

(* A fiber's completion state. Waiters are stored LIFO and notified in
   registration order; each notification just enqueues a resume, so the
   ready queue's id sort decides actual wake order. *)
type 'a state = Running of (unit -> unit) list | Finished of ('a, exn) result

type 'a t = {
  fid : int;
  frt : runtime;
  mutable state : 'a state;
  mutable cancel_requested : bool;
  (* When suspended, how to break out of the suspension with
     [Cancelled]; the suspension's own waker is disarmed by the shared
     [fired] cell. *)
  mutable interrupt : (unit -> unit) option;
  mutable children : packed list;
}

and packed = Packed : 'a t -> packed

type 'a mailbox = {
  mb_q : 'a Queue.t;
  mutable mb_waiters : 'a waiter list; (* FIFO: appended at the tail *)
}

and 'a waiter = { w_fired : bool ref; w_deliver : 'a -> unit }

type _ Effect.t +=
  | Yield : unit Effect.t
  | Now : time Effect.t
  | Self_runtime : runtime Effect.t
  | Spawn : (unit -> 'a) -> 'a t Effect.t
  | Wait : 'a t -> ('a, exn) result Effect.t
  | Wait_until : time * 'a t -> ('a, exn) result option Effect.t
  | Sleep_until : time -> unit Effect.t
  | Recv : 'a mailbox -> 'a Effect.t
  | Recv_until : time * 'a mailbox -> 'a option Effect.t

let rec spawn_on : type a. runtime -> packed option -> (unit -> a) -> a t =
 fun rt parent body ->
  let fid = rt.next_id in
  rt.next_id <- fid + 1;
  rt.spawned_total <- rt.spawned_total + 1;
  rt.live <- rt.live + 1;
  if rt.live > rt.peak_live then rt.peak_live <- rt.live;
  Obs.Counter.incr c_spawns;
  let fb =
    {
      fid;
      frt = rt;
      state = Running [];
      cancel_requested = false;
      interrupt = None;
      children = [];
    }
  in
  (match parent with
  | Some (Packed p) -> p.children <- Packed fb :: p.children
  | None -> ());
  enqueue rt fid (fun () -> start fb body);
  fb

and start : type a. a t -> (unit -> a) -> unit =
 fun fb body ->
  if fb.cancel_requested then finish fb (Error Cancelled)
  else
    Effect.Deep.match_with body ()
      {
        Effect.Deep.retc = (fun v -> finish fb (Ok v));
        exnc = (fun e -> finish fb (Error e));
        effc = (fun (type b) (eff : b Effect.t) -> handle fb eff);
      }

and finish : type a. a t -> (a, exn) result -> unit =
 fun fb r ->
  match fb.state with
  | Finished _ -> ()
  | Running waiters ->
      fb.state <- Finished r;
      fb.frt.live <- fb.frt.live - 1;
      List.iter (fun w -> w ()) (List.rev waiters)

(* Every resume path funnels here: clear the interrupt (the suspension
   is over) and surface a cancellation requested while ready. *)
and resume : type a v. a t -> (v, unit) Effect.Deep.continuation -> v -> unit =
 fun fb k v ->
  fb.interrupt <- None;
  if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
  else Effect.Deep.continue k v

and resume_cancelled :
      type a v. a t -> (v, unit) Effect.Deep.continuation -> unit =
 fun fb k ->
  fb.interrupt <- None;
  Effect.Deep.discontinue k Cancelled

and arm : type a v. a t -> bool ref -> (v, unit) Effect.Deep.continuation -> unit
    =
 fun fb fired k ->
  fb.interrupt <-
    Some
      (fun () ->
        if not !fired then begin
          fired := true;
          enqueue fb.frt fb.fid (fun () -> resume_cancelled fb k)
        end)

and handle :
      type a b. a t -> b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option
    =
 fun fb eff ->
  let rt = fb.frt in
  match eff with
  | Yield ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else enqueue rt fb.fid (fun () -> resume fb k ()))
  | Now -> Some (fun k -> Effect.Deep.continue k (rt.rt_now ()))
  | Self_runtime -> Some (fun k -> Effect.Deep.continue k rt)
  | Spawn body ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else Effect.Deep.continue k (spawn_on rt (Some (Packed fb)) body))
  | Wait target ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else begin
            match target.state with
            | Finished r -> Effect.Deep.continue k r
            | Running waiters ->
                let fired = ref false in
                arm fb fired k;
                let wake () =
                  if not !fired then begin
                    fired := true;
                    enqueue rt fb.fid (fun () ->
                        match target.state with
                        | Finished r -> resume fb k r
                        | Running _ -> assert false)
                  end
                in
                target.state <- Running (wake :: waiters)
          end)
  | Wait_until (deadline, target) ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else begin
            match target.state with
            | Finished r -> Effect.Deep.continue k (Some r)
            | Running waiters ->
                let fired = ref false in
                arm fb fired k;
                let wake () =
                  if not !fired then begin
                    fired := true;
                    enqueue rt fb.fid (fun () ->
                        match target.state with
                        | Finished r -> resume fb k (Some r)
                        | Running _ -> assert false)
                  end
                in
                target.state <- Running (wake :: waiters);
                rt.rt_schedule deadline (fun () ->
                    if not !fired then begin
                      fired := true;
                      enqueue rt fb.fid (fun () -> resume fb k None)
                    end)
          end)
  | Sleep_until deadline ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else begin
            let fired = ref false in
            arm fb fired k;
            rt.rt_schedule deadline (fun () ->
                if not !fired then begin
                  fired := true;
                  enqueue rt fb.fid (fun () -> resume fb k ())
                end)
          end)
  | Recv mb ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else if not (Queue.is_empty mb.mb_q) then
            Effect.Deep.continue k (Queue.pop mb.mb_q)
          else begin
            let fired = ref false in
            arm fb fired k;
            mb.mb_waiters <-
              mb.mb_waiters
              @ [
                  {
                    w_fired = fired;
                    w_deliver =
                      (fun v -> enqueue rt fb.fid (fun () -> resume fb k v));
                  };
                ]
          end)
  | Recv_until (deadline, mb) ->
      Some
        (fun k ->
          if fb.cancel_requested then Effect.Deep.discontinue k Cancelled
          else if not (Queue.is_empty mb.mb_q) then
            Effect.Deep.continue k (Some (Queue.pop mb.mb_q))
          else begin
            let fired = ref false in
            arm fb fired k;
            mb.mb_waiters <-
              mb.mb_waiters
              @ [
                  {
                    w_fired = fired;
                    w_deliver =
                      (fun v ->
                        enqueue rt fb.fid (fun () -> resume fb k (Some v)));
                  };
                ];
            rt.rt_schedule deadline (fun () ->
                if not !fired then begin
                  fired := true;
                  enqueue rt fb.fid (fun () -> resume fb k None)
                end)
          end)
  | _ -> None

let rec cancel : type a. a t -> unit =
 fun fb ->
  match fb.state with
  | Finished _ -> ()
  | Running _ ->
      if not fb.cancel_requested then begin
        fb.cancel_requested <- true;
        Obs.Counter.incr c_cancels;
        List.iter (fun (Packed c) -> cancel c) fb.children;
        match fb.interrupt with
        | Some f ->
            fb.interrupt <- None;
            f ()
        | None -> ()
      end

let spawn_root rt body = spawn_on rt None body
let spawn body = Effect.perform (Spawn body)
let yield () = Effect.perform Yield
let now () = Effect.perform Now
let self_runtime () = Effect.perform Self_runtime
let id fb = fb.fid
let wait fb = Effect.perform (Wait fb)
let join fb = match wait fb with Ok v -> v | Error e -> raise e
let wait_until ~deadline fb = Effect.perform (Wait_until (deadline, fb))
let poll fb = match fb.state with Finished r -> Some r | Running _ -> None
let sleep_until t = Effect.perform (Sleep_until t)
let sleep d = sleep_until (now () + max 0 d)

let timeout_at deadline body =
  let fb = spawn body in
  match wait_until ~deadline fb with
  | Some (Ok v) -> Some v
  | Some (Error e) -> raise e
  | None ->
      cancel fb;
      None

module Mailbox = struct
  type 'a t = 'a mailbox

  let create (_ : runtime) = { mb_q = Queue.create (); mb_waiters = [] }

  let send mb v =
    (* Hand to the longest-waiting receiver that has not already been
       woken by a timeout or cancellation; dead waiters are dropped as
       they are skipped. *)
    let rec deliver = function
      | [] ->
          mb.mb_waiters <- [];
          Queue.push v mb.mb_q;
          Obs.Gauge.observe g_mailbox_depth (Queue.length mb.mb_q)
      | w :: rest ->
          if !(w.w_fired) then deliver rest
          else begin
            mb.mb_waiters <- rest;
            w.w_fired := true;
            w.w_deliver v
          end
    in
    deliver mb.mb_waiters

  let recv mb = Effect.perform (Recv mb)
  let recv_until ~deadline mb = Effect.perform (Recv_until (deadline, mb))

  let try_recv mb =
    if Queue.is_empty mb.mb_q then None else Some (Queue.pop mb.mb_q)

  let depth mb = Queue.length mb.mb_q
end
