(** A deterministic cooperative runtime on OCaml 5 effects handlers.

    Fibers are lightweight cooperative tasks multiplexed onto whatever
    discrete-event loop owns the virtual clock: the runtime never reads
    wall-clock time, never touches the OS scheduler, and orders every
    ready fiber by its spawn id, so a program that spawns the same
    fibers in the same order replays bit-identically — at any
    [CHRONUS_JOBS], on any host.

    The runtime is deliberately loop-agnostic: it is constructed from
    two closures, [now] (the virtual clock) and [schedule] (insert an
    event at an absolute virtual time), which in this repository are
    provided by [Chronus_sim.Engine] — itself a thin loop over the
    [Event_queue.S] seam. The event loop calls {!drain} after every
    dispatched event; fibers woken by that event then run *at the same
    virtual instant*, before the next event fires. This is what lets
    the fiber rewrite of the controller channel reproduce the callback
    implementation's digests bit-for-bit.

    {b Scheduling discipline.} The ready queue is two batches. Wakeups
    (spawns, mailbox sends, timer fires) enqueue into the pending
    batch; when the running batch empties, the pending batch is sorted
    by fiber id (stable, so repeated wakeups of one fiber keep their
    order) and becomes the running batch. A {!yield} therefore lets
    every other ready fiber run once before the yielder resumes —
    starvation-free and deterministic.

    {b Cancellation is structured.} {!cancel} marks the fiber and every
    fiber it spawned (transitively), then interrupts any suspension
    point — the fiber observes {!Cancelled} raised from its current
    [sleep]/[recv]/[wait] and unwinds. A fiber that is merely ready
    observes it at its next suspension point.

    Labels [fiber.spawns], [fiber.context_switches],
    [fiber.mailbox_depth] (high-water) and [fiber.cancellations] are
    registered with [Chronus_obs]; see OBSERVABILITY.md. *)

type time = int
(** Virtual time — structurally [Chronus_sim.Sim_time.t] (integer
    microseconds); this library stays zero-dependency by not naming
    it. *)

exception Cancelled
(** Raised inside a fiber at its current (or next) suspension point
    once {!cancel} has been requested for it. *)

(** {1 The runtime} *)

type runtime
(** One scheduler instance: a ready queue plus the [now]/[schedule]
    closures of the event loop that drives it. Runtimes are
    independent; nested event loops (e.g. a simulation running inside
    a service worker) each get their own. *)

val runtime :
  now:(unit -> time) -> schedule:(time -> (unit -> unit) -> unit) -> runtime
(** [runtime ~now ~schedule] builds a runtime over an event loop.
    [schedule t k] must run [k] when the loop's clock reaches [t]
    (clamping past times to "now", as [Engine.at] does), and the loop
    must call {!drain} after every event it dispatches. *)

val drain : runtime -> unit
(** Run ready fibers (in id order, see above) until none is ready.
    Idempotent and re-entrancy-safe: calls from within a drain are
    no-ops. [Chronus_sim.Engine] calls this automatically; only a
    hand-rolled loop needs to. *)

type stats = {
  spawned : int;  (** fibers ever spawned on this runtime *)
  live : int;  (** spawned and not yet finished *)
  peak_live : int;  (** high-water mark of [live] *)
}

val stats : runtime -> stats

(** {1 Fibers} *)

type 'a t
(** A fiber computing a value of type ['a]. *)

val spawn_root : runtime -> (unit -> 'a) -> 'a t
(** Spawn from outside any fiber (set-up code, event thunks). The
    fiber starts at the next {!drain}. *)

val spawn : (unit -> 'a) -> 'a t
(** Spawn a child of the calling fiber ({!cancel} of the parent
    cascades to it). Must be called from fiber context. *)

val yield : unit -> unit
(** Let every other ready fiber run once, then resume. *)

val now : unit -> time
(** The event loop's virtual clock. *)

val self_runtime : unit -> runtime
(** The runtime executing the calling fiber. *)

val id : 'a t -> int
(** Spawn-order id, unique per runtime — the scheduling key. *)

val wait : 'a t -> ('a, exn) result
(** Suspend until the fiber finishes; its value, or the exception
    ([Cancelled] included) that ended it. *)

val join : 'a t -> 'a
(** [wait] re-raising the fiber's failure in the caller. *)

val wait_until : deadline:time -> 'a t -> ('a, exn) result option
(** [wait] bounded by a virtual-time deadline; [None] on expiry (the
    target keeps running — pair with {!cancel} as {!timeout_at}
    does). *)

val poll : 'a t -> ('a, exn) result option
(** Non-blocking completion check; callable from any context. *)

val cancel : 'a t -> unit
(** Request structured cancellation: the fiber and its descendants get
    {!Cancelled} at their current or next suspension point. Idempotent;
    a no-op on finished fibers. Callable from any context. *)

val sleep_until : time -> unit
(** Suspend until the virtual clock reaches the given absolute time.
    A time at or before [now ()] schedules at the current instant —
    i.e. resumes after everything already queued for this instant, the
    fiber idiom for [Engine.at engine (Engine.now engine)]. *)

val sleep : time -> unit
(** [sleep d] is [sleep_until (now () + d)] (negative [d] clamps
    to 0). *)

val timeout_at : time -> (unit -> 'a) -> 'a option
(** [timeout_at deadline body] spawns [body] as a child and waits for
    it until [deadline]: [Some v] on completion, re-raised exception on
    failure, and on expiry the child is {!cancel}led and [None]
    returned. *)

(** {1 Mailboxes}

    Unbounded FIFO channels. {!Mailbox.send} never blocks and is
    callable from plain event thunks — it is how the event world hands
    values to fibers. Receivers queue FIFO. *)

module Mailbox : sig
  type 'a t

  val create : runtime -> 'a t

  val send : 'a t -> 'a -> unit
  (** Deliver to the longest-waiting live receiver (which becomes
      ready at the current instant), else enqueue. Callable from any
      context. *)

  val recv : 'a t -> 'a
  (** Take the oldest queued value, or suspend until one is sent. *)

  val recv_until : deadline:time -> 'a t -> 'a option
  (** [recv] bounded by a virtual-time deadline; [None] on expiry. *)

  val try_recv : 'a t -> 'a option
  (** Non-blocking take; callable from any context. *)

  val depth : 'a t -> int
  (** Values currently queued (receivers not counted). *)
end
