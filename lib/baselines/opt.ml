open Chronus_flow
open Chronus_core
module Obs = Chronus_obs.Obs

let c_nodes = Obs.Counter.v "opt.nodes_expanded"
let c_prunes = Obs.Counter.v "opt.prunes"
let c_incumbent = Obs.Counter.v "opt.incumbent_improvements"
let s_solve = Obs.Span.v "opt.solve"
let p_worker = Obs.Point.v "opt.worker_done"

type outcome =
  | Optimal of Schedule.t
  | Feasible of Schedule.t
  | Infeasible
  | Unknown

type result = {
  outcome : outcome;
  makespan : int option;
  nodes_explored : int;
  elapsed : float;
}

exception Out_of_budget

let violation_time = function
  | Oracle.Congestion { time; _ }
  | Oracle.Loop { time; _ }
  | Oracle.Blackhole { time; _ } ->
      time

(* The DFS core shared by the single-domain solver and the portfolio
   workers. [tick] accounts a search node (and raises {!Out_of_budget}).
   [ck] is an incremental oracle session whose base tracks the schedule
   under construction — the search probes sibling subsets of the same
   parent schedule, the checker's best case. A violation at or below a
   frontier time is definitive: flips strictly later cannot influence
   flow behaviour that early.

   Every branch brackets its extension with [push]/[pop] on the normal
   return path, so [ck]'s base equals [sched] at each entry. When [tick]
   raises {!Out_of_budget} the unwinding skips the pops and the session
   is left mid-branch — both catchers (the single-domain deepening and
   the portfolio worker) abandon the checker entirely after catching, so
   the dirty state is never observed. *)
let prune () = Obs.Counter.incr c_prunes

let violated_below report frontier =
  List.exists
    (fun v -> violation_time v <= frontier)
    report.Oracle.violations

let rec dfs ~inst ~tick ~ck t sched remaining bound =
  tick ();
  if remaining = [] then
    if Schedule.covers inst sched && (Oracle.Checker.base_report ck).Oracle.ok
    then Some sched
    else None
  else if t >= bound then None
  else if t = bound - 1 then begin
    (* Last step inside the bound: everything left must flip now. *)
    let adds = List.map (fun v -> (v, t)) remaining in
    let sched' =
      List.fold_left (fun s (v, t) -> Schedule.add v t s) sched adds
    in
    let report = Oracle.Checker.probe_list ck adds in
    if Schedule.covers inst sched' && report.Oracle.ok then Some sched'
    else None
  end
  else
    (* Choose the subset flipping at step [t]: binary DFS over the
       remaining switches. Violations strictly below [t] kill a branch
       during growth; violations at [t] are only final once the subset
       is closed (a same-step flip can still cure them). *)
    choose ~inst ~tick ~ck ~t ~bound sched [] remaining remaining

and choose ~inst ~tick ~ck ~t ~bound sched_acc committed remaining rest =
  match rest with
  | [] ->
      if violated_below (Oracle.Checker.base_report ck) t then begin
        prune ();
        None
      end
      else
        dfs ~inst ~tick ~ck (t + 1) sched_acc
          (List.filter (fun v -> not (List.mem v committed)) remaining)
          bound
  | v :: tl -> (
      tick ();
      let sched_v = Schedule.add v t sched_acc in
      let included =
        if violated_below (Oracle.Checker.probe ck v t) (t - 1) then begin
          prune ();
          None
        end
        else begin
          ignore (Oracle.Checker.push ck v t);
          let found =
            choose ~inst ~tick ~ck ~t ~bound sched_v (v :: committed)
              remaining tl
          in
          Oracle.Checker.pop ck;
          found
        end
      in
      match included with
      | Some _ as found -> found
      | None ->
          choose ~inst ~tick ~ck ~t ~bound sched_acc committed remaining tl)

(* ------------------------------------------------------------------ *)
(* Portfolio mode: root-split branch and bound over [jobs] domains.

   The first [k] inclusion/exclusion decisions of step 0 (does switch
   [i] flip at time 0 or not?) span a partition of the schedule space
   into [2^k] disjoint prefixes, dealt round-robin to the workers. Each
   worker runs the same iterative deepening as the single-domain solver
   but restricted to its prefixes, and the workers share

   - the best incumbent (makespan, schedule) through an [Atomic]: a
     worker never deepens to a bound that cannot beat the incumbent, so
     one worker's find prunes everyone else's remaining bounds;
   - the node budget through an [Atomic] counter, so the total explored
     work respects [budget] no matter how it splits across domains.

   A bound [m] is proven empty only once every prefix failed it, and
   every worker visits all its prefixes in ascending-bound order, so
   when the workers are done the incumbent is the global optimum —
   unless the shared budget or the wall-clock deadline tripped, in
   which case the incumbent (or the caller's hint) is reported
   [Feasible], exactly like the single-domain fallback. *)

type worker_verdict = Completed | Budget_hit

let solve_portfolio ~jobs ~budget ~timeout ~upper ~lower ~hint inst =
  let all = Instance.switches_to_update inst in
  let k =
    let rec ceil_log2 acc = if 1 lsl acc >= jobs then acc else ceil_log2 (acc + 1) in
    (* One extra split level gives each worker several prefixes to
       balance wildly uneven subtree sizes; cap at 2^6 prefixes. *)
    min (min (ceil_log2 0 + 1) 6) (List.length all)
  in
  let prefix_count = 1 lsl k in
  let prefix_switches = Array.of_list (List.filteri (fun i _ -> i < k) all) in
  let rest_switches = List.filteri (fun i _ -> i >= k) all in
  let explored = Atomic.make 0 in
  let deadline = Unix.gettimeofday () +. timeout in
  let budget_hit = Atomic.make false in
  let incumbent : (int * Schedule.t) option Atomic.t =
    Atomic.make
      (match hint with
      | Some s when Schedule.makespan s <= upper -> Some (Schedule.makespan s, s)
      | _ -> None)
  in
  let rec offer m sched =
    let seen = Atomic.get incumbent in
    let better = match seen with None -> true | Some (mi, _) -> m < mi in
    if better then
      if Atomic.compare_and_set incumbent seen (Some (m, sched)) then
        Obs.Counter.incr c_incumbent
      else offer m sched
  in
  let tick () =
    Obs.Counter.incr c_nodes;
    let n = Atomic.fetch_and_add explored 1 in
    if n >= budget then begin
      Atomic.set budget_hit true;
      raise Out_of_budget
    end;
    (* The deadline is wall-clock; sample it every few hundred nodes so
       the check does not dominate the node cost. *)
    if n land 0xff = 0 && Unix.gettimeofday () > deadline then begin
      Atomic.set budget_hit true;
      raise Out_of_budget
    end;
    if Atomic.get budget_hit then raise Out_of_budget
  in
  let search_prefix ~tick ~ck ~bound p =
    if bound = 1 then
      if p = prefix_count - 1 then begin
        (* Makespan 1 means everything flips at step 0; only the
           all-included prefix can express it. *)
        tick ();
        let adds = List.map (fun v -> (v, 0)) all in
        let sched =
          List.fold_left (fun s (v, t) -> Schedule.add v t s) Schedule.empty
            adds
        in
        let report = Oracle.Checker.probe_list ck adds in
        if Schedule.covers inst sched && report.Oracle.ok then Some sched
        else None
      end
      else None
    else begin
      (* Push the prefix's inclusion decisions onto the session, run the
         shared DFS over the rest, then pop what was pushed. A branch cut
         at depth [i] pops only its own pushes; {!Out_of_budget} escapes
         without popping, and the worker abandons the session. *)
      let rec build i sched committed pushed =
        if i = k then
          ( choose ~inst ~tick ~ck ~t:0 ~bound sched committed all
              rest_switches,
            pushed )
        else begin
          tick ();
          if p land (1 lsl i) <> 0 then begin
            let v = prefix_switches.(i) in
            let sched_v = Schedule.add v 0 sched in
            if violated_below (Oracle.Checker.probe ck v 0) (-1) then
              (None, pushed)
            else begin
              ignore (Oracle.Checker.push ck v 0);
              build (i + 1) sched_v (v :: committed) (pushed + 1)
            end
          end
          else build (i + 1) sched committed pushed
        end
      in
      let found, pushed = build 0 Schedule.empty [] 0 in
      for _ = 1 to pushed do
        Oracle.Checker.pop ck
      done;
      found
    end
  in
  let worker w =
    (* Each portfolio domain runs its own oracle session (checker state is
       single-domain); [nodes] is this worker's private share of the
       shared node count, surfaced through the trace sink. *)
    let ck = Oracle.Checker.create inst Schedule.empty in
    let nodes = ref 0 in
    let tick () =
      incr nodes;
      tick ()
    in
    let finish verdict =
      Obs.Point.emit p_worker
        [
          ("worker", Obs.Point.Int w);
          ("nodes", Obs.Point.Int !nodes);
          ( "verdict",
            Obs.Point.String
              (match verdict with
              | Completed -> "completed"
              | Budget_hit -> "budget_hit") );
        ];
      verdict
    in
    try
      let m = ref lower in
      let running = ref true in
      while !running do
        let cap =
          match Atomic.get incumbent with
          | Some (mi, _) -> min upper (mi - 1)
          | None -> upper
        in
        if !m > cap then running := false
        else begin
          let found = ref None in
          let p = ref w in
          while !found = None && !p < prefix_count do
            (match search_prefix ~tick ~ck ~bound:!m !p with
            | Some sched -> found := Some sched
            | None -> ());
            p := !p + jobs
          done;
          match !found with
          | Some sched ->
              offer (Schedule.makespan sched) sched;
              running := false
          | None -> incr m
        end
      done;
      finish Completed
    with Out_of_budget -> finish Budget_hit
  in
  let verdicts =
    Chronus_parallel.Pool.parallel_init ~jobs ~chunk:1 jobs worker
  in
  let complete = List.for_all (fun v -> v = Completed) verdicts in
  let best = Atomic.get incumbent in
  let outcome =
    if complete then
      match best with Some (_, sched) -> Optimal sched | None -> Infeasible
    else
      match best with
      | Some (_, sched) -> Feasible sched
      | None -> Unknown
  in
  (outcome, Atomic.get explored)

(* ------------------------------------------------------------------ *)

let solve ?(budget = 500_000) ?(timeout = 60.0) ?horizon ?hint ?(jobs = 1)
    inst =
  Obs.Span.with_h s_solve @@ fun () ->
  let start = Sys.time () in
  let wall_start = Unix.gettimeofday () in
  let explored = ref 0 in
  let finish ?nodes outcome =
    let makespan =
      match outcome with
      | Optimal s | Feasible s -> Some (Schedule.makespan s)
      | Infeasible | Unknown -> None
    in
    let elapsed =
      (* Multi-domain runs burn processor time [jobs] times faster than
         the wall; report what the caller actually waited. *)
      if jobs <= 1 then Sys.time () -. start
      else Unix.gettimeofday () -. wall_start
    in
    {
      outcome;
      makespan;
      nodes_explored = Option.value ~default:!explored nodes;
      elapsed;
    }
  in
  if Instance.is_trivial inst then finish (Optimal Schedule.empty)
  else begin
    (* The upper bound comes from the caller's [hint] (a known-consistent
       schedule, typically the greedy's) when available; otherwise the
       polynomial greedy supplies it lazily. *)
    let greedy_result =
      lazy
        (match hint with
        | Some s -> Greedy.Scheduled s
        | None -> Greedy.schedule ~mode:Greedy.Analytic inst)
    in
    let upper =
      match (horizon, hint) with
      | Some h, _ -> h
      | None, Some s -> Schedule.makespan s
      | None, None -> (
          match Lazy.force greedy_result with
          | Greedy.Scheduled s -> Schedule.makespan s
          | Greedy.Infeasible _ -> Feasibility.default_horizon inst)
    in
    let lower = max 1 (Mutp.lower_bound inst) in
    if jobs > 1 then begin
      let outcome, nodes =
        solve_portfolio ~jobs ~budget ~timeout ~upper ~lower ~hint inst
      in
      let outcome =
        match outcome with
        | Unknown -> (
            (* Only fall back on work already done, as below. *)
            if Lazy.is_val greedy_result then
              match Lazy.force greedy_result with
              | Greedy.Scheduled s -> Feasible s
              | Greedy.Infeasible _ -> Unknown
            else Unknown)
        | o -> o
      in
      finish ~nodes outcome
    end
    else begin
      let tick () =
        Obs.Counter.incr c_nodes;
        incr explored;
        if !explored > budget || Sys.time () -. start > timeout then
          raise Out_of_budget
      in
      let all = Instance.switches_to_update inst in
      (* One oracle session spans the whole deepening: each bound's DFS
         starts and (on a normal return) ends with the empty base, so the
         session carries its cohort cache across bounds. *)
      let ck = Oracle.Checker.create inst Schedule.empty in
      let deepen () =
        let rec at m =
          if m > upper then None
          else
            match dfs ~inst ~tick ~ck 0 Schedule.empty all m with
            | Some sched -> Some sched
            | None -> at (m + 1)
        in
        at lower
      in
      match deepen () with
      | Some sched ->
          Obs.Counter.incr c_incumbent;
          finish (Optimal sched)
      | None -> finish Infeasible
      | exception Out_of_budget -> (
          (* Only fall back on work already done: forcing a fresh greedy
             run here would defeat the budget. *)
          match hint with
          | Some s -> finish (Feasible s)
          | None ->
              if Lazy.is_val greedy_result then
                match Lazy.force greedy_result with
                | Greedy.Scheduled s -> finish (Feasible s)
                | Greedy.Infeasible _ -> finish Unknown
              else finish Unknown)
    end
  end

let makespan_of r = r.makespan
