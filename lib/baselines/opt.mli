(** OPT: the exact MUTP solver — branch and bound over timed schedules in
    the time-extended network, standing in for the integer program (3).

    Iterative deepening on the makespan [|T|]: for each candidate bound,
    a depth-first search walks the time steps in order, at each step
    choosing a subset of not-yet-updated switches to flip. Pruning uses
    the prefix property of the dynamic-flow model: a violation at step
    [s] is caused entirely by flips at steps [<= s], so a partial schedule
    exhibiting one below the search frontier can never be repaired and
    the branch dies. The first bound with a solution is optimal.

    Exponential in the worst case (MUTP is NP-complete); [budget] and
    [timeout] make runs at Fig. 10 sizes terminate with an honest
    [`Unknown]. *)

open Chronus_flow

type outcome =
  | Optimal of Schedule.t
  | Feasible of Schedule.t
      (** best schedule found before the budget ran out *)
  | Infeasible  (** no consistent schedule within the horizon *)
  | Unknown  (** budget ran out without finding any schedule *)

type result = {
  outcome : outcome;
  makespan : int option;
  nodes_explored : int;
  elapsed : float;  (** seconds of processor time *)
}

val solve :
  ?budget:int ->
  ?timeout:float ->
  ?horizon:int ->
  ?hint:Schedule.t ->
  ?jobs:int ->
  Instance.t ->
  result
(** [budget] caps explored search nodes (default 500_000); [timeout] caps
    processor seconds (default 60.0, the cut-off used in Fig. 10);
    [horizon] bounds the makespan (default: the hint's makespan, else the
    greedy's when it succeeds, else the sequential-with-drain bound).
    [hint] is a known-consistent schedule (typically the greedy's): it
    supplies the upper bound, seeds the portfolio's incumbent, and is the
    [Feasible] fallback when the budget runs out.

    [jobs] (default 1) selects the portfolio mode: the first step-0
    inclusion decisions are partitioned into disjoint prefixes dealt
    round-robin to [jobs] domains, which share the incumbent bound and
    the node budget through atomics. The default single-domain path is
    untouched and remains the reproducible reference — with [jobs > 1]
    the outcome class and the optimal makespan are identical, but
    [nodes_explored] varies with scheduling, [elapsed] measures wall
    clock rather than processor time, and [timeout] is a wall-clock
    deadline. *)

val makespan_of : result -> int option
