(** Heavy-traffic figure: a clean Chronus timed update under thousands
    of concurrent control-plane sessions.

    Each cell builds a k-ary fat-tree reroute instance (k=8 tiny, k=16
    otherwise) and spawns [conns] session fibers on the environment's
    deterministic runtime — every session loops ping (a no-op [Remove]
    dispatched through {!Chronus_exec.Exec_env.dispatch}, so it rides
    the same faulted control channel as the update's own commands),
    await the ack on its mailbox, think 100–300 virtual ms — while
    {!Chronus_exec.Timed_exec.launch} executes the timed update
    concurrently on the same engine. The quick and paper presets hold
    ten thousand and forty thousand live fibers respectively through
    the update's whole execution window.

    Per-session RNG lanes are keyed by [(k, conns, session)] and all
    timing is virtual, so every column except [wall_s] is bit-identical
    at any [CHRONUS_JOBS]. *)

type row = {
  conns : int;  (** concurrent session fibers *)
  switches : int;
  peak_fibers : int;
      (** runtime high-water of live fibers: sessions + per-switch
          channel fibers + the update's command fibers *)
  pings : int;  (** echo round-trips completed across all sessions *)
  rtt_p50_ms : float;  (** virtual-time switch RTT, median *)
  rtt_p99_ms : float;  (** virtual-time switch RTT, 99th percentile *)
  update_clean : bool;
      (** the greedy schedule was consistent, every command acked on the
          timed path, and the monitor saw no violations *)
  update_span_s : float;
  events : int;  (** engine events over the whole run *)
  wall_s : float;  (** wall-clock cell time (excluded from digests) *)
}

val name : string

val default_conns : Scale.t -> int list
(** Tiny: 500 and 2,000 sessions; quick: 2,000 and 10,000; paper:
    10,000 and 40,000. *)

val run : ?jobs:int -> ?scale:Scale.t -> ?conns:int list -> unit -> row list

val print : row list -> unit
