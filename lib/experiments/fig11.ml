open Chronus_topo
open Chronus_stats

type result = {
  switches : int;
  instances : int;
  chronus : Cdf.t;
  opt : Cdf.t;
  chronus_median : float;
  opt_median : float;
}

let name = "fig11-update-time-cdf"

let run ?jobs ?(scale = Scale.quick) ?(switches = 40) () =
  let spec = Scenario.spec switches in
  let trials =
    Chronus_parallel.Pool.parallel_init ?jobs scale.Scale.instances
      (fun i ->
        let rng = Rng.derive scale.Scale.seed [ 11; switches; i ] in
        let inst = Scenario.random_final ~rng spec in
        Trial.run ~scale ~rng inst)
  in
  (* The paper's CDF covers successful updates; infeasible instances
     have no finite update time. *)
  let clean = List.filter (fun t -> t.Trial.chronus_clean) trials in
  let chronus_samples =
    List.map (fun t -> t.Trial.chronus_makespan) clean
  in
  let opt_samples =
    List.map
      (fun t ->
        match t.Trial.opt_makespan with
        | Some m -> m
        | None -> t.Trial.chronus_makespan)
      clean
  in
  let chronus_samples =
    match chronus_samples with [] -> [ 0 ] | l -> l
  in
  let opt_samples = match opt_samples with [] -> [ 0 ] | l -> l in
  let chronus = Cdf.of_int_samples chronus_samples in
  let opt = Cdf.of_int_samples opt_samples in
  {
    switches;
    instances = Cdf.size chronus;
    chronus;
    opt;
    chronus_median = Cdf.inverse chronus 0.5;
    opt_median = Cdf.inverse opt 0.5;
  }

let print r =
  Printf.printf
    "# Fig. 11 — CDF of update time (time units), %d switches, %d samples\n"
    r.switches r.instances;
  let table = Table.create ~headers:[ "time units"; "Chronus F"; "OPT F" ] in
  let xs =
    List.sort_uniq compare
      (List.map fst (Cdf.points r.chronus) @ List.map fst (Cdf.points r.opt))
  in
  List.iter
    (fun x ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" x;
          Printf.sprintf "%.3f" (Cdf.eval r.chronus x);
          Printf.sprintf "%.3f" (Cdf.eval r.opt x);
        ])
    xs;
  Table.print table;
  Printf.printf "medians: Chronus %.1f, OPT %.1f\n" r.chronus_median
    r.opt_median
