(** Ablation study of the scheduler's design choices (not a paper figure).

    Three dimensions, each over the same instance population:

    - engine: the oracle-gated exact greedy vs the polynomial analytic
      greedy — success rate, makespan and candidate checks;
    - dependency guidance: chain heads first vs a plain sweep of every
      remaining switch (Algorithm 3's contribution to check counts);
    - waiting: event-jumping drain-aware waits vs the naive one-at-a-time
      stepping the makespan objective implies (quantified by the waits
      counter). *)

type row = {
  instances : int;
  switches : int;
  (* engines *)
  exact_success : int;
  analytic_success : int;
  agree : int;  (** same feasibility verdict *)
  exact_mean_makespan : float;
  analytic_mean_makespan : float;
  exact_mean_checks : float;
  analytic_mean_checks : float;
  mean_waits : float;
}

val run : ?jobs:int -> ?scale:Scale.t -> unit -> row list
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    rows. *)

val print : row list -> unit
val name : string
