(** Update-service experiment: throughput and tail latency of the
    transactional update manager versus the offered update rate.

    Each row fixes an offered rate of [r] requests per processing round
    and drives [Chronus_service.Service] for several rounds over a
    shared random WAN carrying unit-demand flows on min-hop routes.
    Every request fails one random link of a random flow's current path
    and asks for the min-hop detour, so requests naturally contend for
    the WAN's chords: as [r] grows, more footprints collide and the
    serialized and denied columns climb while per-request latency
    stretches — the saturation behaviour the figure exists to show.

    The request stream is derived from coordinates keyed by the rate
    {e value} and round index, and the service itself is deterministic
    at any job count, so every column except the wall-clock ones
    (throughput, p50/p99 latency) is bit-identical at any
    [CHRONUS_JOBS] — [test/suite_service.ml] asserts this, and the
    bench report (EXPERIMENTS.md) excludes this figure from the
    determinism digest exactly like the other wall-measured figures. *)

type row = {
  offered_per_round : int;  (** the x-axis: requests submitted per round *)
  rounds : int;
  flows : int;  (** flows sharing the WAN *)
  submitted : int;  (** [offered_per_round * rounds] *)
  committed : int;
  serialized : int;
      (** requests that waited out at least one conflicting batch *)
  serialized_rate : float;  (** [serialized /. submitted]; deterministic *)
  denied : int;  (** door denials plus denied and aborted transactions *)
  batches : int;  (** admission batches across all rounds *)
  full_evals : int;
      (** from-scratch oracle evaluations the cell cost — checker-pool
          misses only, now that transactions run over pooled persistent
          sessions. Depends on pool scheduling (a cold pool misses once
          per concurrently active worker), so this column joins the
          wall-clock ones outside the determinism digest. *)
  full_evals_per_txn : float;
      (** [full_evals /. max 1 committed]; the bench asserts this stays
          strictly below 1 *)
  mean_makespan : float;
      (** mean schedule makespan of committed non-trivial transactions *)
  throughput_per_s : float;  (** committed transactions per wall second *)
  p50_ms : float;  (** submit-to-verdict latency percentiles, wall ms *)
  p99_ms : float;
}

val name : string

val run :
  ?jobs:int -> ?scale:Scale.t -> ?rates:int list -> unit -> row list
(** [rates] defaults to [[1; 4]] at tiny scale and [[1; 2; 4; 8; 16]]
    otherwise. The WAN has 12 sites and 6 flows at tiny scale, 32 sites
    and 16 flows otherwise; rounds scale with [scale.instances]. *)

val print : row list -> unit
