open Chronus_flow
open Chronus_core
open Chronus_topo

type row = {
  instances : int;
  switches : int;
  exact_success : int;
  analytic_success : int;
  agree : int;
  exact_mean_makespan : float;
  analytic_mean_makespan : float;
  exact_mean_checks : float;
  analytic_mean_checks : float;
  mean_waits : float;
}

let name = "ablation-scheduler-engines"

(* Everything one trial contributes to the aggregates: computed in
   parallel, folded in index order afterwards. *)
type trial = {
  t_exact_ok : bool;
  t_analytic_ok : bool;
  t_agree : bool;
  t_e_span : float option;
  t_a_span : float option;
  t_e_checks : float;
  t_a_checks : float;
  t_waits : float;
}

let run ?jobs ?(scale = Scale.quick) () =
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let trials =
        Chronus_parallel.Pool.parallel_init ?jobs scale.Scale.instances
          (fun i ->
            let rng = Rng.derive scale.Scale.seed [ 99; n; i ] in
            let inst = Scenario.mixed ~rng spec in
            let e_out, e_stats =
              Greedy.schedule_with_stats ~mode:Greedy.Exact inst
            in
            let a_out, a_stats =
              Greedy.schedule_with_stats ~mode:Greedy.Analytic inst
            in
            let span = function
              | Greedy.Scheduled s -> Some (float_of_int (Schedule.makespan s))
              | Greedy.Infeasible _ -> None
            in
            {
              t_exact_ok = span e_out <> None;
              t_analytic_ok = span a_out <> None;
              t_agree = (span e_out <> None) = (span a_out <> None);
              t_e_span = span e_out;
              t_a_span = span a_out;
              t_e_checks = float_of_int e_stats.Greedy.candidates_checked;
              t_a_checks = float_of_int a_stats.Greedy.candidates_checked;
              t_waits = float_of_int e_stats.Greedy.waits;
            })
      in
      let count f = List.length (List.filter f trials) in
      let mean = function
        | [] -> 0.
        | l -> Chronus_stats.Descriptive.mean l
      in
      let mean_of f = mean (List.filter_map f trials) in
      {
        instances = scale.Scale.instances;
        switches = n;
        exact_success = count (fun t -> t.t_exact_ok);
        analytic_success = count (fun t -> t.t_analytic_ok);
        agree = count (fun t -> t.t_agree);
        exact_mean_makespan = mean_of (fun t -> t.t_e_span);
        analytic_mean_makespan = mean_of (fun t -> t.t_a_span);
        exact_mean_checks = mean (List.map (fun t -> t.t_e_checks) trials);
        analytic_mean_checks = mean (List.map (fun t -> t.t_a_checks) trials);
        mean_waits = mean (List.map (fun t -> t.t_waits) trials);
      })
    scale.Scale.switch_counts

let print rows =
  let open Chronus_stats in
  print_endline
    "# Ablation — exact (oracle-gated) vs analytic (polynomial) greedy";
  let table =
    Table.create
      ~headers:
        [
          "switches"; "n"; "exact ok"; "analytic ok"; "agree";
          "|T| exact"; "|T| analytic"; "checks exact"; "checks analytic";
          "waits";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.instances;
          string_of_int r.exact_success;
          string_of_int r.analytic_success;
          string_of_int r.agree;
          Printf.sprintf "%.1f" r.exact_mean_makespan;
          Printf.sprintf "%.1f" r.analytic_mean_makespan;
          Printf.sprintf "%.0f" r.exact_mean_checks;
          Printf.sprintf "%.0f" r.analytic_mean_checks;
          Printf.sprintf "%.1f" r.mean_waits;
        ])
    rows;
  Table.print table
