open Chronus_graph
open Chronus_sim
open Chronus_flow
open Chronus_topo
open Chronus_exec
module Obs = Chronus_obs.Obs

(* Scale figure: drive all three executors on big topologies — fat-trees
   (k = 4..32) and B4-like WANs — with compiled-prefix base forwarding,
   and report table compression, simulator throughput, per-lookup cost,
   and end-to-end update time versus topology size. Wall-clock fields
   are measured, so this figure (like fig10) stays out of the benchmark
   digest; the event/rule/span columns are deterministic. *)

type kind = Fat_tree of int | B4 | Wan of int

type row = {
  topo : string;
  switches : int;
  links : int;
  rules_exact : int;
  rules_compiled : int;
  compression : float;
  table_words : int;
  updates : int;
  events : int;
  chronus_span_s : float;
  tp_span_s : float;
  or_span_s : float;
  chronus_clean : bool;
  events_per_s : float;
  lookup_ns : float;
}

let name = "fig-scale"

(* Background forwarding state: every holder switch hosts this many
   addressable endpoints; an exact-per-destination scheme would install
   one rule per (switch, endpoint). *)
let hosts_per_holder = 4

let kind_label = function
  | Fat_tree k -> Printf.sprintf "fat-tree k=%d" k
  | B4 -> "b4"
  | Wan n -> Printf.sprintf "wan n=%d" n

(* A stable per-kind coordinate for RNG lanes, keyed by the kind's value
   (not its position in the cell list) so adding cells never perturbs
   existing rows. *)
let kind_code = function
  | Fat_tree k -> k
  | B4 -> 1_000
  | Wan n -> 2_000 + n

let addressing g = function
  | Fat_tree k -> Addressing.fat_tree ~hosts_per_holder k
  | B4 | Wan _ -> Addressing.flat ~hosts_per_holder ~holders:(Graph.nodes g) ()

(* Next hop of switch [v] towards holder [holder]. Fat-trees route
   analytically (up to a deterministic aggregation/core choice, down by
   the destination's pod/edge coordinates) — 512 Dijkstras over 1,280
   nodes would dominate the k=32 cell otherwise; flat topologies use
   the min-delay tree rooted at each holder, as before. *)
let fat_tree_forward k v holder =
  let half = k / 2 in
  let core_count = half * half in
  let agg p a = core_count + (p * k) + a in
  let edge p e = core_count + (p * k) + half + e in
  if v = holder then Flow_table.To_host
  else begin
    let t = holder - core_count in
    let dpod = t / k and dedge = (t mod k) - half in
    if v < core_count then
      (* Core j hangs off aggregation index j/half in every pod. *)
      Flow_table.Out (agg dpod (v / half))
    else
      let tv = v - core_count in
      let pod = tv / k and r = tv mod k in
      if r < half then
        (* Aggregation switch: down into its own pod, else to a core. *)
        if pod = dpod then Flow_table.Out (edge dpod dedge)
        else Flow_table.Out (r * half)
      else (* Edge switch: everything non-local goes up. *)
        Flow_table.Out (agg pod 0)
  end

let forward_fun g kind holders =
  match kind with
  | Fat_tree k -> fun v holder -> Some (fat_tree_forward k v holder)
  | B4 | Wan _ ->
      let trees = List.map (fun h -> (h, Shortest.dijkstra g h)) holders in
      fun v holder ->
        if v = holder then Some Flow_table.To_host
        else
          (* The graph is symmetric, so the predecessor on the
             holder->v tree is v's next hop towards the holder. *)
          Option.map
            (fun (_, pred) -> Flow_table.Out pred)
            (Hashtbl.find_opt (List.assoc holder trees) v)

(* Compile every switch's complete host-address -> action function into
   an aggregated prefix table. The compiler may emit a single length-0
   rule at the root; host addresses all carry the marker bit, so that
   rule is re-anchored at the marker subtree and the compiled base can
   never catch a raw switch-id destination — executor semantics on the
   instance's own flow are untouched. *)
let marker_root = 1 lsl (Addressing.width - 1)

let clamp_root (prefix, len, action) =
  if len = 0 then (marker_root, 1, action) else (prefix, len, action)

let compiled_preinstall g kind addressing =
  let holders = Addressing.holders addressing in
  let forward = forward_fun g kind holders in
  let mods = ref [] in
  let total = ref 0 in
  List.iter
    (fun v ->
      let bindings =
        List.concat_map
          (fun h ->
            match forward v h with
            | None -> []
            | Some fwd ->
                let action = { Flow_table.set_tag = None; forward = fwd } in
                List.init hosts_per_holder (fun i ->
                    (Addressing.addr_of addressing ~holder:h ~host:i, action)))
          holders
      in
      let compiled = List.map clamp_root (Table_compiler.compile bindings) in
      total := !total + List.length compiled;
      List.iter
        (fun (prefix, len, action) ->
          mods :=
            ( v,
              Controller.Install_prefix
                {
                  priority = 5;
                  prefix;
                  len;
                  tag_match = Flow_table.Any_tag;
                  action;
                } )
            :: !mods)
        compiled)
    (Graph.nodes g);
  (List.rev !mods, !total)

let instance_of ~seed kind =
  let rng = Rng.derive seed [ 14; kind_code kind ] in
  match kind with
  | Fat_tree k -> Scenario.fat_tree_reroute ~rng k
  | B4 ->
      let params = { Topology.capacity = 2; delay = 1 } in
      Scenario.detour ~rng (Topology.b4 ~params ())
  | Wan n ->
      let params = { Topology.capacity = 2; delay = 1 } in
      Scenario.detour ~rng (Topology.wan ~params ~rng n)

(* Per-lookup cost on a freshly loaded network: random (switch, host
   address) probes against the compiled tables; also the deterministic
   table-memory estimate over the same tables. *)
let measure_tables ~seed ~code g preinstall addrs =
  let engine = Engine.create () in
  let net = Network.create engine in
  List.iter (fun v -> Network.add_switch net v) (Graph.nodes g);
  List.iter
    (fun (switch, mod_) ->
      match mod_ with
      | Controller.Install_prefix { priority; prefix; len; tag_match; action } ->
          ignore
            (Flow_table.install_prefix (Network.table net switch) ~priority
               ~prefix ~len ~tag_match action)
      | _ -> ())
    preinstall;
  let words =
    List.fold_left
      (fun acc v -> acc + Flow_table.memory_words (Network.table net v))
      0 (Graph.nodes g)
  in
  let nodes = Array.of_list (Graph.nodes g) in
  let addrs = Array.of_list addrs in
  let rng = Rng.derive seed [ 16; code ] in
  let m = 100_000 in
  let queries =
    Array.init m (fun _ ->
        ( nodes.(Rng.int rng (Array.length nodes)),
          addrs.(Rng.int rng (Array.length addrs)) ))
  in
  let t0 = Obs.clock_ns () in
  Array.iter
    (fun (v, dst) ->
      ignore (Flow_table.lookup (Network.table net v) ~dst ~tag:None))
    queries;
  (float_of_int (Obs.clock_ns () - t0) /. float_of_int m, words)

(* Short warmup/drain, as in fig_robust: the figure multiplies three
   executors by several big topologies. *)
let config ~preinstall =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    preinstall;
  }

let run_cell ~seed kind =
  let inst = instance_of ~seed kind in
  let g = inst.Instance.graph in
  let addressing = addressing g kind in
  let addrs = Addressing.all_addrs addressing in
  let preinstall, rules_compiled = compiled_preinstall g kind addressing in
  let rules_exact = Graph.node_count g * List.length addrs in
  let config = config ~preinstall in
  let code = kind_code kind in
  let exec_seed lane = Rng.int (Rng.derive seed [ 15; code; lane ]) 0x3FFFFFFF in
  let time f =
    let t0 = Obs.clock_ns () in
    let r = f () in
    (r, float_of_int (Obs.clock_ns () - t0) /. 1e9)
  in
  let chronus, c_wall =
    time (fun () -> Timed_exec.run ~config ~seed:(exec_seed 0) inst)
  in
  let tp, t_wall =
    time (fun () -> Two_phase_exec.run ~config ~seed:(exec_seed 1) inst)
  in
  let ord, o_wall =
    time (fun () -> Order_exec.run ~config ~seed:(exec_seed 2) inst)
  in
  let events =
    chronus.Timed_exec.result.Exec_env.events
    + tp.Two_phase_exec.result.Exec_env.events
    + ord.Order_exec.result.Exec_env.events
  in
  let wall = c_wall +. t_wall +. o_wall in
  let lookup_ns, table_words = measure_tables ~seed ~code g preinstall addrs in
  {
    topo = kind_label kind;
    switches = Graph.node_count g;
    links = List.length (Graph.edges g);
    rules_exact;
    rules_compiled;
    compression =
      (if rules_compiled > 0 then
         float_of_int rules_exact /. float_of_int rules_compiled
       else 0.);
    table_words;
    updates = List.length (Instance.updates inst);
    events;
    chronus_span_s =
      Sim_time.to_sec chronus.Timed_exec.result.Exec_env.update_span;
    tp_span_s = Sim_time.to_sec tp.Two_phase_exec.result.Exec_env.update_span;
    or_span_s = Sim_time.to_sec ord.Order_exec.result.Exec_env.update_span;
    chronus_clean =
      Monitor.no_violations chronus.Timed_exec.result.Exec_env.violations;
    events_per_s = (if wall > 0. then float_of_int events /. wall else 0.);
    lookup_ns;
  }

let default_kinds scale =
  if scale.Scale.instances <= 4 then [ Fat_tree 4; Wan 8 ]
  else if scale.Scale.instances <= 10 then
    [ Fat_tree 4; Fat_tree 6; Fat_tree 8; Fat_tree 16; B4; Wan 16; Wan 32 ]
  else
    [
      Fat_tree 4; Fat_tree 8; Fat_tree 12; Fat_tree 16; Fat_tree 32; B4;
      Wan 32; Wan 64; Wan 128;
    ]

let run ?jobs ?(scale = Scale.quick) ?kinds () =
  let kinds = Option.value ~default:(default_kinds scale) kinds in
  let seed = scale.Scale.seed in
  (* One cell per topology; each owns RNG coordinates keyed by the
     kind's value, so rows are bit-identical at any job count and under
     any cell mix (wall-clock columns excepted, by nature). *)
  Chronus_parallel.Pool.parallel_map ?jobs (fun kind -> run_cell ~seed kind) kinds

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "topology";
          "switches";
          "links";
          "rules exact";
          "compiled";
          "compr";
          "words";
          "updates";
          "events";
          "events/s";
          "lookup ns";
          "Chronus s";
          "TP s";
          "OR s";
          "clean";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.topo;
          string_of_int r.switches;
          string_of_int r.links;
          string_of_int r.rules_exact;
          string_of_int r.rules_compiled;
          Printf.sprintf "%.1fx" r.compression;
          string_of_int r.table_words;
          string_of_int r.updates;
          string_of_int r.events;
          Printf.sprintf "%.0f" r.events_per_s;
          Printf.sprintf "%.0f" r.lookup_ns;
          Printf.sprintf "%.2f" r.chronus_span_s;
          Printf.sprintf "%.2f" r.tp_span_s;
          Printf.sprintf "%.2f" r.or_span_s;
          (if r.chronus_clean then "yes" else "no");
        ])
    rows;
  print_endline
    "# Scale — compiled-table compression and update time vs. topology size";
  Table.print table
