open Chronus_graph
open Chronus_sim
open Chronus_flow
open Chronus_topo
open Chronus_exec
module Obs = Chronus_obs.Obs

(* Scale figure: drive all three executors on big topologies — fat-trees
   (k = 4..16) and B4-like WANs — with realistic background rule counts,
   and report simulator throughput, per-lookup cost, and end-to-end
   update time versus topology size. Wall-clock fields are measured, so
   this figure (like fig10) stays out of the benchmark digest; the
   event/rule/span columns are deterministic. *)

type kind = Fat_tree of int | B4 | Wan of int

type row = {
  topo : string;
  switches : int;
  links : int;
  rules : int;  (** installed network-wide before the update starts *)
  updates : int;  (** switches the reroute touches *)
  events : int;  (** engine events across the three executor runs *)
  chronus_span_s : float;
  tp_span_s : float;
  or_span_s : float;
  chronus_clean : bool;
  events_per_s : float;  (** wall-measured sim throughput *)
  lookup_ns : float;  (** wall-measured per-lookup cost on loaded tables *)
}

let name = "fig-scale"

(* Background ballast: every holder switch announces this many "host
   prefix" destinations; every switch installs one rule per prefix. *)
let prefixes_per_holder = 4

let kind_label = function
  | Fat_tree k -> Printf.sprintf "fat-tree k=%d" k
  | B4 -> "b4"
  | Wan n -> Printf.sprintf "wan n=%d" n

(* A stable per-kind coordinate for RNG lanes, keyed by the kind's value
   (not its position in the cell list) so adding cells never perturbs
   existing rows. *)
let kind_code = function
  | Fat_tree k -> k
  | B4 -> 1_000
  | Wan n -> 2_000 + n

(* Prefix-announcing switches: the edge layer of a fat-tree, every site
   of a WAN. *)
let prefix_holders g = function
  | Fat_tree k ->
      let half = k / 2 in
      let core_count = half * half in
      List.concat_map
        (fun pod -> List.init half (fun i -> core_count + (pod * k) + half + i))
        (List.init k Fun.id)
  | B4 | Wan _ -> Graph.nodes g

(* One rule per (switch, prefix): forward towards the prefix's holder
   along the min-delay tree, deliver at the holder. Prefix ids live
   above every node id, so the ballast never collides with the
   instance's own destination rules. *)
let preinstall_for g ~holders ~base =
  let nodes = Graph.nodes g in
  let mods = ref [] in
  List.iteri
    (fun h holder ->
      let tree = Shortest.dijkstra g holder in
      for p = 0 to prefixes_per_holder - 1 do
        let dst = base + (h * prefixes_per_holder) + p in
        List.iter
          (fun v ->
            match Hashtbl.find_opt tree v with
            | None -> ()
            | Some (_, pred) ->
                (* The graph is symmetric, so the predecessor on the
                   holder->v tree is v's next hop towards the holder. *)
                let forward =
                  if v = holder then Flow_table.To_host else Flow_table.Out pred
                in
                mods :=
                  ( v,
                    Controller.Install
                      {
                        priority = 5;
                        dst;
                        tag_match = Flow_table.Any_tag;
                        action = { Flow_table.set_tag = None; forward };
                      } )
                  :: !mods
          )
          nodes
      done)
    holders;
  List.rev !mods

let instance_of ~seed kind =
  let rng = Rng.derive seed [ 14; kind_code kind ] in
  match kind with
  | Fat_tree k -> Scenario.fat_tree_reroute ~rng k
  | B4 ->
      let params = { Topology.capacity = 2; delay = 1 } in
      Scenario.detour ~rng (Topology.b4 ~params ())
  | Wan n ->
      let params = { Topology.capacity = 2; delay = 1 } in
      Scenario.detour ~rng (Topology.wan ~params ~rng n)

(* Per-lookup cost on a freshly loaded network: random (switch, prefix)
   probes against tables carrying the cell's full ballast. *)
let measure_lookup_ns ~seed ~code g preinstall ~base ~nprefixes =
  let engine = Engine.create () in
  let net = Network.create engine in
  List.iter (fun v -> Network.add_switch net v) (Graph.nodes g);
  List.iter
    (fun (switch, mod_) ->
      match mod_ with
      | Controller.Install { priority; dst; tag_match; action } ->
          ignore
            (Flow_table.install (Network.table net switch) ~priority ~dst
               ~tag_match action)
      | _ -> ())
    preinstall;
  let nodes = Array.of_list (Graph.nodes g) in
  let rng = Rng.derive seed [ 16; code ] in
  let m = 100_000 in
  let queries =
    Array.init m (fun _ ->
        (nodes.(Rng.int rng (Array.length nodes)), base + Rng.int rng nprefixes))
  in
  let t0 = Obs.clock_ns () in
  Array.iter
    (fun (v, dst) ->
      ignore (Flow_table.lookup (Network.table net v) ~dst ~tag:None))
    queries;
  float_of_int (Obs.clock_ns () - t0) /. float_of_int m

(* Short warmup/drain, as in fig_robust: the figure multiplies three
   executors by several big topologies. *)
let config ~preinstall =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    preinstall;
  }

let run_cell ~seed kind =
  let inst = instance_of ~seed kind in
  let g = inst.Instance.graph in
  let holders = prefix_holders g kind in
  let base = 1 + List.fold_left max 0 (Graph.nodes g) in
  let preinstall = preinstall_for g ~holders ~base in
  let config = config ~preinstall in
  let code = kind_code kind in
  let exec_seed lane = Rng.int (Rng.derive seed [ 15; code; lane ]) 0x3FFFFFFF in
  let time f =
    let t0 = Obs.clock_ns () in
    let r = f () in
    (r, float_of_int (Obs.clock_ns () - t0) /. 1e9)
  in
  let chronus, c_wall =
    time (fun () -> Timed_exec.run ~config ~seed:(exec_seed 0) inst)
  in
  let tp, t_wall =
    time (fun () -> Two_phase_exec.run ~config ~seed:(exec_seed 1) inst)
  in
  let ord, o_wall =
    time (fun () -> Order_exec.run ~config ~seed:(exec_seed 2) inst)
  in
  let events =
    chronus.Timed_exec.result.Exec_env.events
    + tp.Two_phase_exec.result.Exec_env.events
    + ord.Order_exec.result.Exec_env.events
  in
  let wall = c_wall +. t_wall +. o_wall in
  let nprefixes = List.length holders * prefixes_per_holder in
  {
    topo = kind_label kind;
    switches = Graph.node_count g;
    links = List.length (Graph.edges g);
    rules = List.length preinstall + List.length inst.Instance.p_init;
    updates = List.length (Instance.updates inst);
    events;
    chronus_span_s =
      Sim_time.to_sec chronus.Timed_exec.result.Exec_env.update_span;
    tp_span_s = Sim_time.to_sec tp.Two_phase_exec.result.Exec_env.update_span;
    or_span_s = Sim_time.to_sec ord.Order_exec.result.Exec_env.update_span;
    chronus_clean =
      Monitor.no_violations chronus.Timed_exec.result.Exec_env.violations;
    events_per_s = (if wall > 0. then float_of_int events /. wall else 0.);
    lookup_ns = measure_lookup_ns ~seed ~code g preinstall ~base ~nprefixes;
  }

let default_kinds scale =
  if scale.Scale.instances <= 4 then [ Fat_tree 4; Wan 8 ]
  else if scale.Scale.instances <= 10 then
    [ Fat_tree 4; Fat_tree 6; Fat_tree 8; B4; Wan 16; Wan 32 ]
  else
    [
      Fat_tree 4; Fat_tree 8; Fat_tree 12; Fat_tree 16; B4; Wan 32; Wan 64;
      Wan 128;
    ]

let run ?jobs ?(scale = Scale.quick) ?kinds () =
  let kinds = Option.value ~default:(default_kinds scale) kinds in
  let seed = scale.Scale.seed in
  (* One cell per topology; each owns RNG coordinates keyed by the
     kind's value, so rows are bit-identical at any job count and under
     any cell mix (wall-clock columns excepted, by nature). *)
  Chronus_parallel.Pool.parallel_map ?jobs (fun kind -> run_cell ~seed kind) kinds

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "topology";
          "switches";
          "links";
          "rules";
          "updates";
          "events";
          "events/s";
          "lookup ns";
          "Chronus s";
          "TP s";
          "OR s";
          "clean";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.topo;
          string_of_int r.switches;
          string_of_int r.links;
          string_of_int r.rules;
          string_of_int r.updates;
          string_of_int r.events;
          Printf.sprintf "%.0f" r.events_per_s;
          Printf.sprintf "%.0f" r.lookup_ns;
          Printf.sprintf "%.2f" r.chronus_span_s;
          Printf.sprintf "%.2f" r.tp_span_s;
          Printf.sprintf "%.2f" r.or_span_s;
          (if r.chronus_clean then "yes" else "no");
        ])
    rows;
  print_endline
    "# Scale — simulator throughput and update time vs. topology size";
  Table.print table
