(** Fig. 11: CDF of the update time (the makespan [|T|], in time units)
    at 40 switches, Chronus vs OPT. *)

open Chronus_stats

type result = {
  switches : int;
  instances : int;
  chronus : Cdf.t;
  opt : Cdf.t;
  chronus_median : float;
  opt_median : float;
}

val run : ?jobs:int -> ?scale:Scale.t -> ?switches:int -> unit -> result
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    result. *)

val print : result -> unit
val name : string
