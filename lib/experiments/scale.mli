(** Experiment scale presets. The paper averages over at least 30 runs of
    500 update instances on an i5-2400; [quick] keeps `dune runtest` and
    the benchmark executable fast, [paper] approaches the published scale
    (minutes of compute), and every field can be overridden. *)

type t = {
  instances : int;  (** update instances per data point (Figs. 7–9, 11) *)
  switch_counts : int list;  (** the x-axis of Figs. 7–9 *)
  big_switch_counts : int list;  (** the x-axis of Fig. 10 *)
  opt_budget : int;  (** search-node budget per OPT call *)
  opt_timeout : float;  (** seconds per OPT call *)
  or_budget : int;  (** search-node budget per exact OR call *)
  baseline_cap : float;  (** Fig. 10 cut-off in seconds (paper: 60) *)
  seed : int;
}

val quick : t
val paper : t

val tiny : t
(** Seconds-scale preset for CI smoke runs and the test suite. *)

val parse : string -> t
(** ["tiny"], ["quick"] or ["paper"].
    @raise Invalid_argument otherwise. *)
