open Chronus_flow
open Chronus_core
open Chronus_baselines
open Chronus_topo
module Obs = Chronus_obs.Obs

let s_run = Obs.Span.v "trial.run"

type t = {
  inst : Instance.t;
  updates : int;
  chronus_clean : bool;
  chronus_congested_links : int;
  chronus_makespan : int;
  chronus_rules : int;
  opt_clean : bool;
  opt_makespan : int option;
  opt_proved : bool;
  or_rounds : int;
  or_clean : bool;
  or_congested_links : int;
  tp_rules : int;
}

let or_gap = 8

let run ?(with_opt = true) ~scale ~rng inst =
  Obs.Span.with_h s_run @@ fun () ->
  (* The polynomial engine is what the paper runs at scale; its results
     are still oracle-validated (Greedy re-derives in exact mode on the
     rare validation miss). *)
  let { Fallback.schedule = chronus_schedule; clean = chronus_clean } =
    Fallback.schedule ~mode:Greedy.Analytic inst
  in
  let chronus_report = Oracle.evaluate inst chronus_schedule in
  let opt_clean, opt_makespan, opt_proved =
    if not with_opt then (chronus_clean, None, false)
    else begin
      let hint = if chronus_clean then Some chronus_schedule else None in
      let r =
        Opt.solve ~budget:scale.Scale.opt_budget
          ~timeout:scale.Scale.opt_timeout ?hint inst
      in
      match r.Opt.outcome with
      | Opt.Optimal s -> (true, Some (Schedule.makespan s), true)
      | Opt.Feasible s -> (true, Some (Schedule.makespan s), false)
      | Opt.Infeasible | Opt.Unknown ->
          (* Execute the same best-effort schedule Chronus would. *)
          (chronus_clean, None, r.Opt.outcome = Opt.Infeasible)
    end
  in
  let or_result =
    Order_replacement.minimum_rounds ~budget:scale.Scale.or_budget inst
  in
  let rounds =
    match or_result.Order_replacement.rounds with
    | Some r -> r
    | None -> [ Order_replacement.replaceable_switches inst ]
  in
  let or_schedule =
    Order_replacement.schedule_of_rounds ~gap:or_gap
      ~jitter:(fun ~round:_ _ -> Rng.int rng or_gap)
      rounds
  in
  let or_report = Oracle.evaluate inst or_schedule in
  {
    inst;
    updates = Instance.update_count inst;
    chronus_clean;
    chronus_congested_links = List.length chronus_report.Oracle.congested;
    chronus_makespan = Schedule.makespan chronus_schedule;
    chronus_rules = Two_phase.chronus_rule_count inst;
    opt_clean;
    opt_makespan;
    opt_proved;
    or_rounds = List.length rounds;
    or_clean = or_report.Oracle.ok;
    or_congested_links = List.length or_report.Oracle.congested;
    tp_rules = (Two_phase.rule_count inst).Two_phase.transition_peak;
  }
