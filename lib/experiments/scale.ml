type t = {
  instances : int;
  switch_counts : int list;
  big_switch_counts : int list;
  opt_budget : int;
  opt_timeout : float;
  or_budget : int;
  baseline_cap : float;
  seed : int;
}

let quick =
  {
    instances = 10;
    switch_counts = [ 10; 20; 30; 40; 50; 60 ];
    big_switch_counts = [ 1_000; 2_000; 3_000 ];
    opt_budget = 1_500;
    opt_timeout = 0.25;
    or_budget = 5_000;
    baseline_cap = 2.0;
    seed = 42;
  }

let paper =
  {
    instances = 500;
    switch_counts = [ 10; 20; 30; 40; 50; 60 ];
    big_switch_counts = [ 1_000; 2_000; 3_000; 4_000; 5_000; 6_000 ];
    opt_budget = 2_000_000;
    opt_timeout = 60.0;
    or_budget = 2_000_000;
    baseline_cap = 60.0;
    seed = 42;
  }

let tiny =
  {
    instances = 4;
    switch_counts = [ 6; 10 ];
    big_switch_counts = [ 40 ];
    opt_budget = 300;
    opt_timeout = 0.1;
    or_budget = 2_000;
    baseline_cap = 0.5;
    seed = 42;
  }

let parse = function
  | "tiny" -> tiny
  | "quick" -> quick
  | "paper" -> paper
  | other -> invalid_arg (Printf.sprintf "Scale.parse: unknown preset %S" other)
