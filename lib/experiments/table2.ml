open Chronus_graph
open Chronus_flow
open Chronus_sim
open Chronus_exec

type result = {
  source_before : string;
  source_during : string;
  destination_before : string;
  destination_during : string;
}

let name = "table2-flow-tables"

(* The 12-switch emulation topology: R1 is the source, R12 the
   destination, and the update reverses the middle of the route. *)
let instance () =
  let p_init = List.init 12 (fun i -> i + 1) in
  let p_fin = [ 1; 2; 7; 6; 5; 4; 3; 8; 9; 10; 11; 12 ] in
  let g = Graph.create () in
  List.iter
    (fun p ->
      List.iter
        (fun (u, v) ->
          if not (Graph.mem_edge g u v) then
            Graph.add_edge ~capacity:5 ~delay:1 g u v)
        (Path.edges p))
    [ p_init; p_fin ];
  Instance.create ~graph:g ~demand:5 ~p_init ~p_fin

let dump table = Format.asprintf "%a" Flow_table.pp table

(* Render the two switches' tables concurrently: each dump reads only
   its own flow table, so the pair is safe to fan out. *)
let dump_pair ?jobs net src dst =
  match
    Chronus_parallel.Pool.parallel_map ?jobs
      (fun v -> dump (Network.table net v))
      [ src; dst ]
  with
  | [ s; d ] -> (s, d)
  | _ -> assert false

let run ?jobs () =
  let inst = instance () in
  let env = Exec_env.build ~tag_initial:(Some 1) inst in
  let src = Instance.source inst and dst = Instance.destination inst in
  let source_before, destination_before =
    dump_pair ?jobs env.Exec_env.net src dst
  in
  (* Mid two-phase transition: version-2 rules installed everywhere along
     the final path, ingress already stamping the new tag. *)
  List.iter
    (fun v ->
      match Instance.new_next inst v with
      | None -> ()
      | Some w ->
          ignore
            (Flow_table.install
               (Network.table env.Exec_env.net v)
               ~priority:20 ~dst
               ~tag_match:(Flow_table.Tag 2)
               { Flow_table.set_tag = None; forward = Flow_table.Out w }))
    (List.filter (fun v -> v <> dst) inst.Instance.p_fin);
  ignore
    (Flow_table.modify_actions
       (Network.table env.Exec_env.net src)
       ~dst ~tag_match:Flow_table.Any_tag
       {
         Flow_table.set_tag = Some 2;
         forward =
           (match Instance.new_next inst src with
           | Some w -> Flow_table.Out w
           | None -> assert false);
       });
  let source_during, destination_during =
    dump_pair ?jobs env.Exec_env.net src dst
  in
  { source_before; source_during; destination_before; destination_during }

let print r =
  print_endline "# Table II — flow tables at source R1 and destination R12";
  print_endline "## Source switch R1, steady state";
  print_endline r.source_before;
  print_endline "## Source switch R1, during the two-phase transition";
  print_endline r.source_during;
  print_endline "## Destination switch R12, steady state";
  print_endline r.destination_before;
  print_endline "## Destination switch R12, during the two-phase transition";
  print_endline r.destination_during
