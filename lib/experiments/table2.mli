(** Table II: the flow tables at the source switch R1 and the destination
    switch R12 of the emulation topology, shown in the steady state and in
    the middle of a two-phase transition (when the versioned rule copies
    coexist). *)

type result = {
  source_before : string;
  source_during : string;
  destination_before : string;
  destination_during : string;
}

val run : ?jobs:int -> unit -> result
val print : result -> unit
val name : string
