open Chronus_topo
open Chronus_stats

type row = {
  switches : int;
  chronus : Boxplot.t;
  chronus_mean : float;
  tp_mean : float;
  saving_pct : float;
}

let name = "fig9-forwarding-rules"

let run ?jobs ?(scale = Scale.quick) () =
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let samples =
        Chronus_parallel.Pool.parallel_init ?jobs scale.Scale.instances
          (fun i ->
            let rng = Rng.derive scale.Scale.seed [ 9; n; i ] in
            let inst = Scenario.random_pair ~rng spec in
            ( Chronus_baselines.Two_phase.chronus_rule_count inst,
              (Chronus_baselines.Two_phase.rule_count inst)
                .Chronus_baselines.Two_phase.transition_peak ))
      in
      let chronus_samples = List.map fst samples in
      let tp_samples = List.map snd samples in
      let chronus_mean =
        Descriptive.mean (Descriptive.of_ints chronus_samples)
      in
      let tp_mean = Descriptive.mean (Descriptive.of_ints tp_samples) in
      {
        switches = n;
        chronus = Boxplot.of_int_samples chronus_samples;
        chronus_mean;
        tp_mean;
        saving_pct = 100. *. (tp_mean -. chronus_mean) /. tp_mean;
      })
    scale.Scale.switch_counts

let print rows =
  let table =
    Table.create
      ~headers:
        [ "switches"; "Chronus box"; "Chronus mean"; "TP mean"; "saving %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          Format.asprintf "%a" Boxplot.pp r.chronus;
          Printf.sprintf "%.1f" r.chronus_mean;
          Printf.sprintf "%.1f" r.tp_mean;
          Printf.sprintf "%.1f" r.saving_pct;
        ])
    rows;
  print_endline "# Fig. 9 — forwarding rules during the transition";
  Table.print table
