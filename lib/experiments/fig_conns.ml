open Chronus_graph
open Chronus_sim
open Chronus_flow
open Chronus_topo
open Chronus_exec
module Fiber = Chronus_fiber.Fiber
module Obs = Chronus_obs.Obs

(* Heavy-traffic control plane: thousands of concurrent switch sessions —
   each a fiber pinging the control channel and awaiting its ack — while
   one Chronus timed update executes cleanly underneath on a k-ary
   fat-tree. Virtual-time RTT percentiles, peak fiber counts and event
   totals are deterministic at any job count; wall_s is measured. *)

type row = {
  conns : int;
  switches : int;
  peak_fibers : int;
  pings : int;
  rtt_p50_ms : float;
  rtt_p99_ms : float;
  update_clean : bool;
  update_span_s : float;
  events : int;
  wall_s : float;
}

let name = "fig-conns"

(* An echo destination no flow table holds: the [Remove] is a no-op on
   the switch's rules, but the command and its ack ride the full
   controller -> switch -> controller channel — a session ping. *)
let echo_dst = 0x3FFF_FF00

(* Short warmup/drain, as in fig_scale: sessions need the whole horizon
   live, not a long idle tail. *)
let config =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
  }

(* One session: ping a fixed switch, await the ack, think, repeat until
   the update's deadline has passed. All timing is virtual, so the RTT
   distribution is deterministic. *)
let session ~env ~rng ~switch ~stop ~rtts ~pings box =
  let rec loop () =
    if Fiber.now () < stop then begin
      let sent = Fiber.now () in
      Exec_env.dispatch env ~switch
        ~on_ack:(fun at -> Fiber.Mailbox.send box at)
        (Controller.Remove { dst = echo_dst; tag_match = Flow_table.Any_tag });
      let at = Fiber.Mailbox.recv box in
      rtts := (at - sent) :: !rtts;
      incr pings;
      Fiber.sleep (Rng.in_range rng (Sim_time.msec 100) (Sim_time.msec 300));
      loop ()
    end
  in
  loop ()

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = min (n - 1) (int_of_float (q *. float_of_int n)) in
    Sim_time.to_sec sorted.(i) *. 1e3

let run_cell ~seed ~k conns =
  let wall0 = Obs.clock_ns () in
  let rng = Rng.derive seed [ 30; k; conns ] in
  let inst = Scenario.fat_tree_reroute ~rng k in
  let { Chronus_core.Fallback.schedule; clean } =
    Chronus_core.Fallback.schedule inst
  in
  let env = Exec_env.build ~config ~seed:(Rng.int rng 0x3FFFFFFF)
      ~tag_initial:None inst
  in
  let engine = Network.engine env.Exec_env.net in
  let rt = Engine.fiber_runtime engine in
  let prog = Timed_exec.launch env schedule in
  let stop = prog.Timed_exec.deadline in
  let nodes = Array.of_list (Graph.nodes inst.Instance.graph) in
  let rtts = ref [] and pings = ref 0 in
  (* Spawn every session up front: all [conns] fibers are live from
     virtual time zero through the update's whole execution window. *)
  let sessions =
    List.init conns (fun i ->
        let srng = Rng.derive seed [ 31; k; conns; i ] in
        let switch = nodes.(Rng.int srng (Array.length nodes)) in
        let box = Fiber.Mailbox.create rt in
        Fiber.spawn_root rt (fun () ->
            (* Desynchronise the first ping across the warmup window. *)
            Fiber.sleep_until (Rng.in_range srng 0 (Sim_time.msec 900));
            session ~env ~rng:srng ~switch ~stop ~rtts ~pings box))
  in
  Engine.run ~until:(stop + Sim_time.sec 1) engine;
  let peak_fibers = (Fiber.stats rt).Fiber.peak_live in
  (* Sessions exit on their own once [stop] passes; retire any straggler
     still parked on a mailbox before closing the books. *)
  List.iter Fiber.cancel sessions;
  Fiber.drain rt;
  let update_done =
    match prog.Timed_exec.finished with
    | Some at -> at
    | None -> stop + Sim_time.sec 1
  in
  let result = Exec_env.finish env ~update_done in
  let sorted = Array.of_list !rtts in
  Array.sort compare sorted;
  {
    conns;
    switches = Graph.node_count inst.Instance.graph;
    peak_fibers;
    pings = !pings;
    rtt_p50_ms = percentile sorted 0.50;
    rtt_p99_ms = percentile sorted 0.99;
    update_clean =
      clean
      && (not prog.Timed_exec.fallen_back)
      && prog.Timed_exec.pending = 0
      && Monitor.no_violations result.Exec_env.violations;
    update_span_s = Sim_time.to_sec result.Exec_env.update_span;
    events = result.Exec_env.events;
    wall_s = float_of_int (Obs.clock_ns () - wall0) /. 1e9;
  }

(* Tiny keeps CI honest on an 80-switch fat-tree; quick holds the
   ISSUE's ten thousand sessions on k=16; paper pushes to forty
   thousand. *)
let default_conns scale =
  if scale.Scale.instances <= 4 then [ 500; 2_000 ]
  else if scale.Scale.instances <= 10 then [ 2_000; 10_000 ]
  else [ 10_000; 40_000 ]

let fat_tree_k scale = if scale.Scale.instances <= 4 then 8 else 16

let run ?jobs ?(scale = Scale.quick) ?conns () =
  let conns = Option.value ~default:(default_conns scale) conns in
  let seed = scale.Scale.seed in
  let k = fat_tree_k scale in
  (* One cell per connection count; RNG lanes are keyed by (k, conns),
     so rows are bit-identical at any job count and under any cell
     mix. *)
  Chronus_parallel.Pool.parallel_map ?jobs
    (fun n -> run_cell ~seed ~k n)
    conns

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "conns";
          "switches";
          "peak fibers";
          "pings";
          "RTT p50 ms";
          "RTT p99 ms";
          "update clean";
          "update s";
          "events";
          "wall s";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.conns;
          string_of_int r.switches;
          string_of_int r.peak_fibers;
          string_of_int r.pings;
          Printf.sprintf "%.1f" r.rtt_p50_ms;
          Printf.sprintf "%.1f" r.rtt_p99_ms;
          (if r.update_clean then "yes" else "no");
          Printf.sprintf "%.2f" r.update_span_s;
          string_of_int r.events;
          Printf.sprintf "%.2f" r.wall_s;
        ])
    rows;
  print_endline
    "# Connections — timed update under heavy concurrent control traffic";
  Table.print table
