open Chronus_sim
open Chronus_topo
open Chronus_exec
module Faults = Chronus_faults.Faults

type row = {
  clock_error_ms : int;
  trials : int;
  chronus_violation_pct : float;
  tp_violation_pct : float;
  or_violation_pct : float;
  chronus_fallback_pct : float;
  chronus_retries : int;
  chronus_span_s : float;
  tp_span_s : float;
  or_span_s : float;
}

let name = "fig-robust-clock-error"

(* Short warmup/drain: the robustness axis multiplies three executors by
   several error magnitudes by many trials, so each run is kept tight.
   One delay unit is 50 ms — the "error = one delay unit" acceptance
   point of the experiment. *)
let config =
  {
    Exec_env.default with
    Exec_env.warmup = Sim_time.sec 1;
    drain = Sim_time.sec 2;
    delay_unit = Sim_time.msec 50;
  }

(* An instance whose greedy schedule is provably consistent, so that at
   zero clock error Chronus's run is violation-free and any violation at
   higher error is attributable to the skew. Scanned per trial from its
   own RNG coordinates. *)
let pick_instance ~switches ~seed ~trial =
  let rec scan k =
    let rng = Rng.derive seed [ 12; trial; k ] in
    let spec =
      Scenario.spec ~capacity_choices:[ 1 ] ~delay_lo:1 ~delay_hi:3 switches
    in
    let inst = Scenario.segment_reversal ~max_len:6 ~rng spec in
    let feasible =
      match Chronus_core.Greedy.schedule inst with
      | Chronus_core.Greedy.Scheduled _ -> true
      | Chronus_core.Greedy.Infeasible _ -> false
    in
    if feasible || k >= 20 then inst else scan (k + 1)
  in
  scan 0

type cell = {
  c_violation : bool;
  t_violation : bool;
  o_violation : bool;
  c_fallback : bool;
  c_retries : int;
  c_span : float;
  t_span : float;
  o_span : float;
}

let violated (r : Exec_env.result) =
  not (Monitor.no_violations r.Exec_env.violations)

let default_errors_ms scale =
  if scale.Scale.instances <= 4 then [ 0; 50 ] else [ 0; 10; 25; 50; 100 ]

let run ?jobs ?(scale = Scale.quick) ?(switches = 10) ?errors_ms () =
  let errors = Option.value ~default:(default_errors_ms scale) errors_ms in
  let n_err = List.length errors in
  let trials = scale.Scale.instances in
  let seed = scale.Scale.seed in
  let err = Array.of_list errors in
  (* One flat fan-out over (error magnitude × trial); cell (e, i) owns
     the generators at coordinates (seed, 12|13, …, i), so rows are
     bit-identical at any job count. *)
  let cells =
    Chronus_parallel.Pool.parallel_init ?jobs (n_err * trials) (fun j ->
        let e_idx = j / trials and i = j mod trials in
        let error_ms = err.(e_idx) in
        let inst = pick_instance ~switches ~seed ~trial:i in
        let faults =
          Faults.with_clock_error (Sim_time.msec error_ms) Faults.zero
        in
        (* Keyed by the error *value*, not its index, so a row's cells do
           not depend on which other magnitudes the axis contains. *)
        let exec_seed lane =
          Rng.int (Rng.derive seed [ 13; error_ms; i; lane ]) 0x3FFFFFFF
        in
        let chronus =
          Timed_exec.run ~config ~seed:(exec_seed 0) ~faults inst
        in
        let tp = Two_phase_exec.run ~config ~seed:(exec_seed 1) ~faults inst in
        let ord = Order_exec.run ~config ~seed:(exec_seed 2) ~faults inst in
        {
          c_violation = violated chronus.Timed_exec.result;
          t_violation = violated tp.Two_phase_exec.result;
          o_violation = violated ord.Order_exec.result;
          c_fallback = chronus.Timed_exec.path = Timed_exec.Two_phase_fallback;
          c_retries = chronus.Timed_exec.retries;
          c_span =
            Sim_time.to_sec chronus.Timed_exec.result.Exec_env.update_span;
          t_span = Sim_time.to_sec tp.Two_phase_exec.result.Exec_env.update_span;
          o_span = Sim_time.to_sec ord.Order_exec.result.Exec_env.update_span;
        })
  in
  let cells = Array.of_list cells in
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 trials) in
  List.mapi
    (fun e_idx error_ms ->
      let col i = cells.((e_idx * trials) + i) in
      let count f =
        let n = ref 0 in
        for i = 0 to trials - 1 do
          if f (col i) then incr n
        done;
        !n
      in
      let sum f =
        let s = ref 0. in
        for i = 0 to trials - 1 do
          s := !s +. f (col i)
        done;
        !s
      in
      let sumi f =
        let s = ref 0 in
        for i = 0 to trials - 1 do
          s := !s + f (col i)
        done;
        !s
      in
      let mean f = sum f /. float_of_int (max 1 trials) in
      {
        clock_error_ms = error_ms;
        trials;
        chronus_violation_pct = pct (count (fun c -> c.c_violation));
        tp_violation_pct = pct (count (fun c -> c.t_violation));
        or_violation_pct = pct (count (fun c -> c.o_violation));
        chronus_fallback_pct = pct (count (fun c -> c.c_fallback));
        chronus_retries = sumi (fun c -> c.c_retries);
        chronus_span_s = mean (fun c -> c.c_span);
        tp_span_s = mean (fun c -> c.t_span);
        or_span_s = mean (fun c -> c.o_span);
      })
    errors

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "clock err ms";
          "trials";
          "Chronus viol %";
          "TP viol %";
          "OR viol %";
          "fallback %";
          "retries";
          "Chronus s";
          "TP s";
          "OR s";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.clock_error_ms;
          string_of_int r.trials;
          Printf.sprintf "%.1f" r.chronus_violation_pct;
          Printf.sprintf "%.1f" r.tp_violation_pct;
          Printf.sprintf "%.1f" r.or_violation_pct;
          Printf.sprintf "%.1f" r.chronus_fallback_pct;
          string_of_int r.chronus_retries;
          Printf.sprintf "%.2f" r.chronus_span_s;
          Printf.sprintf "%.2f" r.tp_span_s;
          Printf.sprintf "%.2f" r.or_span_s;
        ])
    rows;
  print_endline
    "# Robustness — violation/fallback rate and completion time vs. clock \
     error";
  Table.print table
