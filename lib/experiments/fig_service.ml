open Chronus_graph
open Chronus_flow
open Chronus_topo
module Service = Chronus_service.Service
module Obs = Chronus_obs.Obs

(* Service figure: drive the transactional update manager with a stream
   of reroute requests over a shared WAN and report commit/denial/
   serialization counts plus throughput and latency percentiles versus
   the offered rate (requests per processing round). The count and
   makespan columns are deterministic at any job count; the wall-clock
   columns (throughput, p50/p99 latency) are measured, so this figure
   stays out of the benchmark digest like fig10 and fig-scale. *)

type row = {
  offered_per_round : int;
  rounds : int;
  flows : int;
  submitted : int;
  committed : int;
  serialized : int;  (** requests deferred behind a conflict at least once *)
  serialized_rate : float;  (** [serialized /. submitted]; deterministic *)
  denied : int;  (** door denials plus denied/aborted verdicts *)
  batches : int;  (** admission batches the service ran, all rounds *)
  full_evals : int;
      (** from-scratch oracle evaluations the cell cost (checker-pool
          misses only); depends on pool timing, so excluded from
          determinism digests like the wall-clock columns *)
  full_evals_per_txn : float;  (** [full_evals /. max 1 committed] *)
  mean_makespan : float;  (** over committed non-trivial transactions *)
  throughput_per_s : float;  (** wall-measured committed transactions/s *)
  p50_ms : float;  (** wall-measured submit-to-verdict latency *)
  p99_ms : float;
}

(* The oracle's own counter (the registry is label-keyed and idempotent,
   so this is the same cell lib/dynflow increments). *)
let c_oracle_full = Obs.Counter.v "oracle.full_evals"

let name = "fig-service"

(* Shared-WAN workload: [n_flows] unit-demand flows on min-hop routes,
   drawn so the joint initial configuration is valid. Capacity 3 per
   link leaves room for transient merges while keeping contention real
   once several flows pile onto the same chord. *)
let wan_params = { Topology.capacity = 3; delay = 1 }

let build_flows ~rng g n_flows =
  let nodes = Array.of_list (Graph.nodes g) in
  let loads = Hashtbl.create 64 in
  let load u v = Option.value ~default:0 (Hashtbl.find_opt loads (u, v)) in
  let fits p =
    List.for_all
      (fun (u, v) -> load u v + 1 <= Graph.capacity g u v)
      (Path.edges p)
  in
  let occupy p =
    List.iter (fun (u, v) -> Hashtbl.replace loads (u, v) (load u v + 1))
      (Path.edges p)
  in
  let rec draw fid acc misses =
    if fid >= n_flows || misses > 200 then List.rev acc
    else
      let src = nodes.(Rng.int rng (Array.length nodes)) in
      let dst = nodes.(Rng.int rng (Array.length nodes)) in
      match if src = dst then None else Shortest.hop_path g src dst with
      | Some p when fits p ->
          occupy p;
          draw (fid + 1)
            ({ Instance.fid; f_demand = 1; f_init = p; f_fin = p } :: acc)
            misses
      | Some _ | None -> draw fid acc (misses + 1)
  in
  draw 0 [] 0

(* A reroute request: fail one random link of the flow's current path
   and take the min-hop detour (the WAN generator keeps the graph
   2-edge-connected, so one usually exists; if not, the request
   degenerates to a no-op that commits trivially). *)
let request_for ~rng g current =
  match Path.edges current with
  | [] -> current
  | edges -> (
      let u, v = Rng.pick rng edges in
      let g' = Graph.copy g in
      Graph.remove_edge g' u v;
      match
        Shortest.hop_path g' (Path.source current) (Path.destination current)
      with
      | Some p -> p
      | None -> current)

let default_rates scale =
  if scale.Scale.instances <= 4 then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ]

let run ?jobs ?(scale = Scale.quick) ?rates () =
  let tiny = scale.Scale.instances <= 4 in
  let wan_n = if tiny then 12 else 32 in
  let n_flows = if tiny then 6 else 16 in
  let rounds = if tiny then 3 else max 4 (scale.Scale.instances / 2) in
  let rates = Option.value ~default:(default_rates scale) rates in
  let seed = scale.Scale.seed in
  (* Every row owns the generators at coordinates keyed by the rate
     *value*, so adding rates to the axis never perturbs existing rows;
     the per-round request stream is keyed by (rate, round) and consumed
     sequentially, so rows are identical at any job count. *)
  List.map
    (fun rate ->
      let g = Topology.wan ~params:wan_params ~rng:(Rng.derive seed [ 21; rate ]) wan_n in
      let flows = build_flows ~rng:(Rng.derive seed [ 22; rate ]) g n_flows in
      let multi = Instance.create_multi ~graph:g flows in
      let service = Service.create multi in
      let n_actual = List.length flows in
      let full_evals0 = Obs.Counter.value c_oracle_full in
      let wall_ns = ref 0 in
      let door_denials = ref 0 in
      let outcomes = ref [] in
      for round = 0 to rounds - 1 do
        let rng = Rng.derive seed [ 23; rate; round ] in
        for _k = 1 to rate do
          let fid = Rng.int rng n_actual in
          let current = Option.get (Service.current_path service fid) in
          let target = request_for ~rng g current in
          match Service.submit service ~fid ~target with
          | Ok _ -> ()
          | Error _ -> incr door_denials
        done;
        let t0 = Obs.clock_ns () in
        let os = Service.process ?jobs service in
        wall_ns := !wall_ns + (Obs.clock_ns () - t0);
        outcomes := os :: !outcomes
      done;
      let outcomes = List.concat (List.rev !outcomes) in
      let count f = List.length (List.filter f outcomes) in
      let committed =
        count (fun o ->
            match o.Service.verdict with
            | Service.Committed _ -> true
            | Service.Denied _ -> false)
      in
      let makespans =
        List.filter_map
          (fun o ->
            match o.Service.verdict with
            | Service.Committed { makespan; _ } when makespan > 0 ->
                Some (float_of_int makespan)
            | _ -> None)
          outcomes
      in
      let latencies_ms =
        List.map (fun o -> float_of_int o.Service.wall_ns /. 1e6) outcomes
      in
      let pct p =
        match latencies_ms with
        | [] -> 0.
        | l -> Chronus_stats.Descriptive.percentile p l
      in
      let wall_s = float_of_int !wall_ns /. 1e9 in
      let full_evals = Obs.Counter.value c_oracle_full - full_evals0 in
      let submitted = rate * rounds in
      let serialized = count (fun o -> o.Service.serialized_after <> []) in
      {
        offered_per_round = rate;
        rounds;
        flows = n_actual;
        submitted;
        committed;
        serialized;
        serialized_rate =
          (if submitted > 0 then
             float_of_int serialized /. float_of_int submitted
           else 0.);
        full_evals;
        full_evals_per_txn =
          float_of_int full_evals /. float_of_int (max 1 committed);
        denied =
          !door_denials
          + count (fun o ->
                match o.Service.verdict with
                | Service.Denied _ -> true
                | Service.Committed _ -> false);
        batches =
          List.fold_left (fun acc o -> max acc o.Service.batch) 0 outcomes;
        mean_makespan =
          (match makespans with
          | [] -> 0.
          | l -> Chronus_stats.Descriptive.mean l);
        throughput_per_s =
          (if wall_s > 0. then float_of_int committed /. wall_s else 0.);
        p50_ms = pct 50.;
        p99_ms = pct 99.;
      })
    rates

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [
          "offered/round";
          "rounds";
          "flows";
          "submitted";
          "committed";
          "serialized";
          "denied";
          "batches";
          "full evals";
          "fe/txn";
          "makespan";
          "txn/s";
          "p50 ms";
          "p99 ms";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.offered_per_round;
          string_of_int r.rounds;
          string_of_int r.flows;
          string_of_int r.submitted;
          string_of_int r.committed;
          string_of_int r.serialized;
          string_of_int r.denied;
          string_of_int r.batches;
          string_of_int r.full_evals;
          Printf.sprintf "%.2f" r.full_evals_per_txn;
          Printf.sprintf "%.1f" r.mean_makespan;
          Printf.sprintf "%.0f" r.throughput_per_s;
          Printf.sprintf "%.3f" r.p50_ms;
          Printf.sprintf "%.3f" r.p99_ms;
        ])
    rows;
  print_endline
    "# Update service — throughput and latency vs. offered update rate";
  Table.print table
