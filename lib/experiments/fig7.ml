open Chronus_topo

type row = {
  switches : int;
  instances : int;
  chronus_congestion_pct : float;
  opt_congestion_pct : float;
  or_congestion_pct : float;
}

let name = "fig7-congestion-cases"

let pct bad total = 100. *. float_of_int bad /. float_of_int (max 1 total)

let run ?jobs ?(scale = Scale.quick) () =
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      (* Trial [i] owns the generator at coordinates (seed, 7, n, i), so
         the fan-out below commutes with sequential execution and rows
         are bit-identical at any job count. *)
      let trials =
        Chronus_parallel.Pool.parallel_init ?jobs scale.Scale.instances
          (fun i ->
            let rng = Rng.derive scale.Scale.seed [ 7; n; i ] in
            let inst = Scenario.random_final ~rng spec in
            Trial.run ~scale ~rng inst)
      in
      let count f = List.length (List.filter f trials) in
      let chron = count (fun t -> not t.Trial.chronus_clean) in
      let opt = count (fun t -> not t.Trial.opt_clean) in
      let ord = count (fun t -> not t.Trial.or_clean) in
      {
        switches = n;
        instances = scale.Scale.instances;
        chronus_congestion_pct = pct chron scale.Scale.instances;
        opt_congestion_pct = pct opt scale.Scale.instances;
        or_congestion_pct = pct ord scale.Scale.instances;
      })
    scale.Scale.switch_counts

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:[ "switches"; "instances"; "Chronus %"; "OPT %"; "OR %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.instances;
          Printf.sprintf "%.1f" r.chronus_congestion_pct;
          Printf.sprintf "%.1f" r.opt_congestion_pct;
          Printf.sprintf "%.1f" r.or_congestion_pct;
        ])
    rows;
  print_endline "# Fig. 7 — percentage of congestion cases (lower is better)";
  Table.print table
