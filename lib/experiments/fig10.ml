open Chronus_flow
open Chronus_core
open Chronus_baselines
open Chronus_topo

type timing = Seconds of float | Capped of float

type row = {
  switches : int;
  updates : int;
  chronus : timing;
  or_exact : timing;
  opt : timing;
}

let name = "fig10-running-time"

let timing_to_string = function
  | Seconds s -> Printf.sprintf "%.3f" s
  | Capped c -> Printf.sprintf ">%.0f" c

let time_it f =
  let start = Sys.time () in
  f ();
  Sys.time () -. start

let run ?jobs ?(scale = Scale.quick) () =
  let cap = scale.Scale.baseline_cap in
  (* Building the giant instances is parallel; the timing runs below stay
     sequential so sibling domains cannot distort what the figure
     measures. Each size draws from its own coordinate-derived stream. *)
  let instances =
    Chronus_parallel.Pool.parallel_map ?jobs
      (fun n ->
        (* Capacity 2d everywhere: transient merges always fit, so the
           scale instances are schedulable and the figure times scheduling
           work rather than infeasibility proofs (the paper's OPT would
           not terminate on provably infeasible giants either). *)
        let rng = Rng.derive scale.Scale.seed [ 10; n ] in
        let spec = Scenario.spec ~capacity_choices:[ 2 ] n in
        (n, Scenario.long_chain ~rng spec))
      scale.Scale.big_switch_counts
  in
  List.map
    (fun (n, inst) ->
      let chronus =
        Seconds
          (time_it (fun () ->
               ignore (Greedy.schedule ~mode:Greedy.Analytic inst)))
      in
      (* The exact searches honour their own budgets; when the budget ran
         out we report the cap, as the paper does for >60 s points. *)
      let or_exact =
        let start = Sys.time () in
        let r =
          Order_replacement.minimum_rounds ~budget:scale.Scale.or_budget inst
        in
        let elapsed = Sys.time () -. start in
        if r.Order_replacement.optimal && elapsed <= cap then Seconds elapsed
        else Capped cap
      in
      let opt =
        let r =
          Opt.solve ~budget:scale.Scale.opt_budget ~timeout:cap inst
        in
        match r.Opt.outcome with
        | Opt.Optimal _ when r.Opt.elapsed <= cap -> Seconds r.Opt.elapsed
        | Opt.Infeasible when r.Opt.elapsed <= cap -> Seconds r.Opt.elapsed
        | _ -> Capped cap
      in
      { switches = n; updates = Instance.update_count inst; chronus; or_exact; opt })
    instances

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:[ "switches"; "updates"; "Chronus (s)"; "OR (s)"; "OPT (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.updates;
          timing_to_string r.chronus;
          timing_to_string r.or_exact;
          timing_to_string r.opt;
        ])
    rows;
  print_endline "# Fig. 10 — scheduler running time";
  Table.print table
