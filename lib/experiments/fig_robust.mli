(** Robustness experiment: consistency-violation rate, completion time
    and fallback rate versus clock-error magnitude, for Chronus against
    the OR and TP baselines — the axis Time4 and "Timed Consistent
    Network Updates" evaluate and the paper assumes away.

    Each trial picks (from its own RNG coordinates) an instance whose
    greedy schedule is provably consistent, then runs all three
    executors under a fault configuration whose only non-zero knobs are
    the per-switch clock offset and per-flip jitter, both set to the
    row's error magnitude. At 0 ms Chronus must be violation-free; at
    one delay unit (50 ms) and beyond, skewed flips misorder the
    schedule and the violation or fallback rate becomes non-zero, while
    TP — which never relies on synchronised time — stays flat. Trials
    fan out over [Chronus_parallel.Pool]; every cell derives its
    generators from (seed, error index, trial index), so rows are
    bit-identical at any [CHRONUS_JOBS] value. *)

type row = {
  clock_error_ms : int;
  trials : int;
  chronus_violation_pct : float;
      (** trials with ≥1 loop/blackhole/overload, timed executor *)
  tp_violation_pct : float;
  or_violation_pct : float;
  chronus_fallback_pct : float;
      (** trials where the deadline passed and the two-phase fallback ran *)
  chronus_retries : int;  (** total command re-sends across trials *)
  chronus_span_s : float;  (** mean update span, seconds *)
  tp_span_s : float;
  or_span_s : float;
}

val name : string

val run :
  ?jobs:int ->
  ?scale:Scale.t ->
  ?switches:int ->
  ?errors_ms:int list ->
  unit ->
  row list
(** [errors_ms] defaults to [[0; 50]] at tiny scale and
    [[0; 10; 25; 50; 100]] otherwise (the delay unit is 50 ms). *)

val print : row list -> unit
