(** Fig. 10: running time of the schedulers as the network grows to
    thousands of switches. Chronus runs its polynomial greedy (analytic
    checks, no oracle in the loop); OR's exact branch and bound and OPT
    run under the paper's 60-second cap and report a time-out beyond it. *)

type timing = Seconds of float | Capped of float
(** [Capped c]: did not finish within [c] seconds. *)

type row = {
  switches : int;
  updates : int;
  chronus : timing;
  or_exact : timing;
  opt : timing;
}

val run : ?jobs:int -> ?scale:Scale.t -> unit -> row list
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    rows. *)

val print : row list -> unit
val name : string
val timing_to_string : timing -> string
