open Chronus_topo

type row = {
  switches : int;
  instances : int;
  chronus_congested : int;
  or_congested : int;
  reduction_pct : float;
}

let name = "fig8-congested-links"

let run ?jobs ?(scale = Scale.quick) () =
  List.map
    (fun n ->
      let spec = Scenario.spec n in
      let trials =
        Chronus_parallel.Pool.parallel_init ?jobs scale.Scale.instances
          (fun i ->
            let rng = Rng.derive scale.Scale.seed [ 8; n; i ] in
            let inst = Scenario.random_final ~rng spec in
            Trial.run ~with_opt:false ~scale ~rng inst)
      in
      let total f = List.fold_left (fun acc t -> acc + f t) 0 trials in
      let chron = total (fun t -> t.Trial.chronus_congested_links) in
      let ord = total (fun t -> t.Trial.or_congested_links) in
      let reduction_pct =
        if ord = 0 then 0.
        else 100. *. float_of_int (ord - chron) /. float_of_int ord
      in
      {
        switches = n;
        instances = scale.Scale.instances;
        chronus_congested = chron;
        or_congested = ord;
        reduction_pct;
      })
    scale.Scale.switch_counts

let print rows =
  let open Chronus_stats in
  let table =
    Table.create
      ~headers:
        [ "switches"; "instances"; "Chronus"; "OR"; "reduction %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.switches;
          string_of_int r.instances;
          string_of_int r.chronus_congested;
          string_of_int r.or_congested;
          Printf.sprintf "%.1f" r.reduction_pct;
        ])
    rows;
  print_endline
    "# Fig. 8 — congested time-extended links, summed over instances";
  Table.print table
