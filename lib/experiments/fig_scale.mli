(** Scale experiment: simulator throughput (events/s), per-lookup cost
    on loaded flow tables, and end-to-end update time versus topology
    size, for all three executors — the workload ROADMAP item 2 calls
    for and the indexed flow table + calendar event queue make
    tractable.

    Each cell builds a full fat-tree (k-ary, 4..16) or a B4-like WAN,
    loads every switch with background "host prefix" rules (a k=8
    fat-tree carries >10k rules network-wide), reroutes one pod-to-pod
    or site-to-site flow with each executor, and probes the loaded
    tables with 100k random lookups. Event counts, rule counts and
    update spans are deterministic (cells derive their RNGs from the
    kind's value, so rows are bit-identical at any [CHRONUS_JOBS]);
    events/s and lookup ns are wall-clock measurements, which is why
    this figure — like fig10 — is excluded from the benchmark digest. *)

type kind = Fat_tree of int | B4 | Wan of int

type row = {
  topo : string;
  switches : int;
  links : int;
  rules : int;  (** installed network-wide before the update starts *)
  updates : int;  (** switches the reroute touches *)
  events : int;  (** engine events across the three executor runs *)
  chronus_span_s : float;
  tp_span_s : float;
  or_span_s : float;
  chronus_clean : bool;  (** no loops/blackholes/overloads, timed run *)
  events_per_s : float;  (** wall-measured sim throughput *)
  lookup_ns : float;  (** wall-measured per-lookup cost on loaded tables *)
}

val name : string

val default_kinds : Scale.t -> kind list
(** Tiny: [k=4] fat-tree and an 8-site WAN; quick adds [k=6,8], B4 and
    bigger WANs; paper scales to [k=16] and 128 sites. *)

val run : ?jobs:int -> ?scale:Scale.t -> ?kinds:kind list -> unit -> row list

val print : row list -> unit
