(** Scale experiment: compiled-table compression, simulator throughput
    (events/s), per-lookup cost on loaded flow tables, and end-to-end
    update time versus topology size, for all three executors — the
    workload ROADMAP item 2 calls for and the prefix-compiled flow
    table + calendar event queue make tractable.

    Each cell builds a full fat-tree (k-ary, 4..32 — k=32 is 1,280
    switches) or a B4-like WAN, gives every endpoint a hierarchical
    address ({!Chronus_topo.Addressing}), compiles each switch's
    complete forwarding function to an aggregated prefix table
    ({!Chronus_sim.Table_compiler}) — a core switch needs O(k) rules
    instead of one per host — then reroutes one pod-to-pod or
    site-to-site flow with each executor and probes the loaded tables
    with 100k random host-address lookups. Rule counts, compression,
    table words, event counts and update spans are deterministic (cells
    derive their RNGs from the kind's value, so rows are bit-identical
    at any [CHRONUS_JOBS]); events/s and lookup ns are wall-clock
    measurements, which is why this figure — like fig10 — is excluded
    from the benchmark digest. *)

type kind = Fat_tree of int | B4 | Wan of int

type row = {
  topo : string;
  switches : int;
  links : int;
  rules_exact : int;
      (** what one exact rule per (switch, endpoint) would install *)
  rules_compiled : int;  (** aggregated prefix rules actually installed *)
  compression : float;  (** [rules_exact /. rules_compiled] *)
  table_words : int;  (** deterministic table-memory estimate, words *)
  updates : int;  (** switches the reroute touches *)
  events : int;  (** engine events across the three executor runs *)
  chronus_span_s : float;
  tp_span_s : float;
  or_span_s : float;
  chronus_clean : bool;  (** no loops/blackholes/overloads, timed run *)
  events_per_s : float;  (** wall-measured sim throughput *)
  lookup_ns : float;  (** wall-measured per-lookup cost on loaded tables *)
}

val name : string

val addressing : Chronus_graph.Graph.t -> kind -> Chronus_topo.Addressing.t
(** The address layout a cell uses: hierarchical pod/edge/host on
    fat-trees, flat site/host on B4 and WANs. *)

val compiled_preinstall :
  Chronus_graph.Graph.t ->
  kind ->
  Chronus_topo.Addressing.t ->
  (int * Chronus_sim.Controller.flow_mod) list * int
(** The compiled base-forwarding state a cell preinstalls: one
    [Install_prefix] batch per switch (and the total compiled rule
    count). Exposed so tests can walk the exact tables the figure
    runs on. *)

val default_kinds : Scale.t -> kind list
(** Tiny: [k=4] fat-tree and an 8-site WAN; quick adds [k=6,8,16], B4
    and bigger WANs; paper scales to [k=32] and 128 sites. *)

val run : ?jobs:int -> ?scale:Scale.t -> ?kinds:kind list -> unit -> row list

val print : row list -> unit
