(** Fig. 8: number of congested links (counted in the time-extended
    network, summed over all instances of a data point), Chronus vs OR. *)

type row = {
  switches : int;
  instances : int;
  chronus_congested : int;
  or_congested : int;
  reduction_pct : float;  (** how many congested links Chronus avoids *)
}

val run : ?jobs:int -> ?scale:Scale.t -> unit -> row list
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    rows. *)

val print : row list -> unit
val name : string
