(** Fig. 9: number of forwarding rules needed during the transition —
    Chronus as a box plot (it only rewrites actions in place), TP as the
    mean of its doubled, versioned footprint. *)

open Chronus_stats

type row = {
  switches : int;
  chronus : Boxplot.t;
  chronus_mean : float;
  tp_mean : float;
  saving_pct : float;  (** mean rules Chronus saves over TP *)
}

val run : ?jobs:int -> ?scale:Scale.t -> unit -> row list
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    rows. *)

val print : row list -> unit
val name : string
