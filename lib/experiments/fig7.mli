(** Fig. 7: percentage of congestion cases vs number of switches, for
    Chronus, OPT and OR. A case is congested when the executed schedule
    overloads at least one time-extended link (or, for OR, also when it
    loops or blackholes in-flight traffic — OR ignores transmission
    delays entirely). *)

type row = {
  switches : int;
  instances : int;
  chronus_congestion_pct : float;
  opt_congestion_pct : float;
  or_congestion_pct : float;
}

val run : ?jobs:int -> ?scale:Scale.t -> unit -> row list
(** [jobs] is the domain count for the trial fan-out (default
    {!Chronus_parallel.Pool.default_jobs}); any value yields the same
    rows. *)

val print : row list -> unit
val name : string
