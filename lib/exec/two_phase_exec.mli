(** Executing the TP baseline on the simulator: the two-phase commit with
    LAN-ID versioning described in Section V-A. Initial rules match tag 1
    and the ingress stamps tag 1; phase one installs tag-2 rules along the
    final path, phase two flips the ingress stamp, and the tag-1 rules are
    garbage-collected once old-tag traffic has drained. The rule-table
    peak during the transition is the Fig. 9 cost. *)

open Chronus_sim
type t = {
  result : Exec_env.result;
  phase1_done : Sim_time.t;
  phase2_done : Sim_time.t;
  rules_installed : int;  (** tag-2 rules added in phase one *)
}

val run :
  ?config:Exec_env.config ->
  ?seed:int ->
  ?faults:Chronus_faults.Faults.config ->
  Chronus_flow.Instance.t ->
  t
