(** Executing a Chronus timed update on the simulator — Algorithm 5,
    hardened against the fault model of [Chronus_faults].

    The schedule computed by the greedy algorithm (with the best-effort
    fallback for infeasible instances) is translated into timed flow-mods:
    one command per switch carrying the execution timestamp
    [t0 + step * delay_unit], dispatched ahead of time through
    {!Exec_env.dispatch} (the fault injection point). Every command
    carries ack semantics: a command whose acknowledgement has not
    returned within [ack_timeout] (plus linear backoff per attempt) is
    re-sent, up to [max_retries] times. If any command is still un-acked
    at [deadline_slack] past the schedule's nominal completion, the timed
    plan is aborted and an emergency two-phase update (version tag 9, so
    it composes with the untagged timed rules) installs the final path —
    the [path] field of {!t} reports which path completed the run. *)

open Chronus_sim
open Chronus_flow

(** Which mechanism completed the update. *)
type path =
  | Timed  (** every command acked; the schedule ran as planned *)
  | Two_phase_fallback
      (** the deadline passed with un-acked commands; the emergency
          two-phase path took over *)

val pp_path : Format.formatter -> path -> unit

(** Retry/fallback policy knobs. *)
type retry = {
  ack_timeout : Sim_time.t;
      (** how long after the scheduled execution time to wait for the
          ack before re-sending *)
  backoff : Sim_time.t;  (** added per attempt (linear backoff) *)
  max_retries : int;  (** re-sends per command *)
  deadline_slack : Sim_time.t;
      (** grace past the schedule's nominal completion before the timed
          plan is declared failed and the fallback runs *)
}

val default_retry : retry
(** 200 ms ack timeout, 100 ms backoff, 3 retries, 1 s slack. *)

type t = {
  result : Exec_env.result;
  schedule : Schedule.t;
  clean : bool;  (** the greedy found a provably consistent schedule *)
  path : path;
  retries : int;  (** commands re-sent after a missing ack *)
  unacked : int;  (** switches never acked (0 on the timed path) *)
}

(** Mutable scoreboard of a launched timed update — read it after (or
    while) driving the engine. *)
type progress = {
  mutable finished : Sim_time.t option;
      (** completion time: last ack on the timed path, or the final
          barrier of the fallback *)
  mutable pending : int;  (** switches not yet acked *)
  mutable retries : int;
  mutable fallen_back : bool;
  deadline : Sim_time.t;
      (** when the timed plan is abandoned for the fallback *)
}

val launch : ?retry:retry -> Exec_env.env -> Schedule.t -> progress
(** Spawn the update's fibers (one per timed command, plus the deadline
    watcher) on [env]'s engine without driving it: the caller runs the
    engine, typically alongside other fibers — [Fig_conns] executes a
    timed update under ten thousand live switch sessions this way.
    {!run} is [build] + [launch] + [Engine.run] + [finish]. *)

val run :
  ?config:Exec_env.config ->
  ?seed:int ->
  ?mode:Chronus_core.Greedy.mode ->
  ?faults:Chronus_faults.Faults.config ->
  ?retry:retry ->
  Instance.t ->
  t
