(** Shared harness for executing one update instance on the simulator:
    build the network from the instance's graph, install the initial
    forwarding rules, start the flow, and collect the measurements all
    three executors report. *)

open Chronus_sim
open Chronus_flow

type config = {
  capacity_mbps : float;  (** per-link capacity (paper: 5 Mbit/s) *)
  rate_mbps : float;  (** aggregate flow rate (paper: 5 Mbit/s) *)
  delay_unit : Sim_time.t;
      (** real time of one model delay unit; a link of model delay [k]
          propagates in [k * delay_unit] (paper: 5 ms – 1 s) *)
  chunk : Sim_time.t;  (** traffic granularity *)
  warmup : Sim_time.t;  (** steady old-path traffic before the update *)
  drain : Sim_time.t;  (** extra run time after the update completes *)
  control_latency : Sim_time.t * Sim_time.t;
      (** uniform range of the per-command control-channel delay *)
  sample : Sim_time.t;  (** bandwidth sampling interval (paper: 1 s) *)
  preinstall : (int * Controller.flow_mod) list;
      (** background forwarding state, applied per (switch, flow-mod)
          directly to the tables before the initial-path rules — so the
          ballast gets the lowest rule ids and is part of the persisted
          configuration a crash-restarting switch reverts to. Default
          empty; the scale experiments use it to load fat-tree/WAN
          networks with realistic rule counts. *)
}

val default : config
(** The Mininet setup of Section V-A: 5 Mbit/s links and flow, 50 ms delay
    unit, 1 s samples, 2–40 ms control latency. *)

type env = {
  net : Network.t;
  controller : Controller.t;
  monitor : Monitor.t;
  rng : Chronus_topo.Rng.t;
  config : config;
  inst : Instance.t;
  faults : Chronus_faults.Faults.Engine.t;
      (** the run's fault engine; a zero config is a provable no-op *)
  snapshots : (int, Flow_table.snapshot) Hashtbl.t;
      (** per-switch installed configuration, the crash-restart target *)
}

val build :
  ?config:config ->
  ?seed:int ->
  ?faults:Chronus_faults.Faults.config ->
  tag_initial:int option ->
  Instance.t ->
  env
(** Network with the instance's links, initial rules along [p_init]
    (matching [Tag v] and stamped at the ingress when [tag_initial] is
    [Some v] — the two-phase variant), a delivery rule at the destination,
    and the flow source scheduled from time 0 (the monitor starts with the
    engine). [faults] (default {!Chronus_faults.Faults.zero}) configures
    the fault engine, seeded from [seed] on its own coordinate lanes so
    that enabling faults never perturbs workload randomness. *)

val dispatch :
  env ->
  ?execute_at:Sim_time.t ->
  ?on_ack:(Sim_time.t -> unit) ->
  switch:int ->
  Controller.flow_mod ->
  unit
(** The single injection point every executor sends rule modifications
    through. One call: increments [exec.rule_installs], draws this
    command's {!Chronus_faults.Faults.fate} and (for timed commands) the
    switch's clock error, samples the forward control latency from the
    env's RNG, and issues the command — possibly lost, delayed,
    duplicated, rejected, straggling, or crashing the switch back to its
    snapshot. [on_ack] fires when the switch's acknowledgement returns to
    the controller; lost, rejected and crashed commands never ack, which
    is what [Timed_exec]'s retry logic keys on. *)

type result = {
  series : ((int * int) * Monitor.sample list) list;
      (** bandwidth series per link *)
  busiest : (int * int) option;
  peak_mbps : float;
  congested_samples : int;  (** samples above link capacity *)
  peak_rules : int;
  loss_bytes : int;  (** blackholed + looped traffic *)
  update_span : Sim_time.t;  (** first command to last barrier reply *)
  commands : int;
  events : int;
      (** events this run's engine dispatched — deterministic, unlike
          wall-clock time, so it belongs in digested rows and is the
          numerator of the scale figure's events/s throughput *)
  violations : Monitor.violations;
      (** online consistency violations: loops, blackholes, overloads *)
}

val finish : env -> update_done:Sim_time.t -> result
(** Run the engine until the update is done plus the drain period, then
    collect measurements. *)

val update_start : env -> Sim_time.t
(** The instant the update procedure should begin ([warmup]). *)

val modify_of_update : Instance.t -> Instance.update -> Controller.flow_mod
(** The untagged flow-mod realising one Chronus/OR update step. *)
