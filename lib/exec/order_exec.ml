open Chronus_sim
open Chronus_graph
open Chronus_flow
open Chronus_baselines
module Fiber = Chronus_fiber.Fiber
module Obs = Chronus_obs.Obs

let c_phases = Obs.Counter.v "exec.transition_phases"
let s_run = Obs.Span.v "exec.order.run"

type t = {
  result : Exec_env.result;
  rounds : Graph.node list list;
  optimal_rounds : bool;
}

let run ?config ?seed ?faults ?budget inst =
  Obs.Span.with_h s_run @@ fun () ->
  let exact = Order_replacement.minimum_rounds ?budget inst in
  let rounds, optimal_rounds =
    match exact.Order_replacement.rounds with
    | Some r -> (r, exact.Order_replacement.optimal)
    | None -> (
        match Order_replacement.greedy_rounds inst with
        | Some r -> (r, false)
        | None -> ([ Order_replacement.replaceable_switches inst ], false))
  in
  let env = Exec_env.build ?config ?seed ?faults ~tag_initial:None inst in
  let engine = Network.engine env.Exec_env.net in
  let t0 = Exec_env.update_start env in
  let finished = ref None in
  let updates = Instance.updates inst in
  let mod_for v =
    let u = List.find (fun u -> u.Instance.switch = v) updates in
    Exec_env.modify_of_update inst u
  in
  (* One fiber drives the whole round sequence: dispatch a round, wait
     out its barrier, let the instant's remaining events settle, go
     again. *)
  ignore
    (Fiber.spawn_root (Engine.fiber_runtime engine) (fun () ->
         Fiber.sleep_until t0;
         let rec do_round = function
           | [] -> finished := Some (Fiber.now ())
           | round :: rest ->
               Obs.Counter.incr c_phases;
               List.iter
                 (fun v -> Exec_env.dispatch env ~switch:v (mod_for v))
                 round;
               let at =
                 Controller.barrier_all_wait env.Exec_env.controller
                   ~switches:round
               in
               Fiber.sleep_until at;
               do_round rest
         in
         do_round rounds)
      : unit Fiber.t);
  let horizon =
    t0 + (List.length rounds + 2) * Sim_time.sec 1 + Sim_time.sec 5
  in
  Engine.run ~until:horizon engine;
  let update_done =
    match !finished with Some at -> at | None -> horizon
  in
  let result = Exec_env.finish env ~update_done in
  { result; rounds; optimal_rounds }
