open Chronus_sim
open Chronus_flow
module Fiber = Chronus_fiber.Fiber
module Obs = Chronus_obs.Obs

let c_phases = Obs.Counter.v "exec.transition_phases"
let s_run = Obs.Span.v "exec.two_phase.run"
let p_phase = Obs.Point.v "exec.two_phase.phase"

type t = {
  result : Exec_env.result;
  phase1_done : Sim_time.t;
  phase2_done : Sim_time.t;
  rules_installed : int;
}

let old_tag = 1
let new_tag = 2

let run ?config ?seed ?faults inst =
  Obs.Span.with_h s_run @@ fun () ->
  let env =
    Exec_env.build ?config ?seed ?faults ~tag_initial:(Some old_tag) inst
  in
  let engine = Network.engine env.Exec_env.net in
  let cfg = env.Exec_env.config in
  let controller = env.Exec_env.controller in
  let t0 = Exec_env.update_start env in
  let dst = Instance.destination inst in
  let src = Instance.source inst in
  let phase1_done = ref 0 and phase2_done = ref 0 in
  let finished = ref None in
  let fin_transit =
    List.filter (fun v -> v <> dst) inst.Instance.p_fin
  in
  let rules_installed = ref 0 in
  (* The whole two-phase protocol is one straight-line fiber. *)
  ignore
    (Fiber.spawn_root (Engine.fiber_runtime engine) (fun () ->
         Fiber.sleep_until t0;
         (* Phase one: version-2 rules, traffic still stamped with tag 1. *)
         List.iter
           (fun v ->
             match Instance.new_next inst v with
             | None -> ()
             | Some w ->
                 incr rules_installed;
                 Exec_env.dispatch env ~switch:v
                   (Controller.Install
                      {
                        priority = 20;
                        dst;
                        tag_match = Flow_table.Tag new_tag;
                        action =
                          {
                            Flow_table.set_tag = None;
                            forward = Flow_table.Out w;
                          };
                      }))
           fin_transit;
         let at = Controller.barrier_all_wait controller ~switches:fin_transit in
         phase1_done := at;
         Obs.Counter.incr c_phases;
         Obs.Point.emit p_phase
           [ ("phase", Obs.Point.Int 1); ("at_us", Obs.Point.Int at) ];
         Fiber.sleep_until at;
         (* Phase two: flip the ingress stamp; every packet from now on
            carries tag 2 and follows the new rules. *)
         let new_hop =
           match Instance.new_next inst src with
           | Some w -> w
           | None -> assert false
         in
         Exec_env.dispatch env ~switch:src
           (Controller.Modify
              {
                dst;
                tag_match = Flow_table.Any_tag;
                action =
                  {
                    Flow_table.set_tag = Some new_tag;
                    forward = Flow_table.Out new_hop;
                  };
              });
         let at = Controller.barrier_wait controller ~switch:src in
         phase2_done := at;
         Obs.Counter.incr c_phases;
         Obs.Point.emit p_phase
           [ ("phase", Obs.Point.Int 2); ("at_us", Obs.Point.Int at) ];
         (* Old-tag packets drain within the old path's total propagation
            time; then garbage-collect tag-1 rules. *)
         let drain_time =
           (Instance.init_delay inst * cfg.Exec_env.delay_unit)
           + Sim_time.msec 200
         in
         Fiber.sleep_until (at + drain_time);
         let old_transit =
           List.filter (fun v -> v <> dst && v <> src) inst.Instance.p_init
         in
         List.iter
           (fun v ->
             Exec_env.dispatch env ~switch:v
               (Controller.Remove { dst; tag_match = Flow_table.Tag old_tag }))
           old_transit;
         let at = Controller.barrier_all_wait controller ~switches:old_transit in
         finished := Some at)
      : unit Fiber.t);
  let horizon =
    t0
    + (Instance.init_delay inst * cfg.Exec_env.delay_unit)
    + Sim_time.sec 8
  in
  Engine.run ~until:horizon engine;
  let update_done =
    match !finished with Some at -> at | None -> horizon
  in
  let result = Exec_env.finish env ~update_done in
  {
    result;
    phase1_done = !phase1_done;
    phase2_done = !phase2_done;
    rules_installed = !rules_installed;
  }
