open Chronus_sim
open Chronus_graph
open Chronus_flow
open Chronus_topo
module Faults = Chronus_faults.Faults
module Obs = Chronus_obs.Obs

(* Every rule-modification command from every executor flows through
   [dispatch], so this is the one place the counter lives. *)
let c_installs = Obs.Counter.v "exec.rule_installs"

type config = {
  capacity_mbps : float;
  rate_mbps : float;
  delay_unit : Sim_time.t;
  chunk : Sim_time.t;
  warmup : Sim_time.t;
  drain : Sim_time.t;
  control_latency : Sim_time.t * Sim_time.t;
  sample : Sim_time.t;
  preinstall : (int * Controller.flow_mod) list;
      (** background forwarding state, installed per (switch, flow-mod)
          before the experiment starts; part of the persisted
          configuration a crash-restarting switch reverts to *)
}

let default =
  {
    capacity_mbps = 5.0;
    rate_mbps = 5.0;
    delay_unit = Sim_time.msec 50;
    chunk = Sim_time.msec 10;
    warmup = Sim_time.sec 3;
    drain = Sim_time.sec 5;
    control_latency = (Sim_time.msec 2, Sim_time.msec 40);
    sample = Sim_time.sec 1;
    preinstall = [];
  }

type env = {
  net : Network.t;
  controller : Controller.t;
  monitor : Monitor.t;
  rng : Rng.t;
  config : config;
  inst : Instance.t;
  faults : Faults.Engine.t;
  snapshots : (int, Flow_table.snapshot) Hashtbl.t;
}

let build ?(config = default) ?(seed = 1) ?(faults = Faults.zero) ~tag_initial
    inst =
  let engine = Engine.create () in
  let net = Network.create engine in
  let rng = Rng.make seed in
  let g = inst.Instance.graph in
  List.iter (fun v -> Network.add_switch net v) (Graph.nodes g);
  List.iter
    (fun (u, v, (e : Graph.edge)) ->
      Network.add_link net ~capacity_mbps:config.capacity_mbps
        ~delay:(e.Graph.delay * config.delay_unit)
        u v)
    (Graph.edges g);
  (* Background state first: preinstalled rules get the lowest ids, so
     the experiment's own rules stay younger and tie-breaks among them
     are unaffected by how much ballast surrounds them. *)
  List.iter
    (fun (switch, mod_) ->
      let table = Network.table net switch in
      match mod_ with
      | Controller.Install { priority; dst; tag_match; action } ->
          ignore (Flow_table.install table ~priority ~dst ~tag_match action)
      | Controller.Modify { dst; tag_match; action } ->
          ignore (Flow_table.modify_actions table ~dst ~tag_match action)
      | Controller.Remove { dst; tag_match } ->
          ignore (Flow_table.remove table ~dst ~tag_match)
      | Controller.Install_prefix { priority; prefix; len; tag_match; action } ->
          ignore
            (Flow_table.install_prefix table ~priority ~prefix ~len ~tag_match
               action))
    config.preinstall;
  let dst = Instance.destination inst in
  let src = Instance.source inst in
  let tag_match =
    match tag_initial with
    | None -> Flow_table.Any_tag
    | Some v -> Flow_table.Tag v
  in
  (* Initial rules along the old path; the ingress stamps the version tag
     in the two-phase variant. *)
  List.iter
    (fun v ->
      match Instance.old_next inst v with
      | None -> ()
      | Some w ->
          let table = Network.table net v in
          if v = src then
            ignore
              (Flow_table.install table ~priority:10 ~dst
                 ~tag_match:Flow_table.Any_tag
                 { Flow_table.set_tag = tag_initial; forward = Flow_table.Out w })
          else
            ignore
              (Flow_table.install table ~priority:10 ~dst ~tag_match
                 { Flow_table.set_tag = None; forward = Flow_table.Out w }))
    inst.Instance.p_init;
  ignore
    (Flow_table.install (Network.table net dst) ~priority:10 ~dst
       ~tag_match:Flow_table.Any_tag
       { Flow_table.set_tag = None; forward = Flow_table.To_host });
  let lat_lo, lat_hi = config.control_latency in
  let controller =
    Controller.create
      ~latency:(fun ~switch:_ -> Rng.in_range rng lat_lo lat_hi)
      net
  in
  let monitor = Monitor.create ~interval:config.sample net in
  (* The source runs for the whole experiment; [finish] bounds it. *)
  Network.add_source net ~attach:src ~dst ~rate_mbps:config.rate_mbps
    ~chunk:config.chunk ~start:0
    ~stop:max_int ();
  (* The snapshot a crash-restarting switch reverts to is the initial
     (installed) configuration — what a real switch persists. *)
  let snapshots = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace snapshots v (Flow_table.snapshot (Network.table net v)))
    (Network.switches net);
  let faults = Faults.Engine.create ~seed faults in
  { net; controller; monitor; rng; config; inst; faults; snapshots }

let restore_switch env switch =
  match Hashtbl.find_opt env.snapshots switch with
  | Some s -> Flow_table.restore (Network.table env.net switch) s
  | None -> ()

let dispatch env ?execute_at ?on_ack ~switch mod_ =
  Obs.Counter.incr c_installs;
  let fate = Faults.Engine.command_fate env.faults ~switch in
  (* A timed command executes when the switch's *local* clock reaches the
     stamp, i.e. at [stamp + clock error] of true time. *)
  let execute_at =
    match execute_at with
    | None -> None
    | Some stamp ->
        let err = Faults.Engine.clock_error env.faults ~switch ~at:stamp in
        Some (max 0 (stamp + err))
  in
  let lat_lo, lat_hi = env.config.control_latency in
  let forward () = Rng.in_range env.rng lat_lo lat_hi in
  let handling =
    if fate.Faults.lost then Controller.Lose
    else if fate.Faults.crashed then
      Controller.Crash (fun () -> restore_switch env switch)
    else if fate.Faults.rejected then Controller.Reject
    else Controller.Deliver
  in
  let ack =
    match handling with Controller.Deliver -> on_ack | _ -> None
  in
  Controller.send env.controller ?execute_at
    ~latency:(forward () + fate.Faults.extra_delay_us)
    ~process_delay:fate.Faults.straggle_us ~handling ?ack ~switch mod_;
  if fate.Faults.duplicated then
    (* The copy arrives independently, later (it waits out one channel
       extra-delay window) and is not counted as a controller command. *)
    let cfg = (Faults.Engine.config env.faults).Faults.channel in
    Controller.send env.controller ?execute_at
      ~latency:(forward () + cfg.Faults.extra_delay_us)
      ~counted:false ~switch mod_

type result = {
  series : ((int * int) * Monitor.sample list) list;
  busiest : (int * int) option;
  peak_mbps : float;
  congested_samples : int;
  peak_rules : int;
  loss_bytes : int;
  update_span : Sim_time.t;
  commands : int;
  events : int;  (** events the engine dispatched over the whole run *)
  violations : Monitor.violations;
}

let update_start env = env.config.warmup

let finish env ~update_done =
  let engine = Network.engine env.net in
  let horizon = update_done + env.config.drain in
  Monitor.stop_after env.monitor horizon;
  (* Source emission events re-arm themselves forever; run to the horizon
     and stop. *)
  Engine.run ~until:horizon engine;
  let series =
    List.map
      (fun link -> (link, Monitor.series env.monitor link))
      (Network.links env.net)
  in
  let busiest, peak_mbps =
    match Monitor.busiest_link env.monitor with
    | Some (link, peak) -> (Some link, peak)
    | None -> (None, 0.)
  in
  let stats = Network.stats env.net in
  {
    series;
    busiest;
    peak_mbps;
    congested_samples = List.length (Monitor.congested_samples env.monitor);
    peak_rules =
      max (Monitor.peak_rules env.monitor)
        (Controller.peak_rules env.controller);
    loss_bytes = stats.Network.dropped_no_rule + stats.Network.dropped_loop;
    update_span = max 0 (update_done - env.config.warmup);
    commands = Controller.commands_sent env.controller;
    events = Engine.dispatched engine;
    violations = Monitor.violations env.monitor;
  }

let modify_of_update inst (u : Instance.update) =
  let dst = Instance.destination inst in
  match (u.Instance.old_next, u.Instance.new_next) with
  | Some _, Some w ->
      Controller.Modify
        {
          dst;
          tag_match = Flow_table.Any_tag;
          action = { Flow_table.set_tag = None; forward = Flow_table.Out w };
        }
  | None, Some w ->
      Controller.Install
        {
          priority = 10;
          dst;
          tag_match = Flow_table.Any_tag;
          action = { Flow_table.set_tag = None; forward = Flow_table.Out w };
        }
  | Some _, None ->
      Controller.Remove { dst; tag_match = Flow_table.Any_tag }
  | None, None -> assert false
