open Chronus_sim
open Chronus_flow
open Chronus_core
module Obs = Chronus_obs.Obs

let s_run = Obs.Span.v "exec.timed.run"
let c_retries = Obs.Counter.v "exec.retries"
let c_fallbacks = Obs.Counter.v "exec.fallbacks"

type path = Timed | Two_phase_fallback

let pp_path ppf = function
  | Timed -> Format.pp_print_string ppf "timed"
  | Two_phase_fallback -> Format.pp_print_string ppf "two-phase-fallback"

type retry = {
  ack_timeout : Sim_time.t;
  backoff : Sim_time.t;
  max_retries : int;
  deadline_slack : Sim_time.t;
}

let default_retry =
  {
    ack_timeout = Sim_time.msec 200;
    backoff = Sim_time.msec 100;
    max_retries = 3;
    deadline_slack = Sim_time.sec 1;
  }

type t = {
  result : Exec_env.result;
  schedule : Schedule.t;
  clean : bool;
  path : path;
  retries : int;
  unacked : int;
}

(* The version tag of the emergency two-phase fallback. Timed runs build
   untagged environments, so tag-9 rules are inert until the ingress
   starts stamping. *)
let fallback_tag = 9

let run ?config ?seed ?mode ?faults ?(retry = default_retry) inst =
  Obs.Span.with_h s_run @@ fun () ->
  let { Fallback.schedule; clean } = Fallback.schedule ?mode inst in
  let env = Exec_env.build ?config ?seed ?faults ~tag_initial:None inst in
  let engine = Network.engine env.Exec_env.net in
  let cfg = env.Exec_env.config in
  let t0 = Exec_env.update_start env in
  let dispatch_at = max 0 (t0 - Sim_time.msec 500) in
  let timed =
    List.filter_map
      (fun (u : Instance.update) ->
        Option.map
          (fun step -> (u, step))
          (Schedule.find u.Instance.switch schedule))
      (Instance.updates inst)
  in
  let finished = ref None in
  let acked : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref (List.length timed) in
  let retries = ref 0 in
  let fallen_back = ref false in
  let deadline =
    t0
    + (Schedule.makespan schedule * cfg.Exec_env.delay_unit)
    + retry.deadline_slack
  in
  (* Emergency path on deadline miss: a two-phase update over the final
     path, version-tagged so half-installed timed state cannot capture
     in-flight traffic. Its own commands go through [dispatch] too, so it
     is best-effort under continuing faults — the monitor keeps score. *)
  let fallback () =
    fallen_back := true;
    Obs.Counter.incr c_fallbacks;
    let dst = Instance.destination inst and src = Instance.source inst in
    let fin_transit = List.filter (fun v -> v <> dst) inst.Instance.p_fin in
    List.iter
      (fun v ->
        match Instance.new_next inst v with
        | None -> ()
        | Some w ->
            Exec_env.dispatch env ~switch:v
              (Controller.Install
                 {
                   priority = 20;
                   dst;
                   tag_match = Flow_table.Tag fallback_tag;
                   action =
                     { Flow_table.set_tag = None; forward = Flow_table.Out w };
                 }))
      fin_transit;
    Controller.barrier_all env.Exec_env.controller ~switches:fin_transit
      (fun at ->
        Engine.at engine at (fun () ->
            let new_hop =
              match Instance.new_next inst src with
              | Some w -> w
              | None -> assert false
            in
            Exec_env.dispatch env ~switch:src
              (Controller.Modify
                 {
                   dst;
                   tag_match = Flow_table.Any_tag;
                   action =
                     {
                       Flow_table.set_tag = Some fallback_tag;
                       forward = Flow_table.Out new_hop;
                     };
                 });
            Controller.barrier env.Exec_env.controller ~switch:src (fun at ->
                finished := Some at)))
  in
  let rec send ~attempt ((u : Instance.update), step) =
    let exec_at = t0 + (step * cfg.Exec_env.delay_unit) in
    Exec_env.dispatch env ~execute_at:exec_at
      ~on_ack:(fun at ->
        if not (Hashtbl.mem acked u.Instance.switch) then begin
          Hashtbl.replace acked u.Instance.switch ();
          decr pending;
          if !pending = 0 && not !fallen_back then finished := Some at
        end)
      ~switch:u.Instance.switch
      (Exec_env.modify_of_update inst u);
    let check_at =
      max (Engine.now engine) exec_at
      + retry.ack_timeout
      + (attempt * retry.backoff)
    in
    if check_at < deadline && attempt < retry.max_retries then
      Engine.at engine check_at (fun () ->
          if
            (not (Hashtbl.mem acked u.Instance.switch)) && not !fallen_back
          then begin
            incr retries;
            Obs.Counter.incr c_retries;
            send ~attempt:(attempt + 1) (u, step)
          end)
  in
  Engine.at engine dispatch_at (fun () ->
      if timed = [] then finished := Some (Engine.now engine)
      else List.iter (send ~attempt:0) timed;
      Engine.at engine deadline (fun () ->
          if !pending > 0 && not !fallen_back then fallback ()));
  let horizon = deadline + Sim_time.sec 5 in
  Engine.run ~until:horizon engine;
  if !finished = None then
    (* A late fallback needs room for its barriers and the tag drain. *)
    Engine.run
      ~until:
        (horizon
        + (Instance.init_delay inst * cfg.Exec_env.delay_unit)
        + Sim_time.sec 10)
      engine;
  let update_done =
    match !finished with Some at -> at | None -> horizon
  in
  let result = Exec_env.finish env ~update_done in
  {
    result;
    schedule;
    clean;
    path = (if !fallen_back then Two_phase_fallback else Timed);
    retries = !retries;
    unacked = !pending;
  }
