open Chronus_sim
open Chronus_flow
open Chronus_core
module Obs = Chronus_obs.Obs

let c_installs = Obs.Counter.v "exec.rule_installs"
let s_run = Obs.Span.v "exec.timed.run"

type t = { result : Exec_env.result; schedule : Schedule.t; clean : bool }

let run ?config ?seed ?mode inst =
  Obs.Span.with_h s_run @@ fun () ->
  let { Fallback.schedule; clean } = Fallback.schedule ?mode inst in
  let env = Exec_env.build ?config ?seed ~tag_initial:None inst in
  let engine = Network.engine env.Exec_env.net in
  let cfg = env.Exec_env.config in
  let t0 = Exec_env.update_start env in
  let dispatch = max 0 (t0 - Sim_time.msec 500) in
  let finished = ref None in
  Engine.at engine dispatch (fun () ->
      let updates = Instance.updates inst in
      List.iter
        (fun (u : Instance.update) ->
          match Schedule.find u.Instance.switch schedule with
          | None -> ()
          | Some step ->
              Obs.Counter.incr c_installs;
              Controller.send env.Exec_env.controller
                ~execute_at:(t0 + (step * cfg.Exec_env.delay_unit))
                ~switch:u.Instance.switch
                (Exec_env.modify_of_update inst u))
        updates;
      Controller.barrier_all env.Exec_env.controller
        ~switches:(Schedule.switches schedule)
        (fun at -> finished := Some at));
  let horizon =
    t0
    + (Schedule.makespan schedule * cfg.Exec_env.delay_unit)
    + Sim_time.sec 5
  in
  Engine.run ~until:horizon engine;
  let update_done =
    match !finished with Some at -> at | None -> horizon
  in
  let result = Exec_env.finish env ~update_done in
  { result; schedule; clean }
