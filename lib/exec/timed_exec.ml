open Chronus_sim
open Chronus_flow
open Chronus_core
module Fiber = Chronus_fiber.Fiber
module Obs = Chronus_obs.Obs

let s_run = Obs.Span.v "exec.timed.run"
let c_retries = Obs.Counter.v "exec.retries"
let c_fallbacks = Obs.Counter.v "exec.fallbacks"

type path = Timed | Two_phase_fallback

let pp_path ppf = function
  | Timed -> Format.pp_print_string ppf "timed"
  | Two_phase_fallback -> Format.pp_print_string ppf "two-phase-fallback"

type retry = {
  ack_timeout : Sim_time.t;
  backoff : Sim_time.t;
  max_retries : int;
  deadline_slack : Sim_time.t;
}

let default_retry =
  {
    ack_timeout = Sim_time.msec 200;
    backoff = Sim_time.msec 100;
    max_retries = 3;
    deadline_slack = Sim_time.sec 1;
  }

type t = {
  result : Exec_env.result;
  schedule : Schedule.t;
  clean : bool;
  path : path;
  retries : int;
  unacked : int;
}

(* The version tag of the emergency two-phase fallback. Timed runs build
   untagged environments, so tag-9 rules are inert until the ingress
   starts stamping. *)
let fallback_tag = 9

type progress = {
  mutable finished : Sim_time.t option;
  mutable pending : int;
  mutable retries : int;
  mutable fallen_back : bool;
  deadline : Sim_time.t;
}

let launch ?(retry = default_retry) env schedule =
  let inst = env.Exec_env.inst in
  let engine = Network.engine env.Exec_env.net in
  let cfg = env.Exec_env.config in
  let rt = Engine.fiber_runtime engine in
  let t0 = Exec_env.update_start env in
  let dispatch_at = max 0 (t0 - Sim_time.msec 500) in
  let timed =
    List.filter_map
      (fun (u : Instance.update) ->
        Option.map
          (fun step -> (u, step))
          (Schedule.find u.Instance.switch schedule))
      (Instance.updates inst)
  in
  let acked : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let prog =
    {
      finished = None;
      pending = List.length timed;
      retries = 0;
      fallen_back = false;
      deadline =
        t0
        + (Schedule.makespan schedule * cfg.Exec_env.delay_unit)
        + retry.deadline_slack;
    }
  in
  (* Emergency path on deadline miss: a two-phase update over the final
     path, version-tagged so half-installed timed state cannot capture
     in-flight traffic. Its own commands go through [dispatch] too, so it
     is best-effort under continuing faults — the monitor keeps score. *)
  let fallback () =
    prog.fallen_back <- true;
    Obs.Counter.incr c_fallbacks;
    let dst = Instance.destination inst and src = Instance.source inst in
    let fin_transit = List.filter (fun v -> v <> dst) inst.Instance.p_fin in
    List.iter
      (fun v ->
        match Instance.new_next inst v with
        | None -> ()
        | Some w ->
            Exec_env.dispatch env ~switch:v
              (Controller.Install
                 {
                   priority = 20;
                   dst;
                   tag_match = Flow_table.Tag fallback_tag;
                   action =
                     { Flow_table.set_tag = None; forward = Flow_table.Out w };
                 }))
      fin_transit;
    let at =
      Controller.barrier_all_wait env.Exec_env.controller
        ~switches:fin_transit
    in
    Fiber.sleep_until at;
    let new_hop =
      match Instance.new_next inst src with
      | Some w -> w
      | None -> assert false
    in
    Exec_env.dispatch env ~switch:src
      (Controller.Modify
         {
           dst;
           tag_match = Flow_table.Any_tag;
           action =
             {
               Flow_table.set_tag = Some fallback_tag;
               forward = Flow_table.Out new_hop;
             };
         });
    let at = Controller.barrier_wait env.Exec_env.controller ~switch:src in
    prog.finished <- Some at
  in
  (* One fiber per timed command: dispatch, await the ack with a
     timeout, re-send with linear backoff — the straight-line form of
     the old callback state machine. *)
  let update_fiber ((u : Instance.update), step) () =
    let box = Fiber.Mailbox.create rt in
    let exec_at = t0 + (step * cfg.Exec_env.delay_unit) in
    let settle at =
      if not (Hashtbl.mem acked u.Instance.switch) then begin
        Hashtbl.replace acked u.Instance.switch ();
        prog.pending <- prog.pending - 1;
        if prog.pending = 0 && not prog.fallen_back then
          prog.finished <- Some at
      end
    in
    let rec attempt n =
      Exec_env.dispatch env ~execute_at:exec_at
        ~on_ack:(fun at -> Fiber.Mailbox.send box at)
        ~switch:u.Instance.switch
        (Exec_env.modify_of_update inst u);
      let check_at =
        max (Engine.now engine) exec_at
        + retry.ack_timeout
        + (n * retry.backoff)
      in
      if check_at < prog.deadline && n < retry.max_retries then
        match Fiber.Mailbox.recv_until ~deadline:check_at box with
        | Some at -> settle at
        | None ->
            if (not (Hashtbl.mem acked u.Instance.switch)) && not prog.fallen_back
            then begin
              prog.retries <- prog.retries + 1;
              Obs.Counter.incr c_retries;
              attempt (n + 1)
            end
            else
              (* Out of the retry loop; a late ack still settles the
                 books, exactly as the armed callback used to. *)
              settle (Fiber.Mailbox.recv box)
      else settle (Fiber.Mailbox.recv box)
    in
    attempt 0
  in
  ignore
    (Fiber.spawn_root rt (fun () ->
         Fiber.sleep_until dispatch_at;
         if timed = [] then prog.finished <- Some (Fiber.now ())
         else begin
           (* Children run in spawn order within this instant: every
              command is dispatched before the watcher posts the
              deadline. *)
           List.iter
             (fun cmd -> ignore (Fiber.spawn (update_fiber cmd) : unit Fiber.t))
             timed;
           ignore
             (Fiber.spawn (fun () ->
                  Fiber.sleep_until prog.deadline;
                  if prog.pending > 0 && not prog.fallen_back then fallback ())
               : unit Fiber.t)
         end)
      : unit Fiber.t);
  prog

let run ?config ?seed ?mode ?faults ?(retry = default_retry) inst =
  Obs.Span.with_h s_run @@ fun () ->
  let { Fallback.schedule; clean } = Fallback.schedule ?mode inst in
  let env = Exec_env.build ?config ?seed ?faults ~tag_initial:None inst in
  let engine = Network.engine env.Exec_env.net in
  let cfg = env.Exec_env.config in
  let prog = launch ~retry env schedule in
  let horizon = prog.deadline + Sim_time.sec 5 in
  Engine.run ~until:horizon engine;
  if prog.finished = None then
    (* A late fallback needs room for its barriers and the tag drain. *)
    Engine.run
      ~until:
        (horizon
        + (Instance.init_delay inst * cfg.Exec_env.delay_unit)
        + Sim_time.sec 10)
      engine;
  let update_done =
    match prog.finished with Some at -> at | None -> horizon
  in
  let result = Exec_env.finish env ~update_done in
  {
    result;
    schedule;
    clean;
    path = (if prog.fallen_back then Two_phase_fallback else Timed);
    retries = prog.retries;
    unacked = prog.pending;
  }
