(** Executing the OR baseline on the simulator: round after round of
    plain (untimed) flow-mods. Within a round each command experiences its
    own random control-channel latency, so the switches apply the new
    rules out of order — the asynchrony whose congestion Figs. 6–8
    measure. A round's barrier replies gate the next round. *)

open Chronus_graph

type t = {
  result : Exec_env.result;
  rounds : Graph.node list list;
  optimal_rounds : bool;
}

val run :
  ?config:Exec_env.config ->
  ?seed:int ->
  ?faults:Chronus_faults.Faults.config ->
  ?budget:int ->
  Chronus_flow.Instance.t ->
  t
(** [budget] bounds the exact minimum-round search; on exhaustion the
    greedy rounds run instead. [faults] configures fault injection on
    the command path (default: none); OR has no recovery mechanism, so
    lost or rejected commands simply leave stale rules behind. *)
